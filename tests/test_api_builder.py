"""QueryBuilder: fluent construction, build-time validation."""

import pytest

from repro.api import QueryBuilder
from repro.core.query import (
    CNFCondition,
    RangeCondition,
    SubscriptionQuery,
    TimeWindowQuery,
)
from repro.errors import QueryError


def test_builds_full_time_window_query():
    query = (
        QueryBuilder()
        .window(0, 100)
        .range(low=(180,), high=(250,))
        .all_of("Sedan")
        .any_of("Benz", "BMW")
        .build()
    )
    assert query == TimeWindowQuery(
        start=0,
        end=100,
        numeric=RangeCondition(low=(180,), high=(250,)),
        boolean=CNFCondition.of([["Sedan"], ["Benz", "BMW"]]),
    )


def test_defaults_to_unbounded_window_and_true_condition():
    query = QueryBuilder().build()
    assert isinstance(query, TimeWindowQuery)
    assert query.start == 0 and query.end == 2**63 - 1
    assert query.numeric is None and query.boolean == CNFCondition.true()


def test_scalar_range_bounds_promote_to_one_dimension():
    query = QueryBuilder().range(low=10, high=20).build()
    assert query.numeric == RangeCondition(low=(10,), high=(20,))


def test_where_splices_raw_clauses():
    query = QueryBuilder().where([["a", "b"], ["c"]]).all_of("d").build()
    assert query.boolean == CNFCondition.of([["a", "b"], ["c"], ["d"]])


def test_all_of_adds_one_clause_per_attribute():
    query = QueryBuilder().all_of("a", "b").build()
    assert query.boolean == CNFCondition.of([["a"], ["b"]])


def test_subscription_mode_builds_subscription_query():
    query = QueryBuilder(subscription=True).any_of("Benz").build()
    assert isinstance(query, SubscriptionQuery)
    assert not isinstance(query, TimeWindowQuery)


@pytest.mark.parametrize(
    "spoil",
    [
        lambda b: b.window(10, 3),
        lambda b: b.window(0, "x"),
        lambda b: b.window(0, 1).window(0, 2),
        lambda b: b.range(low=(1,)),
        lambda b: b.range(high=(1,)),
        lambda b: b.range(low=(2,), high=(1,)),
        lambda b: b.range(low=(1, 2), high=(3,)),
        lambda b: b.range(low=(1,), high=(2,)).range(low=(1,), high=(2,)),
        lambda b: b.range(low=(1.5,), high=(2,)),
        lambda b: b.range(low=True, high=2),
        lambda b: b.range(low=-5, high=10),
        lambda b: b.range(low=(0, -1), high=(2, 2)),
        lambda b: b.window(-1, 10),
        lambda b: b.window(0, True),
        lambda b: b.all_of(),
        lambda b: b.any_of(),
        lambda b: b.any_of(7),
        lambda b: b.where([]),
        lambda b: b.where([[]]),
    ],
)
def test_invalid_steps_fail_at_build_time(spoil):
    with pytest.raises(QueryError):
        spoil(QueryBuilder())


def test_subscription_rejects_window():
    with pytest.raises(QueryError):
        QueryBuilder(subscription=True).window(0, 10)


def test_unbound_builder_cannot_execute():
    with pytest.raises(QueryError):
        QueryBuilder().execute()
    with pytest.raises(QueryError):
        QueryBuilder(subscription=True).open()


def test_mode_mismatch_between_execute_and_open():
    class _FakeClient:
        pass

    builder = QueryBuilder(_FakeClient())
    with pytest.raises(QueryError):
        builder.open()
    sub_builder = QueryBuilder(_FakeClient(), subscription=True)
    with pytest.raises(QueryError):
        sub_builder.execute()
