"""Unit tests for prime-field arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.curve import FIELD_PRIME, SUBGROUP_ORDER
from repro.crypto.field import PrimeField
from repro.errors import CryptoError

SMALL = PrimeField(10007)  # a prime ≡ 3 (mod 4)
FR = PrimeField(SUBGROUP_ORDER)
FP = PrimeField(FIELD_PRIME)

elements = st.integers(min_value=0, max_value=10006)
nonzero = st.integers(min_value=1, max_value=10006)


def test_modulus_must_be_at_least_two():
    with pytest.raises(CryptoError):
        PrimeField(1)


def test_element_reduces_into_range():
    assert SMALL.element(10007) == 0
    assert SMALL.element(-1) == 10006
    assert SMALL.element(3) == 3


def test_basic_ops():
    assert SMALL.add(10000, 10) == 3
    assert SMALL.sub(3, 5) == 10005
    assert SMALL.mul(100, 101) == 100 * 101 % 10007
    assert SMALL.neg(1) == 10006
    assert SMALL.pow(2, 13) == pow(2, 13, 10007)


def test_zero_one_constants():
    assert SMALL.zero == 0
    assert SMALL.one == 1


def test_inverse_roundtrip():
    for value in (1, 2, 5000, 10006):
        assert SMALL.mul(value, SMALL.inv(value)) == 1


def test_inverse_of_zero_raises():
    with pytest.raises(CryptoError):
        SMALL.inv(0)
    with pytest.raises(CryptoError):
        SMALL.inv(10007)  # reduces to zero


def test_div():
    assert SMALL.div(10, 5) == 2
    assert SMALL.mul(SMALL.div(7, 3), 3) == 7


@given(a=elements, b=elements)
def test_add_commutes(a, b):
    assert SMALL.add(a, b) == SMALL.add(b, a)


@given(a=elements, b=elements, c=elements)
def test_mul_distributes(a, b, c):
    left = SMALL.mul(a, SMALL.add(b, c))
    right = SMALL.add(SMALL.mul(a, b), SMALL.mul(a, c))
    assert left == right


@given(a=nonzero)
def test_inv_is_involution(a):
    assert SMALL.inv(SMALL.inv(a)) == a


def test_sqrt_of_zero():
    assert SMALL.sqrt(0) == 0


@given(a=elements)
def test_sqrt_squares_back(a):
    square = SMALL.mul(a, a)
    root = SMALL.sqrt(square)
    assert root is not None
    assert SMALL.mul(root, root) == square


def test_sqrt_none_for_non_residue():
    # -1 is a non-residue when p ≡ 3 (mod 4)
    assert SMALL.sqrt(10006) is None
    assert not SMALL.is_residue(10006)


def test_sqrt_requires_3_mod_4():
    field = PrimeField(13)  # 13 ≡ 1 (mod 4)
    with pytest.raises(CryptoError):
        field.sqrt(4)


def test_is_residue_zero_counts():
    assert SMALL.is_residue(0)
    assert SMALL.is_residue(4)


def test_curve_primes_are_3_mod_4():
    assert FIELD_PRIME % 4 == 3
    assert FP.sqrt(4) in (2, FIELD_PRIME - 2)


def test_contains():
    assert 5 in SMALL
    assert 10007 not in SMALL
    assert -1 not in SMALL


def test_rand_in_range():
    import random

    rng = random.Random(0)
    for _ in range(20):
        assert FR.rand(rng) in FR
