"""Shared fixtures.

Most tests run on the simulated backend (identical algebra, fast); the
real-pairing backend is exercised by a small set of ``slow``-marked
tests.  Fixtures are module-scoped where construction is expensive.
"""

from __future__ import annotations

import random

import pytest

from repro.accumulators import ElementEncoder, make_accumulator
from repro.chain import Blockchain, DataObject, Miner, ProtocolParams
from repro.crypto import get_backend
from repro.testing import make_demo_objects
from repro.testing.fixtures import corpus_replayer  # noqa: F401


@pytest.fixture(scope="session")
def sim_backend():
    return get_backend("simulated")


@pytest.fixture(scope="session")
def real_backend():
    return get_backend("ss512")


@pytest.fixture(scope="session")
def sim_acc1(sim_backend):
    _sk, acc = make_accumulator(
        "acc1", sim_backend, capacity=512, rng=random.Random(11)
    )
    return acc


@pytest.fixture(scope="session")
def sim_acc2(sim_backend):
    _sk, acc = make_accumulator("acc2", sim_backend, rng=random.Random(12))
    return acc


@pytest.fixture(scope="session")
def encoder_r(sim_backend):
    """Encoder into Z_r — the acc1 domain."""
    return ElementEncoder(sim_backend.order - 1)


@pytest.fixture(scope="session")
def encoder_q():
    """Encoder into [1, 2^32 - 1] — the acc2 domain."""
    return ElementEncoder(2**32 - 1)


def make_objects(rng: random.Random, n: int, start_id: int, timestamp: int,
                 dims: int = 2, bits: int = 8, vocab=None) -> list[DataObject]:
    """Random objects for ad-hoc chains (see repro.testing)."""
    return make_demo_objects(
        rng, n, start_id, timestamp, dims=dims, bits=bits, vocab=vocab
    )


@pytest.fixture()
def small_chain(sim_acc2, encoder_q):
    """A 20-block / 3-objects-per-block chain with the 'both' index."""
    params = ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0)
    chain = Blockchain()
    miner = Miner(chain, sim_acc2, encoder_q, params)
    rng = random.Random(5)
    oid = 0
    for h in range(20):
        objs = make_objects(rng, 3, oid, timestamp=h * 10)
        oid += 3
        miner.mine_block(objs, timestamp=h * 10)
    return chain, params
