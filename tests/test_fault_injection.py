"""Fault-injection tests for the serving tier.

Every scenario routes a real client through a :class:`FaultProxy` whose
:class:`FaultPlan` scripts exactly which frame gets dropped, corrupted,
truncated, delayed or disconnected.  Combined with manual clocks on the
server (rate limiting, deadlines), every retry/backoff/deadline branch
of :class:`ClientOptions` and every server hygiene counter is driven
deterministically — no test below synchronizes with ``time.sleep``.
"""

import contextlib
import threading

import pytest

from repro.api import AsyncSocketServer, ClientOptions, SocketTransport, TransportError
from repro.errors import ReproError, ServerBusyError
from repro.testing import (
    TO_CLIENT,
    TO_SERVER,
    Fault,
    FaultPlan,
    FaultProxy,
    ManualClock,
    corpus_network,
)
from repro.wire import WireError


@pytest.fixture(scope="module")
def fault_net():
    net = corpus_network({"blocks": "4"})
    yield net
    net.close()


@pytest.fixture(scope="module")
def window_query(fault_net):
    query = fault_net.client.query().window(0, 30).any_of("Benz", "BMW").build()
    return query


@pytest.fixture(scope="module")
def sub_query(fault_net):
    return fault_net.client.subscribe().any_of("Benz", "BMW").build()


@contextlib.contextmanager
def served(net, **kwargs):
    server = AsyncSocketServer(net.endpoint, **kwargs).start()
    try:
        yield server
    finally:
        server.stop()


@contextlib.contextmanager
def proxied(net, plan, **server_kwargs):
    with served(net, **server_kwargs) as server:
        with FaultProxy(server.address, plan) as proxy:
            yield proxy, server


def _transport(net, address, **options):
    return SocketTransport(
        address, net.accumulator.backend, options=ClientOptions(**options)
    )


# -- single-fault scenarios ---------------------------------------------------
def test_corrupt_request_is_rejected_not_retried(fault_net):
    """A corrupted request draws a wire error, bumps protocol_errors,
    and is *not* retried — the server rejected it authoritatively."""
    plan = FaultPlan(to_server={0: Fault("corrupt")})
    with proxied(fault_net, plan) as (proxy, server):
        transport = _transport(fault_net, proxy.address, retries=2, backoff=0.0)
        try:
            with pytest.raises(WireError, match="unknown request tag"):
                transport.headers()
        finally:
            transport.close()
        assert server.counters.wait_for("protocol_errors", 1)
        assert plan.frames_seen(TO_SERVER) == 1  # one attempt despite retries=2


def test_corrupt_response_status_raises_transport_error(fault_net):
    plan = FaultPlan(to_client={0: Fault("corrupt")})
    with proxied(fault_net, plan) as (proxy, _server):
        transport = _transport(fault_net, proxy.address)
        try:
            with pytest.raises(TransportError, match="unknown response status"):
                transport.headers()
        finally:
            transport.close()


def test_link_retry_recovers_from_corrupt_response(fault_net):
    plan = FaultPlan(to_client={0: Fault("corrupt")})
    with proxied(fault_net, plan) as (proxy, _server):
        transport = _transport(fault_net, proxy.address, retries=1, backoff=0.0)
        try:
            headers = transport.headers()
        finally:
            transport.close()
        assert headers
        assert plan.injected == [(TO_CLIENT, 0, "corrupt")]


def test_truncated_response_reconnects_and_succeeds(fault_net):
    """A frame cut mid-body reads as 'connection closed mid-frame'; an
    idempotent request reconnects and resends."""
    plan = FaultPlan(to_client={0: Fault("truncate", keep_bytes=2)})
    with proxied(fault_net, plan) as (proxy, server):
        transport = _transport(fault_net, proxy.address, retries=1, backoff=0.0)
        try:
            headers = transport.headers()
        finally:
            transport.close()
        assert headers
        assert server.counters.wait_for("connections_opened", 2)


def test_truncated_response_without_retries_raises(fault_net):
    plan = FaultPlan(to_client={0: Fault("truncate", keep_bytes=2)})
    with proxied(fault_net, plan) as (proxy, _server):
        transport = _transport(fault_net, proxy.address)
        try:
            with pytest.raises(TransportError, match="closed mid-frame"):
                transport.headers()
        finally:
            transport.close()


def test_dropped_request_times_out_then_retry_recovers(fault_net):
    plan = FaultPlan(to_server={0: Fault("drop")})
    with proxied(fault_net, plan) as (proxy, _server):
        transport = _transport(
            fault_net,
            proxy.address,
            request_deadline=0.3,
            retries=1,
            backoff=0.0,
        )
        try:
            headers = transport.headers()
        finally:
            transport.close()
        assert headers
        assert plan.injected == [(TO_SERVER, 0, "drop")]


def test_delay_fault_is_survivable(fault_net):
    plan = FaultPlan(to_client={0: Fault("delay", delay=0.05)})
    with proxied(fault_net, plan) as (proxy, _server):
        transport = _transport(fault_net, proxy.address)
        try:
            assert transport.headers()
        finally:
            transport.close()
        assert plan.injected == [(TO_CLIENT, 0, "delay")]


def test_disconnect_on_register_is_not_retried(fault_net, sub_query):
    """register is not idempotent: a dead link mid-request surfaces
    immediately, no resend, and the server never saw the request."""
    before = fault_net.endpoint.counters.registrations
    plan = FaultPlan(to_server={0: Fault("disconnect")})
    with proxied(fault_net, plan) as (proxy, _server):
        transport = _transport(fault_net, proxy.address, retries=2, backoff=0.0)
        try:
            with pytest.raises(TransportError):
                transport.register(sub_query, since_height=0)
        finally:
            transport.close()
        assert plan.frames_seen(TO_SERVER) == 1
    assert fault_net.endpoint.counters.registrations == before


def test_disconnect_mid_stream_closes_the_server_session(fault_net, sub_query):
    """Cutting the link after a successful register must close the
    server-side session (hygiene: no leaked subscriptions)."""
    counters = fault_net.endpoint.counters
    closed_before = counters.sessions_closed
    plan = FaultPlan(to_server={1: Fault("disconnect")})
    with proxied(fault_net, plan) as (proxy, _server):
        transport = _transport(fault_net, proxy.address)
        try:
            query_id, _height = transport.register(sub_query, since_height=0)
            with pytest.raises(TransportError):
                transport.poll(query_id)
        finally:
            transport.close()
        assert counters.wait_for("sessions_closed", closed_before + 1)


# -- scripted clocks: busy + deadline branches --------------------------------
def test_rate_limit_busy_then_manual_refill(fault_net):
    """With the bucket on a manual clock the busy branch and its
    recovery are exact: one token, frozen time, no refill race."""
    clock = ManualClock()
    with served(fault_net, rate_limit=5.0, rate_burst=1, clock=clock) as server:
        transport = _transport(fault_net, server.address)
        try:
            assert transport.headers()  # burst token spent
            with pytest.raises(ServerBusyError, match="rate limit"):
                transport.headers()
            assert server.counters.rate_limited == 1
            clock.advance(1.0)  # refill the bucket deterministically
            assert transport.headers()
        finally:
            transport.close()


def test_busy_retries_burn_the_schedule_then_surface(fault_net):
    """ServerBusyError is retried for every request kind; with time
    frozen each retry meets the same empty bucket."""
    clock = ManualClock()
    with served(fault_net, rate_limit=5.0, rate_burst=1, clock=clock) as server:
        transport = _transport(fault_net, server.address, retries=2, backoff=0.0)
        try:
            assert transport.headers()
            with pytest.raises(ServerBusyError):
                transport.headers()
        finally:
            transport.close()
        # the failed call burned its initial attempt plus both retries
        assert server.counters.rate_limited == 3


def test_admission_control_rejects_when_the_slot_is_held(fault_net):
    """Jam every endpoint worker on a gate so the one admitted request
    provably stays in flight, then watch the second get bounced."""
    gate = threading.Event()
    executor = fault_net.endpoint.executor
    blockers = [
        executor.submit(gate.wait) for _ in range(fault_net.endpoint.max_workers)
    ]
    try:
        with served(fault_net, max_inflight=1) as server:
            first = _transport(fault_net, server.address)
            second = _transport(fault_net, server.address)
            results = []
            pilot = threading.Thread(target=lambda: results.append(first.headers()))
            try:
                pilot.start()
                # once the request counter ticks, the loop thread holds
                # the single inflight slot before it can read frame two
                assert server.counters.wait_for("requests", 1)
                with pytest.raises(ServerBusyError, match="inflight"):
                    second.headers()
                assert server.counters.admission_rejections >= 1
            finally:
                gate.set()
                pilot.join(timeout=10.0)
                first.close()
                second.close()
            assert results and results[0]
    finally:
        gate.set()
        for blocker in blockers:
            blocker.result(timeout=10.0)


def test_server_side_deadline_expiry_on_a_stepping_clock(fault_net):
    """A server clock that jumps a full second per reading guarantees
    every budgeted request expires before execution — no sleeping, no
    slow-machine flake."""
    from repro.errors import DeadlineExpiredError

    manual = ManualClock()

    def stepping() -> float:
        now = manual()
        manual.advance(1.0)
        return now

    with served(fault_net, clock=stepping) as server:
        transport = _transport(fault_net, server.address, request_deadline=0.25)
        try:
            with pytest.raises(DeadlineExpiredError):
                transport.headers()
        finally:
            transport.close()
        assert server.counters.wait_for("deadlines_expired", 1)


# -- fault matrix -------------------------------------------------------------
_MATRIX_FAULTS = {
    "drop": (Fault("drop"), (OSError,), dict(request_deadline=0.3)),
    "corrupt": (Fault("corrupt"), (WireError,), {}),
    "disconnect": (Fault("disconnect"), (TransportError,), {}),
}


def _do_query(transport, fault_net, window_query, sub_query):
    transport.time_window_query(window_query)


def _do_subscribe(transport, fault_net, window_query, sub_query):
    transport.register(sub_query, since_height=0)


_MATRIX_OPS = {"query": _do_query, "subscribe": _do_subscribe}


@pytest.mark.parametrize("op", sorted(_MATRIX_OPS))
@pytest.mark.parametrize("kind", sorted(_MATRIX_FAULTS))
def test_fault_matrix(fault_net, window_query, sub_query, kind, op):
    """Every fault kind x operation lands on its exact client exception
    and matching server counter."""
    fault, expected, options = _MATRIX_FAULTS[kind]
    plan = FaultPlan(to_server={0: fault})
    with proxied(fault_net, plan) as (proxy, server):
        transport = _transport(fault_net, proxy.address, **options)
        try:
            with pytest.raises(expected):
                _MATRIX_OPS[op](transport, fault_net, window_query, sub_query)
        finally:
            transport.close()
        assert plan.frames_seen(TO_SERVER) == 1
        if kind == "corrupt":
            assert server.counters.wait_for("protocol_errors", 1)
        else:
            assert server.counters.protocol_errors == 0
        assert server.counters.wait_for("connections_closed", 1)


# -- seeded chaos -------------------------------------------------------------
def test_seeded_plans_are_reproducible():
    def schedule(plan):
        return [
            (direction, plan.next_fault(direction))
            for direction in (TO_SERVER, TO_CLIENT)
            for _ in range(64)
        ]

    make = lambda seed: FaultPlan.seeded(  # noqa: E731
        seed, drop=0.2, corrupt=0.2, disconnect=0.1, delay=0.1, frames=64
    )
    assert schedule(make(7)) == schedule(make(7))
    assert schedule(make(7)) != schedule(make(8))


def test_seeded_chaos_run_survives(fault_net):
    """A retrying client pointed through a seeded chaos schedule must
    always terminate with either an answer or a typed error — never a
    hang, never an unexpected exception type."""
    plan = FaultPlan.seeded(42, drop=0.15, corrupt=0.15, disconnect=0.1)
    answered = 0
    with proxied(fault_net, plan) as (proxy, _server):
        for _ in range(8):
            transport = _transport(
                fault_net,
                proxy.address,
                request_deadline=0.3,
                retries=2,
                backoff=0.0,
            )
            try:
                headers = transport.headers()
            except (ReproError, OSError):
                continue
            finally:
                transport.close()
            assert headers
            answered += 1
    assert answered >= 1
    assert plan.injected  # the schedule actually fired


def test_fault_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        Fault("maul")
    with pytest.raises(ValueError, match="sum to at most 1"):
        FaultPlan.seeded(1, drop=0.9, corrupt=0.9)
    with pytest.raises(ValueError, match="non-negative"):
        FaultPlan.seeded(1, drop=-0.1)
    with pytest.raises(ValueError):
        ManualClock().advance(-1.0)