"""Tests for key generation and the trusted key oracle."""

import random

import pytest

from repro.accumulators.keys import (
    KeyOracle,
    SecretKey,
    keygen_acc1,
    keygen_acc2,
)
from repro.crypto import get_backend
from repro.errors import CryptoError, KeyCapacityError

BACKEND = get_backend("simulated")


def test_oracle_power_zero_is_generator():
    oracle = KeyOracle(BACKEND, SecretKey(s=7))
    assert BACKEND.eq(oracle.power(0), BACKEND.generator())


def test_oracle_powers_follow_s():
    s = 12345
    oracle = KeyOracle(BACKEND, SecretKey(s=s))
    g = BACKEND.generator()
    for i in range(5):
        assert BACKEND.eq(oracle.power(i), BACKEND.exp(g, pow(s, i, BACKEND.order)))


def test_oracle_rejects_negative_index():
    oracle = KeyOracle(BACKEND, SecretKey(s=7))
    with pytest.raises(CryptoError):
        oracle.power(-1)


def test_oracle_withholds_forbidden_index():
    oracle = KeyOracle(BACKEND, SecretKey(s=7), forbidden=frozenset({3}))
    oracle.power(2)
    oracle.power(4)
    with pytest.raises(KeyCapacityError):
        oracle.power(3)


def test_materialize_returns_prefix():
    oracle = KeyOracle(BACKEND, SecretKey(s=9))
    powers = oracle.materialize(4)
    assert len(powers) == 5
    assert BACKEND.eq(powers[0], BACKEND.generator())


def test_materialize_refuses_forbidden_range():
    oracle = KeyOracle(BACKEND, SecretKey(s=9), forbidden=frozenset({2}))
    with pytest.raises(KeyCapacityError):
        oracle.materialize(4)


def test_acc1_capacity_enforced():
    _sk, pk = keygen_acc1(BACKEND, capacity=3, rng=random.Random(1))
    pk.power(3)
    with pytest.raises(KeyCapacityError):
        pk.power(4)


def test_acc2_forbidden_and_range():
    _sk, pk = keygen_acc2(BACKEND, domain=16, rng=random.Random(2))
    pk.power(15)
    pk.power(17)
    pk.power(2 * 16 - 2)
    with pytest.raises(KeyCapacityError):
        pk.power(16)  # g^{s^q}
    with pytest.raises(KeyCapacityError):
        pk.power(2 * 16 - 1)  # beyond 2q-2
    with pytest.raises(KeyCapacityError):
        pk.power(-1)


def test_keygen_secret_in_scalar_field():
    sk, _pk = keygen_acc1(BACKEND, capacity=4, rng=random.Random(3))
    assert 1 <= sk.s < BACKEND.order


def test_keygen_deterministic_with_seed():
    sk_a, _ = keygen_acc2(BACKEND, rng=random.Random(7))
    sk_b, _ = keygen_acc2(BACKEND, rng=random.Random(7))
    assert sk_a.s == sk_b.s
