"""Tests for Construction 2 (q-DHE accumulator with aggregation)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.accumulators import Acc2, ElementEncoder, keygen_acc2, make_accumulator
from repro.accumulators.base import AccumulatorValue, DisjointProof
from repro.crypto import get_backend
from repro.errors import AggregationError, CryptoError, NotDisjointError

BACKEND = get_backend("simulated")
_SK, ACC = make_accumulator("acc2", BACKEND, rng=random.Random(4))
ENC = ElementEncoder(2**32 - 1)

words = st.text(alphabet="abcdefghij", min_size=1, max_size=4)


def enc(*items: str) -> Counter:
    return ENC.encode_multiset(Counter(items))


def test_accumulate_two_parts():
    value = ACC.accumulate(enc("a", "b"))
    assert len(value.parts) == 2
    assert value.nbytes(BACKEND) == 2 * BACKEND.element_nbytes


def test_accumulate_multiplicity_sensitive():
    assert ACC.accumulate(enc("a")).parts != ACC.accumulate(enc("a", "a")).parts


def test_domain_bounds_enforced():
    with pytest.raises(CryptoError):
        ACC.accumulate(Counter({0: 1}))
    with pytest.raises(CryptoError):
        ACC.accumulate(Counter({ACC.public_key.domain: 1}))


def test_disjoint_roundtrip():
    x1, x2 = enc("Van", "Benz"), enc("Sedan")
    proof = ACC.prove_disjoint(x1, x2)
    assert ACC.verify_disjoint(ACC.accumulate(x1), ACC.accumulate(x2), proof)


def test_prove_rejects_intersection():
    with pytest.raises(NotDisjointError):
        ACC.prove_disjoint(enc("a", "b"), enc("b"))


def test_verify_rejects_wrong_value():
    x1, x2, x3 = enc("a"), enc("b"), enc("c")
    proof = ACC.prove_disjoint(x1, x2)
    assert not ACC.verify_disjoint(ACC.accumulate(x3), ACC.accumulate(x2), proof)


def test_verify_rejects_malformed_shapes():
    x1, x2 = enc("a"), enc("b")
    proof = ACC.prove_disjoint(x1, x2)
    bad_value = AccumulatorValue(parts=(BACKEND.generator(),))
    assert not ACC.verify_disjoint(bad_value, ACC.accumulate(x2), proof)
    bad_proof = DisjointProof(parts=(BACKEND.generator(), BACKEND.generator()))
    assert not ACC.verify_disjoint(ACC.accumulate(x1), ACC.accumulate(x2), bad_proof)


def test_verification_is_order_sensitive_but_both_directions_work():
    # the equation pairs dA(X1) with dB(X2); proving (X2, X1) also works
    x1, x2 = enc("a"), enc("b")
    proof12 = ACC.prove_disjoint(x1, x2)
    proof21 = ACC.prove_disjoint(x2, x1)
    assert ACC.verify_disjoint(ACC.accumulate(x1), ACC.accumulate(x2), proof12)
    assert ACC.verify_disjoint(ACC.accumulate(x2), ACC.accumulate(x1), proof21)


# -- aggregation ---------------------------------------------------------------

def test_sum_values_is_multiset_sum():
    a, b = enc("a"), enc("a", "b")
    summed = ACC.sum_values([ACC.accumulate(a), ACC.accumulate(b)])
    direct = ACC.accumulate(enc("a", "a", "b"))
    assert summed.parts == direct.parts


def test_sum_values_empty_raises():
    with pytest.raises(AggregationError):
        ACC.sum_values([])


def test_sum_values_rejects_malformed():
    with pytest.raises(AggregationError):
        ACC.sum_values([AccumulatorValue(parts=(BACKEND.generator(),))])


def test_proof_sum_aggregates_same_clause():
    clause = enc("x")
    a, b = enc("a", "b"), enc("c")
    pa = ACC.prove_disjoint(a, clause)
    pb = ACC.prove_disjoint(b, clause)
    aggregated = ACC.sum_proofs([pa, pb])
    summed = ACC.sum_values([ACC.accumulate(a), ACC.accumulate(b)])
    assert ACC.verify_disjoint(summed, ACC.accumulate(clause), aggregated)


def test_proof_sum_equals_direct_proof_on_sum():
    clause = enc("x")
    a, b = enc("a"), enc("b")
    aggregated = ACC.sum_proofs(
        [ACC.prove_disjoint(a, clause), ACC.prove_disjoint(b, clause)]
    )
    direct = ACC.prove_disjoint(enc("a", "b"), clause)
    assert aggregated.parts == direct.parts


def test_proof_sum_with_mixed_clauses_fails_verification():
    a, b = enc("a"), enc("b")
    pa = ACC.prove_disjoint(a, enc("x"))
    pb = ACC.prove_disjoint(b, enc("y"))
    bad = ACC.sum_proofs([pa, pb])
    summed = ACC.sum_values([ACC.accumulate(a), ACC.accumulate(b)])
    assert not ACC.verify_disjoint(summed, ACC.accumulate(enc("x")), bad)


def test_proof_sum_empty_raises():
    with pytest.raises(AggregationError):
        ACC.sum_proofs([])


def test_supports_aggregation_flag():
    assert ACC.supports_aggregation


def test_small_domain_cross_terms():
    # exercise the exponent histogram logic near domain edges
    _sk, pk = keygen_acc2(BACKEND, domain=8, rng=random.Random(5))
    acc = Acc2(pk)
    x1, x2 = Counter({1: 1, 7: 1}), Counter({2: 2})
    proof = acc.prove_disjoint(x1, x2)
    assert acc.verify_disjoint(acc.accumulate(x1), acc.accumulate(x2), proof)


@settings(max_examples=25, deadline=None)
@given(
    xs=st.sets(words, min_size=1, max_size=5), ys=st.sets(words, min_size=1, max_size=5)
)
def test_roundtrip_random_sets(xs, ys):
    ys = ys - xs
    if not ys:
        return
    proof = ACC.prove_disjoint(enc(*xs), enc(*ys))
    assert ACC.verify_disjoint(
        ACC.accumulate(enc(*xs)), ACC.accumulate(enc(*ys)), proof
    )


@settings(max_examples=20, deadline=None)
@given(
    groups=st.lists(st.sets(words, min_size=1, max_size=3), min_size=1, max_size=4),
)
def test_sum_values_associative(groups):
    values = [ACC.accumulate(enc(*group)) for group in groups]
    total = Counter()
    for group in groups:
        total.update(Counter(group))
    assert (
        ACC.sum_values(values).parts
        == ACC.accumulate(ENC.encode_multiset(total)).parts
    )
