"""Property tests for the crypto fast path.

Jacobian add/double/multiply and the Pippenger / fixed-base MSMs must
agree with the affine chord-and-tangent and naive-loop reference
implementations on random inputs — including identity, negation, and
mixed-sign edge cases — for both real backends.  The affine primitives
(``curve.add``, ``bn254.add``/``double``) remain in the codebase as the
references, so these tests pin the fast path to them bit for bit.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto import bn254 as bn
from repro.crypto import curve, msm
from repro.crypto.backend import PairingBackend, get_backend
from repro.errors import CryptoError

G = curve.GENERATOR
ORDER = curve.SUBGROUP_ORDER


# -- affine reference implementations ----------------------------------------
def affine_mul(point, scalar):
    """Double-and-add over the affine ss512 primitives."""
    if scalar < 0:
        return curve.neg(affine_mul(point, -scalar))
    result = None
    addend = point
    while scalar:
        if scalar & 1:
            result = curve.add(result, addend)
        addend = curve.add(addend, addend)
        scalar >>= 1
    return result


def bn_affine_mul(point, scalar):
    """Double-and-add over the affine BN254 primitives (G1 or G2)."""
    if scalar < 0:
        return bn_affine_mul(bn.neg(point), -scalar)
    result = None
    addend = point
    while scalar:
        if scalar & 1:
            result = bn.add(result, addend)
        addend = bn.double(addend)
        scalar >>= 1
    return result


# -- ss512 Jacobian vs affine --------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=2**48),
    b=st.integers(min_value=0, max_value=2**48),
)
def test_ss512_jacobian_add_matches_affine(a, b):
    p = affine_mul(G, a)
    q = affine_mul(G, b)
    expected = curve.add(p, q)
    jac = curve.jac_add(curve.to_jacobian(p), curve.to_jacobian(q))
    assert curve.from_jacobian(jac) == expected
    mixed = curve.jac_add_affine(curve.to_jacobian(p), q)
    assert curve.from_jacobian(mixed) == expected


@settings(max_examples=25, deadline=None)
@given(a=st.integers(min_value=0, max_value=2**48))
def test_ss512_jacobian_double_matches_affine(a):
    p = affine_mul(G, a)
    expected = curve.add(p, p)
    assert curve.from_jacobian(curve.jac_double(curve.to_jacobian(p))) == expected


@settings(max_examples=25, deadline=None)
@given(k=st.integers(min_value=-(2**48), max_value=2**48))
def test_ss512_multiply_matches_affine(k):
    assert curve.multiply(G, k) == affine_mul(G, k)


def test_ss512_multiply_edge_cases():
    assert curve.multiply(None, 5) is None
    assert curve.multiply(G, 0) is None
    assert curve.multiply(G, 1) == G
    assert curve.multiply(G, -1) == curve.neg(G)
    assert curve.multiply(G, ORDER) is None
    assert curve.multiply(G, ORDER + 7) == affine_mul(G, 7)
    # negated point cancels: P + (-P) through every addition path
    p = curve.multiply(G, 1234)
    n = curve.neg(p)
    assert curve.add(p, n) is None
    assert curve.from_jacobian(
        curve.jac_add(curve.to_jacobian(p), curve.to_jacobian(n))
    ) is None
    assert curve.from_jacobian(curve.jac_add_affine(curve.to_jacobian(p), n)) is None


def test_ss512_jacobian_infinity_identities():
    inf = curve.JAC_INFINITY
    p = curve.to_jacobian(curve.multiply(G, 9))
    assert curve.jac_add(inf, p) == p
    assert curve.jac_add(p, inf) == p
    assert curve.from_jacobian(curve.jac_double(inf)) is None
    assert curve.from_jacobian(curve.jac_neg(inf)) is None
    assert curve.to_jacobian(None) == inf


def test_ss512_batch_from_jacobian_matches_single():
    rng = random.Random(4)
    points = [
        curve.to_jacobian(affine_mul(G, rng.randrange(0, 2**32)))
        for _ in range(9)
    ]
    points.insert(3, curve.JAC_INFINITY)
    # non-trivial Z coordinates: run through a few jacobian ops first
    points = [curve.jac_add(curve.jac_double(p), p) for p in points]
    batch = curve.batch_from_jacobian(points)
    assert batch == [curve.from_jacobian(p) for p in points]


def test_batch_from_jacobian_all_infinity():
    points = [curve.JAC_INFINITY, curve.JAC_INFINITY]
    assert curve.batch_from_jacobian(points) == [None, None]
    assert bn.batch_from_jacobian([None, None]) == [None, None]


# -- wNAF ------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=ORDER), w=st.integers(min_value=2, max_value=8)
)
def test_wnaf_digits_reconstruct_scalar(k, w):
    digits = msm._wnaf_digits(k, w)
    assert sum(d << i for i, d in enumerate(digits)) == k
    half = 1 << (w - 1)
    for d in digits:
        assert d == 0 or (d % 2 == 1 and -half < d < half)


# -- MSM vs naive loop --------------------------------------------------------
@pytest.fixture(
    params=[
        "simulated",
        pytest.param("ss512", marks=pytest.mark.slow),
        pytest.param("bn254", marks=pytest.mark.slow),
    ]
)
def backend(request):
    return get_backend(request.param)


scalar_lists = st.lists(
    st.integers(min_value=0, max_value=ORDER + 10), min_size=0, max_size=12
)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(scalars=scalar_lists, data=st.data())
def test_multi_exp_matches_naive_loop(backend, scalars, data):
    rng = random.Random(data.draw(st.integers(min_value=0, max_value=2**16)))
    g = backend.generator()
    bases = [backend.exp(g, rng.randrange(0, 2**24)) for _ in scalars]
    expected = PairingBackend.multi_exp(backend, bases, scalars)
    assert backend.eq(backend.multi_exp(bases, scalars), expected)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(scalars=scalar_lists)
def test_fixed_base_tables_match_naive_loop(backend, scalars):
    rng = random.Random(len(scalars))
    g = backend.generator()
    bases = [backend.exp(g, rng.randrange(0, 2**24)) for _ in scalars]
    tables = [backend.fixed_base_table(b) for b in bases]
    expected = PairingBackend.multi_exp(backend, bases, scalars)
    assert backend.eq(backend.multi_exp_tables(tables, scalars), expected)


def test_multi_exp_with_identity_base(backend):
    g = backend.generator()
    bases = [backend.identity(), g, backend.identity()]
    scalars = [5, 3, 0]
    expected = backend.exp(g, 3)
    assert backend.eq(backend.multi_exp(bases, scalars), expected)
    tables = [backend.fixed_base_table(b) for b in bases]
    assert backend.eq(backend.multi_exp_tables(tables, scalars), expected)


def test_multi_exp_empty_and_mismatch(backend):
    assert backend.eq(backend.multi_exp([], []), backend.identity())
    with pytest.raises(ValueError):
        backend.multi_exp([backend.generator()], [1, 2])
    with pytest.raises(ValueError):
        backend.multi_exp_tables(
            [backend.fixed_base_table(backend.generator())], [1, 2]
        )


def test_group_inverse(backend):
    g = backend.exp(backend.generator(), 12345)
    assert backend.eq(backend.op(g, backend.inv(g)), backend.identity())


# -- multi-pairing ---------------------------------------------------------------
def test_multi_pairing_matches_pair_product(backend):
    rng = random.Random(9)
    g = backend.generator()
    pairs = [
        (
            backend.exp(g, rng.randrange(1, 2**16)),
            backend.exp(g, rng.randrange(1, 2**16)),
        )
        for _ in range(3)
    ]
    expected = backend.gt_identity()
    for a, b in pairs:
        expected = backend.gt_op(expected, backend.pair(a, b))
    assert backend.gt_eq(backend.multi_pairing(pairs), expected)


def test_multi_pairing_empty_and_identity_pairs(backend):
    g = backend.generator()
    assert backend.gt_eq(backend.multi_pairing([]), backend.gt_identity())
    assert backend.gt_eq(
        backend.multi_pairing([(backend.identity(), g), (g, backend.identity())]),
        backend.gt_identity(),
    )


@pytest.mark.slow
def test_bn254_multi_pairing_validates_even_next_to_identity():
    # an off-curve point must raise like pair() does, even when its
    # partner in the pair is the identity (so the pairing is skipped)
    backend = get_backend("bn254")
    bad_g2 = (bn.FQ2([1, 2]), bn.FQ2([3, 4]))
    assert not bn.is_on_curve(bad_g2, bn.B2)
    bad = (bn.G1, bad_g2)
    with pytest.raises(CryptoError):
        backend.multi_pairing([(backend.identity(), bad)])
    bad_g1 = (bn.FQ(1), bn.FQ(1))
    with pytest.raises(CryptoError):
        backend.multi_pairing([((bad_g1, None), backend.generator())])


# -- BN254 Jacobian vs affine (both source groups) ----------------------------
@pytest.mark.slow
@pytest.mark.parametrize("point", [bn.G1, bn.G2], ids=["G1", "G2"])
def test_bn254_jacobian_matches_affine(point):
    rng = random.Random(6)
    for _ in range(5):
        a, b = rng.randrange(0, 2**32), rng.randrange(0, 2**32)
        p = bn_affine_mul(point, a)
        q = bn_affine_mul(point, b)
        expected = bn.add(p, q)
        assert (
            bn.from_jacobian(bn.jac_add(bn.to_jacobian(p), bn.to_jacobian(q)))
            == expected
        )
        assert bn.from_jacobian(bn.jac_add_affine(bn.to_jacobian(p), q)) == expected
        assert bn.from_jacobian(bn.jac_double(bn.to_jacobian(p))) == bn.add(p, p)


@pytest.mark.slow
@pytest.mark.parametrize("point", [bn.G1, bn.G2], ids=["G1", "G2"])
def test_bn254_multiply_matches_affine(point):
    rng = random.Random(8)
    for k in [0, 1, 2, 3, -5, bn.CURVE_ORDER, bn.CURVE_ORDER - 1,
              rng.randrange(2**60)]:
        assert bn.multiply(point, k) == bn_affine_mul(point, k)
    # cancellation through the mixed-add path
    p = bn_affine_mul(point, 77)
    assert bn.from_jacobian(bn.jac_add_affine(bn.to_jacobian(p), bn.neg(p))) is None


@pytest.mark.slow
@pytest.mark.parametrize("point", [bn.G1, bn.G2], ids=["G1", "G2"])
def test_bn254_batch_from_jacobian_matches_single(point):
    # one batch per source group: the Montgomery product lives in a
    # single coordinate field (FQ for G1, FQ2 for G2)
    rng = random.Random(2)
    points = [bn.to_jacobian(bn_affine_mul(point, rng.randrange(1, 2**24)))
              for _ in range(5)]
    points.insert(2, None)
    points = [bn.jac_double(p) for p in points]
    assert bn.batch_from_jacobian(points) == [bn.from_jacobian(p) for p in points]


# -- regression guards on the satellite fixes ---------------------------------
def test_fp2_pow_negative_is_iterative_and_correct():
    u = (12345, 678910)
    big = ORDER * 3 + 1
    forward = curve.fp2_pow(u, big)
    backward = curve.fp2_pow(u, -big)
    assert curve.fp2_mul(forward, backward) == curve.FP2_ONE


def test_validate_subgroup_caches_validated_points():
    p = curve.multiply(G, 424242)
    curve._SUBGROUP_CACHE.discard(p)
    curve.validate_subgroup(p)
    assert p in curve._SUBGROUP_CACHE
    curve.validate_subgroup(p)  # hits the cache
    with pytest.raises(CryptoError):
        curve.validate_subgroup((1, 1))
    # a cache hit never bypasses the cheap on-curve check
    assert curve.is_on_curve(p)
