"""Replay the committed .vrec corpus against live servers.

The corpus under ``tests/corpus/`` is the regression contract for the
wire protocol: every honest recording must replay byte-for-byte on both
server implementations, the forged recording must be caught, and
re-recording from scratch must reproduce the committed bytes exactly.
"""

from pathlib import Path

import pytest

from repro.testing import CORPUS_SCENARIOS, record_scenario
from repro.testing.__main__ import main as _testing_cli
from repro.wire import encode_recording

CORPUS_DIR = Path(__file__).parent / "corpus"

HONEST = tuple(s for s in CORPUS_SCENARIOS if s != "forged")


def test_corpus_is_complete():
    for scenario in CORPUS_SCENARIOS:
        assert (CORPUS_DIR / f"{scenario}.vrec").exists()


@pytest.mark.parametrize("scenario", HONEST)
@pytest.mark.parametrize("server", ["async", "threaded"])
def test_honest_corpus_replays_byte_identical(corpus_replayer, scenario, server):
    report = corpus_replayer.replay(CORPUS_DIR / f"{scenario}.vrec", server=server)
    assert report.ok, report.mismatches[:1]
    assert report.requests == report.responses > 0


@pytest.mark.parametrize("server", ["async", "threaded"])
def test_forged_corpus_is_caught(corpus_replayer, server):
    report = corpus_replayer.replay(CORPUS_DIR / "forged.vrec", server=server)
    assert len(report.mismatches) == 1
    [mismatch] = report.mismatches
    assert mismatch.expected != mismatch.actual


def test_replay_digest_is_deterministic(corpus_replayer):
    """Two replays, and the two server kinds, produce the same digest."""
    path = CORPUS_DIR / "query.vrec"
    first = corpus_replayer.replay(path, server="async")
    second = corpus_replayer.replay(path, server="async")
    threaded = corpus_replayer.replay(path, server="threaded")
    assert first.digest == second.digest == threaded.digest


@pytest.mark.slow
@pytest.mark.parametrize("scenario", CORPUS_SCENARIOS)
def test_recording_regenerates_byte_identical(scenario):
    """Re-recording a scenario from scratch matches the committed file."""
    committed = (CORPUS_DIR / f"{scenario}.vrec").read_bytes()
    assert encode_recording(record_scenario(scenario)) == committed


def test_cli_replay_passes_on_the_corpus(capsys):
    paths = [str(CORPUS_DIR / f"{s}.vrec") for s in CORPUS_SCENARIOS]
    assert _testing_cli(["replay", *paths, "--serve", "async"]) == 0
    out = capsys.readouterr().out
    assert out.count("ok ") == len(CORPUS_SCENARIOS)


def test_cli_flags_unexpected_mismatches(tmp_path, capsys):
    """A forged recording whose metadata does not admit to the forgery
    must fail the CLI."""
    recording = record_scenario("forged")
    meta = dict(recording.meta)
    meta["expect_mismatches"] = "0"
    dishonest = type(recording)(
        label=recording.label, meta=meta, frames=recording.frames
    )
    path = tmp_path / "dishonest.vrec"
    path.write_bytes(encode_recording(dishonest))
    assert _testing_cli(["replay", str(path)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_inspect_reports_frames(capsys):
    path = str(CORPUS_DIR / "query.vrec")
    assert _testing_cli(["inspect", path]) == 0
    out = capsys.readouterr().out
    assert "corpus-query" in out
    assert "meta scenario = query" in out
