"""Tests for attribute encoding and multiset helpers."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.accumulators.encoding import (
    ElementEncoder,
    multiset_sum,
    multiset_union,
    multisets_disjoint,
)
from repro.errors import CryptoError

words = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


def test_domain_must_be_meaningful():
    with pytest.raises(CryptoError):
        ElementEncoder(1)


def test_encode_deterministic_and_in_range():
    enc = ElementEncoder(1000)
    first = enc.encode("Benz")
    assert enc.encode("Benz") == first
    assert 1 <= first <= 1000


def test_encode_distinct_strings_usually_distinct():
    enc = ElementEncoder(2**32 - 1)
    codes = {enc.encode(f"item{i}") for i in range(500)}
    assert len(codes) == 500


def test_encode_multiset_preserves_multiplicity():
    enc = ElementEncoder(2**32 - 1)
    encoded = enc.encode_multiset(Counter({"a": 2, "b": 1}))
    assert encoded[enc.encode("a")] == 2
    assert encoded[enc.encode("b")] == 1
    assert encoded.total() == 3


def test_encode_multiset_from_iterable():
    enc = ElementEncoder(2**32 - 1)
    encoded = enc.encode_multiset(["a", "a", "b"])
    assert encoded[enc.encode("a")] == 2


def test_multiset_union_takes_max_counts():
    a, b = Counter({"x": 2, "y": 1}), Counter({"x": 1, "z": 3})
    assert multiset_union(a, b) == Counter({"x": 2, "y": 1, "z": 3})


def test_multiset_sum_adds_counts():
    a, b = Counter({"x": 2}), Counter({"x": 1, "z": 3})
    assert multiset_sum(a, b) == Counter({"x": 3, "z": 3})


def test_disjointness_helper():
    assert multisets_disjoint(Counter({"a": 1}), Counter({"b": 1}))
    assert not multisets_disjoint(Counter({"a": 1}), Counter({"a": 2, "b": 1}))
    assert multisets_disjoint(Counter(), Counter({"b": 1}))


@given(xs=st.lists(words, max_size=10), ys=st.lists(words, max_size=10))
def test_disjoint_matches_set_semantics(xs, ys):
    a, b = Counter(xs), Counter(ys)
    assert multisets_disjoint(a, b) == (not (set(a) & set(b)))


@given(xs=st.lists(words, max_size=10), ys=st.lists(words, max_size=10))
def test_union_and_sum_supports(xs, ys):
    a, b = Counter(xs), Counter(ys)
    assert set(multiset_union(a, b)) == set(a) | set(b)
    assert set(multiset_sum(a, b)) == set(a) | set(b)
