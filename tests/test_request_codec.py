"""Round-trip and tamper-rejection tests for the request codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.core.prover import QueryStats
from repro.core.query import (
    CNFCondition,
    RangeCondition,
    SubscriptionQuery,
    TimeWindowQuery,
)
from repro.wire import (
    DeregisterRequest,
    FlushRequest,
    HeadersRequest,
    PollRequest,
    QueryRequest,
    RegisterRequest,
    WireError,
    decode_query_response,
    decode_request,
    decode_subscription_query,
    decode_time_window_query,
    encode_query_response,
    encode_request,
    encode_subscription_query,
    encode_time_window_query,
)

# -- strategies ---------------------------------------------------------------
_attrs = st.text(alphabet="abcXYZ:0127", min_size=1, max_size=6)

_cnf = st.lists(
    st.frozensets(_attrs, min_size=1, max_size=3), max_size=3
).map(lambda clauses: CNFCondition(tuple(clauses)))


@st.composite
def _ranges(draw):
    dims = draw(st.integers(min_value=1, max_value=3))
    low = tuple(draw(st.integers(min_value=0, max_value=200)) for _ in range(dims))
    high = tuple(lo + draw(st.integers(min_value=0, max_value=200)) for lo in low)
    return RangeCondition(low=low, high=high)


_numeric = st.none() | _ranges()


@st.composite
def _time_window_queries(draw):
    start = draw(st.integers(min_value=0, max_value=2**40))
    return TimeWindowQuery(
        start=start,
        end=start + draw(st.integers(min_value=0, max_value=2**40)),
        numeric=draw(_numeric),
        boolean=draw(_cnf),
    )


_subscription_queries = st.builds(SubscriptionQuery, numeric=_numeric, boolean=_cnf)


# -- query round-trips --------------------------------------------------------
@given(_time_window_queries())
def test_time_window_query_roundtrip(query):
    assert decode_time_window_query(encode_time_window_query(query)) == query


@given(_subscription_queries)
def test_subscription_query_roundtrip(query):
    assert decode_subscription_query(encode_subscription_query(query)) == query


@given(_time_window_queries())
def test_truncated_query_rejected(query):
    data = encode_time_window_query(query)
    for cut in range(len(data)):
        with pytest.raises(WireError):
            decode_time_window_query(data[:cut])


@given(_time_window_queries())
def test_trailing_bytes_rejected(query):
    with pytest.raises(WireError):
        decode_time_window_query(encode_time_window_query(query) + b"\x00")


def test_query_form_confusion_rejected():
    tw = TimeWindowQuery(start=0, end=9)
    sub = SubscriptionQuery()
    with pytest.raises(WireError):
        decode_subscription_query(encode_time_window_query(tw))
    with pytest.raises(WireError):
        decode_time_window_query(encode_subscription_query(sub))


def test_forged_query_bytes_rejected_at_parse_boundary():
    # inverted window: start=5, end=2 — structurally valid varints, but the
    # query constructor invariant fails and must surface as WireError
    data = bytearray(encode_time_window_query(TimeWindowQuery(start=5, end=7)))
    data[2] = 2  # end varint
    with pytest.raises(WireError):
        decode_time_window_query(bytes(data))
    with pytest.raises(WireError):
        decode_time_window_query(b"\x09" + bytes(data[1:]))  # unknown form tag


def test_forged_range_rejected():
    # inverted bounds inside the range predicate
    query = TimeWindowQuery(start=0, end=1, numeric=RangeCondition(low=(4,), high=(4,)))
    data = bytearray(encode_time_window_query(query))
    assert data[-2] == 4  # the high bound's varint
    data[-2] = 1
    with pytest.raises(WireError):
        decode_time_window_query(bytes(data))


# -- request frames -----------------------------------------------------------
@given(_time_window_queries(), st.none() | st.booleans())
def test_query_request_roundtrip(query, batch):
    request = QueryRequest(query=query, batch=batch)
    assert decode_request(encode_request(request)) == request


@given(_subscription_queries, st.none() | st.integers(min_value=0, max_value=99))
def test_register_request_roundtrip(query, since):
    request = RegisterRequest(query=query, since_height=since)
    assert decode_request(encode_request(request)) == request


@pytest.mark.parametrize(
    "request_",
    [
        DeregisterRequest(query_id=3),
        PollRequest(query_id=0),
        FlushRequest(query_id=7),
        HeadersRequest(from_height=12),
    ],
)
def test_control_request_roundtrip(request_):
    assert decode_request(encode_request(request_)) == request_


def test_unknown_request_tag_rejected():
    with pytest.raises(WireError):
        decode_request(b"\x63\x00")
    with pytest.raises(WireError):
        decode_request(b"")


@given(_time_window_queries())
def test_truncated_request_rejected(query):
    data = encode_request(QueryRequest(query=query))
    for cut in range(len(data)):
        with pytest.raises(WireError):
            decode_request(data[:cut])


# -- response bodies ----------------------------------------------------------
def test_query_response_roundtrip(sim_acc2):
    from repro.core.vo import TimeWindowVO

    backend = sim_acc2.backend
    stats = QueryStats(
        sp_seconds=0.125, blocks_scanned=4, blocks_skipped=2, proofs_computed=3
    )
    data = encode_query_response(backend, [], TimeWindowVO(), stats)
    results, vo, decoded = decode_query_response(backend, data)
    assert results == [] and vo.entries == [] and decoded == stats
    for cut in range(len(data)):
        with pytest.raises(WireError):
            decode_query_response(backend, data[:cut])


# -- stats requests & envelopes ----------------------------------------------
def test_stats_request_roundtrip():
    from repro.wire import StatsRequest

    assert decode_request(encode_request(StatsRequest())) == StatsRequest()


@given(_time_window_queries(), st.none() | st.integers(min_value=1, max_value=10**7))
def test_envelope_request_roundtrip(query, deadline_ms):
    from repro.wire import EnvelopeRequest

    envelope = EnvelopeRequest(
        request=QueryRequest(query=query), deadline_ms=deadline_ms
    )
    assert decode_request(encode_request(envelope)) == envelope


@given(_time_window_queries(), st.integers(min_value=1, max_value=10**7))
def test_peek_deadline_unwraps_envelopes(query, deadline_ms):
    from repro.wire import EnvelopeRequest, peek_deadline

    inner = QueryRequest(query=query)
    payload = encode_request(EnvelopeRequest(request=inner, deadline_ms=deadline_ms))
    peeked, bare = peek_deadline(payload)
    assert peeked == deadline_ms
    assert bare == encode_request(inner)
    assert decode_request(bare) == inner


def test_peek_deadline_passes_bare_frames_through():
    from repro.wire import peek_deadline

    payload = encode_request(PollRequest(query_id=4))
    assert peek_deadline(payload) == (None, payload)
    assert peek_deadline(b"") == (None, b"")


def test_nested_envelope_rejected():
    from repro.wire import EnvelopeRequest, StatsRequest

    envelope = EnvelopeRequest(request=StatsRequest(), deadline_ms=5)
    with pytest.raises(WireError):
        encode_request(EnvelopeRequest(request=envelope, deadline_ms=5))
    # a hand-crafted nested envelope is rejected on decode too
    data = encode_request(envelope)
    forged = bytes([data[0], 0]) + data  # envelope tag + "no deadline" + envelope
    with pytest.raises(WireError):
        decode_request(forged)


def test_server_stats_roundtrip():
    from repro.wire import ServerStats, decode_stats_response, encode_stats_response

    stats = ServerStats(
        endpoint={"queries": 4, "polls": 0},
        caches={"fragments": {"hits": 9, "hit_rate": 0.75}, "proofs": {"hits": 1}},
        engine={"deliveries": 2},
        pool={"workers": 2, "mode": "fork"},
        server={"requests": 11, "evictions": 1},
        storage={"nodes_online": 6, "repaired_stripes": 3},
    )
    assert decode_stats_response(encode_stats_response(stats)) == stats


def test_server_stats_optional_sections_roundtrip():
    from repro.wire import ServerStats, decode_stats_response, encode_stats_response

    stats = ServerStats(endpoint={}, caches={}, engine={}, pool=None, server=None)
    assert decode_stats_response(encode_stats_response(stats)) == stats


def test_server_stats_truncation_rejected():
    from repro.wire import ServerStats, decode_stats_response, encode_stats_response

    data = encode_stats_response(
        ServerStats(
            endpoint={"queries": 1},
            caches={"fragments": {"hits": 2}},
            engine={"deliveries": 0},
            pool=None,
            server={"requests": 3},
        )
    )
    for cut in range(len(data)):
        with pytest.raises(WireError):
            decode_stats_response(data[:cut])
