"""Tests for the synthetic dataset generators and workloads."""

import random

import pytest

from repro.datasets import (
    DATASET_DEFAULTS,
    ethereum_like,
    foursquare_like,
    make_subscription_queries,
    make_time_window_queries,
    random_range,
    weather_like,
)
from repro.errors import QueryError


@pytest.mark.parametrize(
    "generator,dims,kw_count",
    [(foursquare_like, 2, 2), (weather_like, 7, 2), (ethereum_like, 1, 2)],
)
def test_generator_shapes(generator, dims, kw_count):
    ds = generator(n_blocks=8)
    assert len(ds.blocks) == 8
    assert ds.dims == dims
    for _ts, objects in ds.blocks:
        for obj in objects:
            assert len(obj.vector) == dims
            assert len(obj.keywords) == kw_count
            assert all(0 <= v < (1 << ds.bits) for v in obj.vector)


def test_generators_deterministic():
    a = foursquare_like(5, seed=42)
    b = foursquare_like(5, seed=42)
    assert [o.serialize() for _t, objs in a.blocks for o in objs] == [
        o.serialize() for _t, objs in b.blocks for o in objs
    ]
    c = foursquare_like(5, seed=43)
    assert a.blocks[0][1][0].serialize() != c.blocks[0][1][0].serialize()


def test_object_ids_unique():
    ds = ethereum_like(10)
    ids = [o.object_id for o in ds.all_objects()]
    assert len(ids) == len(set(ids))


def test_timestamps_follow_block_interval():
    ds = weather_like(4)
    times = [ts for ts, _objs in ds.blocks]
    assert times == [i * ds.block_interval for i in range(4)]


def test_eth_vocabulary_sparse():
    ds = ethereum_like(20)
    used = {kw for o in ds.all_objects() for kw in o.keywords}
    # addresses rarely repeat: the used set is a large fraction of draws
    assert len(used) > 0.5 * 2 * ds.n_objects * 0.5


def test_dataset_counts():
    ds = foursquare_like(6, objects_per_block=5)
    assert ds.n_objects == 30
    assert len(ds.all_objects()) == 30


def test_random_range_selectivity():
    rng = random.Random(1)
    space = 1 << 8
    for sel in (0.1, 0.5):
        widths = []
        for _ in range(50):
            cond = random_range(rng, dims=2, bits=8, selectivity=sel, range_dims=2)
            w0 = cond.high[0] - cond.low[0] + 1
            w1 = cond.high[1] - cond.low[1] + 1
            widths.append(w0 * w1 / space**2)
        mean = sum(widths) / len(widths)
        assert sel * 0.5 <= mean <= sel * 1.6


def test_random_range_unconstrained_dims():
    rng = random.Random(2)
    cond = random_range(rng, dims=7, bits=8, selectivity=0.1, range_dims=2)
    for dim in range(2, 7):
        assert cond.low[dim] == 0 and cond.high[dim] == 255


def test_random_range_rejects_bad_selectivity():
    with pytest.raises(QueryError):
        random_range(random.Random(3), 1, 8, 0.0, 1)


def test_time_window_workload():
    ds = foursquare_like(30)
    queries = make_time_window_queries(ds, n_queries=5, window_blocks=10, seed=1)
    assert len(queries) == 5
    last_ts = ds.blocks[-1][0]
    for q in queries:
        assert q.end == last_ts
        assert q.start == last_ts - 9 * ds.block_interval
        assert len(q.boolean.clauses) == 1
        assert len(q.boolean.clauses[0]) == DATASET_DEFAULTS["4SQ"]["clause_size"]


def test_subscription_workload():
    ds = ethereum_like(10)
    queries = make_subscription_queries(ds, n_queries=4, seed=2)
    assert len(queries) == 4
    for q in queries:
        assert len(q.boolean.clauses[0]) == DATASET_DEFAULTS["ETH"]["clause_size"]


def test_workload_deterministic():
    ds = foursquare_like(20)
    a = make_time_window_queries(ds, 3, 5, seed=9)
    b = make_time_window_queries(ds, 3, 5, seed=9)
    assert a == b
