"""End-to-end subscription tests: realtime, lazy, IP-tree on/off."""

import random

import pytest

from repro.accumulators import make_accumulator
from repro.chain import Blockchain, DataObject, Miner, ProtocolParams
from repro.chain.light import LightNode
from repro.core.query import CNFCondition, RangeCondition, SubscriptionQuery
from repro.crypto import get_backend
from repro.errors import QueryError, SubscriptionError, VerificationError
from repro.subscribe import SubscriptionClient, SubscriptionEngine

PARAMS = ProtocolParams(
    mode="both", bits=8, skip_size=3, skip_base=4, difficulty_bits=0
)


def make_queries():
    return [
        SubscriptionQuery(
            numeric=RangeCondition(low=(0,), high=(255,)),
            boolean=CNFCondition.of([["kw1", "kw2"]]),
        ),
        SubscriptionQuery(
            numeric=RangeCondition(low=(0,), high=(60,)),
            boolean=CNFCondition.of([["kw5"]]),
        ),
        SubscriptionQuery(
            numeric=RangeCondition(low=(100,), high=(200,)),
            boolean=CNFCondition.of([["kw1", "kw2"]]),
        ),
    ]


def run_subscription(acc_name, lazy, use_iptree, n_blocks=50, seed=41):
    backend = get_backend("simulated")
    _sk, acc = make_accumulator(acc_name, backend, capacity=4096, rng=random.Random(1))
    from repro.accumulators import ElementEncoder

    encoder = (
        ElementEncoder(backend.order - 1)
        if acc_name == "acc1"
        else ElementEncoder(2**32 - 1)
    )
    chain = Blockchain()
    miner = Miner(chain, acc, encoder, PARAMS)
    engine = SubscriptionEngine(acc, encoder, PARAMS, use_iptree=use_iptree, lazy=lazy)
    light = LightNode()
    client = SubscriptionClient(light, acc, encoder, PARAMS)

    queries = make_queries()
    qids = []
    for q in queries:
        qid = engine.register(q)
        client.track(qid, q)
        qids.append(qid)

    rng = random.Random(seed)
    vocab = [f"kw{i}" for i in range(150)]
    oid = 0
    truth = {qid: [] for qid in qids}
    got = {qid: [] for qid in qids}
    for h in range(n_blocks):
        objs = [
            DataObject(
                object_id=oid + i,
                timestamp=h * 5,
                vector=(rng.randrange(256),),
                keywords=frozenset(rng.sample(vocab, 2)),
            )
            for i in range(3)
        ]
        oid += 3
        block = miner.mine_block(objs, timestamp=h * 5)
        light.sync(chain)
        for qid, q in zip(qids, queries):
            truth[qid].extend(
                o.object_id for o in objs if q.matches_object(o, PARAMS.bits)
            )
        for delivery in engine.process_block(block):
            verified, _stats = client.on_delivery(delivery)
            got[delivery.query_id].extend(o.object_id for o in verified)
    if lazy:
        for qid in qids:
            delivery = engine.flush(qid)
            if delivery is not None:
                verified, _stats = client.on_delivery(delivery)
                got[qid].extend(o.object_id for o in verified)
    return engine, truth, got, qids


@pytest.mark.parametrize("use_iptree", [False, True])
@pytest.mark.parametrize("lazy", [False, True])
def test_subscription_completeness_acc2(lazy, use_iptree):
    _engine, truth, got, qids = run_subscription("acc2", lazy, use_iptree)
    for qid in qids:
        assert sorted(got[qid]) == sorted(truth[qid])
    assert any(truth[qid] for qid in qids), "fixture should produce matches"


def test_subscription_realtime_acc1():
    _engine, truth, got, qids = run_subscription("acc1", lazy=False, use_iptree=True)
    for qid in qids:
        assert sorted(got[qid]) == sorted(truth[qid])


def test_lazy_requires_aggregation():
    backend = get_backend("simulated")
    _sk, acc1 = make_accumulator("acc1", backend, capacity=64, rng=random.Random(2))
    from repro.accumulators import ElementEncoder

    with pytest.raises(QueryError):
        SubscriptionEngine(acc1, ElementEncoder(backend.order - 1), PARAMS, lazy=True)


def test_iptree_shares_proofs():
    engine_ip, _t, _g, _q = run_subscription("acc2", lazy=False, use_iptree=True)
    engine_nip, _t2, _g2, _q2 = run_subscription("acc2", lazy=False, use_iptree=False)
    assert engine_ip.stats.proofs_computed < engine_nip.stats.proofs_computed
    assert engine_ip.stats.proofs_shared > 0
    assert engine_nip.stats.proofs_shared == 0


def test_lazy_fewer_deliveries():
    engine_rt, _t, _g, _q = run_subscription("acc2", lazy=False, use_iptree=True)
    engine_lz, _t2, _g2, _q2 = run_subscription("acc2", lazy=True, use_iptree=True)
    assert engine_lz.stats.deliveries < engine_rt.stats.deliveries


def test_deregister_stops_processing():
    backend = get_backend("simulated")
    _sk, acc = make_accumulator("acc2", backend, rng=random.Random(3))
    from repro.accumulators import ElementEncoder

    encoder = ElementEncoder(2**32 - 1)
    chain = Blockchain()
    miner = Miner(chain, acc, encoder, PARAMS)
    engine = SubscriptionEngine(acc, encoder, PARAMS)
    qid = engine.register(make_queries()[0])
    engine.deregister(qid)
    rng = random.Random(4)
    block = miner.mine_block(
        [
            DataObject(
                object_id=0, timestamp=0, vector=(1,), keywords=frozenset({"kw1"})
            )
        ],
        timestamp=0,
    )
    assert engine.process_block(block) == []
    with pytest.raises(SubscriptionError):
        engine.deregister(qid)
    with pytest.raises(SubscriptionError):
        engine.flush(qid)


def test_client_rejects_gap_in_deliveries():
    backend = get_backend("simulated")
    _sk, acc = make_accumulator("acc2", backend, rng=random.Random(5))
    from repro.accumulators import ElementEncoder

    encoder = ElementEncoder(2**32 - 1)
    chain = Blockchain()
    miner = Miner(chain, acc, encoder, PARAMS)
    engine = SubscriptionEngine(acc, encoder, PARAMS, lazy=False)
    light = LightNode()
    client = SubscriptionClient(light, acc, encoder, PARAMS)
    query = make_queries()[0]
    qid = engine.register(query)
    client.track(qid, query)
    rng = random.Random(6)
    deliveries = []
    for h in range(3):
        block = miner.mine_block(
            [
                DataObject(
                    object_id=h,
                    timestamp=h,
                    vector=(rng.randrange(256),),
                    keywords=frozenset({f"kw{rng.randrange(50)}"}),
                )
            ],
            timestamp=h,
        )
        light.sync(chain)
        deliveries.extend(engine.process_block(block))
    assert len(deliveries) == 3
    # deliver block 0 then skip to block 2: the client must notice
    client.on_delivery(deliveries[0])
    with pytest.raises(VerificationError):
        client.on_delivery(deliveries[2])


def test_client_rejects_untracked_delivery():
    backend = get_backend("simulated")
    _sk, acc = make_accumulator("acc2", backend, rng=random.Random(7))
    from repro.accumulators import ElementEncoder

    encoder = ElementEncoder(2**32 - 1)
    light = LightNode()
    client = SubscriptionClient(light, acc, encoder, PARAMS)
    from repro.core.vo import TimeWindowVO
    from repro.subscribe.engine import Delivery

    with pytest.raises(SubscriptionError):
        client.on_delivery(
            Delivery(
                query_id=9, from_height=0, up_to_height=0, results=[], vo=TimeWindowVO()
            )
        )


def test_lazy_uses_skip_aggregation():
    """With sparse data, lazy deliveries must contain VOSkip entries."""
    backend = get_backend("simulated")
    _sk, acc = make_accumulator("acc2", backend, rng=random.Random(8))
    from repro.accumulators import ElementEncoder
    from repro.core.vo import VOSkip

    encoder = ElementEncoder(2**32 - 1)
    chain = Blockchain()
    miner = Miner(chain, acc, encoder, PARAMS)
    engine = SubscriptionEngine(acc, encoder, PARAMS, lazy=True)
    light = LightNode()
    client = SubscriptionClient(light, acc, encoder, PARAMS)
    query = SubscriptionQuery(boolean=CNFCondition.of([["needle"]]))
    qid = engine.register(query)
    client.track(qid, query)
    rng = random.Random(9)
    # 20 blocks that never contain "needle"
    for h in range(20):
        block = miner.mine_block(
            [
                DataObject(
                    object_id=h,
                    timestamp=h,
                    vector=(rng.randrange(256),),
                    keywords=frozenset({f"hay{h}"}),
                )
            ],
            timestamp=h,
        )
        light.sync(chain)
        assert engine.process_block(block) == []
    delivery = engine.flush(qid)
    assert delivery is not None
    skips = [e for e in delivery.vo.entries if isinstance(e, VOSkip)]
    assert skips, "lazy mode should aggregate runs into skip entries"
    verified, stats = client.on_delivery(delivery)
    assert verified == []
    # far fewer disjoint checks than blocks covered
    assert stats.disjoint_checks < 20
