"""Durable chain storage: block codec, file backend, recovery.

The invariants under test, in the order the subsystem stacks up:

1. the block codec round-trips **byte-identically** (property-tested);
2. the file backend reopens to the same chain an in-memory run produces
   — query answers and VO bytes included;
3. damage to the log tail (torn index, flipped payload bytes, crash
   orphans) is truncated on open with a :class:`StorageWarning`, never
   silently served;
4. a store whose *contents* violate chain invariants is rejected by the
   chain layer's re-validation, even when every CRC checks out.
"""

import random
import struct
import warnings

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import VChainNetwork
from repro.chain import Block, Blockchain, DataObject, Miner, ProtocolParams
from repro.errors import ChainError, StorageError
from repro.storage import (
    FileBlockStore,
    MemoryBlockStore,
    StorageWarning,
    create_chain_setup,
    load_manifest,
    open_chain_setup,
    open_deployment,
)
from repro.storage.store import INDEX_NAME, MANIFEST_NAME
from repro.wire import WireError, decode_block, encode_block, encode_time_window_vo
from tests.conftest import make_objects

VOCAB = ["Sedan", "Van", "Benz", "BMW", "Audi", "Tesla", "Ford"]


def mine_chain(acc, enc, objects_per_block, mode="both", bits=8, skip_size=2):
    params = ProtocolParams(mode=mode, bits=bits, skip_size=skip_size)
    chain = Blockchain()
    miner = Miner(chain, acc, enc, params)
    oid = 0
    for height, objs in enumerate(objects_per_block):
        rebased = [
            DataObject(
                object_id=oid + i,
                timestamp=height * 10,
                vector=obj.vector,
                keywords=obj.keywords,
            )
            for i, obj in enumerate(objs)
        ]
        oid += len(rebased)
        miner.mine_block(rebased, timestamp=height * 10)
    return chain, params


# -- codec ---------------------------------------------------------------------
objects_strategy = st.lists(
    st.builds(
        DataObject,
        object_id=st.integers(min_value=0, max_value=2**32),
        timestamp=st.just(0),
        vector=st.tuples(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=255),
        ),
        keywords=st.frozensets(st.sampled_from(VOCAB), min_size=0, max_size=3),
    ),
    min_size=1,
    max_size=6,
)


@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(blocks=st.lists(objects_strategy, min_size=1, max_size=3))
def test_codec_round_trip_property(sim_acc2, encoder_q, blocks):
    """decode(encode(b)) == b and re-encoding is byte-identical."""
    chain, params = mine_chain(sim_acc2, encoder_q, blocks)
    backend = sim_acc2.backend
    for block in chain:
        data = encode_block(backend, block)
        decoded = decode_block(backend, data, params.bits)
        assert decoded == block
        assert encode_block(backend, decoded) == data
        # recomputed hashes are chain-consistent
        assert decoded.index_root.node_hash == block.header.merkle_root


@pytest.mark.parametrize("mode", ["nil", "intra", "both"])
def test_codec_round_trip_modes(sim_acc2, encoder_q, mode):
    rng = random.Random(3)
    blocks = [make_objects(rng, 3, h * 3, h * 10) for h in range(6)]
    chain, params = mine_chain(sim_acc2, encoder_q, blocks, mode=mode)
    backend = sim_acc2.backend
    for block in chain:
        data = encode_block(backend, block)
        assert encode_block(backend, decode_block(backend, data, params.bits)) == data


def test_codec_round_trip_acc1(sim_acc1, encoder_r):
    rng = random.Random(4)
    blocks = [make_objects(rng, 2, h * 2, h * 10) for h in range(3)]
    chain, params = mine_chain(sim_acc1, encoder_r, blocks, skip_size=1)
    backend = sim_acc1.backend
    for block in chain:
        data = encode_block(backend, block)
        decoded = decode_block(backend, data, params.bits)
        assert decoded == block
        assert encode_block(backend, decoded) == data


@pytest.mark.slow
def test_codec_round_trip_real_backend():
    setup = create_chain_setup(backend_name="ss512", seed=9)
    miner = Miner(setup.chain, setup.accumulator, setup.encoder, setup.params)
    rng = random.Random(9)
    miner.mine_block(make_objects(rng, 2, 0, 0), timestamp=0)
    block = setup.chain.block(0)
    backend = setup.accumulator.backend
    data = encode_block(backend, block)
    decoded = decode_block(backend, data, setup.params.bits)
    assert decoded == block
    assert encode_block(backend, decoded) == data


def test_codec_rejects_tampered_skip_entries(sim_acc2, encoder_q):
    """skiplist_root binds the skip entries — CRC-quiet bit-rot is caught."""
    from dataclasses import replace

    rng = random.Random(6)
    blocks = [make_objects(rng, 2, h * 2, h * 10) for h in range(6)]
    chain, params = mine_chain(sim_acc2, encoder_q, blocks)
    backend = sim_acc2.backend
    block = chain.block(5)
    assert block.skip_entries, "test needs a block with skip entries"
    donor = chain.block(4)
    tampered = replace(block.skip_entries[0], att_digest=donor.index_root.att_digest)
    evil = Block(
        header=block.header,
        objects=block.objects,
        index_root=block.index_root,
        skip_entries=[tampered] + block.skip_entries[1:],
        attrs_sum=block.attrs_sum,
        sum_digest=block.sum_digest,
    )
    with pytest.raises(WireError, match="skiplist_root"):
        decode_block(backend, encode_block(backend, evil), params.bits)


def test_codec_rejects_garbage(sim_acc2, encoder_q):
    rng = random.Random(5)
    chain, params = mine_chain(sim_acc2, encoder_q, [make_objects(rng, 3, 0, 0)])
    backend = sim_acc2.backend
    data = encode_block(backend, chain.block(0))
    with pytest.raises(WireError):
        decode_block(backend, data[:-3], params.bits)  # truncated
    with pytest.raises(WireError):
        decode_block(backend, data + b"\x00", params.bits)  # trailing bytes
    with pytest.raises(WireError):
        decode_block(backend, b"", params.bits)


# -- stores --------------------------------------------------------------------
def test_memory_store_is_the_default():
    assert isinstance(Blockchain().store, MemoryBlockStore)


def test_create_refuses_initialised_dir(tmp_path):
    create_chain_setup(data_dir=tmp_path, seed=1).close()
    with pytest.raises(StorageError, match="already holds a chain"):
        create_chain_setup(data_dir=tmp_path, seed=1)


def test_open_refuses_uninitialised_dir(tmp_path):
    with pytest.raises(StorageError, match="not a chain directory"):
        open_chain_setup(tmp_path)


def test_open_refuses_backend_mismatch(tmp_path, sim_backend):
    setup = create_chain_setup(data_dir=tmp_path, seed=1, backend_name="simulated")
    setup.close()
    manifest = load_manifest(tmp_path)
    assert manifest["backend"] == "simulated"
    from repro.crypto import get_backend

    with pytest.raises(StorageError, match="backend"):
        FileBlockStore.open(tmp_path, get_backend("ss512"))


def test_open_refuses_future_format(tmp_path):
    create_chain_setup(data_dir=tmp_path, seed=1).close()
    manifest_path = tmp_path / MANIFEST_NAME
    manifest_path.write_text(
        manifest_path.read_text().replace('"format_version": 1', '"format_version": 99')
    )
    with pytest.raises(StorageError, match="unsupported storage format"):
        open_chain_setup(tmp_path)


def test_manifest_records_deployment(tmp_path):
    setup = create_chain_setup(
        data_dir=tmp_path, acc_name="acc2", seed=77,
        params=ProtocolParams(mode="intra", bits=6, skip_size=0),
    )
    setup.close()
    meta = load_manifest(tmp_path)["meta"]
    assert meta["acc_name"] == "acc2"
    assert meta["seed"] == 77
    assert meta["params"]["mode"] == "intra"
    accumulator, encoder, params = open_deployment(tmp_path)
    assert params.bits == 6
    assert accumulator.name == "acc2"


def _mine_persisted(tmp_path, n_blocks=8, seed=21, **create_kw):
    setup = create_chain_setup(data_dir=tmp_path, seed=seed, **create_kw)
    miner = Miner(setup.chain, setup.accumulator, setup.encoder, setup.params)
    rng = random.Random(seed)
    for h in range(n_blocks):
        miner.mine_block(make_objects(rng, 3, h * 3, h * 10), timestamp=h * 10)
    return setup


def test_reopen_restores_identical_chain(tmp_path):
    setup = _mine_persisted(tmp_path)
    original = [encode_block(setup.accumulator.backend, b) for b in setup.chain]
    tip_hash = setup.chain.tip.header.block_hash()
    setup.close()

    reopened = open_chain_setup(tmp_path)
    assert len(reopened.chain) == len(original)
    assert reopened.chain.tip.header.block_hash() == tip_hash
    recovered = [encode_block(reopened.accumulator.backend, b) for b in reopened.chain]
    assert recovered == original
    reopened.close()


def test_reopen_continues_mining(tmp_path):
    setup = _mine_persisted(tmp_path, n_blocks=4)
    setup.close()
    reopened = open_chain_setup(tmp_path)
    miner = Miner(
        reopened.chain, reopened.accumulator, reopened.encoder, reopened.params
    )
    rng = random.Random(99)
    miner.mine_block(make_objects(rng, 2, 100, 40), timestamp=40)
    reopened.close()
    again = open_chain_setup(tmp_path)
    assert len(again.chain) == 5
    again.close()


def test_segment_rotation_and_reopen(tmp_path):
    setup = create_chain_setup(data_dir=tmp_path, seed=5, segment_bytes=4096)
    miner = Miner(setup.chain, setup.accumulator, setup.encoder, setup.params)
    rng = random.Random(5)
    for h in range(10):
        miner.mine_block(make_objects(rng, 3, h * 3, h * 10), timestamp=h * 10)
    setup.close()
    segments = sorted(tmp_path.glob("seg-*.log"))
    assert len(segments) > 1, "expected the log to rotate at 4 KiB"
    reopened = open_chain_setup(tmp_path, segment_bytes=4096)
    assert len(reopened.chain) == 10
    reopened.close()


def test_fsync_off_still_round_trips(tmp_path):
    setup = _mine_persisted(tmp_path, n_blocks=3, fsync=False)
    setup.close()
    reopened = open_chain_setup(tmp_path)
    assert len(reopened.chain) == 3
    reopened.close()


# -- reopen vs in-memory parity ------------------------------------------------
def test_reopened_store_matches_inmemory_answers(tmp_path):
    """The acceptance property: byte-identical answers after a restart."""
    from repro.datasets import ethereum_like

    dataset = ethereum_like(n_blocks=10, objects_per_block=4, seed=17)
    memory_net = VChainNetwork.create(seed=123)
    memory_net.mine_dataset(dataset)
    durable_net = VChainNetwork.create(seed=123, data_dir=tmp_path)
    durable_net.mine_dataset(dataset)
    durable_net.close()

    reopened = VChainNetwork.open(tmp_path)
    backend = reopened.accumulator.backend
    for start, end in [(0, 40), (30, 90), (0, 1000)]:
        mem_resp = (
            memory_net.client.query().window(start, end)
            .range(low=(0,), high=(120,)).execute()
        )
        dur_resp = (
            reopened.client.query().window(start, end)
            .range(low=(0,), high=(120,)).execute()
        )
        mem_resp.raise_for_forgery()
        dur_resp.raise_for_forgery()
        assert [o.object_id for o in mem_resp.results] == [
            o.object_id for o in dur_resp.results
        ]
        assert encode_time_window_vo(backend, mem_resp.vo) == encode_time_window_vo(
            backend, dur_resp.vo
        )
    reopened.close()


# -- recovery ------------------------------------------------------------------
def _flip_last_payload_byte(tmp_path):
    segment = sorted(tmp_path.glob("seg-*.log"))[-1]
    data = bytearray(segment.read_bytes())
    data[-5] ^= 0xFF
    segment.write_bytes(data)


def test_corrupt_tail_is_truncated_with_warning(tmp_path):
    _mine_persisted(tmp_path, n_blocks=6).close()
    _flip_last_payload_byte(tmp_path)
    with pytest.warns(StorageWarning, match="truncating 1 block"):
        reopened = open_chain_setup(tmp_path)
    assert len(reopened.chain) == 5
    reopened.close()
    # second open is clean — the damage was excised, not papered over
    with warnings.catch_warnings():
        warnings.simplefilter("error", StorageWarning)
        again = open_chain_setup(tmp_path)
    assert len(again.chain) == 5
    again.close()


def test_truncated_chain_accepts_replacement_block(tmp_path):
    _mine_persisted(tmp_path, n_blocks=6).close()
    _flip_last_payload_byte(tmp_path)
    with pytest.warns(StorageWarning):
        reopened = open_chain_setup(tmp_path)
    miner = Miner(
        reopened.chain, reopened.accumulator, reopened.encoder, reopened.params
    )
    rng = random.Random(1)
    miner.mine_block(make_objects(rng, 2, 500, 50), timestamp=50)
    assert len(reopened.chain) == 6
    reopened.close()


def test_torn_index_entry_is_dropped(tmp_path):
    _mine_persisted(tmp_path, n_blocks=4).close()
    index = tmp_path / INDEX_NAME
    index.write_bytes(index.read_bytes()[:-7])  # tear the last entry
    with pytest.warns(StorageWarning, match="torn"):
        reopened = open_chain_setup(tmp_path)
    # the torn entry's record is now an orphan; the block is dropped
    assert len(reopened.chain) == 3
    reopened.close()


def test_orphan_segment_bytes_are_dropped(tmp_path):
    """Crash between segment fsync and index fsync leaves an orphan record."""
    _mine_persisted(tmp_path, n_blocks=4).close()
    index = tmp_path / INDEX_NAME
    index.write_bytes(index.read_bytes()[:-32])  # forget the last append entirely
    with pytest.warns(StorageWarning, match="orphan"):
        reopened = open_chain_setup(tmp_path)
    assert len(reopened.chain) == 3
    reopened.close()


def test_mid_log_corruption_truncates_everything_after(tmp_path):
    _mine_persisted(tmp_path, n_blocks=6).close()
    index = tmp_path / INDEX_NAME
    raw = bytearray(index.read_bytes())
    # corrupt the CRC of entry 2: every later block must go too
    entry = struct.Struct(">QIQQI")
    height, seg, off, length, crc = entry.unpack_from(raw, 2 * entry.size)
    entry.pack_into(raw, 2 * entry.size, height, seg, off, length, crc ^ 1)
    index.write_bytes(bytes(raw))
    with pytest.warns(StorageWarning, match="truncating 4 block"):
        reopened = open_chain_setup(tmp_path)
    assert len(reopened.chain) == 2
    reopened.close()


def test_store_contents_still_face_chain_validation(tmp_path, sim_acc2, encoder_q):
    """CRC-clean but chain-invalid contents are rejected on open."""
    rng = random.Random(8)
    chain_a, params = mine_chain(sim_acc2, encoder_q, [make_objects(rng, 2, 0, 0)])
    chain_b, _ = mine_chain(
        sim_acc2, encoder_q, [make_objects(rng, 2, 10, 0), make_objects(rng, 2, 12, 10)]
    )
    store = FileBlockStore.create(tmp_path, sim_acc2.backend, params.bits)
    store.append(chain_a.block(0))
    store.append(chain_b.block(1))  # prev_hash points at chain B's block 0
    store.close()
    with pytest.raises(ChainError, match="recovered block 1 is invalid"):
        Blockchain(store=FileBlockStore.open(tmp_path, sim_acc2.backend))


def test_lost_index_fails_safe_instead_of_truncating(tmp_path):
    """An absent index over intact segments must not erase the chain."""
    _mine_persisted(tmp_path, n_blocks=5).close()
    index = tmp_path / INDEX_NAME
    segment = tmp_path / "seg-00000.log"
    segment_bytes = segment.read_bytes()
    index.unlink()
    with pytest.raises(StorageError, match="index was lost"):
        open_chain_setup(tmp_path)
    # every file was left untouched for manual recovery
    assert segment.read_bytes() == segment_bytes


def test_validation_failure_on_open_releases_the_lock(tmp_path):
    """A ChainError during re-validation must not wedge the directory."""
    _mine_persisted(tmp_path, n_blocks=2).close()
    manifest_path = tmp_path / MANIFEST_NAME
    # claim a difficulty the mined nonces never satisfied: recovery's
    # consensus re-check fails *after* the store opened and took the lock
    manifest_path.write_text(
        manifest_path.read_text().replace(
            '"difficulty_bits": 0', '"difficulty_bits": 30'
        )
    )
    for _ in range(2):  # a second attempt must not hit a stale flock
        with pytest.raises(ChainError, match="consensus proof invalid"):
            open_chain_setup(tmp_path)


def test_second_open_of_live_directory_is_refused(tmp_path):
    """Single-writer lock: concurrent stores would corrupt the log."""
    setup = _mine_persisted(tmp_path, n_blocks=2)
    with pytest.raises(StorageError, match="already open"):
        open_chain_setup(tmp_path)
    setup.close()
    # the flock dies with its holder, so a close (or crash) frees the dir
    reopened = open_chain_setup(tmp_path)
    assert len(reopened.chain) == 2
    reopened.close()


def test_closed_store_refuses_appends(tmp_path, sim_acc2, encoder_q):
    rng = random.Random(2)
    chain, params = mine_chain(sim_acc2, encoder_q, [make_objects(rng, 2, 0, 0)])
    store = FileBlockStore.create(tmp_path, sim_acc2.backend, params.bits)
    store.close()
    with pytest.raises(StorageError, match="closed"):
        store.append(chain.block(0))
