"""``QueryVerifier.batch_verify``: one pass over a whole window's VOs.

Correctness bar: batch verification accepts exactly what per-VO
verification accepts, shares pairing work across VOs (acc2), falls back
to individual checks on acc1 — and a forged VO anywhere in the batch is
rejected with the offending item named, even though its proof is
aggregated with honest ones.
"""

import random
from dataclasses import replace

import pytest

from repro import VChainNetwork
from repro.accumulators.base import DisjointProof
from repro.chain import ProtocolParams
from repro.core.vo import VOBlock, VOExpandNode, VOMismatchNode, VOSkip
from repro.errors import VerificationError
from tests.conftest import make_objects


def _build_net(acc_name):
    net = VChainNetwork.create(
        acc_name=acc_name,
        params=ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0),
        seed=33,
    )
    rng = random.Random(33)
    for height in range(8):
        net.mine(
            make_objects(rng, 3, height * 3, timestamp=height * 10),
            timestamp=height * 10,
        )
    return net


@pytest.fixture()
def net2():
    return _build_net("acc2")


@pytest.fixture()
def net1():
    return _build_net("acc1")


def _wide(net):
    return (
        net.client.query()
        .range(low=(0,), high=(255,))
        .all_of("Sedan")
        .any_of("Benz", "BMW")
        .window(0, 200)
        .build()
    )


def _queries(net):
    return [
        _wide(net),
        _wide(net),  # identical twin
        net.client.query().window(0, 40).any_of("Benz").build(),
    ]


def _answers(net, queries, batch=None):
    return [net.client.execute(q, batch=batch).raise_for_forgery() for q in queries]


def test_batch_verify_matches_individual_results(net2):
    queries = _queries(net2)
    singles = _answers(net2, queries)
    items = [(q, r.results, r.vo) for q, r in zip(queries, singles)]
    all_verified, stats = net2.user.batch_verify(items)
    for verified, single in zip(all_verified, singles):
        assert verified == single.results
    assert stats.user_seconds > 0


def test_batch_verify_aggregates_same_clause_checks(net2):
    queries = _queries(net2)[:2]  # identical twins share every clause
    singles = _answers(net2, queries)
    items = [(q, r.results, r.vo) for q, r in zip(queries, singles)]
    _verified, stats = net2.user.batch_verify(items)
    individual_total = sum(r.user_stats.disjoint_checks for r in singles)
    assert stats.batched_checks > 0
    assert stats.disjoint_checks < individual_total


def test_batch_verify_acc1_falls_back_to_individual(net1):
    queries = _queries(net1)
    singles = _answers(net1, queries)
    items = [(q, r.results, r.vo) for q, r in zip(queries, singles)]
    all_verified, stats = net1.user.batch_verify(items)
    for verified, single in zip(all_verified, singles):
        assert verified == single.results
    assert stats.batched_checks == 0
    assert stats.disjoint_checks > 0


def test_batch_verify_rejects_dropped_result(net2):
    queries = _queries(net2)
    singles = _answers(net2, queries)
    items = [(q, r.results, r.vo) for q, r in zip(queries, singles)]
    items[1] = (queries[1], singles[1].results[:-1], singles[1].vo)
    with pytest.raises(VerificationError, match="batch item 1"):
        net2.user.batch_verify(items)


def _bogus_proof(net):
    backend = net.accumulator.backend
    return DisjointProof(parts=(backend.exp(backend.generator(), 0xBAD), ))


def test_batch_verify_rejects_forged_group_proof(net2):
    queries = _queries(net2)
    singles = _answers(net2, queries, batch=True)
    forged_vo = singles[2].vo
    assert forged_vo.batch_groups, "batch VO should carry group proofs"
    group_id = next(iter(forged_vo.batch_groups))
    forged_vo.batch_groups[group_id] = replace(
        forged_vo.batch_groups[group_id], proof=_bogus_proof(net2)
    )
    items = [(q, r.results, r.vo) for q, r in zip(queries, singles)]
    with pytest.raises(VerificationError, match="batch item 2"):
        net2.user.batch_verify(items)


def _forge_first_individual_proof(vo, bogus):
    """Replace the first embedded mismatch proof found in ``vo``."""

    def forge_node(node):
        if isinstance(node, VOMismatchNode) and node.proof is not None:
            return replace(node, proof=bogus), True
        if isinstance(node, VOExpandNode):
            children = list(node.children)
            for i, child in enumerate(children):
                forged, done = forge_node(child)
                if done:
                    children[i] = forged
                    return replace(node, children=tuple(children)), True
        return node, False

    for index, entry in enumerate(vo.entries):
        if isinstance(entry, VOSkip) and entry.proof is not None:
            vo.entries[index] = replace(entry, proof=bogus)
            return True
        if isinstance(entry, VOBlock):
            root, done = forge_node(entry.root)
            if done:
                vo.entries[index] = replace(entry, root=root)
                return True
    return False


@pytest.mark.parametrize("acc_name", ["acc1", "acc2"])
def test_batch_verify_rejects_forged_individual_proof(acc_name):
    net = _build_net(acc_name)
    queries = _queries(net)
    singles = _answers(net, queries, batch=False)
    items = [(q, r.results, r.vo) for q, r in zip(queries, singles)]
    assert _forge_first_individual_proof(singles[0].vo, _bogus_proof(net))
    with pytest.raises(VerificationError, match="batch item 0"):
        net.user.batch_verify(items)


def test_execute_many_matches_execute(net2):
    queries = _queries(net2)
    singles = _answers(net2, queries)
    responses = net2.client.execute_many(queries)
    assert all(r.ok for r in responses)
    for response, single in zip(responses, singles):
        assert response.results == single.results
        assert response.vo_nbytes == single.vo_nbytes
    # the combined stats object is shared across the batch
    assert responses[0].user_stats is responses[1].user_stats


def test_execute_many_isolates_forged_response(net2, monkeypatch):
    queries = _queries(net2)

    def poisoned_batch_verify(items):
        raise VerificationError("batch item 1: forged")

    monkeypatch.setattr(net2.client.user, "batch_verify", poisoned_batch_verify)
    responses = net2.client.execute_many(queries)
    # the batch pass failed, so each answer was re-verified individually
    assert all(r.ok for r in responses)
    assert all(r.user_stats is not None for r in responses)
