"""Adversarial tests re-enacting the Section 8 unforgeability experiments.

Every test plays a malicious SP forging some part of the response; the
verifier must reject.  The three Definition 8.2 cases:

* case 1 — result contains an object not on the chain (tampered);
* case 2 — result contains an object that does not satisfy the query;
* case 3 — a matching object is omitted (completeness violation).

Plus structural attacks on the VO itself (wrong clause, mixed batch
groups, truncated coverage, re-targeted skips).
"""

import random
from dataclasses import replace

import pytest

from repro import VChainNetwork
from repro.chain import DataObject, ProtocolParams
from repro.core.query import CNFCondition, RangeCondition, TimeWindowQuery
from repro.core.vo import (
    TimeWindowVO,
    VOBlock,
    VOExpandNode,
    VOMatchLeaf,
    VOMismatchNode,
    VOSkip,
)
from repro.errors import VerificationError
from tests.conftest import make_objects

VOCAB = ["Sedan", "Van", "Benz", "BMW", "Audi", "Tesla"]


@pytest.fixture(scope="module")
def net():
    params = ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0)
    network = VChainNetwork.create(acc_name="acc2", params=params, seed=13)
    rng = random.Random(13)
    oid = 0
    for h in range(16):
        objs = make_objects(rng, 3, oid, timestamp=h * 10, vocab=VOCAB)
        oid += 3
        network.miner.mine_block(objs, timestamp=h * 10)
    network.user.sync_headers(network.chain)
    return network


QUERY = TimeWindowQuery(
    start=0,
    end=150,
    numeric=RangeCondition(low=(0, 0), high=(200, 255)),
    boolean=CNFCondition.of([["Benz", "BMW"]]),
)


def honest(net, batch=False):
    return net.sp.time_window_query(QUERY, batch=batch)


def find_block_with_leaf(vo):
    for i, entry in enumerate(vo.entries):
        if isinstance(entry, VOBlock):
            node = entry.root
            if isinstance(node, VOMatchLeaf):
                return i, entry
            stack = [node]
            while stack:
                n = stack.pop()
                if isinstance(n, VOMatchLeaf):
                    return i, entry
                if isinstance(n, VOExpandNode):
                    stack.extend(n.children)
    return None, None


def swap_node(node, old, new):
    if node is old:
        return new
    if isinstance(node, VOExpandNode):
        return VOExpandNode(
            att_digest=node.att_digest,
            children=tuple(swap_node(c, old, new) for c in node.children),
        )
    return node


# -- Definition 8.2, case 1: tampered object ------------------------------------

def test_tampered_object_rejected(net):
    results, vo, _ = honest(net)
    assert results, "fixture query must have results"
    victim = results[0]
    forged_obj = DataObject(
        object_id=victim.object_id,
        timestamp=victim.timestamp,
        vector=victim.vector,
        keywords=victim.keywords | {"Benz", "Sedan"},
    )
    # swap the object in both the result list and the VO transcript
    forged_results = [forged_obj if o is victim else o for o in results]
    forged_entries = []
    for entry in vo.entries:
        if isinstance(entry, VOBlock):
            old_leaf = None
            stack = [entry.root]
            while stack:
                n = stack.pop()
                if isinstance(n, VOMatchLeaf) and n.obj is victim:
                    old_leaf = n
                if isinstance(n, VOExpandNode):
                    stack.extend(n.children)
            if old_leaf is not None:
                new_root = swap_node(entry.root, old_leaf, VOMatchLeaf(obj=forged_obj))
                entry = VOBlock(height=entry.height, root=new_root)
        forged_entries.append(entry)
    forged_vo = TimeWindowVO(entries=forged_entries, batch_groups=vo.batch_groups)
    with pytest.raises(VerificationError):
        net.user.verify(QUERY, forged_results, forged_vo)


def test_fabricated_object_rejected(net):
    results, vo, _ = honest(net)
    ghost = DataObject(
        object_id=9999,
        timestamp=10,
        vector=(1, 1),
        keywords=frozenset({"Benz", "Sedan"}),
    )
    with pytest.raises(VerificationError):
        net.user.verify(QUERY, results + [ghost], vo)


# -- Definition 8.2, case 2: non-satisfying object -----------------------------

def test_non_matching_result_rejected(net):
    results, vo, _ = honest(net)
    # find an on-chain object that does NOT match and splice it as a leaf
    non_match = next(
        o
        for b in net.chain
        for o in b.objects
        if not QUERY.matches_object(o, net.params.bits) and QUERY.in_window(o.timestamp)
    )
    with pytest.raises(VerificationError):
        net.user.verify(QUERY, results + [non_match], vo)


# -- Definition 8.2, case 3: omitted result -----------------------------------

def test_dropped_result_rejected(net):
    results, vo, _ = honest(net)
    with pytest.raises(VerificationError):
        net.user.verify(QUERY, results[:-1], vo)


def test_dropped_result_with_rebuilt_vo_rejected(net):
    """SP drops a result AND rewrites the leaf as a mismatch with a
    forged proof — the accumulator must make this impossible."""
    results, vo, _ = honest(net)
    idx, entry = find_block_with_leaf(vo)
    assert entry is not None
    # locate the match leaf and forge a mismatch node in its place
    stack = [entry.root]
    leaf = None
    while stack:
        n = stack.pop()
        if isinstance(n, VOMatchLeaf):
            leaf = n
            break
        if isinstance(n, VOExpandNode):
            stack.extend(n.children)
    clause = frozenset({"Benz", "BMW"})
    # forge: reuse a proof from some genuinely mismatching node
    donor = None
    for e in vo.entries:
        if isinstance(e, VOBlock):
            stack2 = [e.root]
            while stack2:
                n2 = stack2.pop()
                if isinstance(n2, VOMismatchNode) and n2.proof is not None:
                    donor = n2
                if isinstance(n2, VOExpandNode):
                    stack2.extend(n2.children)
    assert donor is not None
    att = net.accumulator.accumulate(
        net.encoder.encode_multiset(leaf.obj.attribute_multiset(net.params.bits))
    )
    forged_node = VOMismatchNode(
        child_component=leaf.obj.serialize(),
        att_digest=att,
        clause=donor.clause,
        proof=donor.proof,
    )
    forged_root = swap_node(entry.root, leaf, forged_node)
    forged_entries = list(vo.entries)
    forged_entries[idx] = VOBlock(height=entry.height, root=forged_root)
    forged_results = [o for o in results if o.object_id != leaf.obj.object_id]
    with pytest.raises(VerificationError):
        net.user.verify(
            QUERY,
            forged_results,
            TimeWindowVO(entries=forged_entries, batch_groups=vo.batch_groups),
        )


def test_truncated_vo_rejected(net):
    results, vo, _ = honest(net)
    truncated = TimeWindowVO(entries=vo.entries[:-1], batch_groups=vo.batch_groups)
    with pytest.raises(VerificationError):
        net.user.verify(QUERY, results, truncated)


def test_duplicated_entry_rejected(net):
    results, vo, _ = honest(net)
    padded = TimeWindowVO(
        entries=vo.entries + [vo.entries[-1]], batch_groups=vo.batch_groups
    )
    with pytest.raises(VerificationError):
        net.user.verify(QUERY, results, padded)


# -- structural attacks ----------------------------------------------------------

def test_foreign_clause_rejected(net):
    """A valid disjointness proof against a clause the query never asked."""
    results, vo, _ = honest(net)
    forged_entries = []
    mutated = False
    for entry in vo.entries:
        if (
            not mutated
            and isinstance(entry, VOBlock)
            and isinstance(entry.root, VOMismatchNode)
        ):
            node = entry.root
            alien = frozenset({"NotAQueryTerm"})
            proof = net.accumulator.prove_disjoint(
                net.encoder.encode_multiset(
                    net.chain.block(entry.height).index_root.attrs
                ),
                net.encoder.encode_multiset({"NotAQueryTerm": 1}),
            )
            entry = VOBlock(
                height=entry.height,
                root=VOMismatchNode(
                    child_component=node.child_component,
                    att_digest=node.att_digest,
                    clause=alien,
                    proof=proof,
                ),
            )
            mutated = True
        forged_entries.append(entry)
    assert mutated
    with pytest.raises(VerificationError):
        net.user.verify(
            QUERY,
            results,
            TimeWindowVO(entries=forged_entries, batch_groups=vo.batch_groups),
        )


def test_mixed_batch_group_clause_rejected(net):
    results, vo, _ = honest(net, batch=True)
    assert vo.batch_groups
    # re-tag one grouped mismatch node with a different clause
    other_clause = frozenset({"Benz", "BMW"})
    forged_entries = []
    mutated = False
    for entry in vo.entries:
        if (
            not mutated
            and isinstance(entry, VOBlock)
            and isinstance(entry.root, VOMismatchNode)
            and entry.root.group is not None
            and entry.root.clause != other_clause
        ):
            entry = VOBlock(
                height=entry.height,
                root=replace(entry.root, clause=other_clause),
            )
            mutated = True
        forged_entries.append(entry)
    if not mutated:
        pytest.skip("no group-tagged root mismatch in this VO")
    with pytest.raises(VerificationError):
        net.user.verify(
            QUERY,
            results,
            TimeWindowVO(entries=forged_entries, batch_groups=vo.batch_groups),
        )


def test_missing_batch_group_rejected(net):
    results, vo, _ = honest(net, batch=True)
    assert vo.batch_groups
    with pytest.raises(VerificationError):
        net.user.verify(
            QUERY, results, TimeWindowVO(entries=vo.entries, batch_groups={})
        )


def test_forged_skip_distance_rejected(net):
    """A skip claiming a distance outside the protocol schedule."""
    results, vo, _ = honest(net)
    height = 15
    entry = net.chain.block(height).skip_entries[0]
    fake_skip = VOSkip(
        height=height,
        distance=3,  # not in the {4, 8} schedule
        att_digest=entry.att_digest,
        clause=frozenset({"Benz", "BMW"}),
        proof=None,
        group=None,
    )
    forged = TimeWindowVO(
        entries=[fake_skip] + list(vo.entries), batch_groups=vo.batch_groups
    )
    with pytest.raises(VerificationError):
        net.user.verify(QUERY, results, forged)


def test_tampered_mismatch_digest_rejected(net):
    """Changing a pruned node's AttDigest breaks Merkle reconstruction."""
    results, vo, _ = honest(net)
    fake_digest = net.accumulator.accumulate(net.encoder.encode_multiset({"zzz": 1}))
    forged_entries = []
    mutated = False
    for entry in vo.entries:
        if (
            not mutated
            and isinstance(entry, VOBlock)
            and isinstance(entry.root, VOMismatchNode)
        ):
            entry = VOBlock(
                height=entry.height,
                root=replace(entry.root, att_digest=fake_digest),
            )
            mutated = True
        forged_entries.append(entry)
    assert mutated
    with pytest.raises(VerificationError):
        net.user.verify(
            QUERY,
            results,
            TimeWindowVO(entries=forged_entries, batch_groups=vo.batch_groups),
        )


def test_header_substitution_detected(net):
    """A user synced to the honest chain rejects VOs from a forked chain."""
    params = net.params
    fork = VChainNetwork.create(acc_name="acc2", params=params, seed=14)
    rng = random.Random(14)
    oid = 0
    for h in range(16):
        objs = make_objects(rng, 3, oid, timestamp=h * 10, vocab=VOCAB)
        oid += 3
        fork.miner.mine_block(objs, timestamp=h * 10)
    results, vo, _ = fork.sp.time_window_query(QUERY)
    with pytest.raises(VerificationError):
        net.user.verify(QUERY, results, vo)
