"""Tests for the range→set transformation (paper Section 5.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rangetrans import (
    quantize,
    range_cover,
    trans_range,
    trans_vector,
    value_prefix_set,
)
from repro.errors import QueryError


def test_paper_example_trans_4():
    # trans(4) = {1*, 10*, 100} in a 3-bit space
    assert value_prefix_set(4, 3) == {"0:1*", "0:10*", "0:100"}


def test_paper_example_cover_0_to_6():
    # [0, 6] → {0*, 10*, 110}
    assert range_cover(0, 6, 3) == {"0:0*", "0:10*", "0:110"}


def test_paper_example_vector():
    # (4, 2) → {1*₁, 10*₁, 100₁, 0*₂, 01*₂, 010₂}
    assert trans_vector((4, 2), 3) == {
        "0:1*", "0:10*", "0:100", "1:0*", "1:01*", "1:010",
    }


def test_paper_example_multidim_range():
    # [(0,3),(6,4)] → clauses ({0*,10*,110}, {011,100}) per dimension
    clauses = trans_range((0, 3), (6, 4), 3)
    assert clauses[0] == frozenset({"0:0*", "0:10*", "0:110"})
    assert clauses[1] == frozenset({"1:011", "1:100"})


def test_paper_membership_examples():
    # 4 ∈ [0,6]: prefix sets intersect at 10*
    assert value_prefix_set(4, 3) & range_cover(0, 6, 3) == {"0:10*"}
    # (4,2) ∉ [(0,3),(6,4)]: second dimension clause is disjoint
    obj = trans_vector((4, 2), 3)
    clauses = trans_range((0, 3), (6, 4), 3)
    assert obj & clauses[0]
    assert not (obj & clauses[1])


def test_full_space_cover_is_two_top_prefixes():
    assert range_cover(0, 7, 3) == {"0:0*", "0:1*"}


def test_single_point_cover():
    assert range_cover(5, 5, 3) == {"0:101"}


def test_cover_dimension_tagging():
    assert range_cover(0, 1, 2, dim=3) == {"3:0*"}


def test_value_prefix_rejects_out_of_range():
    with pytest.raises(QueryError):
        value_prefix_set(8, 3)
    with pytest.raises(QueryError):
        value_prefix_set(-1, 3)
    with pytest.raises(QueryError):
        value_prefix_set(0, 0)


def test_cover_rejects_bad_ranges():
    with pytest.raises(QueryError):
        range_cover(3, 2, 3)
    with pytest.raises(QueryError):
        range_cover(0, 8, 3)
    with pytest.raises(QueryError):
        range_cover(0, 1, 0)


def test_trans_range_dim_mismatch():
    with pytest.raises(QueryError):
        trans_range((0,), (1, 2), 3)


@given(
    value=st.integers(min_value=0, max_value=255),
    bound_a=st.integers(min_value=0, max_value=255),
    bound_b=st.integers(min_value=0, max_value=255),
)
def test_membership_iff_intersection(value, bound_a, bound_b):
    """The core correctness property: v ∈ [α,β] ⟺ trans(v) ∩ cover ≠ ∅."""
    low, high = min(bound_a, bound_b), max(bound_a, bound_b)
    prefixes = value_prefix_set(value, 8)
    cover = range_cover(low, high, 8)
    assert bool(prefixes & cover) == (low <= value <= high)


@given(
    low=st.integers(min_value=0, max_value=255),
    width=st.integers(min_value=0, max_value=255),
)
def test_cover_is_minimal_dyadic(low, width):
    """Cover size is bounded by 2·bits (the classic dyadic bound)."""
    high = min(255, low + width)
    cover = range_cover(low, high, 8)
    assert 1 <= len(cover) <= 2 * 8


def test_quantize_endpoints_and_midpoint():
    assert quantize(0.0, 0.0, 1.0, 8) == 0
    assert quantize(1.0, 0.0, 1.0, 8) == 255
    assert quantize(0.5, 0.0, 1.0, 8) == 128


def test_quantize_clips():
    assert quantize(-5.0, 0.0, 1.0, 8) == 0
    assert quantize(9.0, 0.0, 1.0, 8) == 255


def test_quantize_rejects_empty_interval():
    with pytest.raises(QueryError):
        quantize(0.5, 1.0, 1.0, 8)
