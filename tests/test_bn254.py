"""Tests for the BN254 curve, extension tower, and symmetric backend."""

import pytest

from repro.crypto import bn254 as bn
from repro.crypto import get_backend
from repro.errors import CryptoError


# -- field tower (fast) ---------------------------------------------------------
def test_fq_arithmetic():
    assert bn.FQ(2) + bn.FQ(3) == bn.FQ(5)
    assert bn.FQ(2) * bn.FQ(3) == 6
    assert bn.FQ(2) / bn.FQ(2) == bn.FQ.one()
    assert bn.FQ(2) ** 10 == bn.FQ(1024)
    assert -bn.FQ(1) == bn.FQ(bn.FIELD_MODULUS - 1)
    assert 1 - bn.FQ(2) == bn.FQ(-1)


def test_fq2_is_a_field():
    x = bn.FQ2([1, 2])
    assert x + x == x * 2
    assert x / x == bn.FQ2.one()
    assert x * x.inv() == bn.FQ2.one()
    # w² = -1
    w = bn.FQ2([0, 1])
    assert w * w == -bn.FQ2.one()


def test_fq12_is_a_field():
    x = bn.FQ12([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])
    assert x * x.inv() == bn.FQ12.one()
    assert (x ** 3) == x * x * x
    assert x ** 0 == bn.FQ12.one()


def test_fqp_rejects_wrong_arity():
    with pytest.raises(CryptoError):
        bn.FQ2([1, 2, 3])
    with pytest.raises(CryptoError):
        bn.FQ2([1, 2]) * bn.FQ12.one()


def test_zero_has_no_inverse():
    with pytest.raises(CryptoError):
        bn.FQ2.zero().inv()


# -- curve groups (fast) ----------------------------------------------------------
def test_generators_on_curve():
    assert bn.is_on_curve(bn.G1, bn.B1)
    assert bn.is_on_curve(bn.G2, bn.B2)


def test_g1_group_law():
    assert bn.add(bn.add(bn.G1, bn.G1), bn.G1) == bn.multiply(bn.G1, 3)
    assert bn.add(bn.G1, bn.neg(bn.G1)) is None
    assert bn.multiply(bn.G1, bn.CURVE_ORDER) is None


def test_g2_group_law():
    assert bn.add(bn.add(bn.G2, bn.G2), bn.G2) == bn.multiply(bn.G2, 3)
    assert bn.multiply(bn.G2, bn.CURVE_ORDER) is None


def test_twist_lands_on_fq12_curve():
    twisted = bn.twist(bn.G2)
    b12 = bn.FQ12([3] + [0] * 11)
    assert bn.is_on_curve(twisted, b12)


# -- pairing (slow) ------------------------------------------------------------------
@pytest.mark.slow
def test_pairing_bilinear_and_nondegenerate():
    e = bn.pairing(bn.G2, bn.G1)
    assert e != bn.FQ12.one()
    assert bn.pairing(bn.G2, bn.multiply(bn.G1, 2)) == e * e
    assert bn.pairing(bn.multiply(bn.G2, 2), bn.G1) == e * e
    assert e ** bn.CURVE_ORDER == bn.FQ12.one()


@pytest.mark.slow
def test_pairing_rejects_off_curve_inputs():
    with pytest.raises(CryptoError):
        bn.pairing(bn.G2, (bn.FQ(1), bn.FQ(1)))


# -- symmetric backend --------------------------------------------------------------
def test_backend_group_ops_fast_paths():
    backend = get_backend("bn254")
    g = backend.generator()
    assert backend.eq(backend.op(g, backend.identity()), g)
    two_g = backend.exp(g, 2)
    assert backend.eq(backend.op(g, g), two_g)
    assert backend.eq(backend.exp(g, backend.order), backend.identity())


def test_backend_encode_decode_roundtrip():
    backend = get_backend("bn254")
    element = backend.exp(backend.generator(), 123456789)
    data = backend.encode(element)
    assert len(data) == backend.element_nbytes == 194
    assert backend.eq(backend.decode(data), element)
    assert backend.eq(
        backend.decode(backend.encode(backend.identity())), backend.identity()
    )


def test_backend_decode_rejects_forged_points():
    backend = get_backend("bn254")
    data = bytearray(backend.encode(backend.generator()))
    data[10] ^= 1  # corrupt a G1 coordinate
    with pytest.raises(CryptoError):
        backend.decode(bytes(data))


@pytest.mark.slow
def test_backend_pairing_symmetric_on_diagonals():
    backend = get_backend("bn254")
    g = backend.generator()
    a = backend.exp(g, 5)
    b = backend.exp(g, 7)
    assert backend.gt_eq(backend.pair(a, b), backend.pair(b, a))
    assert backend.gt_eq(backend.pair(a, b), backend.gt_exp(backend.pair(g, g), 35))


@pytest.mark.slow
def test_accumulator_roundtrip_on_bn254():
    """The paper's algebra runs unchanged on the BN backend."""
    import random
    from collections import Counter

    from repro.accumulators import ElementEncoder, make_accumulator

    backend = get_backend("bn254")
    encoder = ElementEncoder(2**32 - 1)
    _sk, acc = make_accumulator("acc2", backend, rng=random.Random(1))
    x1 = encoder.encode_multiset(Counter({"Van": 1, "Benz": 1}))
    x2 = encoder.encode_multiset(Counter({"Sedan": 1}))
    proof = acc.prove_disjoint(x1, x2)
    assert acc.verify_disjoint(acc.accumulate(x1), acc.accumulate(x2), proof)
    bad = acc.accumulate(encoder.encode_multiset(Counter({"Sedan": 2})))
    assert not acc.verify_disjoint(bad, acc.accumulate(x2), proof)
