"""SP restart/recovery through the serving stack.

The scenario the storage subsystem exists for: a ServiceEndpoint (or a
whole socket server) is stopped, the process forgotten, and a new one
opened from the same ``data_dir`` — clients must get byte-identical,
verifiable answers, and the endpoint must own the store's lifecycle.
"""

import random

import pytest

from repro import VChainNetwork
from repro.api import ServiceEndpoint, VChainClient, serve
from repro.core.sp import ServiceProvider
from repro.errors import ReproError, StorageError
from repro.storage import open_deployment
from repro.wire import encode_time_window_vo
from tests.conftest import make_objects


def _mine_network(tmp_path, n_blocks=6, seed=31):
    net = VChainNetwork.create(seed=seed, data_dir=tmp_path)
    rng = random.Random(seed)
    for h in range(n_blocks):
        net.mine(make_objects(rng, 3, h * 3, h * 10), timestamp=h * 10)
    return net


def _window_query(client):
    return (
        client.query()
        .window(0, 1000)
        .range(low=(0, 0), high=(200, 200))
        .execute()
    )


def test_endpoint_reopens_with_identical_answers(tmp_path):
    net = _mine_network(tmp_path)
    before = _window_query(net.client)
    before.raise_for_forgery()
    backend = net.accumulator.backend
    vo_before = encode_time_window_vo(backend, before.vo)
    net.close()

    # "new process": only the data_dir carries over
    endpoint = ServiceEndpoint.open(tmp_path)
    client = VChainClient.local(endpoint)
    after = _window_query(client)
    after.raise_for_forgery()
    assert [o.object_id for o in after.results] == [o.object_id for o in before.results]
    assert encode_time_window_vo(backend, after.vo) == vo_before
    endpoint.close()


def test_opened_endpoint_owns_the_store(tmp_path):
    _mine_network(tmp_path, n_blocks=2).close()
    endpoint = ServiceEndpoint.open(tmp_path)
    store = endpoint.sp.chain.store
    endpoint.close()
    with pytest.raises(StorageError, match="closed"):
        store.append(object())
    with pytest.raises(ReproError, match="closed"):
        _ = endpoint.time_window_query(None)


def test_open_with_bad_options_does_not_leak_the_store(tmp_path):
    _mine_network(tmp_path, n_blocks=2).close()
    with pytest.raises(ValueError, match="max_workers"):
        ServiceEndpoint.open(tmp_path, max_workers=0)
    # the store was closed on failure, so the directory reopens cleanly
    endpoint = ServiceEndpoint.open(tmp_path)
    assert len(endpoint.sp.chain) == 2
    endpoint.close()


def test_plain_endpoint_leaves_store_open(tmp_path):
    net = _mine_network(tmp_path, n_blocks=2)
    endpoint = ServiceEndpoint(net.sp)
    endpoint.close()
    # the network still owns its store; mining continues after endpoint death
    rng = random.Random(0)
    net.mine(make_objects(rng, 2, 50, 20), timestamp=20)
    net.close()


def test_service_provider_open_round_trip(tmp_path):
    net = _mine_network(tmp_path, n_blocks=3)
    headers = [h.block_hash() for h in net.chain.headers()]
    net.close()
    sp = ServiceProvider.open(tmp_path)
    assert [h.block_hash() for h in sp.chain.headers()] == headers
    sp.close()


def test_socket_server_restart_recovery(tmp_path):
    """Kill the serving process, relaunch from disk, answers unchanged."""
    net = _mine_network(tmp_path)
    expected = [o.object_id for o in _window_query(net.client).results]
    net.close()

    accumulator, encoder, params = open_deployment(tmp_path)

    first = serve(tmp_path)
    client = VChainClient.connect(first.address, accumulator, encoder, params)
    resp = _window_query(client)
    resp.raise_for_forgery()
    assert [o.object_id for o in resp.results] == expected
    client.close()
    first.stop()
    first.endpoint.close()  # simulated crash would be fine too: log is fsync'd

    second = serve(tmp_path)
    client = VChainClient.connect(second.address, accumulator, encoder, params)
    resp = _window_query(client)
    resp.raise_for_forgery()
    assert [o.object_id for o in resp.results] == expected
    client.close()
    second.stop()
    second.endpoint.close()


def test_reopened_network_serves_subscriptions(tmp_path):
    """The subscription path works over a reopened chain too."""
    net = _mine_network(tmp_path, n_blocks=2)
    net.close()
    reopened = VChainNetwork.open(tmp_path)
    rng = random.Random(7)
    subscription = reopened.client.subscribe().range(low=(0, 0), high=(255, 255))
    with subscription.open() as stream:
        reopened.mine(make_objects(rng, 3, 90, 30), timestamp=30)
        deliveries = stream.poll()  # poll() verifies; forgery would raise
        assert deliveries and deliveries[0].results
        assert {o.object_id for o in deliveries[0].results} == {90, 91, 92}
    reopened.close()


def test_mining_continues_across_restarts(tmp_path):
    net = _mine_network(tmp_path, n_blocks=3, seed=11)
    net.close()
    middle = VChainNetwork.open(tmp_path)
    rng = random.Random(12)
    middle.mine(make_objects(rng, 3, 200, 30), timestamp=30)
    middle.close()
    final = VChainNetwork.open(tmp_path)
    assert len(final.chain) == 4
    resp = (
        final.client.query().window(25, 35).range(low=(0, 0), high=(255, 255)).execute()
    )
    resp.raise_for_forgery()
    assert {o.object_id for o in resp.results} == {200, 201, 202}
    final.close()
