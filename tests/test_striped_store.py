"""Striped, erasure-coded chain storage: degradation, repair, failover.

The contract under test is the acceptance scenario of the durability
tier: a ``k=4, m=2`` deployment keeps serving **byte-identical**
verified answers after any two stripe directories are lost, reports the
degradation in its health counters, rebuilds the losses by scrubbing,
and reopens from any surviving quorum — including in a different
"process" that never saw the originals.  Faults are injected with
:class:`~repro.testing.DiskFaultStore`, so every scenario is scripted
and deterministic.
"""

import itertools
import json
import random
import shutil
import warnings
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import VChainNetwork
from repro.errors import StorageError
from repro.storage import (
    FileBlockStore,
    StorageWarning,
    StripedBlockStore,
    discover_stripe_dirs,
    load_manifest,
    open_chain_setup,
    open_deployment,
)
from repro.storage.store import LOCK_NAME, MANIFEST_NAME
from repro.storage.striped import _SIDX_ENTRY, _SREC_HEAD, STRIPE_INDEX_NAME
from repro.storage.__main__ import main as storage_cli
from repro.testing import DiskFaultStore
from repro.wire import encode_block, encode_time_window_vo
from tests.conftest import make_objects

K, M = 4, 2
N_BLOCKS = 5
SEED = 47


def mine_striped(parent, n_blocks=N_BLOCKS, seed=SEED, stripes=K, parity=M):
    net = VChainNetwork.create(
        seed=seed, data_dir=parent, stripes=stripes, parity=parity
    )
    rng = random.Random(seed)
    for h in range(n_blocks):
        net.mine(make_objects(rng, 3, h * 3, h * 10), timestamp=h * 10)
    return net


def mine_memory(n_blocks, seed=SEED):
    net = VChainNetwork.create(seed=seed)
    rng = random.Random(seed)
    for h in range(n_blocks):
        net.mine(make_objects(rng, 3, h * 3, h * 10), timestamp=h * 10)
    return net


def chain_bytes(net):
    backend = net.accumulator.backend
    return [encode_block(backend, block) for block in net.sp.chain]


def query_vo(net):
    response = (
        net.client.query()
        .window(0, 1000)
        .range(low=(0, 0), high=(200, 200))
        .execute()
    )
    response.raise_for_forgery()
    return (
        [o.object_id for o in response.results],
        encode_time_window_vo(net.accumulator.backend, response.vo),
    )


def node_dirs(parent):
    return sorted(Path(parent).glob("node-*"))


# -- layout and round trip -----------------------------------------------------
def test_create_layout_and_manifest(tmp_path):
    net = mine_striped(tmp_path, n_blocks=2)
    dirs = node_dirs(tmp_path)
    assert [d.name for d in dirs] == [f"node-{i:02d}" for i in range(K + M)]
    for d in dirs:
        manifest = load_manifest(d)
        assert manifest["striping"] == {"k": K, "m": M, "nodes": K + M}
        assert json.loads((d / "NODE.json").read_text())["nodes"] == K + M
    net.close()


def test_plain_store_refuses_striped_node_dir(tmp_path):
    mine_striped(tmp_path, n_blocks=1).close()
    backend = VChainNetwork.create(seed=1).accumulator.backend
    with pytest.raises(StorageError, match="striped"):
        FileBlockStore.open(node_dirs(tmp_path)[0], backend)


def test_striped_open_refuses_plain_dir(tmp_path):
    net = VChainNetwork.create(seed=1, data_dir=tmp_path)
    backend = net.accumulator.backend
    net.close()
    with pytest.raises(StorageError):
        StripedBlockStore.open(tmp_path, backend)


def test_reopen_round_trip_byte_identical(tmp_path):
    net = mine_striped(tmp_path)
    reference = chain_bytes(net)
    ids_before, vo_before = query_vo(net)
    net.close()

    reopened = VChainNetwork.open(tmp_path)
    assert chain_bytes(reopened) == reference
    ids_after, vo_after = query_vo(reopened)
    assert ids_after == ids_before
    assert vo_after == vo_before
    health = reopened.sp.chain.store.health()
    assert health["nodes_online"] == K + M
    assert health["blocks"] == N_BLOCKS
    reopened.close()


def test_matches_plain_store_answers(tmp_path):
    striped = mine_striped(tmp_path / "striped")
    plain = VChainNetwork.create(seed=SEED, data_dir=tmp_path / "plain")
    rng = random.Random(SEED)
    for h in range(N_BLOCKS):
        plain.mine(make_objects(rng, 3, h * 3, h * 10), timestamp=h * 10)
    assert chain_bytes(striped) == chain_bytes(plain)
    assert query_vo(striped) == query_vo(plain)
    striped.close()
    plain.close()


# -- degraded operation --------------------------------------------------------
@pytest.mark.parametrize("lost", [(0, 1), (2, 5), (4, 5)])
def test_any_two_lost_dirs_still_serve_byte_identical(tmp_path, lost):
    net = mine_striped(tmp_path)
    reference = chain_bytes(net)
    ids_ref, vo_ref = query_vo(net)
    net.close()

    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    for index in lost:
        faults.lose_node(index)

    with pytest.warns(StorageWarning, match="offline"):
        degraded = VChainNetwork.open(tmp_path)
    assert chain_bytes(degraded) == reference
    assert query_vo(degraded) == (ids_ref, vo_ref)
    health = degraded.sp.chain.store.health()
    assert health["nodes_offline"] == 2
    assert health["nodes_online"] == 4
    degraded.close()


def test_losing_more_than_m_dirs_is_unrecoverable(tmp_path):
    net = mine_striped(tmp_path)
    backend = net.accumulator.backend
    net.close()
    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    for index in (0, 1, 2):
        faults.lose_node(index)
    with pytest.raises(StorageError, match="k=4 are needed"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", StorageWarning)
            StripedBlockStore.open(tmp_path, backend)
    # refusal must not have truncated the survivors: a rejoined node may
    # still need every one of their stripe records
    for node_dir in node_dirs(tmp_path):
        entries = (node_dir / STRIPE_INDEX_NAME).stat().st_size // _SIDX_ENTRY.size
        assert entries == N_BLOCKS


def test_failover_open_from_explicit_survivor_list(tmp_path):
    """Standby-SP failover: a new process given only the surviving
    directories serves the same chain."""
    net = mine_striped(tmp_path)
    reference = chain_bytes(net)
    ids_ref, vo_ref = query_vo(net)
    net.close()

    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.lose_node(1)
    faults.lose_node(3)
    survivors = [d for d in node_dirs(tmp_path)]

    with pytest.warns(StorageWarning, match="offline"):
        standby = VChainNetwork.open(survivors)
    assert chain_bytes(standby) == reference
    assert query_vo(standby) == (ids_ref, vo_ref)
    # the standby keeps mining where the primary stopped
    rng = random.Random(99)
    standby.mine(make_objects(rng, 3, 100, 500), timestamp=500)
    assert len(standby.sp.chain) == N_BLOCKS + 1
    standby.close()


def test_chain_setup_and_deployment_accept_survivor_lists(tmp_path):
    mine_striped(tmp_path).close()
    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.lose_node(0)
    survivors = node_dirs(tmp_path)  # the glob now only sees five
    assert len(survivors) == K + M - 1
    with pytest.warns(StorageWarning, match="offline"):
        setup = open_chain_setup(survivors)
    assert len(setup.chain) == N_BLOCKS
    setup.close()
    # the manifest-only reader answers from any one replica too
    accumulator, _encoder, params = open_deployment([survivors[-1]])
    assert accumulator is not None and params is not None


def test_degraded_appends_then_scrub_restores_full_redundancy(tmp_path):
    net = mine_striped(tmp_path)
    net.close()
    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.lose_node(2)
    faults.lose_node(4)

    with pytest.warns(StorageWarning, match="offline"):
        degraded = VChainNetwork.open(tmp_path)
    rng = random.Random(7)
    degraded.mine(make_objects(rng, 3, 200, 600), timestamp=600)
    reference = chain_bytes(degraded)
    store = degraded.sp.chain.store
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StorageWarning)
        report = store.scrub()
    assert report.rebuilt_nodes == 2
    assert report.offline_nodes == 0
    assert store.health()["nodes_online"] == K + M
    degraded.close()

    # after the scrub the rebuilt nodes carry the degraded-era block too
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", StorageWarning)
        reopened = VChainNetwork.open(tmp_path)
    assert not caught, [str(w.message) for w in caught]
    assert chain_bytes(reopened) == reference
    reopened.close()


# -- scrubbing and read repair -------------------------------------------------
def test_scrub_rebuilds_lost_nodes(tmp_path):
    mine_striped(tmp_path).close()
    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.lose_node(0)
    faults.lose_node(5)

    with pytest.warns(StorageWarning, match="offline"):
        net = VChainNetwork.open(tmp_path)
    store = net.sp.chain.store
    with pytest.warns(StorageWarning, match="rebuilt"):
        report = store.scrub()
    assert report.rebuilt_nodes == 2
    assert report.offline_nodes == 0
    assert report.wrapped
    health = store.health()
    assert health["nodes_online"] == K + M
    assert health["rebuilt_nodes"] == 2
    net.close()

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", StorageWarning)
        clean = VChainNetwork.open(tmp_path)
    assert not caught, [str(w.message) for w in caught]
    clean.close()


def test_bitrot_is_read_repaired_on_open(tmp_path):
    net = mine_striped(tmp_path)
    reference = chain_bytes(net)
    net.close()

    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.bitrot(1, height=2)
    faults.bitrot(4, height=0, offset=3)

    with pytest.warns(StorageWarning):
        reopened = VChainNetwork.open(tmp_path)
    assert chain_bytes(reopened) == reference
    assert reopened.sp.chain.store.health()["repaired_stripes"] >= 2
    reopened.close()

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", StorageWarning)
        clean = VChainNetwork.open(tmp_path)
    assert not caught, [str(w.message) for w in caught]
    assert chain_bytes(clean) == reference
    clean.close()


def test_bitrot_is_caught_by_scrub_on_live_store(tmp_path):
    net = mine_striped(tmp_path)
    reference = chain_bytes(net)
    store = net.sp.chain.store
    store.sync()
    faults = DiskFaultStore(store=store)
    faults.bitrot(3, height=1)

    with pytest.warns(StorageWarning, match="repair"):
        report = store.scrub()
    assert report.repaired >= 1
    assert chain_bytes(net) == reference
    net.close()

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", StorageWarning)
        clean = VChainNetwork.open(tmp_path)
    assert not caught, [str(w.message) for w in caught]
    clean.close()


def test_live_node_loss_shows_in_health_and_scrub_rebuilds(tmp_path):
    net = mine_striped(tmp_path)
    store = net.sp.chain.store
    faults = DiskFaultStore(store=store)
    assert store.health()["nodes_offline"] == 0

    faults.lose_node(2)
    assert store.health()["nodes_offline"] == 1  # detected before any scrub

    with pytest.warns(StorageWarning) as caught:
        report = store.scrub()
    assert any("rebuilt" in str(w.message) for w in caught)
    assert report.rebuilt_nodes == 1
    assert store.health()["nodes_offline"] == 0
    net.close()


def test_eio_reads_are_survived_and_logged(tmp_path):
    net = mine_striped(tmp_path)
    reference = chain_bytes(net)
    store = net.sp.chain.store
    faults = DiskFaultStore(store=store)
    faults.eio_on_read(1)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StorageWarning)
        store.scrub()
    assert any(kind == "eio" and index == 1 for kind, index, _ in faults.injected)
    faults.heal()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StorageWarning)
        store.scrub()
    assert store.health()["nodes_online"] == K + M
    assert chain_bytes(net) == reference
    net.close()


def test_short_write_on_minority_is_repaired(tmp_path):
    net = mine_striped(tmp_path)
    reference = chain_bytes(net)
    net.close()
    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.short_write(0, segment_bytes=5)
    faults.short_write(3, segment_bytes=17, index_bytes=10)

    with pytest.warns(StorageWarning):
        reopened = VChainNetwork.open(tmp_path)
    assert chain_bytes(reopened) == reference  # nothing lost: quorum intact
    reopened.close()


def test_scrub_step_is_incremental(tmp_path):
    net = mine_striped(tmp_path)
    store = net.sp.chain.store
    report = store.scrub_step(batch=2)
    assert report.checked > 0
    assert not report.wrapped
    health = store.health()
    assert 0 < health["scrub_position"] < N_BLOCKS
    while not report.wrapped:
        report = store.scrub_step(batch=2)
    assert store.health()["scrub_cycles"] == 1
    net.close()


# -- maintenance CLI -----------------------------------------------------------
def test_cli_status_reports_health(tmp_path, capsys):
    mine_striped(tmp_path, n_blocks=2).close()
    assert storage_cli(["status", str(tmp_path)]) == 0
    health = json.loads(capsys.readouterr().out)
    assert health["nodes_online"] == K + M
    assert health["blocks"] == 2

    # a degraded deployment exits 1 so monitoring cron jobs can alert
    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.lose_node(2)
    assert storage_cli(["status", str(tmp_path)]) == 1
    health = json.loads(capsys.readouterr().out)
    assert health["nodes_offline"] == 1


def test_cli_scrub_rebuilds_and_reports(tmp_path, capsys):
    mine_striped(tmp_path, n_blocks=2).close()
    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.lose_node(1)
    assert storage_cli(["scrub", str(tmp_path)]) == 0
    out, err = capsys.readouterr()
    assert "rebuilt 1 node(s)" in out
    assert "note:" in err  # degradation surfaced, not swallowed
    assert json.loads(out[out.index("{") :])["nodes_online"] == K + M


def test_cli_scrub_refuses_non_deployment(tmp_path, capsys):
    assert storage_cli(["scrub", str(tmp_path)]) == 2
    assert "error:" in capsys.readouterr().err


def test_discover_stripe_dirs(tmp_path):
    mine_striped(tmp_path, n_blocks=1).close()
    dirs = node_dirs(tmp_path)
    assert discover_stripe_dirs(tmp_path) == dirs  # parent
    assert discover_stripe_dirs(dirs[2]) == dirs  # one node -> siblings
    assert discover_stripe_dirs(dirs[:3]) == dirs[:3]  # explicit list
    assert discover_stripe_dirs(tmp_path / "nope") is None


# -- plain-store regressions (the satellite hardening) -------------------------
def test_corrupt_manifest_raises_typed_error(tmp_path):
    VChainNetwork.create(seed=1, data_dir=tmp_path).close()
    manifest_path = tmp_path / MANIFEST_NAME

    manifest_path.write_text("{not json")
    with pytest.raises(StorageError, match=str(manifest_path)):
        load_manifest(tmp_path)

    manifest_path.write_text('"a string, not an object"')
    with pytest.raises(StorageError, match="JSON object"):
        load_manifest(tmp_path)

    manifest_path.write_text('{"format_version": 1}')
    with pytest.raises(StorageError, match="missing required key"):
        load_manifest(tmp_path)


def test_stale_lock_from_dead_pid_is_reclaimed_with_warning(tmp_path):
    VChainNetwork.create(seed=1, data_dir=tmp_path).close()
    # a SIGKILL'd holder leaves its PID stamped in the LOCK file; use a
    # PID from way outside the live range so the probe sees it as dead
    (tmp_path / LOCK_NAME).write_bytes(b"99999999")
    with pytest.warns(StorageWarning, match="reclaiming stale"):
        net = VChainNetwork.open(tmp_path)
    net.close()
    # a clean close clears the stamp: no warning on the next open
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", StorageWarning)
        net = VChainNetwork.open(tmp_path)
    assert not caught, [str(w.message) for w in caught]
    net.close()


# -- crash-point sweep (property) ----------------------------------------------
@pytest.fixture(scope="module")
def crashed_master(tmp_path_factory):
    """One fully mined striped deployment, cloned per crash example."""
    parent = tmp_path_factory.mktemp("striped-master")
    net = mine_striped(parent)
    reference = chain_bytes(net)
    net.close()
    return parent, reference


_reference_prefixes: dict[int, tuple[list, bytes]] = {}


def reference_prefix(length):
    """Expected (result ids, VO bytes) for a chain of the first ``length``
    blocks — mined fresh in memory, so the crashed store's answer is
    compared against an independent reconstruction."""
    if length not in _reference_prefixes:
        net = mine_memory(length)
        _reference_prefixes[length] = query_vo(net)
    return _reference_prefixes[length]


def crash_at(parent, height, completed_nodes, partial_bytes):
    """Rewind a full deployment to the instant a crash hit block
    ``height``: nodes ``< completed_nodes`` hold the record, the next
    node holds ``partial_bytes`` of it, the rest never saw it."""
    for j, node_dir in enumerate(node_dirs(parent)):
        index_path = node_dir / STRIPE_INDEX_NAME
        raw = index_path.read_bytes()
        entry = _SIDX_ENTRY.unpack_from(raw, height * _SIDX_ENTRY.size)
        record_off, stripe_len = entry[2], entry[3]
        record_len = _SREC_HEAD.size + stripe_len
        segment = node_dir / f"seg-{entry[1]:05d}.log"
        if j < completed_nodes:
            keep_seg = record_off + record_len
            keep_idx = (height + 1) * _SIDX_ENTRY.size
        elif j == completed_nodes:
            keep_seg = record_off + (partial_bytes % record_len)
            keep_idx = height * _SIDX_ENTRY.size
        else:
            keep_seg = record_off
            keep_idx = height * _SIDX_ENTRY.size
        with open(segment, "r+b") as handle:
            handle.truncate(keep_seg)
        with open(index_path, "r+b") as handle:
            handle.truncate(keep_idx)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    height=st.integers(min_value=1, max_value=N_BLOCKS - 1),
    completed=st.integers(min_value=0, max_value=K + M),
    partial=st.integers(min_value=1, max_value=10_000),
)
def test_crash_point_sweep_reopens_to_byte_identical_prefix(
    crashed_master, tmp_path_factory, height, completed, partial
):
    """Sweep a crash through every write of the segment: whatever the
    instant, reopen yields a clean prefix of the chain whose blocks and
    VOs are byte-identical to an independently mined reference."""
    master, reference = crashed_master
    parent = tmp_path_factory.mktemp("crash")
    for node_dir in node_dirs(master):
        shutil.copytree(node_dir, parent / node_dir.name)
    crash_at(parent, height, completed, partial)

    # a block survives its crash iff >= k nodes finished the append
    expected_len = height + 1 if completed >= K else height
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StorageWarning)
        net = VChainNetwork.open(parent)
    assert len(net.sp.chain) == expected_len
    assert chain_bytes(net) == reference[:expected_len]
    assert query_vo(net) == reference_prefix(expected_len)
    net.close()

    # the repair was durable: the second open has nothing left to fix
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", StorageWarning)
        net = VChainNetwork.open(parent)
    assert not caught, [str(w.message) for w in caught]
    assert len(net.sp.chain) == expected_len
    net.close()
