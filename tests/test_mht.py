"""Tests for the MHT baseline (sorted Merkle trees per attribute subset)."""

import random

import pytest

from repro.baselines.mht import MHTBaseline, SortedMHT
from repro.errors import VerificationError
from tests.conftest import make_objects


@pytest.fixture()
def objects():
    return make_objects(random.Random(21), 10, start_id=0, timestamp=0, dims=3)


def test_root_deterministic(objects):
    a = SortedMHT(objects, key_dims=(0,))
    b = SortedMHT(list(reversed(objects)), key_dims=(0,))
    assert a.root == b.root  # sorting canonicalises input order


def test_root_depends_on_key_dims(objects):
    assert SortedMHT(objects, (0,)).root != SortedMHT(objects, (1,)).root


def test_range_query_returns_correct_results(objects):
    tree = SortedMHT(objects, key_dims=(0,))
    results, vo = tree.range_query(50, 200)
    expected = sorted(
        (o for o in objects if 50 <= o.vector[0] <= 200), key=lambda o: o.vector[0]
    )
    assert [o.object_id for o in results] == [o.object_id for o in expected]
    SortedMHT.verify_range(tree.root, 50, 200, results, vo)


def test_empty_range_verifies(objects):
    tree = SortedMHT(objects, key_dims=(0,))
    results, vo = tree.range_query(1000, 2000)
    assert results == []
    SortedMHT.verify_range(tree.root, 1000, 2000, results, vo)


def test_full_range(objects):
    tree = SortedMHT(objects, key_dims=(0,))
    results, vo = tree.range_query(0, 255)
    assert len(results) == len(objects)
    SortedMHT.verify_range(tree.root, 0, 255, results, vo)


def test_dropped_result_detected(objects):
    tree = SortedMHT(objects, key_dims=(0,))
    results, vo = tree.range_query(0, 255)
    with pytest.raises(VerificationError):
        SortedMHT.verify_range(tree.root, 0, 255, results[:-1], vo)


def test_tampered_leaf_detected(objects):
    tree = SortedMHT(objects, key_dims=(0,))
    results, vo = tree.range_query(0, 255)
    key, obj = vo["leaves"][0]
    from repro.chain.object import DataObject

    forged = DataObject(
        object_id=obj.object_id,
        timestamp=obj.timestamp,
        vector=obj.vector,
        keywords=obj.keywords | {"evil"},
    )
    vo["leaves"][0] = (key, forged)
    with pytest.raises(VerificationError):
        SortedMHT.verify_range(tree.root, 0, 255, results, vo)


def test_wrong_root_detected(objects):
    tree = SortedMHT(objects, key_dims=(0,))
    results, vo = tree.range_query(0, 100)
    with pytest.raises(VerificationError):
        SortedMHT.verify_range(b"\x00" * 32, 0, 100, results, vo)


def test_boundary_leaves_present(objects):
    tree = SortedMHT(objects, key_dims=(0,))
    keys = sorted(o.vector[0] for o in objects)
    mid_low, mid_high = keys[3], keys[6]
    results, vo = tree.range_query(mid_low, mid_high)
    SortedMHT.verify_range(tree.root, mid_low, mid_high, results, vo)
    leaf_keys = [k[0] for k, _o in vo["leaves"]]
    assert leaf_keys[0] < mid_low or vo["span"][0] == 0
    assert leaf_keys[-1] > mid_high or vo["span"][1] == len(objects)


def test_baseline_subset_counts():
    assert len(MHTBaseline(1).attribute_subsets()) == 1
    assert len(MHTBaseline(3).attribute_subsets()) == 7
    assert len(MHTBaseline(5).attribute_subsets()) == 31  # 2^d - 1


def test_baseline_ads_grows_exponentially(objects):
    small = MHTBaseline(1).build_block_ads(objects)
    large = MHTBaseline(3).build_block_ads(objects)
    assert MHTBaseline.ads_nbytes(large) > 5 * MHTBaseline.ads_nbytes(small)


def test_max_subset_cap(objects):
    capped = MHTBaseline(5, max_subset=2)
    assert len(capped.attribute_subsets()) == 5 + 10
