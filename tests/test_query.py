"""Tests for the query model (CNF conditions, range folding)."""

from collections import Counter

import pytest

from repro.chain.object import DataObject
from repro.core.query import (
    CNFCondition,
    Query,
    RangeCondition,
    SubscriptionQuery,
    TimeWindowQuery,
)
from repro.errors import QueryError


def obj(vector=(4, 2), keywords=("Sedan", "Benz"), ts=0, oid=1):
    return DataObject(
        object_id=oid, timestamp=ts, vector=vector, keywords=frozenset(keywords)
    )


def test_cnf_of_builder():
    cnf = CNFCondition.of([["Benz", "BMW"], ["Sedan"]])
    assert len(cnf.clauses) == 2
    assert frozenset({"Sedan"}) in cnf.clauses


def test_cnf_rejects_empty_clause():
    with pytest.raises(QueryError):
        CNFCondition.of([[]])


def test_cnf_true_matches_everything():
    assert CNFCondition.true().matches(Counter())
    assert CNFCondition.true().mismatch_clause(Counter()) is None


def test_cnf_matches_semantics():
    cnf = CNFCondition.of([["Benz", "BMW"], ["Sedan"]])
    assert cnf.matches(Counter({"Sedan": 1, "Benz": 1}))
    assert not cnf.matches(Counter({"Sedan": 1, "Audi": 1}))
    assert not cnf.matches(Counter({"Van": 1, "Benz": 1}))


def test_mismatch_clause_returns_disjoint_clause():
    cnf = CNFCondition.of([["Benz", "BMW"], ["Sedan"]])
    clause = cnf.mismatch_clause(Counter({"Van": 1, "Benz": 1}))
    assert clause == frozenset({"Sedan"})
    assert cnf.mismatch_clause(Counter({"Sedan": 1, "Benz": 1})) is None


def test_cnf_conjoin():
    a = CNFCondition.of([["x"]])
    b = CNFCondition.of([["y", "z"]])
    combined = a.conjoin(b)
    assert len(combined.clauses) == 2


def test_cnf_nbytes_counts_terms():
    cnf = CNFCondition.of([["ab", "c"]])
    assert cnf.nbytes() == 3


def test_range_condition_validation():
    with pytest.raises(QueryError):
        RangeCondition(low=(1,), high=(0,))
    with pytest.raises(QueryError):
        RangeCondition(low=(0, 0), high=(1,))


def test_range_contains():
    cond = RangeCondition(low=(0, 10), high=(5, 20))
    assert cond.contains((3, 15))
    assert not cond.contains((6, 15))
    assert not cond.contains((3, 9))
    with pytest.raises(QueryError):
        cond.contains((3,))


def test_range_contains_ignores_extra_dims():
    cond = RangeCondition(low=(0,), high=(5,))
    assert cond.contains((3, 999))


def test_range_to_cnf_one_clause_per_dim():
    cond = RangeCondition(low=(0, 3), high=(6, 4))
    cnf = cond.to_cnf(3)
    assert len(cnf.clauses) == 2


def test_query_transformed_combines_range_and_boolean():
    query = Query(
        numeric=RangeCondition(low=(0,), high=(6,)),
        boolean=CNFCondition.of([["Sedan"]]),
    )
    cnf = query.transformed(3)
    assert len(cnf.clauses) == 2
    assert frozenset({"Sedan"}) in cnf.clauses


def test_query_without_numeric():
    query = Query(boolean=CNFCondition.of([["Sedan"]]))
    assert query.transformed(3) == query.boolean
    assert query.in_window(123456)


def test_matches_object_full_semantics():
    query = Query(
        numeric=RangeCondition(low=(0, 0), high=(6, 4)),
        boolean=CNFCondition.of([["Benz", "BMW"]]),
    )
    assert query.matches_object(obj(vector=(4, 2), keywords=("Benz",)), bits=3)
    assert not query.matches_object(obj(vector=(7, 2), keywords=("Benz",)), bits=3)
    assert not query.matches_object(obj(vector=(4, 2), keywords=("Audi",)), bits=3)


def test_matches_object_consistent_with_cnf_on_transformed_attrs():
    query = Query(
        numeric=RangeCondition(low=(0, 0), high=(6, 4)),
        boolean=CNFCondition.of([["Benz"]]),
    )
    o = obj(vector=(4, 2), keywords=("Benz",))
    cnf = query.transformed(3)
    assert query.matches_object(o, 3) == cnf.matches(o.attribute_multiset(3))


def test_time_window_query_window_check():
    query = TimeWindowQuery(start=10, end=20)
    assert query.in_window(10) and query.in_window(20)
    assert not query.in_window(9) and not query.in_window(21)


def test_time_window_rejects_inverted_window():
    with pytest.raises(QueryError):
        TimeWindowQuery(start=5, end=4)


def test_subscription_query_is_unwindowed():
    query = SubscriptionQuery(boolean=CNFCondition.of([["x"]]))
    assert query.in_window(0) and query.in_window(10**12)
