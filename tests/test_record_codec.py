"""Unit tests for the .vrec session-recording codec and recorder."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.testing import ManualClock, SessionRecorder, load_recording, save_recording
from repro.wire import (
    DIR_REQUEST,
    DIR_RESPONSE,
    RECORD_MAGIC,
    RECORD_VERSION,
    RecordedFrame,
    SessionRecording,
    WireError,
    decode_recording,
    encode_recording,
)


def _frames(payloads):
    return tuple(
        RecordedFrame(
            seq=i,
            channel=0,
            direction=DIR_REQUEST if i % 2 == 0 else DIR_RESPONSE,
            timestamp_us=i,
            payload=payload,
        )
        for i, payload in enumerate(payloads)
    )


@settings(max_examples=30, deadline=None)
@given(
    label=st.text(max_size=16),
    meta=st.dictionaries(st.text(max_size=8), st.text(max_size=8), max_size=4),
    payloads=st.lists(st.binary(max_size=64), max_size=8),
)
def test_recording_roundtrip(label, meta, payloads):
    recording = SessionRecording(label=label, meta=meta, frames=_frames(payloads))
    decoded = decode_recording(encode_recording(recording))
    assert decoded == recording


def test_encoding_starts_with_magic_and_version():
    blob = encode_recording(SessionRecording(label="x", meta={}, frames=()))
    assert blob.startswith(RECORD_MAGIC)
    assert blob[len(RECORD_MAGIC)] == RECORD_VERSION


def test_bad_magic_rejected():
    blob = bytearray(encode_recording(SessionRecording("x", {}, ())))
    blob[0] ^= 0xFF
    with pytest.raises(WireError, match="magic"):
        decode_recording(bytes(blob))


def test_future_version_rejected():
    blob = bytearray(encode_recording(SessionRecording("x", {}, ())))
    blob[len(RECORD_MAGIC)] = RECORD_VERSION + 1
    with pytest.raises(WireError, match="version"):
        decode_recording(bytes(blob))


def test_non_increasing_seq_rejected():
    frames = (
        RecordedFrame(5, 0, DIR_REQUEST, 0, b"a"),
        RecordedFrame(5, 0, DIR_RESPONSE, 1, b"b"),
    )
    with pytest.raises(WireError, match="seq"):
        encode_recording(SessionRecording("x", {}, frames))


def test_meta_is_canonically_sorted():
    ab = SessionRecording("x", {"a": "1", "b": "2"}, ())
    ba = SessionRecording("x", {"b": "2", "a": "1"}, ())
    assert encode_recording(ab) == encode_recording(ba)


def test_recorder_assigns_global_channels_and_seq():
    recorder = SessionRecorder(label="unit")
    client_tap = recorder.tap()
    server_tap = recorder.tap()
    client_tap(0, "request", b"q1")
    server_tap(0, "request", b"q1")
    server_tap(0, "response", b"r1")
    client_tap(0, "response", b"r1")
    client_tap(1, "request", b"q2")  # client reconnected: new local channel
    recording = recorder.recording()
    assert [f.seq for f in recording.frames] == [0, 1, 2, 3, 4]
    # (tap, local channel) pairs map to distinct global channels
    assert [f.channel for f in recording.frames] == [0, 1, 1, 0, 2]
    assert [f.direction for f in recording.frames] == [
        DIR_REQUEST,
        DIR_REQUEST,
        DIR_RESPONSE,
        DIR_RESPONSE,
        DIR_REQUEST,
    ]


def test_recorder_timestamps_follow_the_clock():
    clock = ManualClock(start=2.0)
    recorder = SessionRecorder(label="unit", clock=clock)
    tap = recorder.tap()
    tap(0, "request", b"a")
    clock.advance(0.5)
    tap(0, "response", b"b")
    stamps = [f.timestamp_us for f in recorder.recording().frames]
    assert stamps == [2_000_000, 2_500_000]


def test_recorder_is_thread_safe():
    recorder = SessionRecorder(label="unit")
    taps = [recorder.tap() for _ in range(4)]

    def pump(tap):
        for i in range(50):
            tap(0, "request", bytes([i]))

    threads = [threading.Thread(target=pump, args=(tap,)) for tap in taps]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    recording = recorder.recording()
    assert len(recording.frames) == 200
    assert [f.seq for f in recording.frames] == list(range(200))


def test_save_and_load_roundtrip(tmp_path):
    recording = SessionRecording(
        label="unit", meta={"k": "v"}, frames=_frames([b"x", b"y"])
    )
    path = tmp_path / "session.vrec"
    save_recording(recording, path)
    assert load_recording(path) == recording
