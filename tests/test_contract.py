"""Tests for the smart-contract logical chain (Appendix E)."""

import random

import pytest

from repro.chain import ProtocolParams
from repro.chain.light import LightNode
from repro.contract import HostChain, VChainContract
from repro.core.prover import QueryProcessor
from repro.core.query import CNFCondition, TimeWindowQuery
from repro.core.verifier import QueryVerifier
from repro.errors import ChainError
from tests.conftest import make_objects

PARAMS = ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0)


@pytest.fixture()
def contract(sim_acc2, encoder_q):
    host = HostChain()
    contract = VChainContract(host, sim_acc2, encoder_q, PARAMS)
    rng = random.Random(30)
    oid = 0
    for h in range(10):
        objs = make_objects(rng, 3, oid, timestamp=h * 10)
        oid += 3
        contract.build_vchain(objs, timestamp=h * 10)
    return contract


def test_contract_builds_logical_chain(contract):
    assert len(contract.chain) == 10
    assert len(contract.storage) == 10
    assert contract.tip_hash in contract.storage


def test_contract_emits_events(contract):
    events = contract.host.events
    assert len(events) == 10
    assert all(e.name == "VChainBlockBuilt" for e in events)
    assert [e.payload["height"] for e in events] == list(range(10))


def test_gas_metering(contract):
    assert contract.host.gas_used == 10 * 3 * contract.host.gas_per_object


def test_block_lookup_by_hash(contract):
    block = contract.block_by_hash(contract.tip_hash)
    assert block.height == 9
    with pytest.raises(ChainError):
        contract.block_by_hash(b"\x00" * 32)


def test_empty_call_rejected(contract):
    with pytest.raises(ChainError):
        contract.build_vchain([], timestamp=99)


def test_queries_verify_over_contract_chain(contract, sim_acc2, encoder_q):
    """The logical chain is protocol-compatible: the standard prover and
    verifier run against it unchanged."""
    light = LightNode()
    light.sync(contract.chain)
    processor = QueryProcessor(contract.chain, sim_acc2, encoder_q, PARAMS)
    verifier = QueryVerifier(light, sim_acc2, encoder_q, PARAMS)
    query = TimeWindowQuery(start=0, end=90, boolean=CNFCondition.of([["Benz", "BMW"]]))
    results, vo, _stats = processor.time_window_query(query)
    verified, _vstats = verifier.verify_time_window(query, results, vo)
    truth = sorted(
        o.object_id
        for b in contract.chain
        for o in b.objects
        if query.matches_object(o, PARAMS.bits)
    )
    assert sorted(o.object_id for o in verified) == truth
