"""VChainClient over the local transport: responses, streams, shims."""

import random
import warnings

import pytest

from repro import VChainClient, VChainNetwork
from repro.api import LocalTransport, ServiceEndpoint
from repro.api.response import VerifiedResponse
from repro.chain import ProtocolParams
from repro.errors import SubscriptionError, VerificationError
from tests.conftest import make_objects


@pytest.fixture()
def net():
    net = VChainNetwork.create(
        params=ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0),
        seed=21,
    )
    rng = random.Random(21)
    for height in range(8):
        net.mine(make_objects(rng, 3, height * 3, timestamp=height * 10),
                 timestamp=height * 10)
    return net


def _query(net):
    return (net.client.query()
            .window(0, 200)
            .range(low=(0,), high=(255,))
            .any_of("Benz", "BMW"))


def test_execute_returns_verified_response(net):
    resp = _query(net).execute()
    assert isinstance(resp, VerifiedResponse)
    assert resp.ok and resp.error is None
    assert resp.raise_for_forgery() is resp
    assert resp.vo_nbytes == resp.vo.nbytes(net.accumulator.backend) > 0
    assert resp.wall_seconds > 0
    assert resp.sp_seconds == resp.sp_stats.sp_seconds
    assert resp.user_seconds == resp.user_stats.user_seconds
    truth = sorted(
        o.object_id
        for b in net.chain for o in b.objects
        if resp.query.matches_object(o, net.params.bits)
    )
    assert sorted(o.object_id for o in resp.results) == truth


def test_response_unpacks_like_legacy_tuple(net):
    resp = _query(net).execute()
    results, vo, sp_stats, user_stats = resp
    assert results is resp.results and vo is resp.vo
    assert sp_stats is resp.sp_stats and user_stats is resp.user_stats


def test_client_syncs_headers_automatically(net):
    client = net.connect()  # fresh client, empty light node
    assert len(client.user.light) == 0
    resp = client.query().any_of("Benz").execute()
    assert resp.ok
    assert len(client.user.light) == len(net.chain)


class _TamperingTransport(LocalTransport):
    """An SP that silently drops the first result."""

    def time_window_query(self, query, batch=None):
        results, vo, stats = super().time_window_query(query, batch=batch)
        return results[1:], vo, stats


def test_forged_answer_is_captured_not_raised(net):
    client = VChainClient(
        _TamperingTransport(ServiceEndpoint(net.sp)),
        net.accumulator, net.encoder, net.params,
    )
    resp = client.query().any_of("Benz", "BMW").execute()
    assert not resp.ok
    assert resp.results == [] and resp.user_stats is None
    with pytest.raises(VerificationError):
        resp.raise_for_forgery()


def test_subscription_stream_lifecycle(net):
    client = net.client
    builder = client.subscribe().range(low=(0,), high=(255,)).any_of("Benz")
    with builder.open() as stream:
        rng = random.Random(5)
        block = net.mine(make_objects(rng, 4, 100, timestamp=500), timestamp=500)
        deliveries = stream.poll()
        assert [d.heights() for d in deliveries] == [[block.height]]
        expected = sorted(o.object_id for o in block.objects if "Benz" in o.keywords)
        assert sorted(o.object_id for o in deliveries[0].results) == expected
        assert deliveries[0].vo_nbytes > 0
        assert stream.poll() == []  # drained
    # the context manager deregistered server-side and client-side
    with pytest.raises(SubscriptionError):
        stream.poll()
    with pytest.raises(SubscriptionError):
        net.endpoint.poll(stream.query_id)


def test_lazy_stream_flush():
    net = VChainNetwork.create(
        params=ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0),
        seed=3,
    )
    client = net.connect(lazy=True)
    with client.subscribe().any_of("NoSuchKeyword").open() as stream:
        rng = random.Random(9)
        for height in range(4):
            net.mine(make_objects(rng, 2, height * 2, timestamp=height * 10),
                     timestamp=height * 10)
        assert stream.poll() == []  # all blocks mismatch: evidence is parked
        flushed = stream.flush()
        assert [d.results for d in flushed] == [[]]
        assert flushed[0].from_height == 0 and flushed[0].up_to_height == 3
        assert stream.flush() == []


def test_register_below_ingested_height_rejected(net):
    from repro.api import QueryBuilder

    with net.client.subscribe().any_of("Benz").open() as stream:
        net.mine(make_objects(random.Random(1), 2, 900, timestamp=900),
                 timestamp=900)
        stream.poll()  # ingests the chain into the engine
        late = QueryBuilder(subscription=True).any_of("Benz").build()
        with pytest.raises(SubscriptionError):
            net.endpoint.register(late, since_height=0)
        # but "from the next block" is always fine
        query_id, since = net.endpoint.register(late)
        assert since == len(net.chain)
        net.endpoint.deregister(query_id)


def test_engine_options_only_for_fresh_endpoints(net):
    with pytest.raises(ValueError):
        VChainClient.local(net.endpoint, lazy=True)


def test_builder_validation_matches_wire_encodability(net):
    # everything the builder lets through must encode for the socket
    # transport — build-time validation is the only gate
    from repro.wire import QueryRequest, decode_request, encode_request

    query = (net.client.query()
             .window(0, 2**62)
             .range(low=0, high=2**40)
             .any_of("Benz")
             .build())
    assert decode_request(encode_request(QueryRequest(query=query))).query == query


# -- deprecation shims --------------------------------------------------------
def test_legacy_user_query_warns_exactly_once(net):
    query = _query(net).build()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        results, vo, sp_stats, user_stats = net.user.query(net.sp, query)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "VChainClient" in str(deprecations[0].message)
    assert sorted(o.object_id for o in results) == sorted(
        o.object_id for o in _query(net).execute().results
    )


def test_legacy_user_query_keeps_duck_typed_providers(net):
    query = _query(net).build()

    class CountingSP(type(net.sp)):
        calls = 0

        def time_window_query(self, q, batch=None):
            CountingSP.calls += 1
            return self.processor.time_window_query(q, batch=batch)

    counting = CountingSP(net.chain, net.accumulator, net.encoder, net.params)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        results, _vo, _sp, _user = net.user.query(counting, query)
        # a bare QueryProcessor still works too (the pre-API contract)
        direct = net.user.query(net.sp.processor, query)
    assert CountingSP.calls == 1
    assert [o.object_id for o in results] == [o.object_id for o in direct[0]]


def test_legacy_sp_entrypoint_warns_exactly_once(net):
    query = _query(net).build()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        results, vo, stats = net.sp.time_window_query(query)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    verified, _ = net.user.verify(query, results, vo)
    assert verified == results


def test_new_api_path_does_not_warn(net):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _query(net).execute().raise_for_forgery()
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
