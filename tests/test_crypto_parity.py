"""Byte-parity between the naive crypto path and the fast path.

The fast path (Jacobian arithmetic, Pippenger/fixed-base MSM,
multi-pairing) must be a pure performance change: a chain mined with
the pre-change naive algorithms must be **byte-identical** — block
encodings, accumulator digests, VOs — to one mined on the fast path,
and must verify on it.  This is what lets PR 3's storage codec
re-validate recovered blocks against stored hashes across the upgrade.

The naive path is restored by patching the ss512 backend back to the
affine double-and-add exponentiation and the default scalar-at-a-time
``multi_exp`` / per-pairing ``multi_pairing``.
"""

import random

import pytest

from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.core.query import CNFCondition, TimeWindowQuery
from repro.crypto import curve
from repro.crypto.backend import PairingBackend, SupersingularBackend
from repro.wire.block_codec import encode_block
from repro.wire.vo_codec import encode_time_window_vo
from tests.conftest import make_objects

QUERY = TimeWindowQuery(start=0, end=10, boolean=CNFCondition.of([["Benz", "BMW"]]))


def _naive_exp(self, base, scalar):
    """The pre-change affine double-and-add ``base^scalar``."""
    scalar %= self.order
    result = None
    addend = base
    while scalar:
        if scalar & 1:
            result = curve.add(result, addend)
        addend = curve.add(addend, addend)
        scalar >>= 1
    return result


def _patch_naive(monkeypatch) -> None:
    """Send the ss512 backend back in time to the naive algorithms."""
    monkeypatch.setattr(SupersingularBackend, "exp", _naive_exp)
    monkeypatch.setattr(SupersingularBackend, "multi_exp", PairingBackend.multi_exp)
    monkeypatch.setattr(
        SupersingularBackend, "fixed_base_table", PairingBackend.fixed_base_table
    )
    monkeypatch.setattr(
        SupersingularBackend, "multi_exp_tables", PairingBackend.multi_exp_tables
    )
    monkeypatch.setattr(
        SupersingularBackend, "multi_pairing", PairingBackend.multi_pairing
    )


def _mine_and_query(acc_name: str):
    """Fresh deterministic ss512 network: 2 mined blocks + one answered query."""
    params = ProtocolParams(mode="both", bits=4, difficulty_bits=0)
    net = VChainNetwork.create(
        acc_name=acc_name, backend_name="ss512", params=params, seed=7,
        acc1_capacity=64,
    )
    rng = random.Random(3)
    oid = 0
    for height in range(2):
        objs = make_objects(rng, 2, oid, timestamp=height, dims=1, bits=4)
        oid += 2
        net.miner.mine_block(objs, timestamp=height)
    net.user.sync_headers(net.chain)
    batch = net.accumulator.supports_aggregation
    results, vo, _stats = net.sp.processor.time_window_query(QUERY, batch=batch)
    return net, results, vo


@pytest.mark.slow
@pytest.mark.parametrize("acc_name", ["acc1", "acc2"])
def test_chain_mined_on_naive_path_is_byte_identical(acc_name, monkeypatch):
    with monkeypatch.context() as patcher:
        _patch_naive(patcher)
        naive_net, naive_results, naive_vo = _mine_and_query(acc_name)
        naive_backend = naive_net.accumulator.backend
        naive_blocks = [
            encode_block(naive_backend, naive_net.chain.block(h))
            for h in range(len(naive_net.chain))
        ]
        naive_vo_bytes = encode_time_window_vo(naive_backend, naive_vo)
    # patches are gone: everything below runs on the fast path
    fast_net, fast_results, fast_vo = _mine_and_query(acc_name)
    fast_backend = fast_net.accumulator.backend
    fast_blocks = [
        encode_block(fast_backend, fast_net.chain.block(h))
        for h in range(len(fast_net.chain))
    ]

    assert fast_blocks == naive_blocks
    assert encode_time_window_vo(fast_backend, fast_vo) == naive_vo_bytes
    assert [o.object_id for o in fast_results] == [o.object_id for o in naive_results]
    # the chain mined before the change verifies identically after it:
    # fast-path verification replays the naive-mined VO against the
    # naive-mined headers.  Drop the oracle's in-memory table cache first
    # — it was filled with naive-format tables while patched, a state no
    # real upgrade sees (a restart rebuilds tables from the key powers).
    naive_net.accumulator.public_key.oracle._tables.clear()
    verified, _stats = naive_net.user.verify(QUERY, naive_results, naive_vo)
    assert sorted(o.object_id for o in verified) == sorted(
        o.object_id for o in naive_results
    )
