"""The multicore subsystem: serial-vs-parallel determinism and failure.

The contract mirrors tests/test_crypto_parity.py: parallelism must be a
pure performance change.  A chain mined through a
:class:`~repro.parallel.CryptoPool` must be **byte-identical** — block
encodings, VO bytes, acc1 and acc2 — to the serial build, deliveries
included.  Failure semantics are pinned too: work exceptions cross the
process boundary unchanged, dead workers surface as
:class:`~repro.errors.ParallelError`, and a closed pool refuses work
instead of hanging.
"""

import os
import signal
import time
from collections import Counter

import pytest

from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.datasets import foursquare_like, make_time_window_queries
from repro.errors import NotDisjointError, ParallelError
from repro.parallel import CryptoPool, ParallelConfig, make_pool
from repro.wire.block_codec import encode_block
from repro.wire.vo_codec import encode_time_window_vo

DATASET = foursquare_like(6, objects_per_block=5)
QUERIES = make_time_window_queries(DATASET, n_queries=3, window_blocks=4, seed=29)
PARAMS = ProtocolParams(
    mode="both", bits=DATASET.bits, skip_size=3, skip_base=4, difficulty_bits=0
)


def build_network(workers: int, acc_name: str = "acc2", backend: str = "simulated"):
    net = VChainNetwork.create(
        acc_name=acc_name,
        backend_name=backend,
        params=PARAMS,
        seed=17,
        acc1_capacity=1 << 12,
        workers=workers,
    )
    net.mine_dataset(DATASET)
    return net


def chain_bytes(net) -> list[bytes]:
    backend = net.accumulator.backend
    return [
        encode_block(backend, net.chain.block(height))
        for height in range(len(net.chain))
    ]


def vo_bytes(net, query, batch) -> tuple[bytes, list]:
    results, vo, stats = net.sp.processor.time_window_query(query, batch=batch)
    return encode_time_window_vo(net.accumulator.backend, vo), results, stats


# -- serial vs parallel byte parity ------------------------------------------
@pytest.mark.parametrize("acc_name", ["acc1", "acc2"])
def test_mining_and_proving_parity(acc_name):
    serial = build_network(1, acc_name)
    parallel = build_network(2, acc_name)
    try:
        assert parallel.pool is not None and parallel.pool.workers == 2
        assert serial.pool is None
        assert chain_bytes(serial) == chain_bytes(parallel)
        batch = serial.accumulator.supports_aggregation
        for query in QUERIES:
            s_vo, s_results, s_stats = vo_bytes(serial, query, batch)
            p_vo, p_results, p_stats = vo_bytes(parallel, query, batch)
            assert s_vo == p_vo
            assert [o.object_id for o in s_results] == [o.object_id for o in p_results]
            assert s_stats.proofs_computed == p_stats.proofs_computed
            assert p_stats.workers_used == 2 and s_stats.workers_used == 0
            # the parallel answer verifies on a serial light node
            verified, _ = serial.user.verify(query, p_results, parallel.sp
                                             .processor.time_window_query(
                                                 query, batch=batch)[1])
            assert sorted(o.object_id for o in verified) == sorted(
                o.object_id for o in p_results
            )
    finally:
        serial.close()
        parallel.close()


@pytest.mark.parametrize("acc_name", ["acc1", "acc2"])
def test_non_batch_parity_with_and_without_caches(acc_name):
    serial = build_network(1, acc_name)
    parallel = build_network(2, acc_name)
    try:
        for query in QUERIES:
            s_vo, _, _ = vo_bytes(serial, query, False)
            p_vo, _, _ = vo_bytes(parallel, query, False)
            assert s_vo == p_vo
        # through the endpoint, which adds fragment + proof caches on
        # top of the pool; repeats must replay identical bytes
        endpoint = parallel.endpoint
        client = parallel.client
        for _round in range(2):
            for query in QUERIES:
                response = client.execute(query, batch=False)
                assert response.ok
        s_vo, _, _ = vo_bytes(serial, QUERIES[0], False)
        results, vo, stats = endpoint.time_window_query(QUERIES[0], batch=False)
        assert encode_time_window_vo(parallel.accumulator.backend, vo) == s_vo
        assert stats.cache_hits > 0  # replayed, not re-proved
    finally:
        serial.close()
        parallel.close()


@pytest.mark.slow
@pytest.mark.parametrize("acc_name", ["acc1", "acc2"])
def test_ss512_parity(acc_name):
    """The real-pairing mirror of tests/test_crypto_parity.py."""
    dataset = foursquare_like(2, objects_per_block=4)
    params = ProtocolParams(mode="both", bits=dataset.bits, skip_size=2)

    def build(workers):
        net = VChainNetwork.create(
            acc_name=acc_name, backend_name="ss512", params=params,
            seed=7, acc1_capacity=256, workers=workers,
        )
        net.mine_dataset(dataset)
        return net

    serial, parallel = build(1), build(2)
    try:
        assert chain_bytes(serial) == chain_bytes(parallel)
        query = make_time_window_queries(
            dataset, n_queries=1, window_blocks=2, seed=29
        )[0]
        batch = serial.accumulator.supports_aggregation
        s_vo, s_results, _ = vo_bytes(serial, query, batch)
        p_vo, p_results, _ = vo_bytes(parallel, query, batch)
        assert s_vo == p_vo
        verified, _ = parallel.user.verify(query, p_results, parallel.sp
                                           .processor.time_window_query(
                                               query, batch=batch)[1])
        assert sorted(o.object_id for o in verified) == sorted(
            o.object_id for o in p_results
        )
    finally:
        serial.close()
        parallel.close()


def test_subscription_delivery_parity():
    extra = foursquare_like(4, objects_per_block=5)
    for lazy in (False, True):
        serial = build_network(1)
        parallel = build_network(2)
        try:
            from repro.api import ServiceEndpoint

            endpoints = [
                ServiceEndpoint(net.sp, lazy=lazy) for net in (serial, parallel)
            ]
            assert endpoints[1].pool is parallel.pool  # inherited, not owned
            subscriptions = [
                net.client.subscribe()
                .any_of(DATASET.vocabulary[0], DATASET.vocabulary[1])
                .build()
                for net in (serial, parallel)
            ]
            query_ids = [
                endpoint.register(sub)[0]
                for endpoint, sub in zip(endpoints, subscriptions)
            ]
            for timestamp, objects in extra.blocks:
                serial.mine(objects, timestamp + 1000)
                parallel.mine(objects, timestamp + 1000)
            got_s = endpoints[0].poll(query_ids[0])
            got_p = endpoints[1].poll(query_ids[1])
            # desync tripwire: every proof the precompute pass prepaid
            # must have been consumed by the delivery descent
            assert endpoints[1].engine._prepaid == set()
            assert len(got_s) == len(got_p)
            if not lazy:
                assert len(got_s) == len(extra.blocks)
            for d_s, d_p in zip(got_s, got_p):
                assert encode_time_window_vo(
                    serial.accumulator.backend, d_s.vo
                ) == encode_time_window_vo(
                    parallel.accumulator.backend, d_p.vo
                )
                assert [o.object_id for o in d_s.results] == [
                    o.object_id for o in d_p.results
                ]
            for endpoint in endpoints:
                endpoint.close()
        finally:
            serial.close()
            parallel.close()


def test_batch_verify_parallel_accepts_and_pinpoints_forgery():
    net = build_network(2)
    try:
        batch = True
        items = []
        for query in QUERIES:
            results, vo, _ = net.sp.processor.time_window_query(query, batch=batch)
            items.append((query, results, vo))
        verified, stats = net.user.batch_verify(items)
        assert [len(v) for v in verified] == [len(item[1]) for item in items]

        # forge one aggregated proof: the parallel aggregate must reject
        # and the culprit loop must name the item
        from dataclasses import replace
        from repro.accumulators.base import DisjointProof

        query, results, vo = items[1]
        backend = net.accumulator.backend
        bad_groups = dict(vo.batch_groups)
        if bad_groups:
            gid, group = next(iter(bad_groups.items()))
            forged = DisjointProof(
                parts=tuple(
                    backend.op(p, backend.generator()) for p in group.proof.parts
                )
            )
            bad_groups[gid] = replace(group, proof=forged)
            vo.batch_groups = bad_groups
            from repro.errors import VerificationError

            with pytest.raises(VerificationError, match="batch item 1"):
                net.user.batch_verify(items)
    finally:
        net.close()


# -- pool mechanics ----------------------------------------------------------
def _setup_pool(workers=2, **config_kw):
    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated", seed=3)
    pool = CryptoPool(
        net.accumulator, net.encoder, ParallelConfig(workers=workers, **config_kw)
    )
    return net, pool


def test_work_exceptions_propagate_unchanged():
    net, pool = _setup_pool()
    try:
        overlapping = (Counter({"x": 1}), frozenset({"x"}))
        with pytest.raises(NotDisjointError):
            pool.map_prove([overlapping] * 4)
    finally:
        pool.close()
        net.close()


def test_dead_worker_raises_parallel_error():
    net, pool = _setup_pool()
    try:
        pids = pool.worker_pids()
        assert len(pids) == 2
        for pid in pids:
            os.kill(pid, signal.SIGKILL)
        deadline = time.time() + 30
        with pytest.raises(ParallelError, match="died"):
            while time.time() < deadline:
                pool.map_accumulate([net.encoder.encode_multiset(Counter({"a": 1}))])
                time.sleep(0.05)
            raise AssertionError("dead workers never surfaced")
    finally:
        pool.close()
        net.close()


def test_closed_pool_refuses_work():
    net, pool = _setup_pool()
    pool.close()
    assert pool.closed
    with pytest.raises(ParallelError, match="closed"):
        pool.map_accumulate([net.encoder.encode_multiset(Counter({"a": 1}))])
    pool.close()  # idempotent
    net.close()


def test_serial_pool_runs_inline_and_counts():
    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated", seed=3)
    pool = CryptoPool(net.accumulator, net.encoder, ParallelConfig(workers=1))
    try:
        assert pool.serial and pool.worker_pids() == []
        encoded = net.encoder.encode_multiset(Counter({"a": 2, "b": 1}))
        [value] = pool.map_accumulate([encoded])
        assert value == net.accumulator.accumulate(encoded)
        stats = pool.stats()
        assert stats.maps == 1 and stats.tasks == 1 and stats.workers == 1
        assert make_pool(net.accumulator, net.encoder, workers=1) is None
    finally:
        pool.close()
        net.close()


def test_weighted_sums_matches_inline_fold():
    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated", seed=3)
    accumulator, encoder = net.accumulator, net.encoder
    backend = accumulator.backend
    checks = []
    weights = list(range(3, 12))
    for i in range(9):
        attrs = Counter({f"a{i}": 1})
        clause = frozenset({"zzz"})
        value = accumulator.accumulate(encoder.encode_multiset(attrs))
        proof = accumulator.prove_disjoint(
            encoder.encode_multiset(attrs),
            encoder.encode_multiset(Counter(clause)),
        )
        checks.append((value, proof))
    expected_value = accumulator.sum_values(
        [
            type(v)(parts=tuple(backend.exp(p, w) for p in v.parts))
            for (v, _pr), w in zip(checks, weights)
        ]
    )
    expected_proof = accumulator.sum_proofs(
        [
            type(pr)(parts=tuple(backend.exp(p, w) for p in pr.parts))
            for (_v, pr), w in zip(checks, weights)
        ]
    )
    for workers in (1, 2):
        pool = CryptoPool(accumulator, encoder, ParallelConfig(workers=workers))
        try:
            value, proof = pool.weighted_sums(checks, weights)
            assert value == expected_value and proof == expected_proof
            with pytest.raises(ParallelError):
                pool.weighted_sums(checks, weights[:-1])
            with pytest.raises(ParallelError):
                pool.weighted_sums([], [])
        finally:
            pool.close()
    net.close()


def test_parallel_config_validation():
    with pytest.raises(ParallelError):
        ParallelConfig(workers=-1)
    with pytest.raises(ParallelError):
        ParallelConfig(chunk_size=0)
    with pytest.raises(ParallelError):
        ParallelConfig(start_method="no-such-method")
    assert ParallelConfig(workers=0).resolved_workers() >= 1


def test_endpoint_workers_knob_and_stats_snapshot():
    net = build_network(1)
    from repro.api import ServiceEndpoint

    endpoint = ServiceEndpoint(net.sp, workers=2)
    try:
        assert net.sp.processor.pool is endpoint.pool
        batch = net.accumulator.supports_aggregation
        results, vo, stats = endpoint.time_window_query(QUERIES[0], batch=batch)
        assert stats.workers_used == 2
        snapshot = endpoint.stats()
        assert snapshot["endpoint"]["queries"] == 1
        assert snapshot["pool"]["workers"] == 2
        assert snapshot["pool"]["maps"] >= 1
        assert set(snapshot["caches"]) == {"fragments", "proofs"}
        assert "proofs_shared" in snapshot["engine"]
    finally:
        endpoint.close()
    # closing hands the processor back its original (absent) pool
    assert net.sp.processor.pool is None
    net.close()


def test_make_pool_rejects_workers_and_config_together():
    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated", seed=3)
    try:
        with pytest.raises(ParallelError, match="not both"):
            make_pool(
                net.accumulator, net.encoder, workers=4,
                config=ParallelConfig(chunk_size=64),
            )
    finally:
        net.close()


def test_bad_parallel_args_fail_before_touching_the_data_dir(tmp_path):
    data_dir = tmp_path / "chain"
    with pytest.raises(ParallelError, match="not both"):
        VChainNetwork.create(
            data_dir=data_dir, workers=2, parallel=ParallelConfig(workers=2)
        )
    # the directory was not initialised, so a corrected retry succeeds
    net = VChainNetwork.create(data_dir=data_dir, workers=1, seed=3)
    net.mine_dataset(foursquare_like(1, objects_per_block=2))
    net.close()


def test_bad_endpoint_options_do_not_leak_worker_processes():
    from repro.api import ServiceEndpoint
    from repro.errors import QueryError

    net = VChainNetwork.create(
        acc_name="acc1", backend_name="simulated", seed=3
    )  # acc1: lazy mode is invalid, so engine construction fails
    try:
        with pytest.raises(QueryError):
            ServiceEndpoint(net.sp, lazy=True, workers=2)
        # the half-built endpoint's pool was closed and unwired
        assert net.sp.processor.pool is None
    finally:
        net.close()


def test_second_endpoint_does_not_capture_anothers_owned_pool():
    from repro.api import ServiceEndpoint

    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated", seed=3)
    first = ServiceEndpoint(net.sp, workers=2)
    try:
        second = ServiceEndpoint(net.sp)
        # the second endpoint must not adopt the first's transient pool:
        # closing `first` would strand it mid-subscription otherwise
        assert second.pool is None and second.engine.pool is None
        second.close()
    finally:
        first.close()
        assert net.sp.processor.pool is None  # restored on close
        net.close()


def test_query_stats_parallel_fields_roundtrip_the_wire():
    from repro.core.prover import QueryStats
    from repro.wire.request_codec import (
        decode_query_response,
        encode_query_response,
    )
    from repro.core.vo import TimeWindowVO

    net = build_network(1)
    try:
        stats = QueryStats(
            sp_seconds=0.5, proofs_computed=3, parallel_tasks=7, workers_used=4
        )
        payload = encode_query_response(
            net.accumulator.backend, [], TimeWindowVO(), stats
        )
        _results, _vo, decoded = decode_query_response(net.accumulator.backend, payload)
        assert decoded == stats
    finally:
        net.close()
