"""Backend abstraction tests: both backends obey the same group laws."""

import random

import pytest

from repro.crypto import get_backend
from repro.crypto.backend import SupersingularBackend
from repro.crypto.simulated import SimulatedBackend
from repro.errors import CryptoError


def test_factory():
    assert isinstance(get_backend("simulated"), SimulatedBackend)
    assert isinstance(get_backend("ss512"), SupersingularBackend)
    with pytest.raises(ValueError):
        get_backend("nope")


@pytest.fixture(params=["simulated", pytest.param("ss512", marks=pytest.mark.slow)])
def backend(request):
    return get_backend(request.param)


def test_group_laws(backend):
    g = backend.generator()
    rng = random.Random(1)
    a = rng.randrange(1, backend.order)
    b = rng.randrange(1, backend.order)
    ga, gb = backend.exp(g, a), backend.exp(g, b)
    # g^a · g^b = g^{a+b}
    assert backend.eq(backend.op(ga, gb), backend.exp(g, (a + b) % backend.order))
    # identity
    assert backend.eq(backend.op(ga, backend.identity()), ga)
    # exponent wraps at the group order
    assert backend.eq(backend.exp(g, backend.order), backend.identity())


def test_pairing_bilinearity(backend):
    g = backend.generator()
    rng = random.Random(2)
    a = rng.randrange(1, backend.order)
    b = rng.randrange(1, backend.order)
    lhs = backend.pair(backend.exp(g, a), backend.exp(g, b))
    rhs = backend.gt_exp(backend.pair(g, g), a * b % backend.order)
    assert backend.gt_eq(lhs, rhs)


def test_gt_group_laws(backend):
    e = backend.pair(backend.generator(), backend.generator())
    assert backend.gt_eq(backend.gt_op(e, backend.gt_identity()), e)
    assert backend.gt_eq(backend.gt_op(e, backend.gt_inv(e)), backend.gt_identity())
    assert backend.gt_eq(backend.gt_exp(e, 2), backend.gt_op(e, e))


def test_encoding_widths(backend):
    g = backend.generator()
    assert len(backend.encode(g)) == backend.element_nbytes
    e = backend.pair(g, g)
    assert len(backend.gt_encode(e)) == backend.gt_nbytes


def test_encoding_distinguishes_elements(backend):
    g = backend.generator()
    assert backend.encode(g) != backend.encode(backend.exp(g, 2))
    assert backend.encode(backend.identity()) != backend.encode(g)


def test_multi_exp_matches_manual(backend):
    g = backend.generator()
    bases = [backend.exp(g, k) for k in (1, 5, 9)]
    scalars = [3, 0, 2]
    expected = backend.exp(g, 3 * 1 + 0 * 5 + 2 * 9)
    assert backend.eq(backend.multi_exp(bases, scalars), expected)


def test_multi_exp_length_mismatch(backend):
    with pytest.raises(ValueError):
        backend.multi_exp([backend.generator()], [1, 2])


def test_simulated_tag_confusion_rejected():
    backend = get_backend("simulated")
    g = backend.generator()
    gt = backend.pair(g, g)
    with pytest.raises(CryptoError):
        backend.op(g, gt)  # GT element where G expected
    with pytest.raises(CryptoError):
        backend.gt_op(gt, g)
    with pytest.raises(CryptoError):
        backend.pair(gt, g)


def test_random_scalar_nonzero():
    backend = get_backend("simulated")
    rng = random.Random(3)
    for _ in range(50):
        assert 1 <= backend.random_scalar(rng) < backend.order
