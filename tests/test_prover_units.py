"""Unit tests for the SP-side query processor internals."""

import random

import pytest

from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.core.query import CNFCondition, TimeWindowQuery
from repro.core.vo import VOBlock, VOSkip
from tests.conftest import make_objects


@pytest.fixture(scope="module")
def sparse_net():
    """A chain whose blocks pairwise share no keywords — skips always fire."""
    params = ProtocolParams(mode="both", bits=8, skip_size=3, skip_base=4)
    net = VChainNetwork.create(acc_name="acc2", params=params, seed=51)
    rng = random.Random(51)
    oid = 0
    for h in range(40):
        vocab = [f"only{h}_{i}" for i in range(8)]
        objs = make_objects(rng, 2, oid, timestamp=h, vocab=vocab)
        oid += 2
        net.miner.mine_block(objs, timestamp=h)
    net.user.sync_headers(net.chain)
    return net


def test_skip_prefers_largest_distance(sparse_net):
    query = TimeWindowQuery(start=0, end=39, boolean=CNFCondition.of([["nowhere"]]))
    _r, vo, stats = sparse_net.sp.time_window_query(query, batch=False)
    skips = [e for e in vo.entries if isinstance(e, VOSkip)]
    assert skips, "sparse chain must produce skips"
    # the newest block (height 39) can host distance 16; it must be used
    assert skips[0].height == 39
    assert skips[0].distance == 16
    _verified, _stats = sparse_net.user.verify(query, [], vo)


def test_skip_not_taken_when_clause_matches(sparse_net):
    # a keyword present only in block 30: blocks around it can be skipped,
    # but any skip whose range covers block 30 is unusable for this clause
    query = TimeWindowQuery(start=0, end=39, boolean=CNFCondition.of([["only30_0"]]))
    results, vo, _stats = sparse_net.sp.time_window_query(query, batch=False)
    verified, _ = sparse_net.user.verify(query, results, vo)
    assert {o.timestamp for o in verified} <= {30}
    scanned = [e.height for e in vo.entries if isinstance(e, VOBlock)]
    assert 30 in scanned


def test_stats_fields_consistent(sparse_net):
    query = TimeWindowQuery(start=0, end=39, boolean=CNFCondition.of([["nowhere"]]))
    _r, _vo, stats = sparse_net.sp.time_window_query(query, batch=False)
    assert stats.blocks_scanned + stats.blocks_skipped == 40
    assert stats.sp_seconds > 0
    assert stats.results == 0


def test_batch_grouping_reduces_proofs(sparse_net):
    query = TimeWindowQuery(start=0, end=39, boolean=CNFCondition.of([["nowhere"]]))
    _r, vo_plain, stats_plain = sparse_net.sp.time_window_query(query, batch=False)
    _r2, vo_batch, stats_batch = sparse_net.sp.time_window_query(query, batch=True)
    assert stats_batch.proofs_computed < stats_plain.proofs_computed
    # a single clause ⇒ a single batch group
    assert len(vo_batch.batch_groups) == 1


def test_intra_only_never_emits_skips():
    params = ProtocolParams(mode="intra", bits=8)
    net = VChainNetwork.create(acc_name="acc2", params=params, seed=52)
    rng = random.Random(52)
    for h in range(10):
        net.miner.mine_block(make_objects(rng, 2, h * 2, h), timestamp=h)
    net.user.sync_headers(net.chain)
    query = TimeWindowQuery(start=0, end=9, boolean=CNFCondition.of([["nowhere"]]))
    _r, vo, stats = net.sp.time_window_query(query)
    assert stats.blocks_skipped == 0
    assert all(isinstance(e, VOBlock) for e in vo.entries)
