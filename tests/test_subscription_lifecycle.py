"""Subscription lifecycle edge cases: late registration, untracking."""

import random

import pytest

from repro.accumulators import ElementEncoder, make_accumulator
from repro.chain import Blockchain, DataObject, Miner, ProtocolParams
from repro.chain.light import LightNode
from repro.core.query import CNFCondition, SubscriptionQuery
from repro.crypto import get_backend
from repro.errors import SubscriptionError
from repro.subscribe import SubscriptionClient, SubscriptionEngine

PARAMS = ProtocolParams(mode="both", bits=8, skip_size=2)


@pytest.fixture()
def stack():
    backend = get_backend("simulated")
    _sk, acc = make_accumulator("acc2", backend, rng=random.Random(1))
    encoder = ElementEncoder(2**32 - 1)
    chain = Blockchain()
    miner = Miner(chain, acc, encoder, PARAMS)
    engine = SubscriptionEngine(acc, encoder, PARAMS)
    light = LightNode()
    client = SubscriptionClient(light, acc, encoder, PARAMS)
    return chain, miner, engine, light, client


def _block(miner, height, keyword):
    return miner.mine_block(
        [
            DataObject(
                object_id=height,
                timestamp=height,
                vector=(height % 256,),
                keywords=frozenset({keyword}),
            )
        ],
        timestamp=height,
    )


def test_registration_since_height_skips_history(stack):
    chain, miner, engine, light, client = stack
    for h in range(3):
        _block(miner, h, "early")
    query = SubscriptionQuery(boolean=CNFCondition.of([["early", "late"]]))
    qid = engine.register(query, since_height=3)
    client.track(qid, query, since_height=3)
    # the next block is the first the subscriber hears about
    block = _block(miner, 3, "late")
    light.sync(chain)
    deliveries = engine.process_block(block)
    assert len(deliveries) == 1
    assert deliveries[0].from_height == 3
    verified, _stats = client.on_delivery(deliveries[0])
    assert [o.object_id for o in verified] == [3]


def test_double_track_rejected(stack):
    _chain, _miner, _engine, _light, client = stack
    query = SubscriptionQuery(boolean=CNFCondition.of([["x"]]))
    client.track(1, query)
    with pytest.raises(SubscriptionError):
        client.track(1, query)


def test_untrack_then_delivery_rejected(stack):
    chain, miner, engine, light, client = stack
    query = SubscriptionQuery(boolean=CNFCondition.of([["x"]]))
    qid = engine.register(query)
    client.track(qid, query)
    client.untrack(qid)
    block = _block(miner, 0, "x")
    light.sync(chain)
    deliveries = engine.process_block(block)
    with pytest.raises(SubscriptionError):
        client.on_delivery(deliveries[0])


def test_untrack_unknown_is_noop(stack):
    _chain, _miner, _engine, _light, client = stack
    client.untrack(123)  # must not raise


def test_next_height_advances(stack):
    chain, miner, engine, light, client = stack
    query = SubscriptionQuery(boolean=CNFCondition.of([["x"]]))
    qid = engine.register(query)
    client.track(qid, query)
    for h in range(4):
        block = _block(miner, h, "x" if h % 2 else "y")
        light.sync(chain)
        for delivery in engine.process_block(block):
            client.on_delivery(delivery)
    assert client.next_height(qid) == 4
