"""Tests for the inverted prefix tree (Algorithm 6 / Fig 8)."""


import pytest

from repro.chain.object import DataObject
from repro.core.query import CNFCondition, RangeCondition, SubscriptionQuery
from repro.errors import SubscriptionError
from repro.subscribe.iptree import IPTree, register_query

BITS = 2  # a 4x4 grid, exactly the paper's Fig 8 space


def fig8_queries():
    """The four subscriptions of the paper's Fig 8 (coordinates in [0,3])."""
    return [
        SubscriptionQuery(  # q1: [(0,2),(1,3)], Van ∧ Benz
            numeric=RangeCondition(low=(0, 2), high=(1, 3)),
            boolean=CNFCondition.of([["Van"], ["Benz"]]),
        ),
        SubscriptionQuery(  # q2: [(0,0),(1,3)], Van ∧ BMW
            numeric=RangeCondition(low=(0, 0), high=(1, 3)),
            boolean=CNFCondition.of([["Van"], ["BMW"]]),
        ),
        SubscriptionQuery(  # q3: [(0,0),(0,2)], Sedan ∧ Audi
            numeric=RangeCondition(low=(0, 0), high=(0, 2)),
            boolean=CNFCondition.of([["Sedan"], ["Audi"]]),
        ),
        SubscriptionQuery(  # q4: [(2,0),(3,3)], Sedan ∧ Benz
            numeric=RangeCondition(low=(2, 0), high=(3, 3)),
            boolean=CNFCondition.of([["Sedan"], ["Benz"]]),
        ),
    ]


@pytest.fixture()
def tree():
    t = IPTree(dims=2, bits=BITS, max_depth=2)
    for i, q in enumerate(fig8_queries()):
        t.insert(register_query(i, q, BITS))
    return t


def test_root_holds_all_queries(tree):
    assert set(tree.root.rcif) == {0, 1, 2, 3}
    assert len(tree) == 4


def test_root_split_into_four(tree):
    assert len(tree.root.children) == 4


def test_upper_left_cell_matches_paper(tree):
    """Fig 8's N1 = cell x∈[0,1], y∈[2,3]: q1,q2 full, q3 partial."""
    n1 = next(c for c in tree.root.children if c.cell == ((0, 1), (2, 3)))
    assert n1.rcif.get(0) is True  # q1 full
    assert n1.rcif.get(1) is True  # q2 full
    assert n1.rcif.get(2) is False  # q3 partial
    assert 3 not in n1.rcif  # q4 does not intersect
    # BCIF: {Van}→{q1,q2}, {Benz}→{q1}, {BMW}→{q2}
    assert n1.bcif[frozenset({"Van"})] == {0, 1}
    assert n1.bcif[frozenset({"Benz"})] == {0}
    assert n1.bcif[frozenset({"BMW"})] == {1}


def test_partial_query_pushed_into_subcells(tree):
    n1 = next(c for c in tree.root.children if c.cell == ((0, 1), (2, 3)))
    assert n1.children, "partial query q3 must split N1"
    # q3 covers x=0, y∈[2,2]; its full-covered subcell gets it in BCIF
    full_cells = [c for c in n1.children if c.rcif.get(2) is True]
    assert full_cells
    assert all(frozenset({"Sedan"}) in c.bcif for c in full_cells)


def test_duplicate_registration_rejected(tree):
    with pytest.raises(SubscriptionError):
        tree.insert(register_query(0, fig8_queries()[0], BITS))


def test_remove_clears_all_files(tree):
    tree.remove(0)
    assert len(tree) == 3

    def check(node):
        assert 0 not in node.rcif
        for members in node.bcif.values():
            assert 0 not in members
        for child in node.children:
            check(child)

    check(tree.root)
    with pytest.raises(SubscriptionError):
        tree.remove(0)


def classification_truth(queries, obj, bits):
    out = {}
    for i, q in enumerate(queries):
        out[i] = q.matches_object(obj, bits)
    return out


@pytest.mark.parametrize(
    "vector,keywords",
    [
        ((0, 2), {"Van", "Benz"}),   # the paper's example object
        ((0, 2), {"Sedan", "Audi"}),
        ((3, 0), {"Sedan", "Benz"}),
        ((1, 1), {"Van", "BMW"}),
        ((2, 3), {"Tesla"}),
    ],
)
def test_classify_single_objects_consistent(tree, vector, keywords):
    queries = fig8_queries()
    obj = DataObject(
        object_id=0, timestamp=0, vector=vector, keywords=frozenset(keywords)
    )
    attrs = obj.attribute_multiset(BITS)
    mismatches, candidates = tree.classify(attrs)
    assert set(mismatches) | candidates == {0, 1, 2, 3}
    assert not (set(mismatches) & candidates)
    truth = classification_truth(queries, obj, BITS)
    for qid, matched in truth.items():
        if matched:
            # a matching query must never be classified as mismatch
            assert qid in candidates
        if qid in mismatches:
            # reported clause must be a real clause of the query, disjoint
            clause = mismatches[qid]
            registered = tree.queries[qid]
            assert clause in registered.all_clauses
            assert not any(element in attrs for element in clause)


def test_classify_paper_example_object(tree):
    """Fig 8's oi = ⟨(0,2), {Van, Benz}⟩: q1 match; q2, q3, q4 mismatch."""
    obj = DataObject(
        object_id=0, timestamp=0, vector=(0, 2), keywords=frozenset({"Van", "Benz"})
    )
    mismatches, candidates = tree.classify(obj.attribute_multiset(BITS))
    assert 0 in candidates  # q1 matches
    assert set(mismatches) == {1, 2, 3}
    # q2 fails its Boolean condition, q4 its numeric range
    assert mismatches[1] == frozenset({"BMW"})
    assert mismatches[3] in tree.queries[3].all_clauses


def test_classify_super_object(tree):
    """A multiset spanning two objects stays conservative (no false mismatch)."""
    a = DataObject(
        object_id=0, timestamp=0, vector=(0, 2), keywords=frozenset({"Van", "Benz"})
    )
    b = DataObject(
        object_id=1, timestamp=0, vector=(3, 0), keywords=frozenset({"Sedan"})
    )
    attrs = a.attribute_multiset(BITS) + b.attribute_multiset(BITS)
    mismatches, candidates = tree.classify(attrs)
    # q1 (matches a) and q4 (could match b numerically) must stay candidates
    assert 0 in candidates
    assert 3 in candidates


def test_query_without_numeric_covers_root():
    t = IPTree(dims=2, bits=4, max_depth=3)
    q = SubscriptionQuery(boolean=CNFCondition.of([["k"]]))
    t.insert(register_query(7, q, 4))
    assert t.root.rcif[7] is True
    assert frozenset({"k"}) in t.root.bcif


def test_max_depth_respected():
    t = IPTree(dims=1, bits=8, max_depth=2)
    q = SubscriptionQuery(numeric=RangeCondition(low=(3,), high=(200,)))
    t.insert(register_query(0, q, 8))

    def depth(node):
        if not node.children:
            return node.depth
        return max(depth(c) for c in node.children)

    assert depth(t.root) <= 2
