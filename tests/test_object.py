"""Tests for temporal data objects."""

import pytest
from hypothesis import given, strategies as st

from repro.chain.object import DataObject
from repro.errors import QueryError


def test_attribute_multiset_combines_prefixes_and_keywords():
    obj = DataObject(
        object_id=1, timestamp=0, vector=(4,), keywords=frozenset({"Benz"})
    )
    attrs = obj.attribute_multiset(3)
    assert attrs["Benz"] == 1
    assert attrs["0:1*"] == 1
    assert attrs["0:100"] == 1
    assert attrs.total() == 4  # 3 prefixes + 1 keyword


def test_attribute_multiset_multi_dim():
    obj = DataObject(object_id=1, timestamp=0, vector=(4, 2), keywords=frozenset())
    attrs = obj.attribute_multiset(3)
    assert "1:010" in attrs
    assert attrs.total() == 6


def test_serialize_deterministic_and_distinct():
    a = DataObject(object_id=1, timestamp=2, vector=(3,), keywords=frozenset({"x"}))
    b = DataObject(object_id=1, timestamp=2, vector=(3,), keywords=frozenset({"x"}))
    c = DataObject(object_id=1, timestamp=2, vector=(3,), keywords=frozenset({"y"}))
    assert a.serialize() == b.serialize()
    assert a.serialize() != c.serialize()


def test_serialize_keyword_order_canonical():
    a = DataObject(object_id=1, timestamp=0, vector=(), keywords=frozenset({"a", "b"}))
    b = DataObject(object_id=1, timestamp=0, vector=(), keywords=frozenset({"b", "a"}))
    assert a.serialize() == b.serialize()


def test_serialize_rejects_negative_vector():
    obj = DataObject(object_id=1, timestamp=0, vector=(-1,), keywords=frozenset())
    with pytest.raises(QueryError):
        obj.serialize()


def test_nbytes_reflects_payload():
    small = DataObject(object_id=1, timestamp=0, vector=(1,), keywords=frozenset())
    big = DataObject(
        object_id=1, timestamp=0, vector=(1, 2, 3), keywords=frozenset({"abcdef"})
    )
    assert big.nbytes() > small.nbytes()


@given(
    oid=st.integers(min_value=0, max_value=2**32),
    ts=st.integers(min_value=0, max_value=2**32),
    vec=st.tuples(st.integers(min_value=0, max_value=255)),
)
def test_serialize_sensitive_to_every_field(oid, ts, vec):
    base = DataObject(object_id=oid, timestamp=ts, vector=vec, keywords=frozenset())
    bumped = DataObject(
        object_id=oid + 1, timestamp=ts, vector=vec, keywords=frozenset()
    )
    assert base.serialize() != bumped.serialize()
