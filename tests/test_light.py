"""Tests for the light node (header-only replica)."""

from dataclasses import replace

import pytest

from repro.chain.light import LightNode
from repro.errors import ChainError


def test_sync_from_chain(small_chain):
    chain, _params = small_chain
    light = LightNode()
    assert light.sync(chain) == len(chain)
    assert len(light) == len(chain)
    assert light.header(5).height == 5


def test_incremental_sync(small_chain):
    chain, _params = small_chain
    light = LightNode()
    light.sync(chain.headers()[:10])
    assert len(light) == 10
    assert light.sync(chain) == len(chain) - 10


def test_sync_rejects_broken_linkage(small_chain):
    chain, _params = small_chain
    headers = chain.headers()
    light = LightNode()
    light.sync(headers[:5])
    tampered = replace(headers[5], prev_hash=b"\x01" * 32)
    with pytest.raises(ChainError):
        light.append_header(tampered)


def test_sync_rejects_wrong_height(small_chain):
    chain, _params = small_chain
    light = LightNode()
    with pytest.raises(ChainError):
        light.append_header(chain.headers()[3])


def test_header_access_bounds(small_chain):
    chain, _params = small_chain
    light = LightNode()
    light.sync(chain)
    with pytest.raises(ChainError):
        light.header(len(chain))


def test_heights_in_window(small_chain):
    chain, _params = small_chain
    light = LightNode()
    light.sync(chain)
    assert light.heights_in_window(30, 60) == chain.heights_in_window(30, 60)


def test_storage_accounting(small_chain):
    chain, _params = small_chain
    light = LightNode()
    light.sync(chain)
    per_header = light.storage_nbytes() / len(light)
    # headers are ~100-130 bytes (paper: 800-960 bits)
    assert 80 <= per_header <= 160
