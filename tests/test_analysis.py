"""Tests for the vlint static-analysis suite (``repro.analysis``).

Each rule gets a minimal fixture project that violates it exactly once,
so the assertions pin both the detection and the absence of collateral
findings.  The suite also runs the analyzer over this repository itself
— the clean-tree run is the same invocation CI gates on — and exercises
the suppression comments and the CLI exit codes.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import AnalysisError, Finding, Severity, is_suppressed, run
from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path, files):
    """Write ``{relative path: source}`` under ``tmp_path`` and return it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def only_finding(report, rule):
    """The report's single finding, asserting there is exactly one."""
    assert [f.rule for f in report.findings] == [rule], report.render()
    return report.findings[0]


# -- one violating fixture per rule -------------------------------------------
CODEC_FIXTURE = {
    "src/repro/wire/fixture_codec.py": """\
        from dataclasses import dataclass


        @dataclass
        class Point:
            x: int
            y: int


        def write_point(writer, point: Point) -> None:
            writer.u64(point.x)  # forgets point.y


        def read_point(reader):
            return Point(reader.u64(), reader.u64())
        """,
}


def test_codec_rule_flags_unread_field(tmp_path):
    root = make_project(tmp_path, CODEC_FIXTURE)
    finding = only_finding(
        run(root, rules=["codec-completeness"]), "codec-completeness"
    )
    assert "Point" in finding.message
    assert "y" in finding.message
    assert finding.path == "src/repro/wire/fixture_codec.py"


def test_codec_rule_flags_missing_decoder(tmp_path):
    fixture = {
        "src/repro/wire/fixture_codec.py": """\
            from dataclasses import dataclass


            @dataclass
            class Point:
                x: int
                y: int


            def write_point(writer, point: Point) -> None:
                writer.u64(point.x)
                writer.u64(point.y)
            """,
    }
    root = make_project(tmp_path, fixture)
    finding = only_finding(
        run(root, rules=["codec-completeness"]), "codec-completeness"
    )
    assert "never reconstructed by a decoder" in finding.message


LOCK_FIXTURE = {
    "src/repro/cache/fixture_box.py": """\
        import threading


        class Box:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self._value = 0

            def set(self, value):
                self._value = value

            def get(self):
                with self._lock:
                    return self._value
        """,
}


def test_lock_rule_flags_unlocked_write(tmp_path):
    root = make_project(tmp_path, LOCK_FIXTURE)
    finding = only_finding(run(root, rules=["lock-discipline"]), "lock-discipline")
    assert "Box.set" in finding.message
    assert "self._value" in finding.message
    assert finding.line == 10  # the write inside set(), not the ones in __init__


PICKLE_FIXTURE = {
    "src/repro/parallel/fixture_state.py": """\
        import threading


        class WorkerState:
            def __init__(self) -> None:
                self._guard = threading.Lock()


        POOL_STATE_TYPES = (WorkerState,)
        """,
}


def test_pickle_rule_flags_lock_in_pool_state(tmp_path):
    root = make_project(tmp_path, PICKLE_FIXTURE)
    finding = only_finding(run(root, rules=["pickle-safety"]), "pickle-safety")
    assert "WorkerState._guard" in finding.message
    assert "threading.Lock" in finding.message


def test_pickle_rule_exempts_getstate_owners(tmp_path):
    fixture = {
        "src/repro/parallel/fixture_state.py": """\
            import threading


            class WorkerState:
                def __init__(self) -> None:
                    self._guard = threading.Lock()

                def __getstate__(self):
                    return {}


            POOL_STATE_TYPES = (WorkerState,)
            """,
    }
    root = make_project(tmp_path, fixture)
    assert run(root, rules=["pickle-safety"]).ok


BACKEND_FIXTURE = {
    "src/repro/fixture_backend.py": """\
        from abc import ABC, abstractmethod


        class Base(ABC):
            @abstractmethod
            def op(self, left, right):
                raise NotImplementedError


        class Renamed(Base):
            def op(self, a, b):
                return a
        """,
}


def test_backend_rule_flags_renamed_parameters(tmp_path):
    root = make_project(tmp_path, BACKEND_FIXTURE)
    finding = only_finding(
        run(root, rules=["backend-conformance"]), "backend-conformance"
    )
    assert "Renamed.op" in finding.message
    assert "keyword callers will break" in finding.message


def test_backend_rule_flags_missing_method(tmp_path):
    fixture = {
        "src/repro/fixture_backend.py": """\
            from abc import ABC, abstractmethod


            class Base(ABC):
                @abstractmethod
                def op(self, left, right):
                    raise NotImplementedError


            class Hollow(Base):
                def other(self):
                    return 1
            """,
    }
    root = make_project(tmp_path, fixture)
    finding = only_finding(
        run(root, rules=["backend-conformance"]), "backend-conformance"
    )
    assert "Hollow" in finding.message
    assert "unimplemented" in finding.message
    assert "op" in finding.message


EXPORTS_FIXTURE = {
    "src/repro/__init__.py": """\
        class Thing:
            pass


        __all__ = ["Thing"]
        """,
    "docs/API.md": """\
        ## Public API reference

        ### `repro`

        `Thing` builds things; `Ghost` does not exist.
        """,
}


def test_exports_rule_flags_phantom_documentation(tmp_path):
    root = make_project(tmp_path, EXPORTS_FIXTURE)
    finding = only_finding(run(root, rules=["exports-parity"]), "exports-parity")
    assert "Ghost" in finding.message
    assert finding.path == "docs/API.md"


BLOCKING_FIXTURE = {
    "src/repro/api/fixture_aio.py": """\
        import socket
        import time


        async def handle(conn):
            time.sleep(0.1)
            return conn
        """,
}


def test_blocking_rule_flags_time_sleep_in_coroutine(tmp_path):
    root = make_project(tmp_path, BLOCKING_FIXTURE)
    finding = only_finding(run(root, rules=["async-discipline"]), "async-discipline")
    assert "handle" in finding.message
    assert "time.sleep" in finding.message
    assert finding.line == 6


def test_blocking_rule_flags_socket_and_result_calls(tmp_path):
    fixture = {
        "src/repro/api/fixture_aio.py": """\
            import socket


            class Server:
                async def dial(self, address, future):
                    sock = socket.create_connection(address)
                    return future.result()
            """,
    }
    root = make_project(tmp_path, fixture)
    report = run(root, rules=["async-discipline"])
    messages = [f.message for f in report.findings]
    assert len(messages) == 2, report.render()
    assert any("socket.create_connection" in m for m in messages)
    assert any(".result()" in m for m in messages)
    assert all("Server.dial" in m for m in messages)


def test_blocking_rule_exempts_sync_defs_and_nested_functions(tmp_path):
    fixture = {
        "src/repro/api/fixture_aio.py": """\
            import socket
            import time


            def sync_path(address):
                # blocking is fine off the loop
                return socket.create_connection(address)


            async def dispatch(loop, pool, address):
                def blocking_body():
                    time.sleep(0.1)
                    return socket.create_connection(address)

                return await loop.run_in_executor(pool, blocking_body)
            """,
    }
    root = make_project(tmp_path, fixture)
    assert run(root, rules=["async-discipline"]).ok


FSYNC_FIXTURE = {
    "src/repro/storage/fixture_log.py": """\
        import os


        def install_manifest(tmp, path):
            with open(tmp, "wb") as handle:
                handle.write(b"{}")
            os.replace(tmp, path)
        """,
}


def test_fsync_rule_flags_replace_without_fsync(tmp_path):
    root = make_project(tmp_path, FSYNC_FIXTURE)
    finding = only_finding(run(root, rules=["fsync-discipline"]), "fsync-discipline")
    assert "os.replace" in finding.message
    assert "install_manifest" in finding.message
    assert finding.line == 7


def test_fsync_rule_flags_index_write_before_data_sync(tmp_path):
    fixture = {
        "src/repro/storage/fixture_log.py": """\
            import os


            class Log:
                def append(self, record):
                    self._segment_file.write(record)
                    self._index_file.write(b"entry")
                    self._flush(self._index_file)

                def sneaky(self, record):
                    # syncing the index itself proves nothing about the data
                    self._index_file.flush()
                    self._index_file.write(b"entry")
            """,
    }
    root = make_project(tmp_path, fixture)
    report = run(root, rules=["fsync-discipline"])
    messages = [f.message for f in report.findings]
    assert len(messages) == 2, report.render()
    assert any("Log.append" in m for m in messages)
    assert any("Log.sneaky" in m for m in messages)
    assert all("index entry" in m for m in messages)


def test_fsync_rule_accepts_the_durable_idioms(tmp_path):
    fixture = {
        "src/repro/storage/fixture_log.py": """\
            import os


            def install_manifest(tmp, path):
                with open(tmp, "wb") as handle:
                    handle.write(b"{}")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)


            class Log:
                def append(self, record):
                    self._segment_file.write(record)
                    self._flush(self._segment_file)
                    self._index_file.write(b"entry")
                    self._flush(self._index_file)
            """,
    }
    root = make_project(tmp_path, fixture)
    assert run(root, rules=["fsync-discipline"]).ok


ACCEL_FIXTURE = {
    "src/repro/crypto/fixture_field.py": """\
        import gmpy2


        def inv(value, modulus):
            return int(gmpy2.invert(value, modulus))
        """,
}


def test_accel_rule_flags_direct_gmpy2_import(tmp_path):
    root = make_project(tmp_path, ACCEL_FIXTURE)
    finding = only_finding(run(root, rules=["accel-dispatch"]), "accel-dispatch")
    assert "gmpy2" in finding.message
    assert "dispatch" in finding.message
    assert finding.line == 1


def test_accel_rule_flags_provider_and_extension_imports(tmp_path):
    fixture = {
        "src/repro/crypto/fixture_curve.py": """\
            from repro.crypto.accel import native
            from repro.crypto.accel import _accelmodule
            """,
        "src/repro/accumulators/fixture_keys.py": """\
            from repro.crypto.accel.gmpy2_backend import build
            """,
    }
    root = make_project(tmp_path, fixture)
    report = run(root, rules=["accel-dispatch"])
    assert len(report.findings) == 3, report.render()
    assert all(f.rule == "accel-dispatch" for f in report.findings)


def test_accel_rule_accepts_the_seam_and_the_providers(tmp_path):
    fixture = {
        "src/repro/crypto/fixture_field.py": """\
            from repro.crypto.accel import dispatch


            def inv(value, modulus):
                return dispatch.modinv(value, modulus)
            """,
        "src/repro/crypto/accel/gmpy2_backend.py": """\
            import gmpy2
            """,
        "src/repro/crypto/accel/native.py": """\
            from repro.crypto.accel import _accelmodule, pure
            """,
        "src/repro/crypto/accel/dispatch.py": """\
            def load():
                from repro.crypto.accel import gmpy2_backend, native, pure
                return (gmpy2_backend, native, pure)
            """,
    }
    root = make_project(tmp_path, fixture)
    assert run(root, rules=["accel-dispatch"]).ok


def test_exports_rule_flags_undocumented_export(tmp_path):
    fixture = dict(EXPORTS_FIXTURE)
    fixture["docs/API.md"] = """\
        ## Public API reference

        ### `repro`

        Nothing documented here.
        """
    root = make_project(tmp_path, fixture)
    finding = only_finding(run(root, rules=["exports-parity"]), "exports-parity")
    assert "Thing" in finding.message
    assert "does not document" in finding.message


# -- suppression ---------------------------------------------------------------
def test_trailing_suppression_comment(tmp_path):
    fixture = {
        "src/repro/cache/fixture_box.py": textwrap.dedent(
            LOCK_FIXTURE["src/repro/cache/fixture_box.py"]
        ).replace(
            "self._value = value",
            "self._value = value  # vlint: disable=lock-discipline -- test",
        ),
    }
    root = make_project(tmp_path, fixture)
    report = run(root, rules=["lock-discipline"])
    assert report.ok
    assert report.suppressed == 1


def test_comment_block_above_suppresses(tmp_path):
    fixture = {
        "src/repro/cache/fixture_box.py": textwrap.dedent(
            LOCK_FIXTURE["src/repro/cache/fixture_box.py"]
        ).replace(
            "        self._value = value",
            "        # benign: single-threaded test fixture\n"
            "        # vlint: disable=all -- fixture\n"
            "        self._value = value",
        ),
    }
    root = make_project(tmp_path, fixture)
    report = run(root, rules=["lock-discipline"])
    assert report.ok
    assert report.suppressed == 1


def test_suppression_is_per_rule():
    finding = Finding(rule="lock-discipline", path="x.py", line=1, message="m")
    assert is_suppressed(finding, ["x = 1  # vlint: disable=lock-discipline"])
    assert is_suppressed(finding, ["x = 1  # vlint: disable=all"])
    assert not is_suppressed(finding, ["x = 1  # vlint: disable=pickle-safety"])
    assert not is_suppressed(finding, ["x = 1"])


# -- the repository itself is clean --------------------------------------------
def test_repo_is_clean():
    report = run(REPO_ROOT)
    assert report.ok, report.render()
    assert len(report.rules) == 8


# -- driver and CLI ------------------------------------------------------------
def test_unknown_rule_raises(tmp_path):
    with pytest.raises(AnalysisError):
        run(tmp_path, rules=["no-such-rule"])


def test_finding_render_and_severity():
    finding = Finding(rule="r", path="src/x.py", line=7, message="broken")
    assert finding.render() == "src/x.py:7: [r] broken"
    assert finding.severity is Severity.ERROR
    assert finding.as_dict()["severity"] == "error"


def test_cli_check_fails_on_violation(tmp_path, capsys):
    root = make_project(tmp_path, LOCK_FIXTURE)
    assert main(["--root", str(root), "--check"]) == 1
    out = capsys.readouterr().out
    assert "[lock-discipline]" in out


def test_cli_without_check_reports_but_passes(tmp_path, capsys):
    root = make_project(tmp_path, LOCK_FIXTURE)
    assert main(["--root", str(root), "--rule", "lock-discipline"]) == 0
    assert "1 finding(s)" in capsys.readouterr().out


def test_cli_check_passes_on_clean_repo(capsys):
    assert main(["--root", str(REPO_ROOT), "--check"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_json_output(tmp_path, capsys):
    root = make_project(tmp_path, LOCK_FIXTURE)
    assert main(["--root", str(root), "--rule", "lock-discipline", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload["findings"]] == ["lock-discipline"]
    assert payload["rules"]


def test_cli_single_rule_selection(tmp_path, capsys):
    root = make_project(tmp_path, LOCK_FIXTURE)
    assert main(["--root", str(root), "--rule", "pickle-safety", "--check"]) == 0
    assert "1 rule(s) run" in capsys.readouterr().out


def test_cli_unknown_rule_is_usage_error(tmp_path, capsys):
    assert main(["--root", str(tmp_path), "--rule", "bogus"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    names = capsys.readouterr().out.split()
    assert "lock-discipline" in names
    assert "async-discipline" in names
    assert "fsync-discipline" in names
    assert "accel-dispatch" in names
    assert len(names) == 8
