"""Tests for Construction 1 (q-SDH accumulator)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.accumulators import Acc1, ElementEncoder, keygen_acc1, make_accumulator
from repro.crypto import get_backend
from repro.errors import KeyCapacityError, NotDisjointError

BACKEND = get_backend("simulated")
_SK, ACC = make_accumulator("acc1", BACKEND, capacity=64, rng=random.Random(1))
ENC = ElementEncoder(BACKEND.order - 1)

words = st.text(alphabet="abcdefghij", min_size=1, max_size=4)


def enc(*items: str) -> Counter:
    return ENC.encode_multiset(Counter(items))


def test_accumulate_is_deterministic():
    assert ACC.accumulate(enc("a", "b")).parts == ACC.accumulate(enc("b", "a")).parts


def test_accumulate_sensitive_to_multiplicity():
    assert ACC.accumulate(enc("a")).parts != ACC.accumulate(enc("a", "a")).parts


def test_accumulate_value_single_part():
    value = ACC.accumulate(enc("a"))
    assert len(value.parts) == 1
    assert value.nbytes(BACKEND) == BACKEND.element_nbytes


def test_empty_multiset_accumulates_to_generator():
    # empty product polynomial is 1, so acc(∅) = g
    value = ACC.accumulate(Counter())
    assert BACKEND.eq(value.parts[0], BACKEND.generator())


def test_disjoint_roundtrip():
    x1, x2 = enc("Van", "Benz"), enc("Sedan")
    proof = ACC.prove_disjoint(x1, x2)
    assert ACC.verify_disjoint(ACC.accumulate(x1), ACC.accumulate(x2), proof)


def test_proof_has_two_parts():
    proof = ACC.prove_disjoint(enc("a"), enc("b"))
    assert len(proof.parts) == 2
    assert proof.nbytes(BACKEND) == 2 * BACKEND.element_nbytes


def test_prove_disjoint_rejects_intersection():
    with pytest.raises(NotDisjointError):
        ACC.prove_disjoint(enc("a", "b"), enc("b", "c"))


def test_verify_rejects_wrong_value():
    x1, x2, x3 = enc("a"), enc("b"), enc("c")
    proof = ACC.prove_disjoint(x1, x2)
    assert not ACC.verify_disjoint(ACC.accumulate(x3), ACC.accumulate(x2), proof)


def test_verify_rejects_swapped_proof_parts():
    x1, x2 = enc("a", "b"), enc("c")
    proof = ACC.prove_disjoint(x1, x2)
    from repro.accumulators.base import DisjointProof

    swapped = DisjointProof(parts=(proof.parts[1], proof.parts[0]))
    assert not ACC.verify_disjoint(ACC.accumulate(x1), ACC.accumulate(x2), swapped)


def test_verify_rejects_malformed_shapes():
    x1, x2 = enc("a"), enc("b")
    proof = ACC.prove_disjoint(x1, x2)
    from repro.accumulators.base import AccumulatorValue, DisjointProof

    bad_value = AccumulatorValue(parts=(BACKEND.generator(), BACKEND.generator()))
    assert not ACC.verify_disjoint(bad_value, ACC.accumulate(x2), proof)
    bad_proof = DisjointProof(parts=(BACKEND.generator(),))
    assert not ACC.verify_disjoint(ACC.accumulate(x1), ACC.accumulate(x2), bad_proof)


def test_capacity_enforced():
    _sk, pk = keygen_acc1(BACKEND, capacity=2, rng=random.Random(2))
    small = Acc1(pk)
    small.accumulate(enc("a", "b"))
    with pytest.raises(KeyCapacityError):
        small.accumulate(enc("a", "b", "c"))


def test_no_aggregation_support():
    assert not ACC.supports_aggregation
    with pytest.raises(NotImplementedError):
        ACC.sum_values([ACC.accumulate(enc("a"))])
    with pytest.raises(NotImplementedError):
        ACC.sum_proofs([])


@settings(max_examples=25, deadline=None)
@given(
    xs=st.sets(words, min_size=1, max_size=6),
    ys=st.sets(words, min_size=1, max_size=6),
)
def test_roundtrip_random_sets(xs, ys):
    ys = ys - xs
    if not ys:
        return
    x_enc, y_enc = enc(*xs), enc(*ys)
    proof = ACC.prove_disjoint(x_enc, y_enc)
    assert ACC.verify_disjoint(ACC.accumulate(x_enc), ACC.accumulate(y_enc), proof)


@settings(max_examples=25, deadline=None)
@given(
    xs=st.sets(words, min_size=1, max_size=6),
    ys=st.sets(words, min_size=1, max_size=6),
)
def test_intersecting_sets_never_prove(xs, ys):
    if not (xs & ys):
        return
    with pytest.raises(NotDisjointError):
        ACC.prove_disjoint(enc(*xs), enc(*ys))
