"""Tests for the intra-block index tree (Algorithm 2)."""

import random
from collections import Counter

import pytest

from repro.crypto.hashing import digest
from repro.errors import ChainError
from repro.index.intra import (
    build_flat_tree,
    build_intra_tree,
    children_hash,
    encode_digest,
    internal_hash,
)
from tests.conftest import make_objects


@pytest.fixture()
def objects():
    return make_objects(random.Random(2), 6, start_id=0, timestamp=0)


def test_empty_block_rejected(sim_acc2, encoder_q):
    with pytest.raises(ChainError):
        build_intra_tree([], sim_acc2, encoder_q, bits=8)
    with pytest.raises(ChainError):
        build_flat_tree([], sim_acc2, encoder_q, bits=8)


def test_single_object_tree_is_leaf(sim_acc2, encoder_q, objects):
    root = build_intra_tree(objects[:1], sim_acc2, encoder_q, bits=8)
    assert root.is_leaf
    assert root.obj is objects[0]
    assert root.att_digest is not None


def test_leaf_count_preserved(sim_acc2, encoder_q, objects):
    for count in (1, 2, 3, 5, 6):
        root = build_intra_tree(objects[:count], sim_acc2, encoder_q, bits=8)
        assert root.leaf_count() == count
        assert sorted(l.obj.object_id for l in root.iter_leaves()) == sorted(
            o.object_id for o in objects[:count]
        )


def test_internal_nodes_carry_union_multisets(sim_acc2, encoder_q, objects):
    root = build_intra_tree(objects, sim_acc2, encoder_q, bits=8)

    def check(node):
        if node.is_leaf:
            assert node.attrs == node.obj.attribute_multiset(8)
            return node.attrs
        merged = Counter()
        for child in node.children:
            merged |= check(child)
        assert node.attrs == merged
        return node.attrs

    check(root)


def test_node_digests_match_attrs(sim_acc2, encoder_q, objects):
    root = build_intra_tree(objects[:4], sim_acc2, encoder_q, bits=8)
    stack = [root]
    while stack:
        node = stack.pop()
        expected = sim_acc2.accumulate(encoder_q.encode_multiset(node.attrs))
        assert node.att_digest.parts == expected.parts
        stack.extend(node.children)


def test_hash_definitions(sim_acc2, encoder_q, objects):
    root = build_intra_tree(objects[:2], sim_acc2, encoder_q, bits=8)
    digest_bytes = encode_digest(sim_acc2.backend, root.att_digest)
    assert root.node_hash == internal_hash(children_hash(root.children), digest_bytes)
    leaf = root.children[0]
    leaf_bytes = encode_digest(sim_acc2.backend, leaf.att_digest)
    assert leaf.node_hash == internal_hash(leaf.obj.serialize(), leaf_bytes)


def test_flat_tree_internal_nodes_have_no_digest(sim_acc2, encoder_q, objects):
    root = build_flat_tree(objects, sim_acc2, encoder_q, bits=8)
    assert root.att_digest is None
    assert root.attrs is None
    for leaf in root.iter_leaves():
        assert leaf.att_digest is not None


def test_flat_tree_internal_hash_is_child_component(sim_acc2, encoder_q, objects):
    root = build_flat_tree(objects[:2], sim_acc2, encoder_q, bits=8)
    assert root.node_hash == digest(*(c.node_hash for c in root.children))


def test_clustering_groups_similar_objects(sim_acc2, encoder_q):
    """Two disjoint keyword families must end up in separate subtrees."""
    from repro.chain.object import DataObject

    family_a = [
        DataObject(
            object_id=i, timestamp=0, vector=(0,), keywords=frozenset({"a1", "a2"})
        )
        for i in range(2)
    ]
    family_b = [
        DataObject(
            object_id=10 + i,
            timestamp=0,
            vector=(255,),
            keywords=frozenset({"b1", "b2"}),
        )
        for i in range(2)
    ]
    # interleave arrival order so only clustering can separate them
    objects = [family_a[0], family_b[0], family_a[1], family_b[1]]
    root = build_intra_tree(objects, sim_acc2, encoder_q, bits=8)
    subtree_ids = [
        sorted(l.obj.object_id for l in child.iter_leaves()) for child in root.children
    ]
    assert sorted(subtree_ids) == [[0, 1], [10, 11]]


def test_unclustered_build_keeps_arrival_order(sim_acc2, encoder_q, objects):
    root = build_intra_tree(objects[:4], sim_acc2, encoder_q, bits=8, clustered=False)
    leaves = [l.obj.object_id for l in root.iter_leaves()]
    assert leaves == [0, 1, 2, 3]


def test_odd_leaf_carried_up(sim_acc2, encoder_q, objects):
    root = build_intra_tree(objects[:3], sim_acc2, encoder_q, bits=8, clustered=False)
    assert root.leaf_count() == 3
    # one child is the carried leaf or a 2-leaf subtree
    sizes = sorted(child.leaf_count() for child in root.children)
    assert sizes == [1, 2]


def test_trees_differ_when_content_differs(sim_acc2, encoder_q, objects):
    a = build_intra_tree(objects[:2], sim_acc2, encoder_q, bits=8)
    b = build_intra_tree(objects[2:4], sim_acc2, encoder_q, bits=8)
    assert a.node_hash != b.node_hash
