"""Unit and property tests for polynomial arithmetic over Z_r."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.field import PrimeField
from repro.crypto.polynomial import PolynomialRing
from repro.errors import CryptoError

FIELD = PrimeField(10007)
RING = PolynomialRing(FIELD)

coeff = st.integers(min_value=0, max_value=10006)
polys = st.lists(coeff, min_size=0, max_size=8)
roots = st.lists(st.integers(min_value=1, max_value=10006), min_size=0, max_size=6)


def test_normalize_strips_leading_zeros():
    assert RING.normalize([1, 2, 0, 0]) == [1, 2]
    assert RING.normalize([0, 0]) == []
    assert RING.normalize([10007]) == []


def test_constants():
    assert RING.zero == []
    assert RING.one == [1]
    assert RING.constant(10007) == []
    assert RING.constant(5) == [5]


def test_degree_conventions():
    assert RING.degree([]) == -1
    assert RING.degree([3]) == 0
    assert RING.degree([0, 1]) == 1


def test_from_roots_shifted_expands_products():
    # (X + 2)(X + 3) = X² + 5X + 6
    assert RING.from_roots_shifted([2, 3]) == [6, 5, 1]
    # empty product is 1
    assert RING.from_roots_shifted([]) == [1]


def test_from_roots_shifted_keeps_multiplicity():
    # (X + 2)² = X² + 4X + 4
    assert RING.from_roots_shifted([2, 2]) == [4, 4, 1]


@given(values=roots, x=coeff)
def test_from_roots_evaluates_to_product(values, x):
    poly = RING.from_roots_shifted(values)
    expected = 1
    for v in values:
        expected = expected * (x + v) % 10007
    assert RING.evaluate(poly, x) == expected


def test_add_sub_roundtrip():
    a, b = [1, 2, 3], [4, 5]
    assert RING.sub(RING.add(a, b), b) == a


@given(a=polys, b=polys, x=coeff)
def test_mul_matches_pointwise_evaluation(a, b, x):
    a, b = RING.normalize(a), RING.normalize(b)
    product = RING.mul(a, b)
    assert RING.evaluate(product, x) == (
        RING.evaluate(a, x) * RING.evaluate(b, x) % 10007
    )


def test_mul_by_zero():
    assert RING.mul([1, 2], []) == []
    assert RING.mul([], []) == []


def test_scale():
    assert RING.scale([1, 2], 3) == [3, 6]
    assert RING.scale([1, 2], 0) == []


def test_divmod_exact_division():
    a = RING.from_roots_shifted([2, 3, 4])
    b = RING.from_roots_shifted([3])
    q, r = RING.divmod(a, b)
    assert r == []
    assert RING.mul(q, b) == a


@given(a=polys, b=polys)
def test_divmod_invariant(a, b):
    a, b = RING.normalize(a), RING.normalize(b)
    if not b:
        return
    q, r = RING.divmod(a, b)
    assert RING.add(RING.mul(q, b), r) == a
    assert RING.degree(r) < RING.degree(b)


def test_divmod_by_zero_raises():
    with pytest.raises(CryptoError):
        RING.divmod([1, 2], [])


def test_xgcd_of_coprime_is_one():
    a = RING.from_roots_shifted([1, 2])
    b = RING.from_roots_shifted([3])
    g, u, v = RING.xgcd(a, b)
    assert g == [1]
    assert RING.add(RING.mul(u, a), RING.mul(v, b)) == [1]


def test_xgcd_detects_common_root():
    a = RING.from_roots_shifted([1, 2])
    b = RING.from_roots_shifted([2, 3])
    g, u, v = RING.xgcd(a, b)
    # gcd is monic (X + 2)
    assert g == [2, 1]
    assert RING.add(RING.mul(u, a), RING.mul(v, b)) == g


@given(xs=roots, ys=roots)
def test_xgcd_bezout_identity(xs, ys):
    a = RING.from_roots_shifted(xs)
    b = RING.from_roots_shifted(ys)
    g, u, v = RING.xgcd(a, b)
    assert RING.add(RING.mul(u, a), RING.mul(v, b)) == g
    if not (set(xs) & set(ys)):
        assert g == [1]


def test_bezout_disjoint_raises_on_common_root():
    a = RING.from_roots_shifted([5])
    b = RING.from_roots_shifted([5, 6])
    with pytest.raises(CryptoError):
        RING.bezout_disjoint(a, b)


def test_bezout_disjoint_produces_identity():
    a = RING.from_roots_shifted([1, 2, 3])
    b = RING.from_roots_shifted([4, 5])
    q1, q2 = RING.bezout_disjoint(a, b)
    assert RING.add(RING.mul(a, q1), RING.mul(b, q2)) == [1]
