"""Shift-XOR erasure code: exact recovery from any <= m erasures.

The code underneath :class:`~repro.storage.StripedBlockStore` must be
an MDS code in practice: any ``k`` surviving stripes of a ``(k, m)``
encoding reconstruct the payload byte-for-byte.  These tests sweep
every erasure pattern exhaustively for the deployment shape the
acceptance scenario uses (k=4, m=2) and property-test the rest.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import ShiftXORCode


def erase(stripes, missing):
    return [None if i in missing else s for i, s in enumerate(stripes)]


def test_encode_shapes():
    code = ShiftXORCode(4, 2)
    payload = bytes(range(103))
    stripes = code.encode(payload)
    assert len(stripes) == code.nodes == 6
    data_len = code.data_length(len(payload))
    for index in range(4):
        assert len(stripes[index]) == data_len
        assert len(stripes[index]) == code.stripe_length(len(payload), index)
    # parity stripe j carries the shift overhead: (k-1) * j extra bytes
    assert len(stripes[4]) == data_len
    assert len(stripes[5]) == data_len + 3


def test_no_erasures_round_trip():
    code = ShiftXORCode(4, 2)
    payload = b"\x00\xff" * 50 + b"tail"
    assert code.decode(code.encode(payload), len(payload)) == payload


def test_every_two_erasure_pattern_recovers_k4_m2():
    """The acceptance shape: any 2 of 6 stripes lost, payload intact."""
    code = ShiftXORCode(4, 2)
    payload = bytes((i * 37 + 11) % 256 for i in range(257))
    stripes = code.encode(payload)
    for missing in itertools.combinations(range(6), 2):
        got = code.decode(erase(stripes, missing), len(payload))
        assert got == payload, f"lost stripes {missing}"


def test_every_single_erasure_pattern_recovers():
    code = ShiftXORCode(4, 2)
    payload = b"vchain" * 33
    stripes = code.encode(payload)
    for missing in range(6):
        assert code.decode(erase(stripes, {missing}), len(payload)) == payload


def test_three_erasures_general_solver():
    """m=3 exercises the GF(2)[x] elimination path, not the closed forms."""
    code = ShiftXORCode(3, 3)
    payload = bytes((i * 101 + 7) % 256 for i in range(190))
    stripes = code.encode(payload)
    for missing in itertools.combinations(range(6), 3):
        got = code.decode(erase(stripes, missing), len(payload))
        assert got == payload, f"lost stripes {missing}"


def test_too_many_erasures_is_refused():
    code = ShiftXORCode(4, 2)
    payload = b"x" * 64
    stripes = erase(code.encode(payload), {0, 1, 2})
    with pytest.raises(StorageError, match="unrecoverable"):
        code.decode(stripes, len(payload))


def test_wrong_stripe_count_is_refused():
    code = ShiftXORCode(4, 2)
    with pytest.raises(StorageError):
        code.decode([b""] * 5, 0)


def test_invalid_parameters_are_refused():
    with pytest.raises(StorageError):
        ShiftXORCode(0, 2)
    with pytest.raises(StorageError):
        ShiftXORCode(4, -1)


def test_empty_and_tiny_payloads():
    code = ShiftXORCode(4, 2)
    for payload in (b"", b"a", b"ab", b"abc", b"abcd", b"abcde"):
        stripes = code.encode(payload)
        for missing in itertools.combinations(range(6), 2):
            assert code.decode(erase(stripes, missing), len(payload)) == payload


@settings(max_examples=40, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=400),
    k=st.integers(min_value=1, max_value=5),
    m=st.integers(min_value=0, max_value=3),
    data=st.data(),
)
def test_random_erasure_round_trip(payload, k, m, data):
    code = ShiftXORCode(k, m)
    stripes = code.encode(payload)
    n_lost = data.draw(st.integers(min_value=0, max_value=m))
    missing = data.draw(
        st.sets(
            st.integers(min_value=0, max_value=code.nodes - 1),
            min_size=n_lost,
            max_size=n_lost,
        )
    )
    assert code.decode(erase(stripes, missing), len(payload)) == payload


def test_corrupt_surviving_stripe_is_detected_or_wrong():
    """Decoding is not expected to correct *corruption* (the CRCs in the
    store layer catch that) but an inconsistent stripe set must never
    silently return the original payload from damaged inputs."""
    code = ShiftXORCode(4, 2)
    payload = bytes(range(200))
    stripes = code.encode(payload)
    bad = list(stripes)
    bad[0] = bytes([bad[0][0] ^ 0xFF]) + bad[0][1:]
    bad[1] = None  # force the solver to actually use parity
    try:
        got = code.decode(bad, len(payload))
    except StorageError:
        return
    assert got != payload
