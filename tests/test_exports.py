"""Exports parity: every advertised name actually imports and resolves.

``repro.core`` uses a PEP 562 lazy-export table; nothing would notice a
stale entry until a user hits the AttributeError.  This walks every
subpackage's ``__all__`` (and the core ``_EXPORTS`` table) and touches
each name.
"""

import importlib
import pkgutil

import pytest

import repro
import repro.core

SUBPACKAGES = sorted(
    "repro." + module.name
    for module in pkgutil.iter_modules(repro.__path__)
    if module.ispkg
)


def test_all_subpackages_are_covered():
    # if a new subpackage appears, this file keeps covering it for free
    assert {"repro.api", "repro.core", "repro.wire"} <= set(SUBPACKAGES)


def test_core_lazy_export_table_matches_all():
    assert sorted(repro.core._EXPORTS) == list(repro.core.__all__)


def test_core_lazy_exports_resolve():
    for name, module_name in repro.core._EXPORTS.items():
        resolved = getattr(repro.core, name)
        assert resolved is getattr(importlib.import_module(module_name), name)


def test_core_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        repro.core.NoSuchExport


@pytest.mark.parametrize("module_name", ["repro"] + SUBPACKAGES)
def test_dunder_all_resolves(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    assert exported, f"{module_name} should declare __all__"
    assert list(exported) == sorted(exported), f"{module_name}.__all__ unsorted"
    for name in exported:
        assert getattr(module, name) is not None, f"{module_name}.{name}"
