"""The asyncio serving tier: parity with the threaded server, plus the
traffic hygiene only it provides.

Parity is the acceptance bar carried over from ``test_api_socket``: the
async server must produce byte-identical wire responses to the threaded
server on a mixed workload.  The hygiene tests then drive each
production knob to its trigger point — admission gate, per-client rate
limit, request deadlines, slow-client eviction, graceful drain — and
assert both the client-visible behaviour (typed errors) and the
server-side counters that make the events observable.
"""

import random
import socket
import struct
import threading
import time
import warnings

import pytest

from repro import VChainClient, VChainNetwork
from repro.api import (
    AsyncSocketServer,
    ClientOptions,
    ServiceEndpoint,
    SocketServer,
)
from repro.api.transport import SocketTransport, TransportError, _resolve_options
from repro.chain import ProtocolParams
from repro.errors import DeadlineExpiredError, ServerBusyError, SubscriptionError
from repro.testing import ManualClock
from repro.wire import (
    EnvelopeRequest,
    QueryRequest,
    ServerStats,
    encode_request,
    encode_response,
)
from tests.conftest import make_objects

N_BLOCKS = 8


@pytest.fixture()
def net():
    net = VChainNetwork.create(
        params=ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0),
        seed=33,
    )
    rng = random.Random(33)
    for height in range(N_BLOCKS):
        net.mine(
            make_objects(rng, 3, height * 3, timestamp=height * 10),
            timestamp=height * 10,
        )
    return net


def _wide_query(client):
    return (
        client.query()
        .window(0, 200)
        .range(low=(0,), high=(255,))
        .all_of("Sedan")
        .any_of("Benz", "BMW")
        .build()
    )


def _disjoint_query(client, index):
    vocab = ["Benz", "BMW", "Audi", "Tesla", "Van"]
    return (
        client.query()
        .window(index * 20, index * 20 + 30)
        .any_of(vocab[index % len(vocab)])
        .build()
    )


def _connect(net, server, **options):
    return VChainClient.connect(
        server.address,
        net.accumulator,
        net.encoder,
        net.params,
        options=ClientOptions(**options) if options else None,
    )


def _gated_processor(net):
    """Patch the SP's prover to block on a gate until the test says go.

    Returns ``(started, gate, undo)``: ``started`` is set the moment a
    query reaches the prover (so the test *knows* it is in flight, no
    sleeping and hoping), ``gate`` releases it, ``undo`` unpatches.
    """
    real = net.sp.processor.time_window_query
    started = threading.Event()
    gate = threading.Event()

    def gated(query, *args, **kwargs):
        started.set()
        gate.wait(timeout=30.0)  # failsafe only; tests always set it
        return real(query, *args, **kwargs)

    net.sp.processor.time_window_query = gated
    return started, gate, lambda: net.sp.processor.__dict__.pop("time_window_query")


# -- parity with the threaded server ------------------------------------------
def test_async_matches_threaded_byte_for_byte(net):
    """Identical wire bytes for a mixed workload across both servers."""
    backend = net.accumulator.backend
    queries = [_wide_query(net.client)] + [
        _disjoint_query(net.client, index) for index in range(5)
    ]
    answers = {}
    for name, server_cls in [("threaded", SocketServer), ("async", AsyncSocketServer)]:
        endpoint = ServiceEndpoint(net.sp)
        server = server_cls(endpoint).start()
        try:
            with _connect(net, server) as client:
                answers[name] = [
                    client.execute(query).raise_for_forgery() for query in queries
                ]
        finally:
            server.stop()
            endpoint.close()
    for threaded, asynced in zip(answers["threaded"], answers["async"]):
        assert asynced.results == threaded.results
        assert encode_response(
            backend, asynced.results, asynced.vo
        ) == encode_response(backend, threaded.results, threaded.vo)
        assert asynced.vo_nbytes == threaded.vo_nbytes


def test_async_subscription_matches_threaded():
    deliveries = {}
    for name, server_cls in [("threaded", SocketServer), ("async", AsyncSocketServer)]:
        # a fresh, identically-seeded network per server so both rounds
        # mine byte-identical blocks
        net = VChainNetwork.create(
            params=ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0),
            seed=33,
        )
        endpoint = ServiceEndpoint(net.sp)
        server = server_cls(endpoint).start()
        try:
            with _connect(net, server) as client:
                with (
                    client.subscribe()
                    .range(low=(0,), high=(255,))
                    .any_of("Benz")
                    .open()
                ) as stream:
                    rng = random.Random(99)
                    for height in range(2):
                        net.mine(
                            make_objects(rng, 3, height * 3, timestamp=height),
                            timestamp=height,
                        )
                    deliveries[name] = stream.poll()
        finally:
            server.stop()
            endpoint.close()
    assert len(deliveries["async"]) == len(deliveries["threaded"]) == 2
    for asynced, threaded in zip(deliveries["async"], deliveries["threaded"]):
        assert asynced.results == threaded.results
        assert asynced.vo_nbytes == threaded.vo_nbytes


def test_many_concurrent_async_clients(net):
    """One event loop multiplexes dozens of concurrent clients."""
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(endpoint).start()
    try:
        reference = None
        with _connect(net, server) as client:
            reference = client.execute(_wide_query(client)).raise_for_forgery()
        errors = []

        def hammer():
            try:
                with _connect(net, server) as client:
                    resp = client.execute(_wide_query(client)).raise_for_forgery()
                    assert resp.results == reference.results
            except Exception as exc:  # surface across the thread boundary
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(24)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert server.counters.connections_opened >= 25
    finally:
        server.stop()
        endpoint.close()


# -- admission gate ------------------------------------------------------------
def test_admission_gate_rejects_excess_inflight(net):
    endpoint = ServiceEndpoint(net.sp, max_workers=1)
    server = AsyncSocketServer(endpoint, max_inflight=1).start()
    started, gate, undo = _gated_processor(net)
    try:
        occupier = _connect(net, server)
        rejected = _connect(net, server)
        done = []

        def occupy():
            done.append(occupier.transport.time_window_query(_wide_query(net.client)))

        thread = threading.Thread(target=occupy)
        thread.start()
        assert started.wait(timeout=10)  # the gated query holds the slot
        with pytest.raises(ServerBusyError, match="max inflight"):
            rejected.transport.headers(0)
        gate.set()
        thread.join(timeout=10)
        assert done, "the occupying query must still complete"
        assert server.counters.admission_rejections == 1
        occupier.close()
        rejected.close()
    finally:
        gate.set()
        undo()
        server.stop()
        endpoint.close()


def test_busy_rejections_are_retryable(net):
    """A ServerBusyError is retried even for non-idempotent requests —
    the server rejected before doing any work."""
    endpoint = ServiceEndpoint(net.sp, max_workers=1)
    server = AsyncSocketServer(endpoint, max_inflight=1).start()
    started, gate, undo = _gated_processor(net)
    try:
        occupier = _connect(net, server)
        retrier = _connect(net, server, retries=6, backoff=0.2)

        def occupy():
            occupier.transport.time_window_query(_wide_query(net.client))

        thread = threading.Thread(target=occupy)
        thread.start()
        assert started.wait(timeout=10)

        # open the gate only once a busy rejection has provably landed
        def release():
            assert server.counters.wait_for("admission_rejections", 1)
            gate.set()

        releaser = threading.Thread(target=release)
        releaser.start()
        # register is non-idempotent, yet busy rejections retry: once the
        # gated query drains, a retry lands and the registration succeeds
        stream = retrier.stream(retrier.subscribe().any_of("Benz").build())
        stream.close()
        releaser.join(timeout=10)
        thread.join(timeout=10)
        assert server.counters.admission_rejections >= 1
        occupier.close()
        retrier.close()
    finally:
        gate.set()
        undo()
        server.stop()
        endpoint.close()


# -- per-client rate limit -----------------------------------------------------
def test_rate_limit_rejects_burst(net):
    clock = ManualClock()
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(
        endpoint, rate_limit=1.0, rate_burst=2, clock=clock
    ).start()
    try:
        transport = SocketTransport(server.address, net.accumulator.backend)
        transport.headers(0)
        transport.headers(0)  # burst capacity spent
        with pytest.raises(ServerBusyError, match="rate limit"):
            transport.headers(0)
        assert server.counters.rate_limited == 1
        # the bucket refills on the manual clock: no sleeping for it
        clock.advance(1.1)
        assert transport.headers(0)
        transport.close()
    finally:
        server.stop()
        endpoint.close()


def test_rate_limit_is_per_client(net):
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(endpoint, rate_limit=1.0, rate_burst=1).start()
    try:
        first = SocketTransport(server.address, net.accumulator.backend)
        second = SocketTransport(server.address, net.accumulator.backend)
        first.headers(0)
        # a different connection has its own bucket
        assert second.headers(0)
        with pytest.raises(ServerBusyError):
            first.headers(0)
        first.close()
        second.close()
    finally:
        server.stop()
        endpoint.close()


# -- request deadlines ---------------------------------------------------------
def test_deadline_expires_mid_prove(net):
    clock = ManualClock()
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(endpoint, clock=clock).start()
    started, gate, undo = _gated_processor(net)
    try:
        # generous socket timeout, tight server-side deadline: the server
        # must discard the late answer and report the expiry.  The prover
        # blocks on the gate while the manual clock burns the budget, so
        # the expiry is exact, not a race against a sleep.
        transport = SocketTransport(
            server.address,
            net.accumulator.backend,
            options=ClientOptions(request_deadline=30.0),
        )
        payload = encode_request(
            EnvelopeRequest(
                request=QueryRequest(query=_wide_query(net.client)), deadline_ms=150
            )
        )

        def expire():
            assert started.wait(timeout=10)
            clock.advance(1.0)  # blow well past the 150ms budget
            gate.set()

        helper = threading.Thread(target=expire)
        helper.start()
        with pytest.raises(DeadlineExpiredError, match="during execution"):
            transport._request(payload)
        helper.join(timeout=10)
        assert server.counters.deadlines_expired == 1
        # the connection survives; a fresh request with budget succeeds
        assert transport.headers(0)
        transport.close()
    finally:
        gate.set()
        undo()
        server.stop()
        endpoint.close()


def test_client_options_deadline_travels_in_envelope(net):
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(endpoint).start()
    try:
        with _connect(net, server, request_deadline=30.0) as client:
            client.execute(_wide_query(client)).raise_for_forgery()
        # the deadline pre-check ran server-side (no expiry: big budget)
        assert server.counters.deadlines_expired == 0
        assert server.counters.requests >= 1
    finally:
        server.stop()
        endpoint.close()


# -- slow-client eviction ------------------------------------------------------
def test_slow_client_evicted(net):
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(
        endpoint, drain_timeout=0.3, send_queue_limit=4096, sock_sndbuf=4096
    ).start()
    try:
        query_frame = encode_request(QueryRequest(query=_wide_query(net.client)))
        framed = struct.pack(">I", len(query_frame)) + query_frame
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        sock.connect(server.address)
        # pipeline many requests and never read a byte of response: the
        # server's send buffers fill and drain() cannot complete
        try:
            for _ in range(30):
                sock.sendall(framed)
        except OSError:
            pass  # already evicted mid-send, which is the point
        assert server.counters.wait_for("evictions", 1, timeout=10.0)
        assert server.counters.evictions == 1
        sock.close()
        # the server is fine: a well-behaved client still gets answers
        with _connect(net, server) as client:
            client.execute(_wide_query(client)).raise_for_forgery()
    finally:
        server.stop()
        endpoint.close()


# -- graceful drain ------------------------------------------------------------
def test_async_drain_answers_inflight_request(net):
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(endpoint).start()
    started, gate, undo = _gated_processor(net)
    try:
        client = _connect(net, server, request_deadline=10.0)
        answers = []

        def run_query():
            answers.append(
                client.transport.time_window_query(_wide_query(net.client))
            )

        thread = threading.Thread(target=run_query)
        thread.start()
        assert started.wait(timeout=10)  # provably in flight, no sleep
        stopping = threading.Event()

        def stop_drain():
            stopping.set()
            server.stop(drain=True)  # in-flight request still gets its answer

        stopper = threading.Thread(target=stop_drain)
        stopper.start()
        stopping.wait(timeout=10)
        gate.set()
        stopper.join(timeout=10)
        thread.join(timeout=10)
        assert answers and answers[0][2].results == len(answers[0][0])
        client.close()
    finally:
        gate.set()
        undo()
        server.stop()
        endpoint.close()


def test_async_stop_without_drain_aborts(net):
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(endpoint).start()
    client = _connect(net, server)
    client.execute(_wide_query(client)).raise_for_forgery()
    server.stop(drain=False)
    with pytest.raises((TransportError, OSError)):
        client.transport.headers(0)
    client.close()
    endpoint.close()


def test_async_session_cleanup_on_disconnect(net):
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(endpoint).start()
    try:
        client = _connect(net, server)
        stream = client.subscribe().any_of("Benz").open()
        query_id = stream.query_id
        client.close()  # socket drops without deregistering
        # the server-side session closes (deregistering its orphans)
        # before the counter ticks, so this wait is the whole handshake
        assert endpoint.counters.wait_for("sessions_closed", 1, timeout=10.0)
        with pytest.raises(SubscriptionError):
            endpoint.poll(query_id)
    finally:
        server.stop()
        endpoint.close()


# -- server stats over the wire ------------------------------------------------
def test_server_stats_crosses_the_wire_typed(net):
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(endpoint).start()
    try:
        with _connect(net, server) as client:
            client.execute(_wide_query(client)).raise_for_forgery()
            stats = client.server_stats()
            assert isinstance(stats, ServerStats)
            assert stats.endpoint["queries"] == 1
            assert stats.caches["fragments"]["misses"] == N_BLOCKS
            assert stats.server is not None
            assert stats.server["connections_opened"] == 1
            assert stats.server["requests"] >= 2  # the query + this request
            # the snapshot matches the endpoint's local view
            assert stats.endpoint == endpoint.server_stats().endpoint
    finally:
        server.stop()
        endpoint.close()


def test_server_section_absent_without_attached_server(net):
    endpoint = ServiceEndpoint(net.sp)
    try:
        assert endpoint.server_stats().server is None
    finally:
        endpoint.close()


def test_stats_detached_after_stop(net):
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(endpoint).start()
    assert endpoint.server_stats().server is not None
    server.stop()
    assert endpoint.server_stats().server is None
    endpoint.close()


# -- ClientOptions and the deprecation shim ------------------------------------
def test_client_options_validation():
    with pytest.raises(ValueError):
        ClientOptions(retries=-1)
    with pytest.raises(ValueError):
        ClientOptions(backoff=-0.1)
    with pytest.raises(ValueError):
        ClientOptions(request_deadline=0.0)
    assert ClientOptions().deadline_ms() is None
    assert ClientOptions(request_deadline=0.25).deadline_ms() == 250
    assert ClientOptions(request_deadline=1e-9).deadline_ms() == 1  # min 1ms


def test_deprecated_timeout_kwarg_maps_to_options(net):
    endpoint = ServiceEndpoint(net.sp)
    server = AsyncSocketServer(endpoint).start()
    try:
        with pytest.warns(DeprecationWarning, match="timeout=.*deprecated"):
            transport = SocketTransport(
                server.address, net.accumulator.backend, timeout=5.0
            )
        assert transport.options.connect_timeout == 5.0
        assert transport.options.request_deadline == 5.0
        transport.close()
        with pytest.warns(DeprecationWarning, match="VChainClient.connect"):
            client = VChainClient.connect(
                server.address, net.accumulator, net.encoder, net.params, timeout=5.0
            )
        client.close()
    finally:
        server.stop()
        endpoint.close()


def test_timeout_and_options_together_rejected():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="not both"):
            _resolve_options(ClientOptions(), 5.0, "SocketTransport")


def test_explicit_timeout_none_still_warns():
    """``timeout=None`` was a meaningful spelling (block forever), so
    passing it explicitly still goes through the shim."""
    with pytest.warns(DeprecationWarning):
        options = _resolve_options(None, None, "SocketTransport")
    assert options.connect_timeout is None
    assert options.request_deadline is None


# -- threaded server stop() budget ---------------------------------------------
def test_threaded_stop_reports_stuck_threads(net):
    endpoint = ServiceEndpoint(net.sp)
    server = SocketServer(endpoint).start()
    started, gate, undo = _gated_processor(net)
    try:
        client = _connect(net, server, request_deadline=10.0)

        def run_query():
            try:
                client.transport.time_window_query(_wide_query(net.client))
            except Exception:
                pass  # the connection dies with the server; that's fine

        thread = threading.Thread(target=run_query)
        thread.start()
        assert started.wait(timeout=10)  # the worker is provably stuck
        begun = time.monotonic()
        with pytest.warns(RuntimeWarning, match="still running"):
            server.stop(timeout=0.3)
        # the budget is total, not per-thread
        assert time.monotonic() - begun < 1.2
        gate.set()
        thread.join(timeout=10)
        client.close()
    finally:
        gate.set()
        undo()
        server.stop()
        endpoint.close()


def test_threaded_stop_within_budget_is_quiet(net):
    endpoint = ServiceEndpoint(net.sp)
    server = SocketServer(endpoint).start()
    with _connect(net, server) as client:
        client.execute(_wide_query(client)).raise_for_forgery()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        server.stop(timeout=5.0)
    endpoint.close()
