"""Tests for blockchain structural validation and the miner."""

import random
from dataclasses import replace

import pytest

from repro.chain import Blockchain, Miner, ProtocolParams
from repro.chain.block import Block, BlockHeader, ZERO_HASH
from repro.errors import ChainError
from tests.conftest import make_objects


def build_miner(acc, enc, mode="both", skip_size=2, difficulty=0):
    params = ProtocolParams(
        mode=mode, bits=8, skip_size=skip_size, difficulty_bits=difficulty
    )
    chain = Blockchain(difficulty_bits=difficulty)
    return chain, Miner(chain, acc, enc, params), params


def test_params_validation():
    with pytest.raises(ChainError):
        ProtocolParams(mode="bogus")
    with pytest.raises(ChainError):
        ProtocolParams(bits=0)
    with pytest.raises(ChainError):
        ProtocolParams(skip_size=-1)


def test_empty_block_rejected(sim_acc2, encoder_q):
    _chain, miner, _params = build_miner(sim_acc2, encoder_q)
    with pytest.raises(ChainError):
        miner.mine_block([], timestamp=0)


def test_mining_appends_linked_blocks(sim_acc2, encoder_q):
    chain, miner, _ = build_miner(sim_acc2, encoder_q)
    rng = random.Random(1)
    first = miner.mine_block(make_objects(rng, 3, 0, 0), timestamp=0)
    second = miner.mine_block(make_objects(rng, 3, 3, 10), timestamp=10)
    assert len(chain) == 2
    assert second.header.prev_hash == first.header.block_hash()
    assert chain.tip is second


def test_append_rejects_wrong_height(sim_acc2, encoder_q, small_chain):
    chain, _params = small_chain
    block = chain.block(3)
    bad = Block(
        header=replace(block.header, height=99),
        objects=block.objects,
        index_root=block.index_root,
    )
    with pytest.raises(ChainError):
        chain.append(bad)


def test_append_rejects_bad_prev_hash(sim_acc2, encoder_q):
    chain, miner, _ = build_miner(sim_acc2, encoder_q)
    rng = random.Random(1)
    miner.mine_block(make_objects(rng, 2, 0, 0), timestamp=0)
    block = chain.block(0)
    forged = Block(
        header=BlockHeader(
            height=1,
            prev_hash=ZERO_HASH,  # wrong linkage
            timestamp=5,
            merkle_root=block.index_root.node_hash,
        ),
        objects=block.objects,
        index_root=block.index_root,
    )
    with pytest.raises(ChainError):
        chain.append(forged)


def test_append_rejects_timestamp_regression(sim_acc2, encoder_q):
    chain, miner, _ = build_miner(sim_acc2, encoder_q)
    rng = random.Random(1)
    miner.mine_block(make_objects(rng, 2, 0, 0), timestamp=100)
    with pytest.raises(ChainError):
        miner.mine_block(make_objects(rng, 2, 2, 0), timestamp=50)


def test_append_rejects_merkle_mismatch(sim_acc2, encoder_q):
    chain, miner, _ = build_miner(sim_acc2, encoder_q)
    rng = random.Random(1)
    block = miner.mine_block(make_objects(rng, 2, 0, 0), timestamp=0)
    forged = Block(
        header=BlockHeader(
            height=1,
            prev_hash=block.header.block_hash(),
            timestamp=10,
            merkle_root=ZERO_HASH,
        ),
        objects=block.objects,
        index_root=block.index_root,
    )
    with pytest.raises(ChainError):
        chain.append(forged)


def test_consensus_enforced(sim_acc2, encoder_q):
    chain, miner, _ = build_miner(sim_acc2, encoder_q, difficulty=8)
    rng = random.Random(1)
    block = miner.mine_block(make_objects(rng, 2, 0, 0), timestamp=0)
    assert block.header.nonce >= 0
    # a forged nonce is rejected on append
    forged = Block(
        header=replace(block.header, height=1, prev_hash=block.header.block_hash(),
                       timestamp=10, nonce=0),
        objects=block.objects,
        index_root=block.index_root,
    )
    # nonce 0 may accidentally satisfy 8 bits (~1/256); tolerate that case
    try:
        chain.append(forged)
    except ChainError:
        pass


def test_block_access_and_windows(small_chain):
    chain, _params = small_chain
    assert chain.block(0).height == 0
    with pytest.raises(ChainError):
        chain.block(999)
    heights = chain.heights_in_window(50, 100)
    assert heights == [5, 6, 7, 8, 9, 10]
    assert chain.heights_in_window(10**9, 2 * 10**9) == []


def test_headers_view(small_chain):
    chain, _params = small_chain
    headers = chain.headers()
    assert len(headers) == len(chain)
    assert headers[3].height == 3


def test_nil_mode_has_no_skip_entries(sim_acc2, encoder_q):
    chain, miner, _ = build_miner(sim_acc2, encoder_q, mode="nil")
    rng = random.Random(1)
    for h in range(6):
        block = miner.mine_block(make_objects(rng, 2, h * 2, h), timestamp=h)
        assert block.skip_entries == []
        assert block.header.skiplist_root == ZERO_HASH
        assert block.index_root.att_digest is None or block.index_root.is_leaf


def test_both_mode_grows_skip_entries(sim_acc2, encoder_q):
    chain, miner, _ = build_miner(sim_acc2, encoder_q, mode="both", skip_size=3)
    rng = random.Random(1)
    for h in range(20):
        miner.mine_block(make_objects(rng, 2, h * 2, h), timestamp=h)
    # distances 4, 8, 16 all available at height 19
    distances = [e.distance for e in chain.block(19).skip_entries]
    assert distances == [4, 8, 16]
    # height 5 can only host distance 4
    assert [e.distance for e in chain.block(5).skip_entries] == [4]


def test_skip_entry_attrs_are_block_sums(sim_acc2, encoder_q):
    chain, miner, _ = build_miner(sim_acc2, encoder_q, mode="both", skip_size=1)
    rng = random.Random(1)
    for h in range(8):
        miner.mine_block(make_objects(rng, 2, h * 2, h), timestamp=h)
    entry = chain.block(7).skip_entries[0]
    assert entry.distance == 4
    assert entry.covered_heights == (4, 5, 6, 7)
    expected = sum(
        (chain.block(h).attrs_sum for h in range(4, 8)), start=type(entry.attrs)()
    )
    assert entry.attrs == expected
    direct = sim_acc2.accumulate(encoder_q.encode_multiset(expected))
    assert entry.att_digest.parts == direct.parts


def test_attrs_sum_matches_objects(sim_acc2, encoder_q, small_chain):
    chain, params = small_chain
    block = chain.block(2)
    from collections import Counter

    expected = Counter()
    for obj in block.objects:
        expected.update(obj.attribute_multiset(params.bits))
    assert block.attrs_sum == expected
