"""The serving caches: LRU semantics, proof memos, fragment replay.

The load-bearing property throughout: a cached answer must be
**byte-identical** to a freshly computed one — the cache may only ever
change *when* proving work happens, never *what* the user verifies.
"""

import random
import threading

import pytest

from repro import VChainNetwork
from repro.api import ServiceEndpoint
from repro.cache import LRUCache, ProofCache, VOFragmentCache
from repro.chain import ProtocolParams
from repro.wire import encode_response
from tests.conftest import make_objects


# -- LRUCache -----------------------------------------------------------------
def test_lru_get_put_and_stats():
    cache = LRUCache(max_entries=2)
    assert cache.get("a") is None
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1 and cache.get("b") == 2
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.entries) == (2, 1, 2)
    assert 0 < stats.hit_rate < 1


def test_lru_evicts_coldest_entry():
    cache = LRUCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh: "b" is now coldest
    cache.put("c", 3)
    assert "b" not in cache and cache.get("a") == 1 and cache.get("c") == 3
    assert cache.stats().evictions == 1


def test_lru_overwrite_refreshes_without_eviction():
    cache = LRUCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # overwrite, not insert
    cache.put("c", 3)  # evicts "b", the coldest
    assert cache.get("a") == 10 and "b" not in cache


def test_lru_disabled_cache_never_stores():
    cache = LRUCache(max_entries=0)
    assert not cache.enabled
    cache.put("a", 1)
    assert cache.get("a") is None and len(cache) == 0


def test_lru_clear_keeps_counters():
    cache = LRUCache(max_entries=4)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats().hits == 1


def test_lru_thread_safety_under_contention():
    cache = LRUCache(max_entries=64)
    errors = []

    def worker(seed):
        rng = random.Random(seed)
        try:
            for _ in range(500):
                key = rng.randrange(100)
                if rng.random() < 0.5:
                    cache.put(key, key * 2)
                else:
                    value = cache.get(key)
                    assert value is None or value == key * 2
        except Exception as exc:  # surfaced across the thread boundary
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    assert len(cache) <= 64


# -- network fixture ----------------------------------------------------------
@pytest.fixture()
def net():
    net = VChainNetwork.create(
        params=ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0),
        seed=33,
    )
    rng = random.Random(33)
    for height in range(8):
        net.mine(
            make_objects(rng, 3, height * 3, timestamp=height * 10),
            timestamp=height * 10,
        )
    return net


def _query(net, start=0, end=200):
    return (
        net.client.query()
        .window(start, end)
        .range(low=(0,), high=(255,))
        .all_of("Sedan")
        .any_of("Benz", "BMW")
        .build()
    )


# -- ProofCache ---------------------------------------------------------------
def test_proof_cache_hits_on_identical_inputs(net):
    cache = ProofCache(net.accumulator, net.encoder, max_entries=16)
    from collections import Counter

    attrs = Counter({"Van": 2, "Audi": 1})
    clause = frozenset({"Sedan"})
    proof1, hit1 = cache.prove_disjoint(attrs, clause)
    proof2, hit2 = cache.prove_disjoint(Counter(attrs), clause)  # equal copy
    assert (hit1, hit2) == (False, True)
    assert proof1 is proof2
    assert net.accumulator.verify_disjoint(
        net.accumulator.accumulate(net.encoder.encode_multiset(attrs)),
        net.accumulator.accumulate(net.encoder.encode_multiset(Counter(clause))),
        proof1,
    )


# -- VOFragmentCache through the endpoint ------------------------------------
def test_cached_answer_is_byte_identical(net):
    query = _query(net)
    backend = net.accumulator.backend
    cold = ServiceEndpoint(net.sp, cache_fragments=0, cache_proofs=0)
    warm = ServiceEndpoint(net.sp)
    try:
        reference = cold.time_window_query(query)
        first = warm.time_window_query(query)
        replay = warm.time_window_query(query)
        for answer in (first, replay):
            assert encode_response(backend, answer[0], answer[1]) == encode_response(
                backend, reference[0], reference[1]
            )
        assert first[2].cache_hits == 0 and first[2].cache_misses == 8
        assert replay[2].cache_hits == 8 and replay[2].cache_misses == 0
        assert replay[2].proofs_computed == 0
        assert replay[2].proofs_reused > 0
    finally:
        cold.close()
        warm.close()


def test_cached_answer_byte_identical_without_batch(net):
    query = _query(net)
    backend = net.accumulator.backend
    cold = ServiceEndpoint(net.sp, cache_fragments=0, cache_proofs=0)
    warm = ServiceEndpoint(net.sp)
    try:
        reference = cold.time_window_query(query, batch=False)
        warm.time_window_query(query, batch=False)
        replay = warm.time_window_query(query, batch=False)
        assert encode_response(backend, replay[0], replay[1]) == encode_response(
            backend, reference[0], reference[1]
        )
        assert replay[2].proofs_computed == 0
    finally:
        cold.close()
        warm.close()


def test_overlapping_windows_share_fragments(net):
    warm = ServiceEndpoint(net.sp)
    try:
        warm.time_window_query(_query(net, 0, 200))
        _results, _vo, stats = warm.time_window_query(_query(net, 30, 200))
        # heights 3..7 were already computed for the wide window
        assert stats.cache_hits > 0 and stats.cache_misses == 0
    finally:
        warm.close()


def test_batch_and_plain_fragments_do_not_collide(net):
    warm = ServiceEndpoint(net.sp)
    try:
        warm.time_window_query(_query(net), batch=True)
        _results, vo, stats = warm.time_window_query(_query(net), batch=False)
        # same window, different mode: separate cache keys, full miss
        assert stats.cache_hits == 0
        assert vo.batch_groups == {}
        _results, _vo, stats = warm.time_window_query(_query(net), batch=False)
        assert stats.cache_hits == 8
    finally:
        warm.close()


def test_fragment_eviction_recomputes_correctly(net):
    query = _query(net)
    backend = net.accumulator.backend
    tiny = ServiceEndpoint(net.sp, cache_fragments=2, cache_proofs=2)
    big = ServiceEndpoint(net.sp, cache_fragments=0, cache_proofs=0)
    try:
        reference = big.time_window_query(query)
        tiny.time_window_query(query)
        replay = tiny.time_window_query(query)  # mostly evicted by now
        assert encode_response(backend, replay[0], replay[1]) == encode_response(
            backend, reference[0], reference[1]
        )
        assert tiny.fragment_cache.stats().evictions > 0
    finally:
        tiny.close()
        big.close()


def test_endpoint_cache_stats_snapshot(net):
    endpoint = ServiceEndpoint(net.sp)
    try:
        endpoint.time_window_query(_query(net))
        snapshot = endpoint.cache_stats()
        assert snapshot["fragments"].misses == 8
        assert snapshot["proofs"].entries > 0
        assert "hit_rate" in snapshot["proofs"].as_info()
    finally:
        endpoint.close()


def test_disabled_fragment_cache_reports_nothing(net):
    cache = VOFragmentCache(max_entries=0)
    assert not cache.enabled
    endpoint = ServiceEndpoint(net.sp, cache_fragments=0)
    try:
        _results, _vo, stats = endpoint.time_window_query(_query(net))
        assert stats.cache_hits == 0 and stats.cache_misses == 0
    finally:
        endpoint.close()
