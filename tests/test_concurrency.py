"""Concurrent serving: worker pool, shared caches, session isolation.

N threads hammer one :class:`ServiceEndpoint` with identical and
disjoint queries; the suite asserts cache hit accounting, result
correctness against serial references, that forged VOs still fail under
``batch_verify`` while honest traffic flows, and that slow or vanished
clients cannot stall or pollute anyone else.
"""

import random
import socket
import struct
import threading

import pytest

from repro import VChainClient, VChainNetwork
from repro.api import ClientOptions, ServiceEndpoint, SocketServer
from repro.chain import ProtocolParams
from repro.errors import ReproError, SubscriptionError, VerificationError
from tests.conftest import make_objects

N_BLOCKS = 8


@pytest.fixture()
def net():
    net = VChainNetwork.create(
        params=ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0),
        seed=33,
    )
    rng = random.Random(33)
    for height in range(N_BLOCKS):
        net.mine(
            make_objects(rng, 3, height * 3, timestamp=height * 10),
            timestamp=height * 10,
        )
    return net


def _wide_query(client):
    return (
        client.query()
        .window(0, 200)
        .range(low=(0,), high=(255,))
        .all_of("Sedan")
        .any_of("Benz", "BMW")
        .build()
    )


def _disjoint_query(client, index):
    vocab = ["Benz", "BMW", "Audi", "Tesla", "Van"]
    return (
        client.query()
        .window(index * 20, index * 20 + 30)
        .any_of(vocab[index % len(vocab)])
        .build()
    )


def _run_threads(workers):
    errors = []

    def guard(fn):
        try:
            fn()
        except Exception as exc:  # surface across the thread boundary
            errors.append(exc)

    threads = [threading.Thread(target=guard, args=(fn,)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors


def test_identical_queries_concurrent_cache_hits(net):
    n_threads, n_queries = 6, 3
    endpoint = ServiceEndpoint(net.sp)
    try:
        reference = VChainClient.local(endpoint).execute(
            _wide_query(net.client)
        ).raise_for_forgery()

        def hammer():
            client = VChainClient.local(endpoint)
            for _ in range(n_queries):
                resp = client.execute(_wide_query(client)).raise_for_forgery()
                assert resp.results == reference.results
                assert resp.sp_stats.cache_hits == N_BLOCKS
                assert resp.sp_stats.proofs_computed == 0

        _run_threads([hammer] * n_threads)
        # the warm-up missed once per block; every hammer query hit
        stats = endpoint.fragment_cache.stats()
        assert stats.misses == N_BLOCKS
        assert stats.hits == n_threads * n_queries * N_BLOCKS
    finally:
        endpoint.close()


def test_disjoint_queries_concurrent_correctness(net):
    serial = ServiceEndpoint(net.sp, cache_fragments=0, cache_proofs=0)
    references = {
        index: VChainClient.local(serial)
        .execute(_disjoint_query(net.client, index))
        .raise_for_forgery()
        for index in range(5)
    }
    serial.close()
    endpoint = ServiceEndpoint(net.sp)
    try:

        def hammer(index):
            def run():
                client = VChainClient.local(endpoint)
                for _ in range(2):
                    resp = client.execute(
                        _disjoint_query(client, index)
                    ).raise_for_forgery()
                    assert resp.results == references[index].results

            return run

        _run_threads([hammer(i) for i in range(5)])
        assert endpoint.fragment_cache.stats().hits > 0  # repeat passes hit
    finally:
        endpoint.close()


def test_forged_vo_fails_under_batch_verify_amid_traffic(net):
    """A forged answer is rejected by batch_verify even while honest
    threads hammer the same endpoint (shared caches, shared clauses)."""
    endpoint = ServiceEndpoint(net.sp)
    try:

        def honest():
            client = VChainClient.local(endpoint)
            for _ in range(3):
                client.execute(_wide_query(client)).raise_for_forgery()

        def forger():
            client = VChainClient.local(endpoint)
            queries = [_wide_query(client), _wide_query(client)]
            answers = [client.transport.time_window_query(q) for q in queries]
            client.sync_headers()
            items = [(q, results, vo) for q, (results, vo, _s) in zip(queries, answers)]
            forged = (queries[1], items[1][1][:-1], items[1][2])  # drop a result
            with pytest.raises(VerificationError, match="batch item 1"):
                client.user.batch_verify([items[0], forged])
            # the honest pair still verifies
            all_verified, _stats = client.user.batch_verify(items)
            assert all_verified[0] == all_verified[1]

        _run_threads([honest, honest, forger])
    finally:
        endpoint.close()


def test_slow_query_does_not_stall_other_clients(net):
    """Regression: the serial dispatcher ran every query under one lock,
    so one slow query stalled every connection.  With the worker pool a
    slow query occupies one worker while others keep answering."""
    endpoint = ServiceEndpoint(net.sp, max_workers=4)
    real = net.sp.processor.time_window_query
    marker_start = 111
    started = threading.Event()
    gate = threading.Event()

    def sometimes_slow(query, *args, **kwargs):
        if query.start == marker_start:
            started.set()
            gate.wait(timeout=30.0)  # pinned until the test releases it
        return real(query, *args, **kwargs)

    net.sp.processor.time_window_query = sometimes_slow
    try:
        slow_done = threading.Event()

        def slow_caller():
            client = VChainClient.local(endpoint)
            query = client.query().window(marker_start, 200).any_of("Benz").build()
            client.execute(query).raise_for_forgery()
            slow_done.set()

        def fast_caller():
            client = VChainClient.local(endpoint)
            for _ in range(3):
                client.execute(_wide_query(client)).raise_for_forgery()

        slow_thread = threading.Thread(target=slow_caller)
        slow_thread.start()
        assert started.wait(timeout=10)  # the slow query holds its worker
        _run_threads([fast_caller])
        # every fast query completed while the marker query is *still*
        # pinned on its gate: the pool does not serialize behind it
        assert not slow_done.is_set(), "fast queries should finish first"
        gate.set()
        slow_thread.join(timeout=10)
        assert slow_done.is_set()
    finally:
        gate.set()
        del net.sp.processor.__dict__["time_window_query"]
        endpoint.close()


def test_hung_client_mid_frame_does_not_block_others(net):
    endpoint = ServiceEndpoint(net.sp)
    server = SocketServer(endpoint, idle_timeout=30.0).start()
    try:
        hung = socket.create_connection(server.address)
        hung.sendall(struct.pack(">I", 64)[:2])  # half a length prefix, then silence
        client = VChainClient.connect(
            server.address, net.accumulator, net.encoder, net.params,
            options=ClientOptions(request_deadline=10.0),
        )
        with client:
            for _ in range(3):
                client.execute(_wide_query(client)).raise_for_forgery()
        hung.close()
    finally:
        server.stop()
        endpoint.close()


def test_idle_timeout_reaps_connection_and_session(net):
    endpoint = ServiceEndpoint(net.sp)
    server = SocketServer(endpoint, idle_timeout=0.2).start()
    try:
        client = VChainClient.connect(
            server.address, net.accumulator, net.encoder, net.params
        )
        stream = client.subscribe().any_of("Benz").open()
        query_id = stream.query_id
        # go silent: the server reaps the connection at the idle timeout
        # and the session deregisters the orphaned subscription
        assert endpoint.counters.wait_for("sessions_closed", 1, timeout=10.0)
        with pytest.raises(SubscriptionError):
            endpoint.poll(query_id)
        client.transport.close()
    finally:
        server.stop()
        endpoint.close()


def test_clean_disconnect_deregisters_session_subscriptions(net):
    endpoint = ServiceEndpoint(net.sp)
    server = SocketServer(endpoint).start()
    try:
        client = VChainClient.connect(
            server.address, net.accumulator, net.encoder, net.params
        )
        stream = client.subscribe().any_of("Benz").open()
        query_id = stream.query_id
        client.close()  # socket drops without deregistering
        assert endpoint.counters.wait_for("sessions_closed", 1, timeout=10.0)
        with pytest.raises(SubscriptionError):
            endpoint.poll(query_id)
    finally:
        server.stop()
        endpoint.close()


def test_endpoint_close_drains_inflight_then_rejects(net):
    endpoint = ServiceEndpoint(net.sp, max_workers=2)
    real = net.sp.processor.time_window_query
    started = threading.Event()
    gate = threading.Event()

    def gated(query, *args, **kwargs):
        started.set()
        gate.wait(timeout=30.0)
        return real(query, *args, **kwargs)

    net.sp.processor.time_window_query = gated
    try:
        results = []

        def run_query():
            client = VChainClient.local(endpoint)
            results.append(client.execute(_wide_query(client)).raise_for_forgery())

        thread = threading.Thread(target=run_query)
        thread.start()
        assert started.wait(timeout=10)  # provably in flight
        closing = threading.Event()

        def close_endpoint():
            closing.set()
            endpoint.close(wait=True)  # drains the in-flight query

        closer = threading.Thread(target=close_endpoint)
        closer.start()
        closing.wait(timeout=10)
        gate.set()
        closer.join(timeout=10)
        thread.join(timeout=10)
        assert results and results[0].ok
        with pytest.raises(ReproError):
            endpoint.time_window_query(_wide_query(net.client))
    finally:
        gate.set()
        del net.sp.processor.__dict__["time_window_query"]


def test_closed_endpoint_rejects_registration(net):
    endpoint = ServiceEndpoint(net.sp)
    endpoint.close()
    with pytest.raises(ReproError):
        endpoint.register(net.client.subscribe().any_of("Benz").build())


def test_server_drain_answers_inflight_request(net):
    endpoint = ServiceEndpoint(net.sp)
    server = SocketServer(endpoint).start()
    real = net.sp.processor.time_window_query
    started = threading.Event()
    gate = threading.Event()

    def gated(query, *args, **kwargs):
        started.set()
        gate.wait(timeout=30.0)
        return real(query, *args, **kwargs)

    net.sp.processor.time_window_query = gated
    try:
        client = VChainClient.connect(
            server.address, net.accumulator, net.encoder, net.params,
            options=ClientOptions(request_deadline=10.0),
        )
        answers = []

        def run_query():
            # raw transport call: drain guarantees this one answer, but
            # no further requests (like a header sync) after stop()
            answers.append(client.transport.time_window_query(_wide_query(net.client)))

        thread = threading.Thread(target=run_query)
        thread.start()
        assert started.wait(timeout=10)  # provably in flight
        stopping = threading.Event()

        def stop_drain():
            stopping.set()
            server.stop(drain=True)  # in-flight request still gets its answer

        stopper = threading.Thread(target=stop_drain)
        stopper.start()
        stopping.wait(timeout=10)
        gate.set()
        stopper.join(timeout=10)
        thread.join(timeout=10)
        assert answers and answers[0][2].results == len(answers[0][0])
        client.close()
    finally:
        gate.set()
        del net.sp.processor.__dict__["time_window_query"]
        server.stop()
        endpoint.close()
