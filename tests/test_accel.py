"""Parity and dispatch tests for the accelerated arithmetic providers.

Every provider (``gmpy2``, ``native``) must be a pure performance
change: identical integers out of the scalar seam, identical points out
of the curve kernels, identical pairing values — and therefore
byte-identical block encodings and VOs at the chain level, in-process
and inside spawn-mode pool workers.  Providers that are not installed
in this environment are skipped (the suite must pass with neither).
"""

import random
import subprocess
import sys
from collections import Counter
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import bn254 as bn
from repro.crypto import curve, msm, pairing
from repro.crypto.accel import dispatch
from repro.crypto.backend import get_backend
from repro.errors import CryptoError

AVAILABLE = dispatch.available_impls()
ACCELERATED = [name for name in AVAILABLE if name != "pure"]

accelerated = pytest.mark.parametrize(
    "impl",
    ACCELERATED
    or [pytest.param("none", marks=pytest.mark.skip(reason="no accelerated impl"))],
)

RNG = random.Random(2024)
G = curve.GENERATOR
P = curve.FIELD_PRIME
R = curve.SUBGROUP_ORDER


@contextmanager
def pinned(impl):
    previous = dispatch.active_impl()
    dispatch.set_impl(impl)
    try:
        yield
    finally:
        dispatch.set_impl(previous)


def under(impl, fn):
    with pinned(impl):
        return fn()


# -- scalar seam ---------------------------------------------------------------
@accelerated
@settings(max_examples=25, deadline=None)
@given(st.integers(1, P - 1), st.integers(-3, 2**200))
def test_modexp_modinv_parity(impl, base, exponent):
    expected = under("pure", lambda: dispatch.modexp(base, exponent, P))
    assert under(impl, lambda: dispatch.modexp(base, exponent, P)) == expected
    inv = under(impl, lambda: dispatch.modinv(base, P))
    assert inv == under("pure", lambda: dispatch.modinv(base, P))
    assert base * inv % P == 1


@accelerated
@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**600), st.integers(0, 2**600))
def test_imul_parity(impl, a, b):
    assert under(impl, lambda: dispatch.imul(a, b)) == a * b


@accelerated
def test_modinv_of_zero_raises_valueerror(impl):
    with pinned(impl):
        with pytest.raises(ValueError):
            dispatch.modinv(0, P)
        with pytest.raises(ValueError):
            dispatch.modinv(P, P)


# -- ss512 curve / pairing kernels --------------------------------------------
@accelerated
@settings(max_examples=10, deadline=None)
@given(st.integers(1, R - 1), st.integers(1, R - 1))
def test_ss512_point_ops_parity(impl, k1, k2):
    def work():
        a = curve.multiply(G, k1)
        b = curve.multiply(G, k2)
        return (a, b, curve.add(a, b), curve.add(a, a), curve.neg(a))

    assert under(impl, work) == under("pure", work)


@accelerated
@settings(max_examples=5, deadline=None)
@given(st.integers(1, R - 1), st.integers(1, R - 1))
def test_ss512_pairing_parity(impl, k1, k2):
    a = curve.multiply(G, k1)
    b = curve.multiply(G, k2)
    expected = under("pure", lambda: pairing.tate_pairing(a, b))
    assert under(impl, lambda: pairing.tate_pairing(a, b)) == expected


@accelerated
@settings(max_examples=10, deadline=None)
@given(
    st.tuples(st.integers(0, P - 1), st.integers(0, P - 1)),
    st.tuples(st.integers(0, P - 1), st.integers(0, P - 1)),
    st.integers(-3, 2**200),
)
def test_ss512_fp2_parity(impl, x, y, e):
    def work():
        values = [curve.fp2_mul(x, y), curve.fp2_square(x)]
        if x != (0, 0):
            values.append(curve.fp2_pow(x, e))
        return values

    assert under(impl, work) == under("pure", work)


@accelerated
def test_ss512_infinity_and_edge_cases(impl):
    def work():
        return (
            curve.add(None, G),
            curve.add(G, None),
            curve.add(G, curve.neg(G)),
            curve.multiply(G, 0),
            curve.multiply(G, 1),
            curve.multiply(G, R),
            curve.multiply(G, R - 1),
            pairing.tate_pairing(None, G),
        )

    assert under(impl, work) == under("pure", work)


@accelerated
def test_ss512_oversized_fp2_exponent_falls_back(impl):
    # wider than MAX_SCALAR_BITS: composite kernels must decline, and the
    # generic loop (running through the seam) must still agree with pure
    e = (1 << (dispatch.MAX_SCALAR_BITS + 7)) + 12345
    x = (3, 8)
    assert under(impl, lambda: curve.fp2_pow(x, e)) == under(
        "pure", lambda: curve.fp2_pow(x, e)
    )


@accelerated
@pytest.mark.parametrize("ops_name", ["ss512", "bn254"])
def test_msm_parity(impl, ops_name):
    backend = get_backend(ops_name)
    rng = random.Random(99)
    generator = backend.generator()
    bases = [
        backend.exp(generator, rng.randrange(1, backend.order)) for _ in range(9)
    ]
    scalars = [rng.randrange(0, backend.order) for _ in range(9)]
    scalars[3] = 0  # zero scalar and identity-base edge cases ride along
    tables_scalars = list(scalars)

    def work():
        multi = backend.multi_exp(bases, scalars)
        tables = [backend.fixed_base_table(b) for b in bases]
        fixed = backend.multi_exp_tables(tables, tables_scalars)
        return backend.encode(multi) + backend.encode(fixed)

    assert under(impl, work) == under("pure", work)


# -- bn254 kernels -------------------------------------------------------------
@accelerated
@settings(max_examples=5, deadline=None)
@given(st.integers(1, bn.CURVE_ORDER - 1), st.integers(1, bn.CURVE_ORDER - 1))
def test_bn254_point_ops_parity(impl, k1, k2):
    def work():
        a1 = bn.multiply(bn.G1, k1)
        a2 = bn.multiply(bn.G2, k1)
        return (
            a1,
            a2,
            bn.add(a1, bn.multiply(bn.G1, k2)),
            bn.add(a2, bn.multiply(bn.G2, k2)),
            bn.neg(a1),
        )

    assert under(impl, work) == under("pure", work)


@accelerated
def test_bn254_pairing_parity(impl):
    backend = get_backend("bn254")
    a = backend.exp(backend.generator(), 1234567)
    b = backend.exp(backend.generator(), 7654321)
    expected = under("pure", lambda: backend.gt_encode(backend.pair(a, b)))
    assert under(impl, lambda: backend.gt_encode(backend.pair(a, b))) == expected


# -- chain-level byte parity ---------------------------------------------------
def _mine_and_query(acc_name):
    """Deterministic ss512 network: 2 mined blocks + one answered query."""
    from repro import VChainNetwork
    from repro.chain import ProtocolParams
    from repro.core.query import CNFCondition, TimeWindowQuery
    from tests.conftest import make_objects

    query = TimeWindowQuery(start=0, end=10, boolean=CNFCondition.of([["Benz", "BMW"]]))
    params = ProtocolParams(mode="both", bits=4, difficulty_bits=0)
    net = VChainNetwork.create(
        acc_name=acc_name, backend_name="ss512", params=params, seed=7,
        acc1_capacity=64,
    )
    rng = random.Random(3)
    oid = 0
    for height in range(2):
        objs = make_objects(rng, 2, oid, timestamp=height, dims=1, bits=4)
        oid += 2
        net.miner.mine_block(objs, timestamp=height)
    net.user.sync_headers(net.chain)
    batch = net.accumulator.supports_aggregation
    results, vo, _stats = net.sp.processor.time_window_query(query, batch=batch)
    return net, query, results, vo


def _chain_bytes(acc_name):
    from repro.wire.block_codec import encode_block
    from repro.wire.vo_codec import encode_time_window_vo

    net, query, results, vo = _mine_and_query(acc_name)
    backend = net.accumulator.backend
    blocks = [
        encode_block(backend, net.chain.block(h)) for h in range(len(net.chain))
    ]
    vo_bytes = encode_time_window_vo(backend, vo)
    verified, _stats = net.user.verify(query, results, vo)
    assert sorted(o.object_id for o in verified) == sorted(
        o.object_id for o in results
    )
    return blocks, vo_bytes


@pytest.mark.slow
@accelerated
@pytest.mark.parametrize("acc_name", ["acc1", "acc2"])
def test_chain_bytes_identical_across_impls(impl, acc_name):
    pure_blocks, pure_vo = under("pure", lambda: _chain_bytes(acc_name))
    accel_blocks, accel_vo = under(impl, lambda: _chain_bytes(acc_name))
    assert accel_blocks == pure_blocks
    assert accel_vo == pure_vo


@pytest.mark.slow
@accelerated
def test_spawn_pool_workers_match_pure_bytes(impl):
    """Spawn-mode workers inherit the impl by name and stay byte-parity."""
    from repro.accumulators import Acc2, ElementEncoder, keygen_acc2
    from repro.parallel import CryptoPool, ParallelConfig

    backend = get_backend("ss512")
    encoder = ElementEncoder(2**20)
    _sk, pk = keygen_acc2(backend, 2**20, random.Random(7))
    accumulator = Acc2(pk)
    multisets = [
        encoder.encode_multiset(Counter({f"attr{i}": 1, "shared": 2}))
        for i in range(4)
    ]
    serial = under(
        "pure", lambda: [accumulator.accumulate(m) for m in multisets]
    )
    with pinned(impl):
        with CryptoPool(
            accumulator, encoder, ParallelConfig(workers=2, start_method="spawn")
        ) as pool:
            parallel = pool.map_accumulate(multisets)
    for s, p in zip(serial, parallel):
        assert [backend.encode(x) for x in s.parts] == [
            backend.encode(x) for x in p.parts
        ]


# -- dispatch selection & reporting --------------------------------------------
def test_available_impls_always_ends_with_pure():
    assert AVAILABLE
    assert AVAILABLE[-1] == "pure"
    assert set(AVAILABLE) <= {"native", "gmpy2", "pure"}


def test_set_impl_unknown_name_raises():
    with pytest.raises(CryptoError, match="unknown accel impl"):
        dispatch.set_impl("mcl")


def test_set_impl_unavailable_raises_and_fallback_degrades():
    missing = [n for n in dispatch.PROBE_ORDER if n not in AVAILABLE]
    if not missing:
        pytest.skip("every provider is installed here")
    with pytest.raises(CryptoError, match="not available"):
        dispatch.set_impl(missing[0])
    previous = dispatch.active_impl()
    assert dispatch.set_impl(missing[0], fallback=True) == AVAILABLE[0]
    dispatch.set_impl(previous)


def test_set_impl_auto_resolves_probe_order():
    previous = dispatch.active_impl()
    try:
        assert dispatch.set_impl("auto") == AVAILABLE[0]
        assert dispatch.active_impl() == AVAILABLE[0]
    finally:
        dispatch.set_impl(previous)


def test_env_var_selects_initial_impl():
    code = (
        "from repro.crypto.accel import dispatch; print(dispatch.active_impl())"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": "src", "REPRO_ACCEL": "pure", "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
    )
    assert out.stdout.strip() == "pure", out.stderr


def test_get_backend_accel_knob_and_property():
    previous = dispatch.active_impl()
    try:
        backend = get_backend("ss512", accel="pure")
        assert backend.accel_impl == "pure"
        assert get_backend("simulated").accel_impl == "simulated"
        with pytest.raises(CryptoError, match="unknown accel impl"):
            get_backend("ss512", accel="fast")
    finally:
        dispatch.set_impl(previous)


def test_endpoint_stats_report_the_active_impl():
    from repro import ProtocolParams, VChainNetwork

    net = VChainNetwork.create(
        backend_name="simulated",
        params=ProtocolParams(mode="both", bits=4, difficulty_bits=0),
        seed=5,
    )
    try:
        snapshot = net.endpoint.stats()
        assert snapshot["accel"] == dispatch.active_impl()
        assert net.endpoint.server_stats().accel == dispatch.active_impl()
    finally:
        net.close()


@accelerated
def test_provider_meta_names_its_toolchain(impl):
    with pinned(impl):
        meta = dispatch.active().meta
    assert meta  # version/compiler details for benchmark provenance
    assert all(isinstance(v, str) for v in meta.values())
