"""Tests for the simulated PoW consensus."""

import pytest

from repro.chain.consensus import check_nonce, solve_nonce
from repro.crypto.hashing import digest
from repro.errors import ChainError

CORE = digest(b"header-core")


def test_zero_difficulty_trivial():
    assert solve_nonce(CORE, 0) == 0
    assert check_nonce(CORE, 12345, 0)


def test_solve_and_check_roundtrip():
    nonce = solve_nonce(CORE, 8)
    assert check_nonce(CORE, nonce, 8)


def test_check_rejects_wrong_nonce():
    nonce = solve_nonce(CORE, 12)
    assert not check_nonce(CORE, nonce + 1, 12) or solve_nonce(CORE, 12) == nonce + 1


def test_nonce_depends_on_core():
    nonce = solve_nonce(CORE, 10)
    other = digest(b"different-core")
    # overwhelmingly the same nonce fails for a different core at 10 bits
    assert not check_nonce(other, nonce, 10) or solve_nonce(other, 10) == nonce


def test_difficulty_bounds():
    with pytest.raises(ChainError):
        solve_nonce(CORE, -1)
    with pytest.raises(ChainError):
        solve_nonce(CORE, 65)


def test_higher_difficulty_needs_geq_nonce():
    easy = solve_nonce(CORE, 4)
    hard = solve_nonce(CORE, 12)
    assert hard >= easy
