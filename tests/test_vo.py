"""Unit tests for VO structures and size accounting."""

from collections import Counter

from repro.chain.object import DataObject
from repro.core.vo import (
    BatchGroup,
    TimeWindowVO,
    VOBlock,
    VOExpandNode,
    VOMatchLeaf,
    VOMismatchNode,
    VOSkip,
)
from repro.crypto.hashing import DIGEST_NBYTES


def make_parts(sim_acc2, encoder_q):
    value = sim_acc2.accumulate(encoder_q.encode_multiset(Counter({"a": 1})))
    proof = sim_acc2.prove_disjoint(
        encoder_q.encode_multiset(Counter({"a": 1})),
        encoder_q.encode_multiset(Counter({"b": 1})),
    )
    return value, proof


def test_match_leaf_size_is_object_size(sim_acc2):
    obj = DataObject(object_id=1, timestamp=0, vector=(1,), keywords=frozenset({"x"}))
    assert VOMatchLeaf(obj=obj).nbytes(sim_acc2.backend) == obj.nbytes()


def test_mismatch_node_size(sim_acc2, encoder_q):
    value, proof = make_parts(sim_acc2, encoder_q)
    backend = sim_acc2.backend
    node = VOMismatchNode(
        child_component=b"\x00" * DIGEST_NBYTES,
        att_digest=value,
        clause=frozenset({"abc"}),
        proof=proof,
    )
    expected = DIGEST_NBYTES + value.nbytes(backend) + 3 + proof.nbytes(backend)
    assert node.nbytes(backend) == expected
    # grouped node omits the proof bytes
    grouped = VOMismatchNode(
        child_component=b"\x00" * DIGEST_NBYTES,
        att_digest=value,
        clause=frozenset({"abc"}),
        group=0,
    )
    assert grouped.nbytes(backend) == expected - proof.nbytes(backend)


def test_expand_node_sums_children(sim_acc2, encoder_q):
    value, proof = make_parts(sim_acc2, encoder_q)
    backend = sim_acc2.backend
    obj = DataObject(object_id=1, timestamp=0, vector=(1,), keywords=frozenset())
    child = VOMatchLeaf(obj=obj)
    node = VOExpandNode(att_digest=value, children=(child, child))
    assert node.nbytes(backend) == value.nbytes(backend) + 2 * obj.nbytes()
    bare = VOExpandNode(att_digest=None, children=(child,))
    assert bare.nbytes(backend) == obj.nbytes()


def test_skip_entry_size(sim_acc2, encoder_q):
    value, proof = make_parts(sim_acc2, encoder_q)
    backend = sim_acc2.backend
    skip = VOSkip(
        height=9,
        distance=4,
        att_digest=value,
        clause=frozenset({"xy"}),
        proof=proof,
        sibling_hashes=((8, b"\x01" * DIGEST_NBYTES),),
    )
    expected = 16 + value.nbytes(backend) + 2 + proof.nbytes(backend) + DIGEST_NBYTES
    assert skip.nbytes(backend) == expected


def test_time_window_vo_totals(sim_acc2, encoder_q):
    value, proof = make_parts(sim_acc2, encoder_q)
    backend = sim_acc2.backend
    node = VOMismatchNode(
        child_component=b"\x00" * DIGEST_NBYTES,
        att_digest=value,
        clause=frozenset({"a"}),
        proof=proof,
    )
    vo = TimeWindowVO(
        entries=[VOBlock(height=0, root=node)],
        batch_groups={0: BatchGroup(clause=frozenset({"a"}), proof=proof)},
    )
    assert vo.nbytes(backend) == (8 + node.nbytes(backend)) + (
        1 + proof.nbytes(backend)
    )


def test_empty_vo_is_zero_bytes(sim_acc2):
    assert TimeWindowVO().nbytes(sim_acc2.backend) == 0
