"""Deterministic tests for batch-group verification edge cases."""

from dataclasses import replace

import pytest

from repro import VChainNetwork
from repro.chain import DataObject, ProtocolParams
from repro.core.query import CNFCondition, TimeWindowQuery
from repro.core.vo import BatchGroup, TimeWindowVO, VOBlock, VOMismatchNode
from repro.errors import VerificationError


@pytest.fixture(scope="module")
def net():
    """Blocks engineered so one query yields two distinct batch groups."""
    params = ProtocolParams(mode="intra", bits=4)
    network = VChainNetwork.create(acc_name="acc2", params=params, seed=71)
    # blocks alternate: missing "alpha" vs missing "beta"
    for h in range(6):
        keyword = "beta" if h % 2 else "alpha"
        network.mine(
            [
                DataObject(
                    object_id=h,
                    timestamp=h,
                    vector=(h % 16,),
                    keywords=frozenset({keyword}),
                )
            ],
            timestamp=h,
        )
    return network


QUERY = TimeWindowQuery(start=0, end=5, boolean=CNFCondition.of([["alpha"], ["beta"]]))


def test_two_batch_groups_form_and_verify(net):
    results, vo, _stats = net.sp.time_window_query(QUERY, batch=True)
    assert results == []  # every block misses one clause
    assert len(vo.batch_groups) == 2
    clauses = {group.clause for group in vo.batch_groups.values()}
    assert clauses == {frozenset({"alpha"}), frozenset({"beta"})}
    net.user.verify(QUERY, results, vo)


def test_swapped_group_proofs_rejected(net):
    results, vo, _stats = net.sp.time_window_query(QUERY, batch=True)
    (id_a, group_a), (id_b, group_b) = sorted(vo.batch_groups.items())
    forged = TimeWindowVO(
        entries=vo.entries,
        batch_groups={
            id_a: BatchGroup(clause=group_a.clause, proof=group_b.proof),
            id_b: BatchGroup(clause=group_b.clause, proof=group_a.proof),
        },
    )
    with pytest.raises(VerificationError):
        net.user.verify(QUERY, results, forged)


def test_relabelled_member_clause_rejected(net):
    """Re-tagging a grouped mismatch node's clause must be caught."""
    results, vo, _stats = net.sp.time_window_query(QUERY, batch=True)
    forged_entries = []
    mutated = False
    for entry in vo.entries:
        root = entry.root
        if (
            not mutated
            and isinstance(root, VOMismatchNode)
            and root.group is not None
            and root.clause == frozenset({"alpha"})
        ):
            entry = VOBlock(
                height=entry.height,
                root=replace(root, clause=frozenset({"beta"})),
            )
            mutated = True
        forged_entries.append(entry)
    assert mutated
    with pytest.raises(VerificationError):
        net.user.verify(
            QUERY,
            results,
            TimeWindowVO(entries=forged_entries, batch_groups=vo.batch_groups),
        )


def test_group_clause_member_mismatch_rejected(net):
    """Group table claiming a different clause than its members carry."""
    results, vo, _stats = net.sp.time_window_query(QUERY, batch=True)
    forged_groups = dict(vo.batch_groups)
    target = next(iter(forged_groups))
    forged_groups[target] = BatchGroup(
        clause=frozenset({"alpha", "beta"}),  # not the members' clause
        proof=forged_groups[target].proof,
    )
    with pytest.raises(VerificationError):
        net.user.verify(
            QUERY, results, TimeWindowVO(entries=vo.entries, batch_groups=forged_groups)
        )
