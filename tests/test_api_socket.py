"""End-to-end over the socket transport: SP and user in separate
threads, communicating only via encoded bytes.

The SP side runs inside :class:`SocketServer`'s daemon threads; the
client side runs in the test thread.  The acceptance bar: the verified
socket answer matches the LocalTransport answer byte-for-byte (same
canonical wire encoding of results + VO), and a forged VO is caught at
the decode boundary — by ``backend.decode`` — before any verification
logic runs.
"""

import random
import threading
import time

import pytest

from repro import VChainClient, VChainNetwork
from repro.api import ServiceEndpoint, SocketServer
from repro.api.transport import SocketTransport, TransportError, _recv_frame
from repro.chain import ProtocolParams
from repro.errors import CryptoError, SubscriptionError
from repro.wire import WireError, encode_response, encode_time_window_vo
from tests.conftest import make_objects


@pytest.fixture()
def net():
    net = VChainNetwork.create(
        params=ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0),
        seed=33,
    )
    rng = random.Random(33)
    for height in range(8):
        net.mine(make_objects(rng, 3, height * 3, timestamp=height * 10),
                 timestamp=height * 10)
    return net


@pytest.fixture()
def server(net):
    server = SocketServer(ServiceEndpoint(net.sp)).start()
    yield server
    server.stop()


def _remote_client(net, server):
    return VChainClient.connect(
        server.address, net.accumulator, net.encoder, net.params
    )


def _builder(client):
    return (client.query()
            .window(0, 200)
            .range(low=(0,), high=(255,))
            .all_of("Sedan")
            .any_of("Benz", "BMW"))


def test_time_window_query_matches_local_byte_for_byte(net, server):
    assert server._accept_thread is not threading.current_thread()
    local = _builder(net.client).execute().raise_for_forgery()
    with _remote_client(net, server) as client:
        remote = _builder(client).execute().raise_for_forgery()
    backend = net.accumulator.backend
    assert remote.results == local.results
    assert encode_response(backend, remote.results, remote.vo) == encode_response(
        backend, local.results, local.vo
    )
    assert remote.vo_nbytes == local.vo_nbytes


def test_subscription_matches_local_byte_for_byte(net, server):
    backend = net.accumulator.backend
    local_stream = (net.client.subscribe()
                    .range(low=(0,), high=(255,)).any_of("Benz").open())
    with _remote_client(net, server) as client:
        with (client.subscribe()
              .range(low=(0,), high=(255,)).any_of("Benz").open()) as stream:
            rng = random.Random(8)
            for height in range(3):
                net.mine(make_objects(rng, 3, 200 + height * 3, timestamp=500 + height),
                         timestamp=500 + height)
            remote_deliveries = stream.poll()
            local_deliveries = local_stream.poll()
            # every push crossed the wire, was re-decoded, verified — and
            # is identical to the in-process engine's answer
            assert len(remote_deliveries) == len(local_deliveries) == 3
            for remote, local in zip(remote_deliveries, local_deliveries):
                assert remote.heights() == local.heights()
                assert remote.results == local.results
                assert remote.vo_nbytes == local.vo_nbytes
    local_stream.close()


def test_concurrent_clients_each_see_every_block_once(net, server):
    """Two remote subscribers polling in parallel must not race the
    endpoint's block ingestion (duplicated or skipped deliveries)."""
    clients = [_remote_client(net, server) for _ in range(2)]
    streams = [
        c.subscribe().range(low=(0,), high=(255,)).any_of("Benz").open()
        for c in clients
    ]
    base = len(net.chain)
    seen = [[] for _ in streams]
    errors = []

    def pump(index):
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                for delivery in streams[index].poll():
                    seen[index].extend(delivery.heights())
                if len(seen[index]) >= 5:
                    return
                time.sleep(0.01)
            raise AssertionError(f"client {index} saw only {seen[index]}")
        except Exception as exc:  # surface across the thread boundary
            errors.append(exc)

    threads = [threading.Thread(target=pump, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    rng = random.Random(4)
    for height in range(5):
        net.mine(make_objects(rng, 2, 400 + height * 2, timestamp=600 + height),
                 timestamp=600 + height)
    for thread in threads:
        thread.join(timeout=10)
    assert not errors, errors
    # every client verified every block exactly once, in order
    expected = list(range(base, base + 5))
    assert seen[0] == expected and seen[1] == expected
    for stream in streams:
        stream.close()
    for client in clients:
        client.close()


def test_server_side_errors_cross_the_wire_typed(net, server):
    with _remote_client(net, server) as client:
        with pytest.raises(SubscriptionError):
            client.transport.poll(999)
        with pytest.raises(SubscriptionError):
            client.transport.deregister(999)


def test_closed_server_raises_transport_error(net):
    server = SocketServer(ServiceEndpoint(net.sp)).start()
    client = _remote_client(net, server)
    server.stop()
    client.transport._sock.close()
    with pytest.raises((TransportError, OSError)):
        client.query().any_of("Benz").execute()


def _find_digest(vo):
    """Any AttDigest that will appear in the encoded response."""
    def walk(node):
        if getattr(node, "att_digest", None) is not None:
            return node.att_digest
        for child in getattr(node, "children", ()):
            found = walk(child)
            if found is not None:
                return found
        return None

    for entry in vo.entries:
        digest = walk(entry.root) if hasattr(entry, "root") else entry.att_digest
        if digest is not None:
            return digest
    raise AssertionError("VO carries no digest to forge")


def test_forged_vo_caught_at_decode_boundary(net, server):
    backend = net.accumulator.backend
    # grab a group element that will appear in the response bytes
    local = _builder(net.client).execute()
    needle = backend.encode(_find_digest(local.vo).parts[0])
    forged = b"\xff" * len(needle)
    assert needle in encode_time_window_vo(backend, local.vo)
    # the forged bytes are not a valid group element encoding
    with pytest.raises(CryptoError):
        backend.decode(forged)

    class MITM(SocketTransport):
        forged_frames = 0

        def _request(self, payload):
            with self._lock:
                from repro.api.transport import _send_frame
                _send_frame(self._sock, payload)
                response = _recv_frame(self._sock)
            tampered = response.replace(needle, forged, 1)
            if tampered != response:
                MITM.forged_frames += 1
            return tampered[1:]  # strip the OK status byte

    client = VChainClient(
        MITM(server.address, backend), net.accumulator, net.encoder, net.params
    )
    # rejected while *parsing* the response — backend.decode refuses the
    # point before any verification logic sees it
    with pytest.raises(CryptoError):
        _builder(client).execute()
    assert MITM.forged_frames == 1
    client.close()


def test_truncated_response_rejected_at_parse_boundary(net, server):
    class Truncating(SocketTransport):
        def _request(self, payload):
            with self._lock:
                from repro.api.transport import _send_frame
                _send_frame(self._sock, payload)
                response = _recv_frame(self._sock)
            return response[1:-7]  # strip status, drop the tail

    client = VChainClient(
        Truncating(server.address, net.accumulator.backend),
        net.accumulator, net.encoder, net.params,
    )
    with pytest.raises(WireError):
        _builder(client).execute()
    client.close()


def test_malformed_request_gets_wire_error_not_hang(net, server):
    transport = SocketTransport(server.address, net.accumulator.backend)
    with pytest.raises(WireError):
        transport._request(b"\x63garbage")
    # the connection survives malformed frames
    assert transport.headers(0)
    transport.close()


def test_query_error_crosses_the_wire(net, server):
    from repro.core.query import TimeWindowQuery

    transport = SocketTransport(server.address, net.accumulator.backend)
    query = TimeWindowQuery(start=0, end=10)
    object.__setattr__(query, "start", 20)  # valid bytes, invalid query
    with pytest.raises(WireError):
        transport.time_window_query(query)
    transport.close()
