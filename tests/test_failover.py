"""SP failover and degraded serving — the acceptance scenario end to end.

A ``k=4, m=2`` striped deployment is put behind the full serving stack
and attacked with :class:`~repro.testing.DiskFaultStore` while query
traffic is live: the endpoint must keep returning byte-identical
verified responses, ``server_stats()`` must report the degradation,
the scrubber must reconstruct the losses, and a standby server opened
from the survivors — in this process or a fresh one — must serve the
same chain.
"""

import random
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro import VChainNetwork
from repro.api import ServiceEndpoint, VChainClient, serve
from repro.api.server import main as server_cli
from repro.storage import StorageWarning, open_deployment
from repro.testing import DiskFaultStore
from repro.wire import encode_time_window_vo
from tests.conftest import make_objects
from tests.test_striped_store import K, M, N_BLOCKS, mine_striped, node_dirs


def query_bytes(client, backend):
    response = (
        client.query().window(0, 1000).range(low=(0, 0), high=(200, 200)).execute()
    )
    response.raise_for_forgery()
    return (
        [o.object_id for o in response.results],
        encode_time_window_vo(backend, response.vo),
    )


# -- the acceptance scenario ---------------------------------------------------
def test_two_lost_dirs_under_live_traffic_then_scrub_then_standby(tmp_path):
    net = mine_striped(tmp_path)
    backend = net.accumulator.backend
    baseline = query_bytes(net.client, backend)
    net.close()

    server = serve(tmp_path)
    accumulator, encoder, params = open_deployment(tmp_path)
    client = VChainClient.connect(server.address, accumulator, encoder, params)
    assert query_bytes(client, backend) == baseline

    # two stripe directories die under the running server
    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.lose_node(1)
    faults.lose_node(4)

    # traffic continues, byte-identical; the wire stats report the damage
    assert query_bytes(client, backend) == baseline
    storage = client.server_stats().storage
    assert storage is not None
    assert storage["nodes_offline"] == 2
    assert storage["nodes_online"] == 4

    # scrub reconstructs both lost directories while serving continues
    store = server.endpoint.sp.chain.store
    with pytest.warns(StorageWarning) as caught:
        report = store.scrub()
    assert any("rebuilt" in str(w.message) for w in caught)
    assert report.rebuilt_nodes == 2
    assert query_bytes(client, backend) == baseline
    storage = client.server_stats().storage
    assert storage["nodes_online"] == K + M
    assert storage["rebuilt_nodes"] == 2

    client.close()
    server.stop()
    server.endpoint.close()

    # a standby opened from an explicit survivor list serves the same chain
    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.lose_node(0)
    faults.lose_node(5)
    with pytest.warns(StorageWarning, match="offline"):
        standby = serve(node_dirs(tmp_path))
    client = VChainClient.connect(standby.address, accumulator, encoder, params)
    assert query_bytes(client, backend) == baseline
    assert client.server_stats().storage["nodes_offline"] == 2
    client.close()
    standby.stop()
    standby.endpoint.close()


def test_background_scrubber_heals_without_an_operator(tmp_path):
    mine_striped(tmp_path, n_blocks=2).close()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StorageWarning)
        endpoint = ServiceEndpoint.open(tmp_path, scrub_interval=0.05, scrub_batch=16)
        try:
            faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
            faults.lose_node(3)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                health = endpoint.storage_health()
                if health["nodes_online"] == K + M and health["rebuilt_nodes"] >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"scrubber never rebuilt the node: {health}")
        finally:
            endpoint.close()


def test_stats_carry_storage_health_for_striped_stores_only(tmp_path):
    net = mine_striped(tmp_path / "striped", n_blocks=1)
    endpoint = ServiceEndpoint(net.sp)
    stats = endpoint.stats()
    assert stats["storage"]["k"] == K
    assert stats["storage"]["m"] == M
    assert endpoint.server_stats().storage == stats["storage"]
    net.close()

    plain = VChainNetwork.create(seed=1)
    endpoint = ServiceEndpoint(plain.sp)
    assert endpoint.stats()["storage"] is None
    assert endpoint.server_stats().storage is None
    plain.close()


def test_scrub_interval_must_be_positive(tmp_path):
    mine_striped(tmp_path, n_blocks=1).close()
    with pytest.raises(ValueError, match="scrub_interval"):
        ServiceEndpoint.open(tmp_path, scrub_interval=0)


# -- server CLI ----------------------------------------------------------------
def test_cli_requires_exactly_one_target(tmp_path, capsys):
    with pytest.raises(SystemExit):
        server_cli([])
    assert "exactly one of" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        server_cli(["--data-dir", str(tmp_path), "--stripe-dirs", str(tmp_path)])
    assert "exactly one of" in capsys.readouterr().err


def test_cli_parity_assertion_refuses_mismatch(tmp_path, capsys):
    mine_striped(tmp_path, n_blocks=1).close()
    dirs = ",".join(str(d) for d in node_dirs(tmp_path))
    with pytest.raises(SystemExit):
        server_cli(["--stripe-dirs", dirs, "--parity", "3"])
    assert f"--parity 3 but the deployment has m={M}" in capsys.readouterr().err


# -- kill the primary, promote a standby (separate processes) ------------------
def _spawn_server(args):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.api.server", *args],
        cwd="/root/repo",
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60.0
    banner = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(f"server exited: {process.wait()}")
        if line.startswith("serving "):
            banner = line
            break
    else:
        process.kill()
        raise AssertionError("server never printed its banner")
    host, port = banner.rsplit(" on ", 1)[1].split(" ")[0].split(":")
    return process, (host, int(port))


def test_kill_primary_standby_takes_over(tmp_path):
    """The CI chaos scenario: SIGKILL the serving process mid-flight,
    lose two stripe directories, and promote a standby from the
    survivors — answers stay byte-identical and the standby's scrubber
    restores full redundancy."""
    net = mine_striped(tmp_path)
    backend = net.accumulator.backend
    baseline = query_bytes(net.client, backend)
    net.close()
    accumulator, encoder, params = open_deployment(tmp_path)

    primary, address = _spawn_server(["--data-dir", str(tmp_path)])
    try:
        client = VChainClient.connect(address, accumulator, encoder, params)
        assert query_bytes(client, backend) == baseline
        client.close()
    finally:
        primary.send_signal(signal.SIGKILL)  # no shutdown, no lock release
        primary.wait(timeout=30)
        primary.stdout.close()

    faults = DiskFaultStore(node_dirs=node_dirs(tmp_path))
    faults.lose_node(2)
    faults.lose_node(5)

    survivors = ",".join(str(d) for d in node_dirs(tmp_path))
    standby, address = _spawn_server(
        ["--stripe-dirs", survivors, "--parity", str(M), "--scrub-interval", "0.1"]
    )
    try:
        client = VChainClient.connect(address, accumulator, encoder, params)
        assert query_bytes(client, backend) == baseline
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            storage = client.server_stats().storage
            if storage["nodes_online"] == K + M:
                break
            time.sleep(0.2)
        else:
            pytest.fail(f"standby scrubber never rebuilt the losses: {storage}")
        assert query_bytes(client, backend) == baseline
        client.close()
    finally:
        standby.send_signal(signal.SIGTERM)
        try:
            standby.wait(timeout=30)
        except subprocess.TimeoutExpired:
            standby.kill()
            standby.wait(timeout=30)
        standby.stdout.close()

    # SIGTERM took the graceful path: the store was closed, so every
    # LOCK carries no PID stamp and the next open reclaims nothing
    for node in node_dirs(tmp_path):
        assert (Path(node) / "LOCK").read_bytes() == b""
