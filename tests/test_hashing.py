"""Tests for the canonical hashing helpers."""

from hypothesis import given, strategies as st

from repro.crypto.hashing import DIGEST_NBYTES, digest, digest_to_int, hash_str


def test_digest_width():
    assert len(digest(b"a")) == DIGEST_NBYTES
    assert len(digest()) == DIGEST_NBYTES


def test_digest_deterministic():
    assert digest(b"a", b"b") == digest(b"a", b"b")


def test_length_prefixing_disambiguates():
    # without length prefixes these would collide
    assert digest(b"ab", b"c") != digest(b"a", b"bc")
    assert digest(b"abc") != digest(b"ab", b"c")
    assert digest(b"", b"x") != digest(b"x", b"")


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_digest_injective_in_practice(a, b):
    if a != b:
        assert digest(a) != digest(b)


@given(st.binary(min_size=1, max_size=64))
def test_digest_to_int_in_range(data):
    modulus = 997
    value = digest_to_int(digest(data), modulus)
    assert 0 <= value < modulus


def test_digest_to_int_spreads():
    modulus = 2**32
    values = {digest_to_int(digest(str(i).encode()), modulus) for i in range(100)}
    assert len(values) == 100  # no collisions at this scale


def test_hash_str_utf8():
    assert hash_str("Benz") == digest("Benz".encode())
    assert hash_str("Benz") != hash_str("benz")
