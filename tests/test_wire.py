"""Tests for the wire codec: roundtrips, tamper rejection, fuzzing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import VChainNetwork
from repro.chain import DataObject, ProtocolParams
from repro.core.query import CNFCondition, RangeCondition, TimeWindowQuery
from repro.crypto import get_backend
from repro.errors import CryptoError
from repro.wire import (
    EnvelopeRequest,
    Reader,
    RecordedFrame,
    ServerStats,
    SessionRecording,
    StatsRequest,
    WireError,
    Writer,
    decode_recording,
    decode_request,
    decode_response,
    decode_stats_response,
    decode_time_window_vo,
    encode_recording,
    encode_request,
    encode_response,
    encode_stats_response,
    encode_time_window_vo,
    peek_deadline,
    read_header,
    read_object,
    write_header,
    write_object,
)
from tests.conftest import make_objects


# -- primitives ---------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_uvarint_roundtrip(value):
    data = Writer().uvarint(value).getvalue()
    reader = Reader(data)
    assert reader.uvarint() == value
    reader.expect_end()


def test_uvarint_rejects_negative():
    with pytest.raises(WireError):
        Writer().uvarint(-1)


def test_reader_rejects_truncation():
    with pytest.raises(WireError):
        Reader(b"").uvarint()
    with pytest.raises(WireError):
        Reader(b"\x80").uvarint()  # continuation bit with no next byte
    with pytest.raises(WireError):
        Reader(b"\x01").raw(2)


def test_reader_rejects_trailing_bytes():
    with pytest.raises(WireError):
        Reader(b"\x00\x00").uvarint() or Reader(b"\x00\x00").expect_end()
    reader = Reader(b"\x00\x00")
    reader.uvarint()
    with pytest.raises(WireError):
        reader.expect_end()


@given(st.binary(max_size=64))
def test_blob_roundtrip(data):
    encoded = Writer().blob(data).getvalue()
    assert Reader(encoded).blob() == data


@given(st.text(max_size=32))
def test_text_roundtrip(value):
    encoded = Writer().text(value).getvalue()
    assert Reader(encoded).text() == value


# -- objects and headers --------------------------------------------------------
@given(
    oid=st.integers(min_value=0, max_value=2**40),
    ts=st.integers(min_value=0, max_value=2**40),
    vector=st.lists(st.integers(min_value=0, max_value=255), max_size=4),
    keywords=st.sets(st.text(alphabet="abcXYZ", min_size=1, max_size=5), max_size=4),
)
def test_object_roundtrip(oid, ts, vector, keywords):
    obj = DataObject(
        object_id=oid, timestamp=ts, vector=tuple(vector), keywords=frozenset(keywords)
    )
    writer = Writer()
    write_object(writer, obj)
    assert read_object(Reader(writer.getvalue())) == obj


def test_header_roundtrip(small_chain):
    chain, _params = small_chain
    for header in chain.headers()[:5]:
        writer = Writer()
        write_header(writer, header)
        decoded = read_header(Reader(writer.getvalue()))
        assert decoded == header
        assert decoded.block_hash() == header.block_hash()


# -- full VO roundtrip over a real query ------------------------------------------
@pytest.fixture(scope="module")
def query_setup():
    params = ProtocolParams(mode="both", bits=8, skip_size=2)
    net = VChainNetwork.create(acc_name="acc2", params=params, seed=61)
    rng = random.Random(61)
    oid = 0
    for h in range(12):
        objs = make_objects(rng, 3, oid, timestamp=h * 10)
        oid += 3
        net.miner.mine_block(objs, timestamp=h * 10)
    net.user.sync_headers(net.chain)
    query = TimeWindowQuery(
        start=0, end=110,
        numeric=RangeCondition(low=(0, 0), high=(180, 255)),
        boolean=CNFCondition.of([["Benz", "BMW"]]),
    )
    return net, query


@pytest.mark.parametrize("batch", [False, True])
def test_vo_roundtrip_and_verify(query_setup, batch):
    net, query = query_setup
    backend = net.accumulator.backend
    results, vo, _stats = net.sp.time_window_query(query, batch=batch)
    blob = encode_time_window_vo(backend, vo)
    decoded = decode_time_window_vo(backend, blob)
    assert decoded == vo
    # the decoded VO verifies end to end
    verified, _vstats = net.user.verify(query, results, decoded)
    assert sorted(o.object_id for o in verified) == sorted(o.object_id for o in results)


def test_response_roundtrip(query_setup):
    net, query = query_setup
    backend = net.accumulator.backend
    results, vo, _stats = net.sp.time_window_query(query)
    blob = encode_response(backend, results, vo)
    decoded_results, decoded_vo = decode_response(backend, blob)
    assert decoded_results == results
    assert decoded_vo == vo


def test_wire_size_tracks_nbytes(query_setup):
    """Encoded size should be in the same ballpark as the accounting."""
    net, query = query_setup
    backend = net.accumulator.backend
    _results, vo, _stats = net.sp.time_window_query(query)
    encoded = len(encode_time_window_vo(backend, vo))
    accounted = vo.nbytes(backend)
    assert 0.5 * accounted <= encoded <= 1.5 * accounted + 256


def test_decoder_rejects_bit_flips(query_setup):
    net, query = query_setup
    backend = net.accumulator.backend
    _results, vo, _stats = net.sp.time_window_query(query)
    blob = bytearray(encode_time_window_vo(backend, vo))
    rng = random.Random(0)
    rejected = 0
    for _ in range(30):
        mutated = bytearray(blob)
        pos = rng.randrange(len(mutated))
        mutated[pos] ^= 1 << rng.randrange(8)
        try:
            decoded = decode_time_window_vo(backend, bytes(mutated))
        except (WireError, CryptoError):
            rejected += 1
            continue
        # structurally valid mutations must still fail verification or
        # decode to a different VO (never silently equal)
        assert decoded != vo
    assert rejected > 0


def test_real_backend_decode_rejects_invalid_point():
    backend = get_backend("ss512")
    bogus = b"\x04" + (1).to_bytes(64, "big") + (1).to_bytes(64, "big")
    with pytest.raises(CryptoError):
        backend.decode(bogus)


def test_real_backend_decode_roundtrip():
    backend = get_backend("ss512")
    g2 = backend.exp(backend.generator(), 12345)
    assert backend.decode(backend.encode(g2)) == g2
    assert backend.decode(backend.encode(backend.identity())) is None


def test_sim_backend_decode_bounds(sim_backend):
    with pytest.raises(CryptoError):
        sim_backend.decode(b"\xff" * sim_backend.element_nbytes)
    g = sim_backend.exp(sim_backend.generator(), 7)
    assert sim_backend.decode(sim_backend.encode(g)) == g


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=200))
def test_decoder_never_crashes_on_garbage(data):
    backend = get_backend("simulated")
    try:
        decode_time_window_vo(backend, data)
    except (WireError, CryptoError):
        pass  # rejection is the expected outcome


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=200))
def test_request_decoders_never_crash_on_garbage(data):
    """peek_deadline + decode_request must reject, never raise oddly."""
    try:
        _deadline, inner = peek_deadline(data)
        decode_request(inner)
    except WireError:
        pass


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=200))
def test_stats_decoder_never_crashes_on_garbage(data):
    try:
        decode_stats_response(data)
    except WireError:
        pass


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=300))
def test_record_decoder_never_crashes_on_garbage(data):
    try:
        decode_recording(data)
    except WireError:
        pass


def _sample_recording() -> SessionRecording:
    frames = tuple(
        RecordedFrame(
            seq=i,
            channel=i % 2,
            direction=i % 2,
            timestamp_us=i * 7,
            payload=bytes([i]) * (i + 1),
        )
        for i in range(6)
    )
    return SessionRecording(
        label="sample", meta={"scenario": "unit", "seed": "1"}, frames=frames
    )


def test_envelope_and_stats_bit_flips_never_crash():
    """Bit-flip every PR 7 codec's happy-path bytes; decoders must only
    ever raise WireError, whatever byte gets hit."""
    envelope = encode_request(
        EnvelopeRequest(request=StatsRequest(), deadline_ms=1500)
    )
    stats = encode_stats_response(
        ServerStats(
            endpoint={"queries": 3},
            caches={"vo": {"hits": 1, "misses": 2.5}},
            engine={"deliveries": 4},
            pool={"workers": 2},
            server={"requests": 9},
        )
    )
    recording = encode_recording(_sample_recording())
    corpus = [
        (envelope, lambda b: decode_request(peek_deadline(b)[1])),
        (stats, decode_stats_response),
        (recording, decode_recording),
    ]
    rng = random.Random(7)
    for blob, decoder in corpus:
        for _ in range(40):
            mutated = bytearray(blob)
            pos = rng.randrange(len(mutated))
            mutated[pos] ^= 1 << rng.randrange(8)
            try:
                decoder(bytes(mutated))
            except WireError:
                pass


def test_recording_crc_catches_payload_flips():
    """Unlike generic bit flips, payload flips must *always* be caught:
    every recorded frame carries its own CRC."""
    recording = _sample_recording()
    blob = encode_recording(recording)
    target = recording.frames[3].payload
    start = blob.find(target)
    assert start >= 0
    mutated = bytearray(blob)
    mutated[start] ^= 0x10
    with pytest.raises(WireError, match="CRC"):
        decode_recording(bytes(mutated))
