"""Tests for the symmetric Tate pairing (real backend; slow-marked)."""

import random

import pytest

from repro.crypto import curve
from repro.crypto.pairing import tate_pairing

pytestmark = pytest.mark.slow

G = curve.GENERATOR
RNG = random.Random(17)


def test_non_degenerate():
    assert tate_pairing(G, G) != curve.FP2_ONE


def test_identity_absorbs():
    assert tate_pairing(None, G) == curve.FP2_ONE
    assert tate_pairing(G, None) == curve.FP2_ONE


def test_bilinearity_left():
    a = RNG.randrange(1, curve.SUBGROUP_ORDER)
    lhs = tate_pairing(curve.multiply(G, a), G)
    rhs = curve.fp2_pow(tate_pairing(G, G), a)
    assert lhs == rhs


def test_bilinearity_right():
    b = RNG.randrange(1, curve.SUBGROUP_ORDER)
    lhs = tate_pairing(G, curve.multiply(G, b))
    rhs = curve.fp2_pow(tate_pairing(G, G), b)
    assert lhs == rhs


def test_bilinearity_joint():
    a = RNG.randrange(1, 2**40)
    b = RNG.randrange(1, 2**40)
    lhs = tate_pairing(curve.multiply(G, a), curve.multiply(G, b))
    rhs = curve.fp2_pow(tate_pairing(G, G), a * b % curve.SUBGROUP_ORDER)
    assert lhs == rhs


def test_pairing_value_has_order_r():
    value = tate_pairing(G, G)
    assert curve.fp2_pow(value, curve.SUBGROUP_ORDER) == curve.FP2_ONE


def test_symmetry():
    p = curve.multiply(G, 7)
    q = curve.multiply(G, 11)
    assert tate_pairing(p, q) == tate_pairing(q, p)
