"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    leaves = [
        errors.CryptoError,
        errors.KeyCapacityError,
        errors.NotDisjointError,
        errors.AggregationError,
        errors.VerificationError,
        errors.ChainError,
        errors.QueryError,
        errors.SubscriptionError,
    ]
    for cls in leaves:
        assert issubclass(cls, errors.ReproError)


def test_crypto_sub_hierarchy():
    assert issubclass(errors.KeyCapacityError, errors.CryptoError)
    assert issubclass(errors.NotDisjointError, errors.CryptoError)
    assert issubclass(errors.AggregationError, errors.CryptoError)


def test_single_except_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.VerificationError("boom")
