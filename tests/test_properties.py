"""Property-based end-to-end tests: random chains, random queries.

Hypothesis drives object content, block packing and query predicates;
the invariants are the paper's security contract itself:

* the verified result set equals brute-force ground truth;
* dropping any result makes verification fail;
* verification never succeeds against headers of a different chain.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import VChainNetwork
from repro.chain import DataObject, ProtocolParams
from repro.core.query import CNFCondition, RangeCondition, TimeWindowQuery
from repro.errors import VerificationError

VOCAB = [f"w{i}" for i in range(12)]

object_st = st.builds(
    lambda v, ks: (v, ks),
    st.integers(min_value=0, max_value=15),
    st.sets(st.sampled_from(VOCAB), min_size=1, max_size=3),
)

blocks_st = st.lists(
    st.lists(object_st, min_size=1, max_size=3), min_size=1, max_size=6
)

range_st = st.tuples(
    st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15)
).map(lambda ab: (min(ab), max(ab)))

clause_st = st.sets(st.sampled_from(VOCAB), min_size=1, max_size=3)
cnf_st = st.lists(clause_st, min_size=0, max_size=2)


def build_net(block_specs, mode):
    params = ProtocolParams(mode=mode, bits=4, skip_size=1, skip_base=2)
    net = VChainNetwork.create(acc_name="acc2", params=params, seed=0)
    oid = 0
    for h, spec in enumerate(block_specs):
        objs = [
            DataObject(
                object_id=oid + i, timestamp=h, vector=(v,), keywords=frozenset(ks)
            )
            for i, (v, ks) in enumerate(spec)
        ]
        oid += len(objs)
        net.miner.mine_block(objs, timestamp=h)
    net.user.sync_headers(net.chain)
    return net


def build_query(window, rng_bounds, clauses):
    return TimeWindowQuery(
        start=window[0],
        end=window[1],
        numeric=RangeCondition(low=(rng_bounds[0],), high=(rng_bounds[1],)),
        boolean=CNFCondition.of(clauses) if clauses else CNFCondition.true(),
    )


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    blocks=blocks_st,
    rng_bounds=range_st,
    clauses=cnf_st,
    mode=st.sampled_from(["nil", "intra", "both"]),
)
def test_query_answers_equal_ground_truth(blocks, rng_bounds, clauses, mode):
    net = build_net(blocks, mode)
    query = build_query((0, len(blocks)), rng_bounds, clauses)
    verified, _vo, _sp_stats, _user_stats = net.user.query(net.sp, query)
    truth = sorted(
        o.object_id
        for b in net.chain
        for o in b.objects
        if query.matches_object(o, 4)
    )
    assert sorted(o.object_id for o in verified) == truth


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(blocks=blocks_st, rng_bounds=range_st, clauses=cnf_st)
def test_dropping_any_result_is_detected(blocks, rng_bounds, clauses):
    net = build_net(blocks, "both")
    query = build_query((0, len(blocks)), rng_bounds, clauses)
    results, vo, _stats = net.sp.time_window_query(query)
    if not results:
        return
    for drop in range(len(results)):
        mutated = results[:drop] + results[drop + 1:]
        try:
            net.user.verify(query, mutated, vo)
            raise AssertionError("dropped result went undetected")
        except VerificationError:
            pass


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(blocks=blocks_st)
def test_cross_chain_vo_rejected(blocks):
    net_a = build_net(blocks, "intra")
    # a different chain: shift every numeric value by one
    shifted = [[((v + 1) % 16, ks) for v, ks in spec] for spec in blocks]
    net_b = build_net(shifted, "intra")
    query = build_query((0, len(blocks)), (0, 15), [])
    results, vo, _stats = net_b.sp.time_window_query(query)
    if [o.serialize() for b in net_a.chain for o in b.objects] == [
        o.serialize() for b in net_b.chain for o in b.objects
    ]:
        return  # identical chains (all values were 15): nothing to detect
    try:
        net_a.user.verify(query, results, vo)
        raise AssertionError("foreign-chain VO went undetected")
    except VerificationError:
        pass
