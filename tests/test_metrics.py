"""Tests for ADS storage accounting."""

import random

from repro.accumulators import ElementEncoder, make_accumulator
from repro.chain import Blockchain, Miner, ProtocolParams
from repro.chain.metrics import (
    block_ads_nbytes,
    raw_block_nbytes,
    skiplist_ads_nbytes,
    tree_ads_nbytes,
)
from repro.crypto import get_backend
from tests.conftest import make_objects


def mine_one(mode, skip_size=2, n_prev=10):
    backend = get_backend("simulated")
    _sk, acc = make_accumulator("acc2", backend, rng=random.Random(1))
    encoder = ElementEncoder(2**32 - 1)
    params = ProtocolParams(mode=mode, bits=8, skip_size=skip_size)
    chain = Blockchain()
    miner = Miner(chain, acc, encoder, params)
    rng = random.Random(2)
    block = None
    for h in range(n_prev):
        block = miner.mine_block(make_objects(rng, 4, h * 4, h), timestamp=h)
    return block, backend


def test_nil_tree_only_counts_leaf_digests():
    block, backend = mine_one("nil")
    # 4 leaves × one 2-part acc2 digest each
    assert tree_ads_nbytes(block.index_root, backend) == 4 * 2 * backend.element_nbytes


def test_intra_counts_internal_digests_too():
    nil_block, backend = mine_one("nil")
    intra_block, _ = mine_one("intra")
    assert tree_ads_nbytes(intra_block.index_root, backend) > tree_ads_nbytes(
        nil_block.index_root, backend
    )


def test_both_adds_skiplist_bytes():
    intra_block, backend = mine_one("intra")
    both_block, _ = mine_one("both")
    assert skiplist_ads_nbytes(intra_block, backend) == 0
    assert skiplist_ads_nbytes(both_block, backend) > 0
    assert block_ads_nbytes(both_block, backend) > block_ads_nbytes(
        intra_block, backend
    )


def test_raw_block_size_positive():
    block, _backend = mine_one("nil")
    assert raw_block_nbytes(block) > 0
