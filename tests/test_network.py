"""Tests for the VChainNetwork facade and dataset integration."""

import pytest

from repro import VChainNetwork
from repro.chain import DataObject, ProtocolParams
from repro.core.query import CNFCondition, TimeWindowQuery
from repro.datasets import ethereum_like, make_time_window_queries


def test_create_defaults():
    net = VChainNetwork.create(seed=1)
    assert net.params.mode == "both"
    assert net.accumulator.name == "acc2"
    assert len(net.chain) == 0


def test_create_acc1_uses_scalar_domain():
    net = VChainNetwork.create(acc_name="acc1", seed=1)
    assert net.encoder.domain_size == net.accumulator.backend.order - 1


def test_unknown_accumulator_rejected():
    with pytest.raises(ValueError):
        VChainNetwork.create(acc_name="acc9")


def test_mine_syncs_light_node():
    net = VChainNetwork.create(seed=2)
    obj = DataObject(object_id=0, timestamp=0, vector=(1, 2), keywords=frozenset({"x"}))
    net.mine([obj], timestamp=0)
    assert len(net.user.light) == 1


def test_mine_dataset_returns_mined_blocks():
    net = VChainNetwork.create(
        params=ProtocolParams(mode="both", bits=8, skip_size=2), seed=3
    )
    dataset = ethereum_like(6, objects_per_block=2)
    blocks = net.mine_dataset(dataset)
    assert [b.height for b in blocks] == list(range(6))
    assert all(net.chain.block(b.height) is b for b in blocks)


def test_mine_dataset_and_query_workload():
    net = VChainNetwork.create(
        params=ProtocolParams(mode="both", bits=8, skip_size=2), seed=3
    )
    dataset = ethereum_like(24, objects_per_block=4)
    net.mine_dataset(dataset)
    assert len(net.chain) == 24
    queries = make_time_window_queries(dataset, n_queries=3, window_blocks=12, seed=5)
    for query in queries:
        verified, _vo, sp_stats, _user_stats = net.user.query(net.sp, query)
        truth = sorted(
            o.object_id
            for b in net.chain
            for o in b.objects
            if query.in_window(o.timestamp) and query.matches_object(o, net.params.bits)
        )
        assert sorted(o.object_id for o in verified) == truth
        assert sp_stats.blocks_scanned + sp_stats.blocks_skipped > 0


def test_quickstart_docstring_flow():
    from repro.core import RangeCondition

    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated", seed=4)
    objs = [
        DataObject(object_id=i, timestamp=0, vector=(i * 20 % 256, 0),
                   keywords=frozenset({"Sedan" if i % 2 else "Van", "Benz"}))
        for i in range(6)
    ]
    net.mine(objs, timestamp=0)
    query = TimeWindowQuery(
        start=0, end=100,
        numeric=RangeCondition(low=(0, 0), high=(128, 255)),
        boolean=CNFCondition.of([["Sedan"], ["Benz", "BMW"]]),
    )
    results, _vo, _sp, _user = net.user.query(net.sp, query)
    for obj in results:
        assert query.matches_object(obj, net.params.bits)
