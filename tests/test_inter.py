"""Unit tests for the inter-block skip list construction."""

import random
from collections import Counter

import pytest

from repro.chain import Blockchain, Miner, ProtocolParams
from repro.crypto.hashing import digest
from repro.index.inter import build_skip_entries, pre_skipped_hash, skip_distances
from tests.conftest import make_objects


def test_skip_distance_schedule():
    assert skip_distances(0) == []
    assert skip_distances(1) == [4]
    assert skip_distances(3) == [4, 8, 16]
    assert skip_distances(5) == [4, 8, 16, 32, 64]
    assert skip_distances(3, base=2) == [2, 4, 8]


def test_pre_skipped_hash_binds_order():
    a, b = digest(b"a"), digest(b"b")
    root = digest(b"root")
    assert pre_skipped_hash(root, [a, b]) != pre_skipped_hash(root, [b, a])
    assert pre_skipped_hash(root, [a]) != pre_skipped_hash(digest(b"x"), [a])


@pytest.fixture()
def mined(sim_acc2, encoder_q):
    params = ProtocolParams(mode="both", bits=8, skip_size=3, skip_base=4)
    chain = Blockchain()
    miner = Miner(chain, sim_acc2, encoder_q, params)
    rng = random.Random(77)
    for h in range(20):
        miner.mine_block(make_objects(rng, 2, h * 2, h), timestamp=h)
    return chain


def test_entries_only_for_available_history(mined):
    assert [e.distance for e in mined.block(0).skip_entries] == []
    assert [e.distance for e in mined.block(3).skip_entries] == [4]
    assert [e.distance for e in mined.block(7).skip_entries] == [4, 8]
    assert [e.distance for e in mined.block(15).skip_entries] == [4, 8, 16]


def test_covered_heights_include_current_block(mined):
    entry = mined.block(10).skip_entries[0]
    assert entry.covered_heights == (7, 8, 9, 10)


def test_entry_hash_changes_with_digest(mined, sim_acc2):
    backend = sim_acc2.backend
    entries = mined.block(15).skip_entries
    hashes = {e.entry_hash(backend) for e in entries}
    assert len(hashes) == len(entries)


def test_acc1_and_acc2_commit_same_multisets(sim_acc1, sim_acc2, encoder_r, encoder_q):
    """Both accumulators must summarise identical skip multisets."""
    rng = random.Random(5)
    blocks = {}
    for acc, enc in ((sim_acc1, encoder_r), (sim_acc2, encoder_q)):
        params = ProtocolParams(mode="both", bits=8, skip_size=1)
        chain = Blockchain()
        miner = Miner(chain, acc, enc, params)
        rng_local = random.Random(5)
        for h in range(6):
            miner.mine_block(make_objects(rng_local, 2, h * 2, h), timestamp=h)
        blocks[acc.name] = chain.block(5).skip_entries[0]
    assert blocks["acc1"].attrs == blocks["acc2"].attrs
    assert blocks["acc1"].covered_heights == blocks["acc2"].covered_heights


def test_build_skip_entries_empty_history(sim_acc2, encoder_q):
    entries = build_skip_entries(
        previous_blocks=[],
        merkle_root=digest(b"m"),
        attrs_sum=Counter({"a": 1}),
        sum_digest=sim_acc2.accumulate(encoder_q.encode_multiset(Counter({"a": 1}))),
        accumulator=sim_acc2,
        encoder=encoder_q,
        size=3,
    )
    assert entries == []
