"""Unit tests for the supersingular curve and F_p² arithmetic."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import curve
from repro.errors import CryptoError

RNG = random.Random(31)
G = curve.GENERATOR


def test_generator_on_curve_and_in_subgroup():
    assert curve.is_on_curve(G)
    curve.validate_subgroup(G)
    assert curve.multiply(G, curve.SUBGROUP_ORDER) is None


def test_curve_cardinality_relation():
    # supersingular: #E = p + 1 = cofactor * r
    assert curve.COFACTOR * curve.SUBGROUP_ORDER == curve.FIELD_PRIME + 1


def test_infinity_is_identity():
    assert curve.add(None, G) == G
    assert curve.add(G, None) == G
    assert curve.add(G, curve.neg(G)) is None
    assert curve.is_on_curve(None)
    assert curve.neg(None) is None


def test_doubling_matches_repeated_addition():
    assert curve.add(G, G) == curve.multiply(G, 2)
    assert curve.add(curve.add(G, G), G) == curve.multiply(G, 3)


def test_multiply_zero_and_negative():
    assert curve.multiply(G, 0) is None
    assert curve.multiply(G, -1) == curve.neg(G)


@settings(max_examples=10, deadline=None)
@given(
    a=st.integers(min_value=1, max_value=2**32),
    b=st.integers(min_value=1, max_value=2**32),
)
def test_scalar_multiplication_is_homomorphic(a, b):
    left = curve.multiply(G, a + b)
    right = curve.add(curve.multiply(G, a), curve.multiply(G, b))
    assert left == right


def test_random_subgroup_point_valid():
    point = curve.random_subgroup_point(RNG)
    curve.validate_subgroup(point)


def test_validate_subgroup_rejects_off_curve():
    with pytest.raises(CryptoError):
        curve.validate_subgroup((1, 1))


def test_point_addition_results_stay_on_curve():
    p = curve.multiply(G, 12345)
    q = curve.multiply(G, 99999)
    assert curve.is_on_curve(curve.add(p, q))


# -- F_p² ---------------------------------------------------------------------

def test_fp2_mul_i_squared_is_minus_one():
    i = (0, 1)
    minus_one = (curve.FIELD_PRIME - 1, 0)
    assert curve.fp2_mul(i, i) == minus_one


def test_fp2_add_sub_roundtrip():
    u, v = (3, 4), (10, 20)
    assert curve.fp2_sub(curve.fp2_add(u, v), v) == u


def test_fp2_square_matches_mul():
    u = (12345, 6789)
    assert curve.fp2_square(u) == curve.fp2_mul(u, u)


def test_fp2_inverse_roundtrip():
    u = (55, 66)
    assert curve.fp2_mul(u, curve.fp2_inv(u)) == curve.FP2_ONE


def test_fp2_inv_zero_raises():
    with pytest.raises(CryptoError):
        curve.fp2_inv(curve.FP2_ZERO)


def test_fp2_pow_laws():
    u = (7, 9)
    assert curve.fp2_pow(u, 0) == curve.FP2_ONE
    assert curve.fp2_pow(u, 5) == curve.fp2_mul(
        curve.fp2_pow(u, 3), curve.fp2_pow(u, 2)
    )
    assert curve.fp2_mul(curve.fp2_pow(u, -2), curve.fp2_pow(u, 2)) == curve.FP2_ONE


def test_fp2_conjugate_is_frobenius():
    u = (7, 9)
    # x^p equals the conjugate in F_p²
    assert curve.fp2_pow(u, curve.FIELD_PRIME) == curve.fp2_conjugate(u)
