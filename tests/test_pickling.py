"""Picklability audit: the trusted setup must survive spawn-mode workers.

Platforms without ``fork`` hand :class:`~repro.parallel.CryptoPool`
workers their state by pickling.  That pins three regressions:

* :class:`~repro.crypto.msm.CurveOps` carries lambdas — it pickles as a
  registry reference and resolves back to the same singleton;
* :class:`~repro.accumulators.keys.KeyOracle` drops its bulky fixed-base
  tables in transit and rebuilds them lazily, still serving identical
  powers and commits;
* every backend and accumulator round-trips and keeps producing
  byte-identical group elements.

The final test runs a real spawn-mode pool end to end.
"""

import pickle
import random
from collections import Counter

import pytest

from repro.accumulators.acc1 import Acc1
from repro.accumulators.acc2 import Acc2
from repro.accumulators.encoding import ElementEncoder
from repro.accumulators.keys import keygen_acc1, keygen_acc2
from repro.crypto import msm
from repro.crypto.backend import get_backend

BACKENDS = ["simulated", "ss512", "bn254"]


def test_curveops_pickle_as_registry_references():
    for ops in (msm.SS512_OPS, msm.BN254_OPS):
        assert pickle.loads(pickle.dumps(ops)) is ops
    anonymous = msm.CurveOps(
        infinity=None,
        is_infinity=lambda p: p is None,
        to_jac=lambda p: p,
        double=lambda p: p,
        add=lambda a, b: a,
        add_affine=lambda a, b: a,
        neg=lambda p: p,
        to_affine=lambda p: p,
        batch_to_affine=lambda ps: ps,
    )
    with pytest.raises(TypeError):
        pickle.dumps(anonymous)
    with pytest.raises(TypeError):
        msm.ops_by_name("no-such-curve")


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_key_oracle_drops_tables_and_rehydrates(backend_name):
    backend = get_backend(backend_name)
    _secret, public_key = keygen_acc1(backend, 32, random.Random(11))
    oracle = public_key.oracle
    # warm power + table caches
    before = oracle.commit_prefix([3, 1, 4, 1, 5])
    assert oracle._tables

    clone = pickle.loads(pickle.dumps(oracle))
    assert clone._tables == {}  # tables dropped in transit
    assert clone._cache.keys() == oracle._cache.keys()  # powers travelled
    after = clone.commit_prefix([3, 1, 4, 1, 5])
    assert backend.encode(before) == clone.backend.encode(after)
    assert clone._tables  # rebuilt lazily on demand


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_accumulators_roundtrip_byte_identical(backend_name):
    backend = get_backend(backend_name)
    encoder = ElementEncoder(2**20)
    encoded = encoder.encode_multiset(Counter(["Benz", "Sedan", "Sedan"]))
    other = encoder.encode_multiset(Counter(["BMW"]))

    _sk, pk1 = keygen_acc1(backend, 64, random.Random(5))
    acc1 = Acc1(pk1)
    clone1 = pickle.loads(pickle.dumps(acc1))
    assert [backend.encode(p) for p in acc1.accumulate(encoded).parts] == [
        clone1.backend.encode(p) for p in clone1.accumulate(encoded).parts
    ]
    proof = clone1.prove_disjoint(encoded, other)
    assert clone1.verify_disjoint(
        clone1.accumulate(encoded), clone1.accumulate(other), proof
    )

    _sk, pk2 = keygen_acc2(backend, 2**20, random.Random(5))
    acc2 = Acc2(pk2)
    clone2 = pickle.loads(pickle.dumps(acc2))
    assert [backend.encode(p) for p in acc2.accumulate(encoded).parts] == [
        clone2.backend.encode(p) for p in clone2.accumulate(encoded).parts
    ]


def test_spawn_mode_pool_end_to_end():
    """A real spawn pool: state arrives by pickle, results match serial."""
    from repro.parallel import CryptoPool, ParallelConfig

    backend = get_backend("ss512")
    encoder = ElementEncoder(2**20)
    _sk, pk = keygen_acc2(backend, 2**20, random.Random(7))
    accumulator = Acc2(pk)
    multisets = [
        encoder.encode_multiset(Counter({f"attr{i}": 1, "shared": 2}))
        for i in range(6)
    ]
    serial = [accumulator.accumulate(m) for m in multisets]
    with CryptoPool(
        accumulator, encoder, ParallelConfig(workers=2, start_method="spawn")
    ) as pool:
        parallel = pool.map_accumulate(multisets)
        sites = [(Counter({f"attr{i}": 1}), frozenset({"other"})) for i in range(4)]
        proofs = pool.map_prove(sites)
    for s, p in zip(serial, parallel):
        assert [backend.encode(x) for x in s.parts] == [
            backend.encode(x) for x in p.parts
        ]
    clause_digest = accumulator.accumulate(
        encoder.encode_multiset(Counter({"other": 1}))
    )
    for (attrs, _clause), proof in zip(sites, proofs):
        value = accumulator.accumulate(encoder.encode_multiset(attrs))
        assert accumulator.verify_disjoint(value, clause_digest, proof)
