"""End-to-end time-window query tests across modes, accumulators, batching."""

import random

import pytest

from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.core.query import CNFCondition, RangeCondition, TimeWindowQuery
from repro.errors import QueryError
from tests.conftest import make_objects

VOCAB = ["Sedan", "Van", "Benz", "BMW", "Audi", "Tesla", "Ford"]


def build_network(acc_name, mode, n_blocks=24, per_block=3, seed=8, skip_size=2):
    params = ProtocolParams(mode=mode, bits=8, skip_size=skip_size, difficulty_bits=0)
    net = VChainNetwork.create(acc_name=acc_name, params=params, seed=seed)
    rng = random.Random(seed)
    oid = 0
    for h in range(n_blocks):
        objs = make_objects(rng, per_block, oid, timestamp=h * 10, vocab=VOCAB)
        oid += per_block
        net.miner.mine_block(objs, timestamp=h * 10)
    net.user.sync_headers(net.chain)
    return net


def ground_truth(net, query):
    return sorted(
        obj.object_id
        for block in net.chain
        for obj in block.objects
        if query.in_window(obj.timestamp)
        and query.matches_object(obj, net.params.bits)
    )


QUERY = TimeWindowQuery(
    start=0,
    end=150,
    numeric=RangeCondition(low=(0, 0), high=(140, 255)),
    boolean=CNFCondition.of([["Benz", "BMW"], ["Sedan", "Van"]]),
)


@pytest.mark.parametrize("mode", ["nil", "intra", "both"])
@pytest.mark.parametrize("acc_name", ["acc1", "acc2"])
def test_query_correct_all_schemes(acc_name, mode):
    net = build_network(acc_name, mode)
    batch = acc_name == "acc2"
    verified, _vo, sp_stats, user_stats = net.user.query(net.sp, QUERY, batch=batch)
    assert sorted(o.object_id for o in verified) == ground_truth(net, QUERY)
    assert sp_stats.results == len(verified)
    assert user_stats.nodes_replayed > 0


def test_batch_requires_acc2():
    net = build_network("acc1", "intra")
    with pytest.raises(QueryError):
        net.sp.time_window_query(QUERY, batch=True)


def test_empty_result_queries_verify():
    net = build_network("acc2", "both")
    query = TimeWindowQuery(
        start=0, end=150, boolean=CNFCondition.of([["NoSuchKeyword"]])
    )
    verified, vo, _sp, _user = net.user.query(net.sp, query)
    assert verified == []
    assert vo.entries  # mismatch evidence still present


def test_query_window_outside_chain():
    net = build_network("acc2", "both")
    query = TimeWindowQuery(start=10**9, end=2 * 10**9)
    verified, vo, _sp, _user = net.user.query(net.sp, query)
    assert verified == [] and vo.entries == []


def test_no_condition_returns_everything():
    net = build_network("acc2", "intra", n_blocks=6)
    query = TimeWindowQuery(start=0, end=10**6)
    verified, _vo, _sp, _user = net.user.query(net.sp, query)
    assert len(verified) == sum(len(b.objects) for b in net.chain)


def test_partial_window_selects_blocks():
    net = build_network("acc2", "intra")
    query = TimeWindowQuery(start=50, end=90, boolean=CNFCondition.of([["Benz"]]))
    verified, _vo, _sp, _user = net.user.query(net.sp, query)
    assert all(50 <= o.timestamp <= 90 for o in verified)
    assert sorted(o.object_id for o in verified) == ground_truth(net, query)


def test_intra_vo_smaller_than_nil():
    """The headline index effect: intra prunes, nil proves per object."""
    selective = TimeWindowQuery(
        start=0, end=230, boolean=CNFCondition.of([["Tesla"], ["Ford"]])
    )
    nil_net = build_network("acc2", "nil")
    intra_net = build_network("acc2", "intra")
    _r1, vo_nil, stats_nil = nil_net.sp.time_window_query(selective, batch=False)
    _r2, vo_intra, stats_intra = intra_net.sp.time_window_query(selective, batch=False)
    backend = nil_net.accumulator.backend
    assert stats_intra.proofs_computed < stats_nil.proofs_computed
    assert vo_intra.nbytes(backend) < vo_nil.nbytes(backend)


def test_inter_index_skips_sparse_data():
    """Blocks with rare keywords: skips cover runs of blocks."""
    params = ProtocolParams(mode="both", bits=8, skip_size=3, skip_base=4)
    net = VChainNetwork.create(acc_name="acc2", params=params, seed=3)
    rng = random.Random(3)
    sparse_vocab = [f"addr{i}" for i in range(500)]
    oid = 0
    for h in range(40):
        objs = make_objects(rng, 2, oid, timestamp=h, vocab=sparse_vocab)
        oid += 2
        net.miner.mine_block(objs, timestamp=h)
    net.user.sync_headers(net.chain)
    query = TimeWindowQuery(start=0, end=39, boolean=CNFCondition.of([["addr0"]]))
    verified, _vo, stats = net.sp.time_window_query(query, batch=False)
    _verified2, _stats2 = net.user.verify(query, verified, _vo)
    assert stats.blocks_skipped > 0
    assert sorted(o.object_id for o in verified) == ground_truth(net, query)


def test_batch_reduces_user_checks_and_vo_size():
    net = build_network("acc2", "both")
    query = TimeWindowQuery(start=0, end=230, boolean=CNFCondition.of([["Tesla"]]))
    r1, vo_plain, _ = net.sp.time_window_query(query, batch=False)
    _v1, stats_plain = net.user.verify(query, r1, vo_plain)
    r2, vo_batch, _ = net.sp.time_window_query(query, batch=True)
    _v2, stats_batch = net.user.verify(query, r2, vo_batch)
    backend = net.accumulator.backend
    assert stats_batch.disjoint_checks < stats_plain.disjoint_checks
    assert vo_batch.nbytes(backend) <= vo_plain.nbytes(backend)


def test_vo_nbytes_positive_and_consistent():
    net = build_network("acc2", "both")
    _r, vo, _s = net.sp.time_window_query(QUERY)
    backend = net.accumulator.backend
    total = vo.nbytes(backend)
    assert total > 0
    assert total == sum(e.nbytes(backend) for e in vo.entries) + sum(
        g.nbytes(backend) for g in vo.batch_groups.values()
    )


@pytest.mark.slow
def test_real_backend_end_to_end():
    """Tiny chain on the genuine pairing: the full protocol, no shortcuts."""
    params = ProtocolParams(mode="intra", bits=4, difficulty_bits=0)
    net = VChainNetwork.create(
        acc_name="acc2", backend_name="ss512", params=params, seed=1
    )
    rng = random.Random(1)
    oid = 0
    for h in range(2):
        objs = make_objects(rng, 2, oid, timestamp=h, dims=1, bits=4)
        oid += 2
        net.miner.mine_block(objs, timestamp=h)
    net.user.sync_headers(net.chain)
    query = TimeWindowQuery(start=0, end=10, boolean=CNFCondition.of([["Benz", "BMW"]]))
    verified, _vo, _sp_stats, _user_stats = net.user.query(net.sp, query)
    assert sorted(o.object_id for o in verified) == ground_truth(net, query)
