#!/usr/bin/env python3
"""Quickstart: the full vChain loop through the client API.

A miner builds ADS-augmented blocks, an untrusted service provider (SP)
answers a fluent Boolean range query with a verification object (VO),
and a light-node client — holding only block headers — verifies both
soundness and completeness before handing the results back.  Finally
the SP turns malicious and gets caught.

Run:  python examples/quickstart.py
"""

from repro import VChainNetwork
from repro.datasets import ObjectFactory
from repro.errors import VerificationError


def main() -> None:
    # Trusted setup + miner + SP + light-node client, wired together.
    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated", seed=1)

    # The paper's running example: car rental offers ⟨price, keywords⟩.
    listings = [
        ("Sedan", "Benz", 210), ("Sedan", "Audi", 220), ("Van", "Benz", 230),
        ("Van", "BMW", 190), ("Sedan", "BMW", 240), ("Sedan", "Tesla", 255),
    ]
    factory = ObjectFactory()
    for height, chunk in enumerate([listings[:3], listings[3:]]):
        rows = [((price,), {body, brand}) for body, brand, price in chunk]
        net.mine(factory.batch(rows, timestamp=height * 30), timestamp=height * 30)
    print(f"chain: {len(net.chain)} blocks, "
          f"light node stores {net.user.light.storage_nbytes()} header bytes")

    # "price in [200, 250] AND Sedan AND (Benz OR BMW)" over the window.
    resp = (net.client.query()
            .window(0, 60)
            .range(low=(200,), high=(250,))
            .all_of("Sedan")
            .any_of("Benz", "BMW")
            .execute())
    resp.raise_for_forgery()
    print(f"SP returned {len(resp.results)} result(s), "
          f"VO = {resp.vo_nbytes} bytes, "
          f"{resp.sp_stats.proofs_computed} disjointness proof(s)")
    for obj in resp.results:
        print(f"  verified match: id={obj.object_id} "
              f"price={obj.vector[0]} {sorted(obj.keywords)}")
    print(f"client verification: {resp.user_stats.disjoint_checks} pairing check(s), "
          f"{resp.user_seconds * 1000:.1f} ms "
          f"(round trip {resp.wall_seconds * 1000:.1f} ms)")

    # Several queries verify in ONE pass: batch_verify aggregates every
    # disjointness check that shares a clause — across all the VOs —
    # into a single pairing, so a whole window of answers costs far
    # fewer checks than verifying one by one.
    weekly = [
        (net.client.query()
         .window(day * 30, day * 30 + 30)
         .range(low=(200,), high=(250,))
         .all_of("Sedan")
         .any_of("Benz", "BMW")
         .build())
        for day in range(2)
    ]
    batch = net.client.execute_many(weekly)
    for day, response in enumerate(batch):
        response.raise_for_forgery()
        print(f"day {day}: {len(response.results)} verified result(s)")
    stats = batch[0].user_stats  # shared by the whole batch
    print(f"batch verification: {stats.disjoint_checks} pairing check(s) "
          f"covered {stats.batched_checks} aggregated check(s)")

    # A malicious SP drops a result — the VO gives it away.
    try:
        net.user.verify(resp.query, resp.results[:-1], resp.vo)
    except VerificationError as err:
        print(f"tampering detected: {err}")


if __name__ == "__main__":
    main()
