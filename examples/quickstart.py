#!/usr/bin/env python3
"""Quickstart: the full vChain loop in ~60 lines.

A miner builds ADS-augmented blocks, an untrusted service provider (SP)
answers a Boolean range query with a verification object (VO), and a
light-node user — holding only block headers — verifies both soundness
and completeness.  Finally the SP turns malicious and gets caught.

Run:  python examples/quickstart.py
"""

from repro import VChainNetwork
from repro.chain import DataObject
from repro.core import CNFCondition, RangeCondition, TimeWindowQuery
from repro.errors import VerificationError


def main() -> None:
    # Trusted setup + miner + SP + light-node user, wired together.
    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated", seed=1)

    # The paper's running example: car rental offers ⟨price, keywords⟩.
    listings = [
        ("Sedan", "Benz", 210), ("Sedan", "Audi", 220), ("Van", "Benz", 230),
        ("Van", "BMW", 190), ("Sedan", "BMW", 240), ("Sedan", "Tesla", 255),
    ]
    oid = 0
    for height, chunk in enumerate([listings[:3], listings[3:]]):
        objects = [
            DataObject(
                object_id=(oid := oid + 1),
                timestamp=height * 30,
                vector=(price,),
                keywords=frozenset({body, brand}),
            )
            for body, brand, price in chunk
        ]
        net.mine(objects, timestamp=height * 30)
    print(f"chain: {len(net.chain)} blocks, "
          f"light node stores {net.user.light.storage_nbytes()} header bytes")

    # "price in [200, 250] AND Sedan AND (Benz OR BMW)" over the window.
    query = TimeWindowQuery(
        start=0, end=60,
        numeric=RangeCondition(low=(200,), high=(250,)),
        boolean=CNFCondition.of([["Sedan"], ["Benz", "BMW"]]),
    )
    results, vo, sp_stats = net.sp.time_window_query(query)
    print(f"SP returned {len(results)} result(s), "
          f"VO = {vo.nbytes(net.accumulator.backend)} bytes, "
          f"{sp_stats.proofs_computed} disjointness proof(s)")

    verified, user_stats = net.user.verify(query, results, vo)
    for obj in verified:
        print(f"  verified match: id={obj.object_id} "
              f"price={obj.vector[0]} {sorted(obj.keywords)}")
    print(f"user verification: {user_stats.disjoint_checks} pairing check(s), "
          f"{user_stats.user_seconds * 1000:.1f} ms")

    # A malicious SP drops a result — the VO gives it away.
    try:
        net.user.verify(query, results[:-1], vo)
    except VerificationError as err:
        print(f"tampering detected: {err}")


if __name__ == "__main__":
    main()
