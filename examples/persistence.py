#!/usr/bin/env python3
"""Durable chain storage: stop a service provider, reopen it, verify.

Mines a synthetic transaction dataset into a file-backed chain
(append-only segment log, fsync on every block), closes the "process",
then reopens the directory as a restarted SP would: the log is
replayed, every header re-validated, and the same time-window query
returns byte-identical results — which the light client verifies both
before and after the restart.  A batch of windows is then verified in
one aggregated pass over the reopened store.

Run:  python examples/persistence.py
"""

import tempfile
from pathlib import Path

from repro import VChainNetwork
from repro.datasets import ethereum_like
from repro.wire import encode_time_window_vo


def main() -> None:
    data_dir = Path(tempfile.mkdtemp(prefix="vchain-example-")) / "chain"
    dataset = ethereum_like(n_blocks=16, objects_per_block=5, seed=13)

    # ---- process 1: mine to disk, answer one query, stop ----------------
    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated",
                               seed=42, data_dir=data_dir)
    net.mine_dataset(dataset)
    print(f"mined {len(net.chain)} blocks into {data_dir}")

    query = (net.client.query()
             .window(0, 8 * dataset.block_interval)
             .range(low=(0,), high=(100,))
             .build())
    before = net.client.execute(query)
    before.raise_for_forgery()
    vo_before = encode_time_window_vo(net.accumulator.backend, before.vo)
    print(f"before restart: {len(before.results)} verified result(s), "
          f"VO = {before.vo_nbytes} bytes")
    net.close()
    del net  # the chain now exists only on disk

    # ---- process 2: reopen, same query, byte-identical answer -----------
    reopened = VChainNetwork.open(data_dir)
    print(f"reopened {len(reopened.chain)} blocks "
          f"(headers re-validated, light node synced)")
    after = reopened.client.execute(query)
    after.raise_for_forgery()
    vo_after = encode_time_window_vo(reopened.accumulator.backend, after.vo)
    assert [o.object_id for o in after.results] == [o.object_id for o in before.results]
    assert vo_after == vo_before
    print("after restart: results verified and VO bytes identical")

    # ---- batch verification over the reopened store ---------------------
    # the same sparse condition over sliding windows: most blocks carry
    # a disjointness proof against the *same* clause, and batch_verify
    # aggregates all of them into a single pairing
    interval = dataset.block_interval
    rare = dataset.vocabulary[0]
    windows = [(reopened.client.query()
                .window(day * 4 * interval, (day + 1) * 4 * interval)
                .any_of(rare)
                .build())
               for day in range(4)]
    responses = reopened.client.execute_many(windows)
    for resp in responses:
        resp.raise_for_forgery()
    stats = responses[0].user_stats  # shared by the whole batch
    print(f"batch of {len(windows)} windows verified in one pass: "
          f"{stats.disjoint_checks} pairing check(s) covered "
          f"{stats.batched_checks} aggregated check(s)")
    reopened.close()


if __name__ == "__main__":
    main()
