#!/usr/bin/env python3
"""Verifiable cryptocurrency transaction search (paper Example 3.1).

An Ethereum-like workload: each object is a transfer ⟨amount,
{send:…, recv:…}⟩.  A client asks for transactions in a time window
with an amount range and specific sender/receiver addresses, and
verifies the untrusted SP's answer.  Sparse address data is where the
inter-block skip index shines: whole runs of blocks are dismissed with
one proof each — watch the ``blocks skipped`` line.

Run:  python examples/transaction_search.py
"""

from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.datasets import ethereum_like


def main() -> None:
    params = ProtocolParams(mode="both", bits=8, skip_size=3, skip_base=4)
    net = VChainNetwork.create(acc_name="acc2", params=params, seed=2)

    dataset = ethereum_like(n_blocks=64, objects_per_block=6, seed=2)
    net.mine_dataset(dataset)
    print(f"mined {len(net.chain)} blocks / {dataset.n_objects} transactions")

    # pick a real address from a transaction inside the amount range so
    # the query has at least one hit
    target = next(
        sorted(obj.keywords)[0]
        for block in net.chain
        for obj in block.objects
        if obj.vector[0] >= 10
    )
    print(f"query: amount ∈ [10, 255] ∧ {target!r} over the whole window")

    resp = (net.client.query()
            .window(0, dataset.blocks[-1][0])
            .range(low=(10,), high=(255,))
            .all_of(target)
            .execute())
    resp.raise_for_forgery()
    print(f"results: {len(resp.results)} transaction(s)")
    for obj in resp.results:
        print(f"  tx id={obj.object_id} amount={obj.vector[0]} "
              f"addresses={sorted(obj.keywords)}")
    sp_stats, user_stats = resp.sp_stats, resp.user_stats
    print(f"SP: {sp_stats.sp_seconds * 1000:.1f} ms, "
          f"blocks scanned={sp_stats.blocks_scanned} "
          f"skipped via inter-block index={sp_stats.blocks_skipped}")
    print(f"client: {resp.user_seconds * 1000:.1f} ms, "
          f"{user_stats.disjoint_checks} disjointness check(s); "
          f"VO={resp.vo_nbytes} bytes "
          f"(vs {sum(o.nbytes() for b in net.chain for o in b.objects)} bytes "
          f"to download every transaction)")


if __name__ == "__main__":
    main()
