#!/usr/bin/env python3
"""Multi-dimensional verifiable analytics on a weather feed.

A WX-like workload (7 numeric attributes + description keywords) shows
the accumulator ADS handling *arbitrary* attribute combinations with
one fixed-size digest per node — contrast with the MHT baseline, which
needs one sorted Merkle tree per attribute subset (2^d − 1 of them).
The script runs the same range query over two different attribute
pairs, then prints the ADS-size comparison that motivates Fig 16.

Run:  python examples/weather_analytics.py
"""

from repro import VChainNetwork
from repro.baselines import MHTBaseline
from repro.chain import ProtocolParams
from repro.chain.metrics import block_ads_nbytes, raw_block_nbytes
from repro.datasets import weather_like


def main() -> None:
    dataset = weather_like(n_blocks=24, objects_per_block=12, seed=7)
    params = ProtocolParams(mode="both", bits=dataset.bits, skip_size=2)
    net = VChainNetwork.create(acc_name="acc2", params=params, seed=7)
    net.mine_dataset(dataset)
    print(f"mined {len(net.chain)} hourly blocks, {dataset.n_objects} readings")

    space = (1 << dataset.bits) - 1
    window_end = dataset.blocks[-1][0]
    # query 1: range on attributes (0, 1) — e.g. humidity × temperature
    q_humid_temp = (net.client.query()
                    .window(0, window_end)
                    .range(low=(0, 0) + (0,) * 5,
                           high=(space // 3, space // 2) + (space,) * 5))
    # query 2: same chain, different attributes (3, 6) via full-span dims
    q_wind_pressure = (net.client.query()
                       .window(0, window_end)
                       .range(low=(0, 0, 0, space // 2, 0, 0, 0),
                              high=(space,) * 3 + (space,) * 3 + (space // 4,))
                       .any_of("wx:0", "wx:1", "wx:2"))
    for label, builder in (("humidity×temp", q_humid_temp),
                           ("wind×pressure+desc", q_wind_pressure)):
        resp = builder.execute()
        resp.raise_for_forgery()
        print(f"{label:20s}: {len(resp.results):3d} results, "
              f"VO={resp.vo_nbytes / 1024:.1f} KB, "
              f"SP={resp.sp_seconds * 1000:.0f} ms, "
              f"client={resp.user_seconds * 1000:.0f} ms")

    # the one-size-fits-all argument: accumulator ADS vs per-subset MHTs
    block = net.chain.block(5)
    acc_ads = block_ads_nbytes(block, net.accumulator.backend)
    raw = raw_block_nbytes(block)
    print(f"\nADS overhead for one block ({len(block.objects)} objects, "
          f"{dataset.dims} dims):")
    print(f"  accumulator ADS : {acc_ads / 1024:8.1f} KB "
          f"({acc_ads / raw:6.1f}x the raw block)")
    for dims in (2, 4, 7):
        trees = MHTBaseline(dims).build_block_ads(block.objects)
        mht_ads = MHTBaseline.ads_nbytes(trees)
        print(f"  MHT ADS, d={dims}    : {mht_ads / 1024:8.1f} KB "
              f"({len(trees):3d} trees, {mht_ads / raw:6.1f}x the raw block)")


if __name__ == "__main__":
    main()
