#!/usr/bin/env python3
"""Deploying vChain as a smart contract (paper Appendix E).

Instead of modifying a blockchain's native block format, a contract on
a host chain maintains a *logical* vChain: each contract call builds
the intra/inter indexes for a batch of objects and stores the resulting
block under its hash.  The standard prover and verifier then run
against the logical chain unchanged.

Run:  python examples/smart_contract_deployment.py
"""

import random

from repro.accumulators import ElementEncoder, make_accumulator
from repro.chain import DataObject, ProtocolParams
from repro.chain.light import LightNode
from repro.contract import HostChain, VChainContract
from repro.core import CNFCondition, TimeWindowQuery
from repro.core.prover import QueryProcessor
from repro.core.verifier import QueryVerifier
from repro.crypto import get_backend


def main() -> None:
    params = ProtocolParams(mode="both", bits=8, skip_size=2)
    backend = get_backend("simulated")
    _sk, acc = make_accumulator("acc2", backend, rng=random.Random(0))
    encoder = ElementEncoder(2**32 - 1)

    host = HostChain(gas_per_object=21000)
    contract = VChainContract(host, acc, encoder, params)

    rng = random.Random(11)
    topics = ["patent", "trademark", "design", "blockchain", "query", "search"]
    oid = 0
    for height in range(12):
        filings = [
            DataObject(
                object_id=(oid := oid + 1),
                timestamp=height * 60,
                vector=(rng.randrange(256),),
                keywords=frozenset(rng.sample(topics, 2)),
            )
            for _ in range(4)
        ]
        block_hash = contract.build_vchain(filings, timestamp=height * 60)
        print(f"contract call #{height}: logical block {block_hash.hex()[:16]}…")
    print(f"host chain: {len(host.events)} events, gas used = {host.gas_used}")

    # A light node syncs the logical headers and queries through the SP.
    light = LightNode()
    light.sync(contract.chain)
    processor = QueryProcessor(contract.chain, acc, encoder, params)
    verifier = QueryVerifier(light, acc, encoder, params)

    query = TimeWindowQuery(
        start=0, end=12 * 60,
        boolean=CNFCondition.of([["blockchain"], ["query", "search"]]),
    )
    results, vo, _stats = processor.time_window_query(query)
    verified, _vstats = verifier.verify_time_window(query, results, vo)
    print(f"verified {len(verified)} filing(s) matching "
          f"blockchain ∧ (query ∨ search):")
    for obj in verified:
        print(f"  id={obj.object_id} at t={obj.timestamp}: {sorted(obj.keywords)}")


if __name__ == "__main__":
    main()
