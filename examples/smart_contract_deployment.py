#!/usr/bin/env python3
"""Deploying vChain as a smart contract (paper Appendix E).

Instead of modifying a blockchain's native block format, a contract on
a host chain maintains a *logical* vChain: each contract call builds
the intra/inter indexes for a batch of objects and stores the resulting
block under its hash.  The standard client API then runs against the
logical chain unchanged — a :class:`~repro.core.sp.ServiceProvider`
over ``contract.chain`` plugs straight into a
:class:`~repro.api.VChainClient`.

Run:  python examples/smart_contract_deployment.py
"""

import random

from repro.accumulators import ElementEncoder, make_accumulator
from repro.api import VChainClient
from repro.chain import ProtocolParams
from repro.contract import HostChain, VChainContract
from repro.core.sp import ServiceProvider
from repro.crypto import get_backend
from repro.datasets import ObjectFactory


def main() -> None:
    params = ProtocolParams(mode="both", bits=8, skip_size=2)
    backend = get_backend("simulated")
    _sk, acc = make_accumulator("acc2", backend, rng=random.Random(0))
    encoder = ElementEncoder(2**32 - 1)

    host = HostChain(gas_per_object=21000)
    contract = VChainContract(host, acc, encoder, params)

    rng = random.Random(11)
    topics = ["patent", "trademark", "design", "blockchain", "query", "search"]
    factory = ObjectFactory()
    for height in range(12):
        rows = [((rng.randrange(256),), rng.sample(topics, 2)) for _ in range(4)]
        filings = factory.batch(rows, timestamp=height * 60)
        block_hash = contract.build_vchain(filings, timestamp=height * 60)
        print(f"contract call #{height}: logical block {block_hash.hex()[:16]}…")
    print(f"host chain: {len(host.events)} events, gas used = {host.gas_used}")

    # A light-node client syncs the logical headers and queries the SP.
    sp = ServiceProvider(contract.chain, acc, encoder, params)
    client = VChainClient.local(sp)
    resp = (client.query()
            .window(0, 12 * 60)
            .all_of("blockchain")
            .any_of("query", "search")
            .execute())
    resp.raise_for_forgery()
    print(f"verified {len(resp.results)} filing(s) matching "
          f"blockchain ∧ (query ∨ search):")
    for obj in resp.results:
        print(f"  id={obj.object_id} at t={obj.timestamp}: {sorted(obj.keywords)}")


if __name__ == "__main__":
    main()
