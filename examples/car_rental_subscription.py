#!/usr/bin/env python3
"""Verifiable subscription queries — the car-rental service of the
paper's Example 3.2.

Multiple users subscribe to Boolean range conditions such as
``price ∈ [200, 250] ∧ Sedan ∧ (Benz ∨ BMW)``.  The SP's subscription
engine (with the IP-tree sharing proofs across queries) pushes each new
block's results with a VO; the light-node clients verify every delivery
and would notice any withheld match.  The same workload then runs under
*lazy authentication*: deliveries only happen when something matches,
with whole mismatching runs aggregated through the inter-block skip
list — compare the delivery counts and verification costs.

Run:  python examples/car_rental_subscription.py
"""

import random

from repro.accumulators import ElementEncoder, make_accumulator
from repro.chain import Blockchain, DataObject, Miner, ProtocolParams
from repro.chain.light import LightNode
from repro.core import CNFCondition, RangeCondition, SubscriptionQuery
from repro.crypto import get_backend
from repro.subscribe import SubscriptionClient, SubscriptionEngine

BODIES = ["Sedan", "Van", "SUV", "Coupe"]
BRANDS = ["Benz", "BMW", "Audi", "Tesla", "Toyota", "Ford", "Kia", "Volvo"]

SUBSCRIPTIONS = {
    "alice": SubscriptionQuery(
        numeric=RangeCondition(low=(200,), high=(250,)),
        boolean=CNFCondition.of([["Sedan"], ["Benz", "BMW"]]),
    ),
    "bob": SubscriptionQuery(
        numeric=RangeCondition(low=(0,), high=(150,)),
        boolean=CNFCondition.of([["Van", "SUV"]]),
    ),
    "carol": SubscriptionQuery(  # same Boolean reason as alice: proofs shared
        numeric=RangeCondition(low=(100,), high=(250,)),
        boolean=CNFCondition.of([["Sedan"], ["Benz", "BMW"]]),
    ),
}


def run(lazy: bool) -> None:
    params = ProtocolParams(mode="both", bits=8, skip_size=3, skip_base=4)
    backend = get_backend("simulated")
    _sk, acc = make_accumulator("acc2", backend, rng=random.Random(0))
    encoder = ElementEncoder(2**32 - 1)
    chain = Blockchain()
    miner = Miner(chain, acc, encoder, params)
    engine = SubscriptionEngine(acc, encoder, params, use_iptree=True, lazy=lazy)
    light = LightNode()
    clients = {}
    for name, query in SUBSCRIPTIONS.items():
        client = SubscriptionClient(light, acc, encoder, params)
        qid = engine.register(query)
        client.track(qid, query)
        clients[qid] = (name, client)

    rng = random.Random(7)
    oid = 0
    delivered = {qid: 0 for qid in clients}
    matches = {qid: [] for qid in clients}
    checks = {qid: 0 for qid in clients}
    for height in range(48):
        listings = [
            DataObject(
                object_id=(oid := oid + 1),
                timestamp=height * 30,
                vector=(rng.randrange(256),),
                keywords=frozenset(
                    {rng.choice(BODIES), rng.choice(BRANDS)}
                ),
            )
            for _ in range(3)
        ]
        block = miner.mine_block(listings, timestamp=height * 30)
        light.sync(chain)
        for delivery in engine.process_block(block):
            name, client = clients[delivery.query_id]
            verified, stats = client.on_delivery(delivery)
            delivered[delivery.query_id] += 1
            checks[delivery.query_id] += stats.disjoint_checks
            matches[delivery.query_id].extend(verified)
    if lazy:  # drain any pending mismatch evidence
        for qid, (name, client) in clients.items():
            delivery = engine.flush(qid)
            if delivery is not None:
                _verified, stats = client.on_delivery(delivery)
                delivered[qid] += 1
                checks[qid] += stats.disjoint_checks

    mode = "lazy" if lazy else "realtime"
    print(f"--- {mode} authentication ---")
    for qid, (name, _client) in clients.items():
        hits = matches[qid]
        print(f"  {name:6s}: {len(hits):2d} match(es), "
              f"{delivered[qid]:2d} deliveries, "
              f"{checks[qid]:3d} disjointness checks")
        for obj in hits[:2]:
            print(f"          e.g. id={obj.object_id} price={obj.vector[0]} "
                  f"{sorted(obj.keywords)}")
    print(f"  SP proofs computed={engine.stats.proofs_computed} "
          f"shared via IP-tree={engine.stats.proofs_shared}")


def main() -> None:
    run(lazy=False)
    run(lazy=True)


if __name__ == "__main__":
    main()
