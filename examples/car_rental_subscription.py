#!/usr/bin/env python3
"""Verifiable subscription queries — the car-rental service of the
paper's Example 3.2.

Multiple users subscribe to Boolean range conditions such as
``price ∈ [200, 250] ∧ Sedan ∧ (Benz ∨ BMW)`` through the client API.
All three clients share one :class:`~repro.api.ServiceEndpoint`, so the
SP's subscription engine (with the IP-tree) shares proofs across their
queries; each light-node client verifies every delivery on its own
stream and would notice any withheld match.  The same workload then
runs under *lazy authentication*: deliveries only happen when something
matches, with whole mismatching runs aggregated through the inter-block
skip list — compare the delivery counts and verification costs.

Run:  python examples/car_rental_subscription.py
"""

import random

from repro import VChainClient, VChainNetwork
from repro.api import ServiceEndpoint
from repro.chain import ProtocolParams
from repro.datasets import ObjectFactory

BODIES = ["Sedan", "Van", "SUV", "Coupe"]
BRANDS = ["Benz", "BMW", "Audi", "Tesla", "Toyota", "Ford", "Kia", "Volvo"]


def open_streams(endpoint: ServiceEndpoint):
    """One client + stream per subscriber, all sharing the endpoint."""
    streams = {}
    alice = VChainClient.local(endpoint)
    streams["alice"] = (alice.subscribe()
                        .range(low=(200,), high=(250,))
                        .all_of("Sedan").any_of("Benz", "BMW").open())
    bob = VChainClient.local(endpoint)
    streams["bob"] = (bob.subscribe()
                      .range(low=(0,), high=(150,))
                      .any_of("Van", "SUV").open())
    carol = VChainClient.local(endpoint)  # same Boolean reason as alice:
    streams["carol"] = (carol.subscribe()  # proofs shared via the IP-tree
                        .range(low=(100,), high=(250,))
                        .all_of("Sedan").any_of("Benz", "BMW").open())
    return streams


def run(lazy: bool) -> None:
    params = ProtocolParams(mode="both", bits=8, skip_size=3, skip_base=4)
    net = VChainNetwork.create(acc_name="acc2", params=params, seed=0)
    endpoint = ServiceEndpoint(net.sp, use_iptree=True, lazy=lazy)
    streams = open_streams(endpoint)

    rng = random.Random(7)
    factory = ObjectFactory()
    delivered = {name: 0 for name in streams}
    matches = {name: [] for name in streams}
    checks = {name: 0 for name in streams}
    for height in range(48):
        rows = [
            ((rng.randrange(256),), {rng.choice(BODIES), rng.choice(BRANDS)})
            for _ in range(3)
        ]
        net.mine(factory.batch(rows, timestamp=height * 30), timestamp=height * 30)
        for name, stream in streams.items():
            for delivery in stream.poll():
                delivered[name] += 1
                checks[name] += delivery.stats.disjoint_checks
                matches[name].extend(delivery.results)
    if lazy:  # drain any pending mismatch evidence
        for name, stream in streams.items():
            for delivery in stream.flush():
                delivered[name] += 1
                checks[name] += delivery.stats.disjoint_checks
                matches[name].extend(delivery.results)

    mode = "lazy" if lazy else "realtime"
    print(f"--- {mode} authentication ---")
    for name, stream in streams.items():
        hits = matches[name]
        print(f"  {name:6s}: {len(hits):2d} match(es), "
              f"{delivered[name]:2d} deliveries, "
              f"{checks[name]:3d} disjointness checks")
        for obj in hits[:2]:
            print(f"          e.g. id={obj.object_id} price={obj.vector[0]} "
                  f"{sorted(obj.keywords)}")
        stream.close()
    print(f"  SP proofs computed={endpoint.engine.stats.proofs_computed} "
          f"shared via IP-tree={endpoint.engine.stats.proofs_shared}")


def main() -> None:
    run(lazy=False)
    run(lazy=True)


if __name__ == "__main__":
    main()
