"""Subscription query engine (paper Section 7, Algorithms 5 and 7).

The SP registers subscriptions, observes each newly mined block, and
publishes per-query deliveries ``⟨results, VO⟩``.  Two authentication
modes:

* **realtime** — every block produces a delivery for every query: a
  full intra-tree transcript when the block may contain matches, or a
  single root-level mismatch proof otherwise.
* **lazy** (acc2 only) — mismatching blocks are parked on a per-query
  stack; when a match finally arrives (or ``flush`` is called), the
  stack is drained into the delivery.  Runs of same-clause blocks that
  align with an inter-block skip entry are replaced by one skip proof,
  computed via ``ProofSum`` of the per-block proofs accumulated online
  — the SP never recomputes a big disjointness proof from scratch.

Proof sharing: with the IP-tree enabled, queries mismatching a node for
the same clause share a single ``ProveDisjoint`` call (the proof cache
is keyed by block/node/clause).  Without it (the paper's ``nip``
baseline), every query pays for its own proof — that difference is
exactly Fig 12.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass

from repro.accumulators.base import DisjointProof, MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.cache.fragments import (
    ProofCache,
    compute_disjoint_proof,
    multiset_signature,
)
from repro.chain.block import Block
from repro.chain.miner import ProtocolParams
from repro.chain.object import DataObject
from repro.core.query import SubscriptionQuery
from repro.core.vo import (
    TimeWindowVO,
    VOBlock,
    VOExpandNode,
    VOMatchLeaf,
    VOMismatchNode,
    VONode,
    VOSkip,
)
from repro.errors import QueryError, SubscriptionError
from repro.index.intra import IndexNode, children_hash
from repro.subscribe.iptree import IPTree, RegisteredQuery, register_query


@dataclass
class Delivery:
    """One push to one subscriber: results + the VO covering a height run."""

    query_id: int
    from_height: int
    up_to_height: int
    results: list[DataObject]
    vo: TimeWindowVO

    def heights(self) -> list[int]:
        return list(range(self.from_height, self.up_to_height + 1))


@dataclass
class EngineStats:
    """SP-side accounting across the engine's lifetime."""

    sp_seconds: float = 0.0
    proofs_computed: int = 0
    proofs_shared: int = 0
    deliveries: int = 0
    #: proofs precomputed on CryptoPool workers during block ingestion
    parallel_tasks: int = 0


@dataclass
class _PendingBlock:
    """Lazy-mode stack entry: a fully mismatching block."""

    height: int
    clause: frozenset[str]
    jump: int  # how many chain blocks this entry stands for (Alg 5 stack)
    sum_proof: DisjointProof | None  # proof vs block attrs_sum, for ProofSum


class SubscriptionEngine:
    """SP-side engine multiplexing many subscriptions over new blocks.

    The engine is deliberately **ephemeral**: registrations are live
    client state, not chain state, so nothing here is persisted by
    :mod:`repro.storage`.  After an SP restart
    (``ServiceEndpoint.open``) a fresh engine starts empty, clients
    re-register, and new subscriptions default to seeing only blocks
    mined from now on — while the reopened *chain* still serves the
    whole history through time-window queries.  An explicit
    ``since_height`` may reach back into recovered blocks as long as
    the endpoint has not ingested past it yet.
    """

    def __init__(
        self,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
        use_iptree: bool = True,
        lazy: bool = False,
        iptree_dims: int | None = None,
        iptree_max_depth: int = 6,
        proof_cache: ProofCache | None = None,
        pool=None,
    ) -> None:
        if lazy and not accumulator.supports_aggregation:
            raise QueryError("lazy authentication requires an aggregating accumulator")
        self.accumulator = accumulator
        self.encoder = encoder
        self.params = params
        self.use_iptree = use_iptree
        self.lazy = lazy
        #: persistent content-keyed proof memo (shared with the query
        #: path by ServiceEndpoint); the per-block dict in
        #: ``process_block`` only shares within one block
        self.proof_cache = proof_cache
        #: optional CryptoPool: with the IP-tree enabled, each block's
        #: distinct proofs precompute across workers before the per-query
        #: loop consumes them (the ``nip`` baseline stays serial so its
        #: no-sharing semantics survive for Fig 12)
        self.pool = pool
        self._prepaid: set[tuple] = set()
        self.stats = EngineStats()
        self._iptree: IPTree | None = None
        self._iptree_dims = iptree_dims
        self._iptree_max_depth = iptree_max_depth
        self._queries: dict[int, RegisteredQuery] = {}
        self._next_id = 0
        self._last_delivered: dict[int, int] = {}  # qid -> height
        self._pending: dict[int, list[_PendingBlock]] = {}
        self._blocks: dict[int, Block] = {}

    # -- registration -----------------------------------------------------
    def register(self, query: SubscriptionQuery, since_height: int = 0) -> int:
        """Register a subscription; deliveries start at ``since_height``."""
        query_id = self._next_id
        self._next_id += 1
        registered = register_query(query_id, query, self.params.bits)
        self._queries[query_id] = registered
        self._last_delivered[query_id] = since_height - 1
        self._pending[query_id] = []
        if self.use_iptree:
            if self._iptree is None:
                dims = self._iptree_dims
                if dims is None:
                    # the grid over the *leading* dimensions only: each
                    # split creates 2^dims children, so high-dimensional
                    # grids explode; the paper presents a 2-D grid and
                    # range predicates constrain few attributes anyway.
                    # Trailing dimensions fall back to direct clause
                    # tests, which stay correct (see IPTree.classify).
                    dims = (
                        min(2, len(query.numeric.low))
                        if query.numeric is not None
                        else 1
                    )
                self._iptree = IPTree(
                    dims=dims, bits=self.params.bits, max_depth=self._iptree_max_depth
                )
            self._iptree.insert(registered)
        return query_id

    def deregister(self, query_id: int) -> None:
        if query_id not in self._queries:
            raise SubscriptionError(f"query {query_id} is not registered")
        del self._queries[query_id]
        del self._last_delivered[query_id]
        del self._pending[query_id]
        if self._iptree is not None:
            self._iptree.remove(query_id)

    # -- block processing --------------------------------------------------------
    def process_block(self, block: Block) -> list[Delivery]:
        """Ingest one newly confirmed block; return the due deliveries."""
        started = time.perf_counter()
        self._blocks[block.height] = block
        proof_cache: dict[tuple, DisjointProof] = {}
        deliveries: list[Delivery] = []

        root = block.index_root
        root_mismatch, candidates = self._classify(root.attrs)
        self._prepaid.clear()
        if (
            self.pool is not None
            and not self.pool.serial
            and self.use_iptree
            and self._queries
        ):
            self._precompute_proofs(block, root_mismatch, proof_cache)
        for query_id, registered in self._queries.items():
            if block.height <= self._last_delivered[query_id]:
                continue
            clause = root_mismatch.get(query_id)
            if clause is not None:
                delivery = self._on_block_mismatch(
                    registered, block, clause, proof_cache
                )
            else:
                delivery = self._on_block_candidate(registered, block, proof_cache)
            if delivery is not None:
                deliveries.append(delivery)
        self.stats.sp_seconds += time.perf_counter() - started
        self.stats.deliveries += len(deliveries)
        return deliveries

    def flush(self, query_id: int) -> Delivery | None:
        """Drain a lazy query's pending stack without waiting for a match."""
        registered = self._queries.get(query_id)
        if registered is None:
            raise SubscriptionError(f"query {query_id} is not registered")
        if not self._pending[query_id]:
            return None
        started = time.perf_counter()
        entries = self._drain_pending(query_id)
        up_to = self._pending_top_height(entries)
        delivery = Delivery(
            query_id=query_id,
            from_height=self._last_delivered[query_id] + 1,
            up_to_height=up_to,
            results=[],
            vo=TimeWindowVO(entries=entries),
        )
        self._last_delivered[query_id] = up_to
        self.stats.sp_seconds += time.perf_counter() - started
        self.stats.deliveries += 1
        return delivery

    # -- per-query handling ------------------------------------------------------
    def _classify(self, attrs: Counter):
        if self.use_iptree and self._iptree is not None and len(self._iptree):
            return self._iptree.classify(attrs)
        mismatches: dict[int, frozenset[str]] = {}
        candidates: set[int] = set()
        for query_id, registered in self._queries.items():
            clause = registered.mismatch_clause(attrs)
            if clause is not None:
                mismatches[query_id] = clause
            else:
                candidates.add(query_id)
        return mismatches, candidates

    def _on_block_mismatch(
        self,
        registered: RegisteredQuery,
        block: Block,
        clause: frozenset[str],
        proof_cache: dict,
    ) -> Delivery | None:
        if self.lazy:
            sum_proof = self._shared_proof(
                ("sum", block.height, clause), block.attrs_sum, clause, proof_cache
            )
            self._push_pending(registered.query_id, block, clause, sum_proof)
            return None
        vo_node = VOMismatchNode(
            child_component=children_hash(block.index_root.children)
            if not block.index_root.is_leaf
            else block.index_root.obj.serialize(),
            att_digest=block.index_root.att_digest,
            clause=clause,
            proof=self._shared_proof(
                ("root", block.height, clause),
                block.index_root.attrs,
                clause,
                proof_cache,
            ),
        )
        return self._realtime_delivery(registered.query_id, block, [], vo_node)

    def _on_block_candidate(
        self,
        registered: RegisteredQuery,
        block: Block,
        proof_cache: dict,
    ) -> Delivery | None:
        results: list[DataObject] = []
        transcript = self._descend(
            block.index_root, block.height, registered, results, proof_cache
        )
        if self.lazy:
            if not results:
                # the block as a whole had no result but no single root
                # clause either: deliver the transcript immediately — it
                # cannot aggregate with neighbours (no shared clause).
                delivery = self._lazy_delivery(
                    registered.query_id, block, [], transcript
                )
            else:
                delivery = self._lazy_delivery(
                    registered.query_id, block, results, transcript
                )
            return delivery
        return self._realtime_delivery(registered.query_id, block, results, transcript)

    # -- intra-tree descent (shared by realtime and lazy) ---------------------
    def _descend(
        self,
        node: IndexNode,
        height: int,
        registered: RegisteredQuery,
        results: list[DataObject],
        proof_cache: dict,
    ) -> VONode:
        if node.att_digest is not None:
            clause = registered.mismatch_clause(node.attrs)
            if clause is not None:
                component = (
                    node.obj.serialize()
                    if node.is_leaf
                    else children_hash(node.children)
                )
                return VOMismatchNode(
                    child_component=component,
                    att_digest=node.att_digest,
                    clause=clause,
                    proof=self._shared_proof(
                        ("node", height, id(node), clause),
                        node.attrs,
                        clause,
                        proof_cache,
                    ),
                )
            if node.is_leaf:
                results.append(node.obj)
                return VOMatchLeaf(obj=node.obj)
        return VOExpandNode(
            att_digest=node.att_digest,
            children=tuple(
                self._descend(child, height, registered, results, proof_cache)
                for child in node.children
            ),
        )

    def _shared_proof(
        self,
        key: tuple,
        attrs: Counter,
        clause: frozenset[str],
        proof_cache: dict,
    ) -> DisjointProof:
        """ProveDisjoint with cross-query sharing (IP-tree mode only)."""
        if self.use_iptree:
            proof = proof_cache.get(key)
            if proof is not None:
                if key in self._prepaid:
                    # precomputed on the pool for this consumer: counts
                    # as the one computation the serial path would do
                    self._prepaid.discard(key)
                    self.stats.proofs_computed += 1
                else:
                    self.stats.proofs_shared += 1
                return proof
        proof = self._prove_cached(attrs, clause)
        if self.use_iptree:
            proof_cache[key] = proof
        return proof

    def _collect_sites(
        self,
        node: IndexNode,
        height: int,
        registered: RegisteredQuery,
        sites: dict[tuple, tuple[Counter, frozenset[str]]],
    ) -> None:
        """Pre-walk one candidate query: record every mismatch site the
        delivery descent (:meth:`_descend`) is about to prove.

        This traversal and its key scheme MUST mirror :meth:`_descend`
        exactly (same pruning, same ``("node", height, id, clause)``
        keys) — a desync makes the per-query loop silently re-prove
        serially.  ``self._prepaid`` doubles as the tripwire: every
        prepaid key must be consumed by the end of ``process_block``,
        which the parity tests assert.
        """
        if node.att_digest is not None:
            clause = registered.mismatch_clause(node.attrs)
            if clause is not None:
                sites[("node", height, id(node), clause)] = (node.attrs, clause)
                return
            if node.is_leaf:
                return
        for child in node.children:
            self._collect_sites(child, height, registered, sites)

    def _precompute_proofs(
        self,
        block: Block,
        root_mismatch: dict[int, frozenset[str]],
        proof_cache: dict,
    ) -> None:
        """Prove a block's distinct mismatch sites on the pool, up front.

        Collects the exact keys the per-query handlers are about to
        request, deduplicates by proof *content* (coordinating with the
        persistent :class:`~repro.cache.ProofCache` so workers never
        redo a proof any path already holds), fans the rest out in one
        map, and seeds both cache layers.  The per-query loop then runs
        unchanged and finds every proof already in place; byte-for-byte
        identical deliveries, minus the serial proving.
        """
        sites: dict[tuple, tuple[Counter, frozenset[str]]] = {}
        for query_id, registered in self._queries.items():
            if block.height <= self._last_delivered[query_id]:
                continue
            clause = root_mismatch.get(query_id)
            if clause is not None:
                if self.lazy:
                    sites[("sum", block.height, clause)] = (block.attrs_sum, clause)
                else:
                    root = block.index_root
                    sites[("root", block.height, clause)] = (root.attrs, clause)
            else:
                self._collect_sites(block.index_root, block.height, registered, sites)
        if not sites:
            return

        persistent = (
            self.proof_cache
            if self.proof_cache is not None and self.proof_cache.enabled
            else None
        )
        by_content: dict[tuple, list[tuple]] = {}
        for key, (attrs, clause) in sites.items():
            content = (multiset_signature(attrs), clause)
            by_content.setdefault(content, []).append(key)

        to_compute: list[list[tuple]] = []
        for keys in by_content.values():
            attrs, clause = sites[keys[0]]
            hit = persistent.lookup(attrs, clause) if persistent else None
            if hit is not None:
                for key in keys:
                    proof_cache[key] = hit
            else:
                to_compute.append(keys)

        if to_compute:
            computed = self.pool.map_prove([sites[keys[0]] for keys in to_compute])
            self.stats.parallel_tasks += len(to_compute)
            for keys, proof in zip(to_compute, computed):
                attrs, clause = sites[keys[0]]
                if persistent is not None:
                    persistent.seed(attrs, clause, proof)
                for index, key in enumerate(keys):
                    proof_cache[key] = proof
                    # stats must mirror the serial walk: with a
                    # persistent cache, only the first consumer of a
                    # content would have computed (the rest hit the
                    # content memo → proofs_shared); without one, every
                    # distinct per-block key recomputes serially, so
                    # every consumer counts proofs_computed
                    if index == 0 or persistent is None:
                        self._prepaid.add(key)

    def _prove_cached(self, attrs: Counter, clause: frozenset[str]) -> DisjointProof:
        """ProveDisjoint through the persistent content-keyed memo, if any.

        The persistent cache is shared with the time-window query path
        by :class:`~repro.api.service.ServiceEndpoint`, so proofs flow
        both ways: a subscriber's block proof serves later historical
        queries and vice versa.
        """
        if self.proof_cache is not None and self.proof_cache.enabled:
            proof, hit = self.proof_cache.prove_disjoint(attrs, clause)
            if hit:
                self.stats.proofs_shared += 1
            else:
                self.stats.proofs_computed += 1
            return proof
        proof = compute_disjoint_proof(self.accumulator, self.encoder, attrs, clause)
        self.stats.proofs_computed += 1
        return proof

    # -- realtime deliveries ------------------------------------------------------
    def _realtime_delivery(
        self,
        query_id: int,
        block: Block,
        results: list[DataObject],
        transcript: VONode,
    ) -> Delivery:
        delivery = Delivery(
            query_id=query_id,
            from_height=block.height,
            up_to_height=block.height,
            results=results,
            vo=TimeWindowVO(entries=[VOBlock(height=block.height, root=transcript)]),
        )
        self._last_delivered[query_id] = block.height
        return delivery

    # -- lazy authentication (Algorithm 5) ------------------------------------
    def _push_pending(
        self,
        query_id: int,
        block: Block,
        clause: frozenset[str],
        sum_proof: DisjointProof,
    ) -> None:
        stack = self._pending[query_id]
        stack.append(
            _PendingBlock(
                height=block.height, clause=clause, jump=1, sum_proof=sum_proof
            )
        )
        self._compact_pending(query_id, block)

    def _compact_pending(self, query_id: int, block: Block) -> None:
        """Replace a same-clause run with one skip entry when possible."""
        stack = self._pending[query_id]
        if not stack:
            return
        top = stack[-1]
        if top.height != block.height:
            return
        for entry in sorted(block.skip_entries, key=lambda e: -e.distance):
            covered = entry.distance
            # count stack entries (newest-first) sharing the clause until
            # their jumps add up to the skip distance
            total = 0
            used = 0
            for pending in reversed(stack):
                if pending.clause != top.clause:
                    break
                total += pending.jump
                used += 1
                if total >= covered:
                    break
            if total == covered and used >= 2:
                merged = stack[len(stack) - used:]
                del stack[len(stack) - used:]
                proofs = [p.sum_proof for p in merged if p.sum_proof is not None]
                aggregated = (
                    self.accumulator.sum_proofs(proofs)
                    if len(proofs) == used
                    else None
                )
                stack.append(
                    _PendingBlock(
                        height=block.height,
                        clause=top.clause,
                        jump=covered,
                        sum_proof=aggregated,
                    )
                )
                return

    def _lazy_delivery(
        self,
        query_id: int,
        block: Block,
        results: list[DataObject],
        transcript: VONode,
    ) -> Delivery:
        entries: list[VOBlock | VOSkip] = [
            VOBlock(height=block.height, root=transcript)
        ]
        entries.extend(self._drain_pending(query_id))
        delivery = Delivery(
            query_id=query_id,
            from_height=self._last_delivered[query_id] + 1,
            up_to_height=block.height,
            results=results,
            vo=TimeWindowVO(entries=entries),
        )
        self._last_delivered[query_id] = block.height
        return delivery

    def _drain_pending(self, query_id: int) -> list[VOBlock | VOSkip]:
        """Convert the pending stack into VO entries (newest → oldest)."""
        entries: list[VOBlock | VOSkip] = []
        stack = self._pending[query_id]
        for pending in reversed(stack):
            block = self._blocks[pending.height]
            if pending.jump > 1:
                entry = next(
                    e for e in block.skip_entries if e.distance == pending.jump
                )
                proof = pending.sum_proof
                if proof is None:
                    proof = self._prove_cached(entry.attrs, pending.clause)
                siblings = tuple(
                    (other.distance, other.entry_hash(self.accumulator.backend))
                    for other in block.skip_entries
                    if other.distance != entry.distance
                )
                entries.append(
                    VOSkip(
                        height=pending.height,
                        distance=pending.jump,
                        att_digest=entry.att_digest,
                        clause=pending.clause,
                        proof=proof,
                        sibling_hashes=siblings,
                    )
                )
            else:
                root = block.index_root
                component = (
                    root.obj.serialize()
                    if root.is_leaf
                    else children_hash(root.children)
                )
                proof = self._prove_cached(root.attrs, pending.clause)
                entries.append(
                    VOBlock(
                        height=pending.height,
                        root=VOMismatchNode(
                            child_component=component,
                            att_digest=root.att_digest,
                            clause=pending.clause,
                            proof=proof,
                        ),
                    )
                )
        stack.clear()
        return entries

    @staticmethod
    def _pending_top_height(entries: list[VOBlock | VOSkip]) -> int:
        return max(entry.height for entry in entries)
