"""User-side subscription verification.

A light-node subscriber tracks, per registered query, the next block
height it expects evidence for.  Every delivery must cover a contiguous
run starting exactly there — a gap means the SP withheld a block, an
overlap means it is replaying old evidence — and the run's VO is
replayed with the standard :class:`QueryVerifier` machinery.
"""

from __future__ import annotations

from repro.accumulators.base import MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.light import LightNode
from repro.chain.miner import ProtocolParams
from repro.chain.object import DataObject
from repro.core.query import SubscriptionQuery
from repro.core.verifier import QueryVerifier, VerifyStats
from repro.errors import SubscriptionError, VerificationError
from repro.subscribe.engine import Delivery


class SubscriptionClient:
    """Verifies the SP's subscription deliveries for one light node."""

    def __init__(
        self,
        light: LightNode,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
    ) -> None:
        self.light = light
        self.verifier = QueryVerifier(light, accumulator, encoder, params)
        self.params = params
        self._queries: dict[int, SubscriptionQuery] = {}
        self._next_height: dict[int, int] = {}

    def track(
        self, query_id: int, query: SubscriptionQuery, since_height: int = 0
    ) -> None:
        """Mirror a registration made with the SP's engine."""
        if query_id in self._queries:
            raise SubscriptionError(f"query {query_id} is already tracked")
        self._queries[query_id] = query
        self._next_height[query_id] = since_height

    def untrack(self, query_id: int) -> None:
        self._queries.pop(query_id, None)
        self._next_height.pop(query_id, None)

    def on_delivery(self, delivery: Delivery) -> tuple[list[DataObject], VerifyStats]:
        """Verify one delivery; raises VerificationError when forged."""
        query = self._queries.get(delivery.query_id)
        if query is None:
            raise SubscriptionError(f"delivery for untracked query {delivery.query_id}")
        expected = self._next_height[delivery.query_id]
        if delivery.from_height != expected:
            raise VerificationError(
                f"delivery starts at height {delivery.from_height}, expected {expected}"
            )
        if delivery.up_to_height < delivery.from_height:
            raise VerificationError("delivery covers an empty height range")
        if delivery.up_to_height >= len(self.light):
            raise VerificationError("delivery claims blocks beyond the light chain")
        verified, stats = self.verifier.verify_over_heights(
            query, delivery.heights(), delivery.results, delivery.vo
        )
        self._next_height[delivery.query_id] = delivery.up_to_height + 1
        return verified, stats

    def next_height(self, query_id: int) -> int:
        return self._next_height[query_id]
