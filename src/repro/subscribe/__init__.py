"""Verifiable subscription queries (paper Section 7)."""

from repro.subscribe.client import SubscriptionClient
from repro.subscribe.engine import Delivery, EngineStats, SubscriptionEngine
from repro.subscribe.iptree import IPNode, IPTree, RegisteredQuery, register_query

__all__ = [
    "Delivery",
    "EngineStats",
    "IPNode",
    "IPTree",
    "RegisteredQuery",
    "SubscriptionClient",
    "SubscriptionEngine",
    "register_query",
]
