"""Inverted prefix tree over subscription queries (Section 7.1, Alg 6).

The IP-Tree indexes *queries* (not data): a grid tree over the numeric
space where each node carries two inverted files —

* **RCIF** (range-condition inverted file): every query whose numeric
  range intersects the node's cell, tagged ``full`` or ``partial``;
* **BCIF** (Boolean-condition inverted file): for full-cover queries,
  a map from each CNF clause (equivalence set) to the queries sharing
  it, so one clause test — and one disjointness proof — serves all of
  them.

``classify`` evaluates a super-object (an intra-index node's attribute
multiset) against every registered query in one traversal, following
the object's grid path.  Full-cover queries met on the path are
numeric-matches and only need their BCIF clauses tested; queries never
met on any intersecting cell mismatch numerically.  Partial-cover
queries at the leaves fall back to direct per-dimension clause tests
(also the behaviour past the depth threshold, matching the paper's
"switch back" rule).  Whatever the path taken, a reported mismatch
clause is always one of the *query's own* transformed CNF clauses, so
downstream proofs verify under the standard contract.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import product

from repro.core.query import SubscriptionQuery
from repro.errors import SubscriptionError

Cell = tuple[tuple[int, int], ...]  # per-dimension inclusive (lo, hi)


@dataclass
class RegisteredQuery:
    """A subscription with its transformation pre-computed."""

    query_id: int
    query: SubscriptionQuery
    numeric_clauses: tuple[frozenset[str], ...]
    boolean_clauses: tuple[frozenset[str], ...]

    @property
    def all_clauses(self) -> tuple[frozenset[str], ...]:
        return self.numeric_clauses + self.boolean_clauses

    def mismatch_clause(self, attrs: Counter) -> frozenset[str] | None:
        """First clause (numeric then Boolean) disjoint from ``attrs``."""
        for clause in self.all_clauses:
            if not any(element in attrs for element in clause):
                return clause
        return None


def register_query(
    query_id: int, query: SubscriptionQuery, bits: int
) -> RegisteredQuery:
    """Pre-transform a subscription for engine/IP-tree consumption."""
    numeric = query.numeric.to_cnf(bits).clauses if query.numeric is not None else ()
    return RegisteredQuery(
        query_id=query_id,
        query=query,
        numeric_clauses=tuple(numeric),
        boolean_clauses=tuple(query.boolean.clauses),
    )


@dataclass
class IPNode:
    """One grid cell with its inverted files."""

    cell: Cell
    depth: int
    rcif: dict[int, bool] = field(default_factory=dict)  # qid -> is_full_cover
    bcif: dict[frozenset[str], set[int]] = field(default_factory=dict)
    children: list["IPNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def partial_queries(self) -> list[int]:
        return [qid for qid, full in self.rcif.items() if not full]


class IPTree:
    """The inverted prefix tree (quad/2^d-ary grid over queries)."""

    def __init__(self, dims: int, bits: int, max_depth: int = 6) -> None:
        if dims < 1:
            raise SubscriptionError("IP-tree needs at least one dimension")
        self.dims = dims
        self.bits = bits
        self.max_depth = min(max_depth, bits)
        span = (0, (1 << bits) - 1)
        self.root = IPNode(cell=tuple(span for _ in range(dims)), depth=0)
        self._queries: dict[int, RegisteredQuery] = {}

    # -- registration (Algorithm 6, incremental form) --------------------
    def insert(self, registered: RegisteredQuery) -> None:
        if registered.query_id in self._queries:
            raise SubscriptionError(f"query {registered.query_id} already registered")
        self._queries[registered.query_id] = registered
        self._insert_at(self.root, registered)

    def remove(self, query_id: int) -> RegisteredQuery:
        registered = self._queries.pop(query_id, None)
        if registered is None:
            raise SubscriptionError(f"query {query_id} is not registered")
        self._remove_at(self.root, registered)
        return registered

    def __len__(self) -> int:
        return len(self._queries)

    @property
    def queries(self) -> dict[int, RegisteredQuery]:
        return self._queries

    def _query_range(self, registered: RegisteredQuery) -> Cell:
        numeric = registered.query.numeric
        if numeric is None:
            return self.root.cell
        span = (0, (1 << self.bits) - 1)
        bounds = list(zip(numeric.low, numeric.high))
        # ranges narrower than the grid dimensionality cover the rest fully
        bounds += [span] * (self.dims - len(bounds))
        return tuple(bounds[: self.dims])

    @staticmethod
    def _cover(query_range: Cell, cell: Cell) -> str:
        """'full' / 'partial' / 'none' relation of a range over a cell."""
        full = True
        for (qlo, qhi), (clo, chi) in zip(query_range, cell):
            if qhi < clo or qlo > chi:
                return "none"
            if qlo > clo or qhi < chi:
                full = False
        return "full" if full else "partial"

    def _split(self, node: IPNode) -> None:
        halves = []
        for lo, hi in node.cell:
            mid = (lo + hi) // 2
            halves.append(((lo, mid), (mid + 1, hi)))
        for combo in product(*halves):
            node.children.append(IPNode(cell=tuple(combo), depth=node.depth + 1))
        # push existing partial queries down (full ones stay at this node)
        for qid in node.partial_queries():
            registered = self._queries[qid]
            for child in node.children:
                self._insert_at(child, registered)

    def _insert_at(self, node: IPNode, registered: RegisteredQuery) -> None:
        cover = self._cover(self._query_range(registered), node.cell)
        if cover == "none":
            return
        if cover == "full":
            node.rcif[registered.query_id] = True
            for clause in registered.boolean_clauses:
                node.bcif.setdefault(clause, set()).add(registered.query_id)
            return
        node.rcif[registered.query_id] = False
        if node.is_leaf and node.depth < self.max_depth:
            self._split(node)
        for child in node.children:
            self._insert_at(child, registered)

    def _remove_at(self, node: IPNode, registered: RegisteredQuery) -> None:
        if node.rcif.pop(registered.query_id, None) is None:
            return
        for clause in registered.boolean_clauses:
            members = node.bcif.get(clause)
            if members is not None:
                members.discard(registered.query_id)
                if not members:
                    del node.bcif[clause]
        for child in node.children:
            self._remove_at(child, registered)

    # -- classification (Algorithm 7) ---------------------------------------
    def _cell_token(self, node: IPNode) -> list[str] | None:
        """Per-dimension prefix tokens identifying the cell, or None at root."""
        if node.depth == 0:
            return None
        tokens = []
        for dim, (lo, _hi) in enumerate(node.cell):
            prefix = format(lo, f"0{self.bits}b")[: node.depth]
            star = "*" if node.depth < self.bits else ""
            tokens.append(f"{dim}:{prefix}{star}")
        return tokens

    def _intersects(self, node: IPNode, attrs: Counter) -> bool:
        """Could the super-object contain a value inside this cell?"""
        tokens = self._cell_token(node)
        if tokens is None:
            return True
        return all(token in attrs for token in tokens)

    def classify(
        self, attrs: Counter
    ) -> tuple[dict[int, frozenset[str]], set[int]]:
        """Classify every registered query against a super-object.

        Returns ``(mismatches, candidates)``: ``mismatches`` maps query
        id → the CNF clause proven disjoint; ``candidates`` are queries
        that may match and need deeper intra-index descent (or are
        matches, at a leaf).
        """
        mismatches: dict[int, frozenset[str]] = {}
        candidates: set[int] = set()
        seen: set[int] = set()
        # cache clause→disjoint verdicts so BCIF sharing pays off
        clause_disjoint: dict[frozenset[str], bool] = {}

        def disjoint(clause: frozenset[str]) -> bool:
            verdict = clause_disjoint.get(clause)
            if verdict is None:
                verdict = not any(element in attrs for element in clause)
                clause_disjoint[clause] = verdict
            return verdict

        stack = [self.root]
        while stack:
            node = stack.pop()
            if not self._intersects(node, attrs):
                continue
            for qid, full in node.rcif.items():
                if qid in seen:
                    continue
                if full:
                    seen.add(qid)
                    registered = self._queries[qid]
                    clause = next(
                        (c for c in registered.boolean_clauses if disjoint(c)), None
                    )
                    if clause is not None:
                        mismatches[qid] = clause
                    else:
                        candidates.add(qid)
                elif node.is_leaf:
                    seen.add(qid)
                    registered = self._queries[qid]
                    clause = next(
                        (c for c in registered.all_clauses if disjoint(c)), None
                    )
                    if clause is not None:
                        mismatches[qid] = clause
                    else:
                        candidates.add(qid)
            stack.extend(node.children)

        # queries on no intersecting cell mismatch numerically
        for qid, registered in self._queries.items():
            if qid in seen:
                continue
            clause = registered.mismatch_clause(attrs)
            if clause is None:
                # conservative: prefix-token intersection said "no cell",
                # but clause-level tests cannot prove it — keep candidate.
                candidates.add(qid)
            else:
                mismatches[qid] = clause
        return mismatches, candidates
