"""Blocks and headers (paper Figs 2, 4, 6, 7).

The header carries everything a light node stores: linkage hash,
timestamp, consensus nonce, the Merkle/intra-index root (which binds
both ObjectHash and every AttDigest), and the skip-list root of the
inter-block index.  Header hashes chain blocks immutably; full nodes
additionally hold the object payload and the materialised index trees.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.accumulators.base import AccumulatorValue
from repro.chain.object import DataObject
from repro.crypto.hashing import DIGEST_NBYTES, digest
from repro.index.intra import IndexNode, encode_digest

#: Placeholder for "no previous block" / "no skip list".
ZERO_HASH = b"\x00" * DIGEST_NBYTES


@dataclass(frozen=True)
class BlockHeader:
    """The light-node view of a block."""

    height: int
    prev_hash: bytes
    timestamp: int
    merkle_root: bytes
    skiplist_root: bytes = ZERO_HASH
    nonce: int = 0

    def core_bytes(self) -> bytes:
        """Everything the consensus nonce commits to."""
        return digest(
            self.height.to_bytes(8, "big"),
            self.prev_hash,
            self.timestamp.to_bytes(8, "big"),
            self.merkle_root,
            self.skiplist_root,
        )

    def block_hash(self) -> bytes:
        """``PreBkHash`` of the next block."""
        return digest(self.core_bytes(), self.nonce.to_bytes(8, "big"))

    def nbytes(self) -> int:
        """Header wire size (drives light-node storage accounting)."""
        return 8 + DIGEST_NBYTES + 8 + DIGEST_NBYTES + (
            DIGEST_NBYTES if self.skiplist_root != ZERO_HASH else 0
        ) + 8


@dataclass(frozen=True)
class SkipEntry:
    """One inter-block skip: summarises the last ``distance`` blocks.

    ``attrs`` is the multiset *sum* over the covered blocks (the paper
    uses summation so acc2 can aggregate), ``att_digest`` its
    accumulator value, and ``pre_skipped_hash`` binds the identity of
    the covered blocks (their header hashes and this block's own
    Merkle root).
    """

    distance: int
    covered_heights: tuple[int, ...]
    attrs: Counter
    att_digest: AccumulatorValue
    pre_skipped_hash: bytes

    def entry_hash(self, backend) -> bytes:
        return digest(self.pre_skipped_hash, encode_digest(backend, self.att_digest))


def skiplist_root_hash(entries: list[SkipEntry], backend) -> bytes:
    """``SkipListRoot = H(hash_L1 | hash_L2 | ...)`` (ZERO if no entries)."""
    if not entries:
        return ZERO_HASH
    return digest(*(entry.entry_hash(backend) for entry in entries))


@dataclass
class Block:
    """Full-node view: header + payload + materialised ADS."""

    header: BlockHeader
    objects: list[DataObject]
    index_root: IndexNode
    skip_entries: list[SkipEntry] = field(default_factory=list)
    #: multiset sum over all objects (feeds skip entries of later blocks)
    attrs_sum: Counter = field(default_factory=Counter)
    #: accumulator value of ``attrs_sum`` (acc2 reuses it incrementally)
    sum_digest: AccumulatorValue | None = None

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def timestamp(self) -> int:
        return self.header.timestamp
