"""ADS storage accounting (Table 1's "S" column, Fig 16's block size).

The ADS overhead of a block is everything the vChain scheme adds on top
of a vanilla blockchain: the per-node attribute digests of the
intra-block tree (and the extra node hashes for internal nodes beyond
a plain Merkle tree's), plus the skip-list entries of the inter-block
index.
"""

from __future__ import annotations

from repro.chain.block import Block
from repro.crypto.hashing import DIGEST_NBYTES
from repro.index.intra import IndexNode


def tree_ads_nbytes(root: IndexNode, backend) -> int:
    """Digest bytes stored across the intra tree (leaves + internals)."""
    total = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node.att_digest is not None:
            total += node.att_digest.nbytes(backend)
        stack.extend(node.children)
    return total


def skiplist_ads_nbytes(block: Block, backend) -> int:
    """Skip entry storage: digest + covered-blocks hash per entry."""
    return sum(
        entry.att_digest.nbytes(backend) + DIGEST_NBYTES
        for entry in block.skip_entries
    )


def block_ads_nbytes(block: Block, backend) -> int:
    """Total ADS overhead of one block."""
    return tree_ads_nbytes(block.index_root, backend) + skiplist_ads_nbytes(
        block, backend
    )


def raw_block_nbytes(block: Block) -> int:
    """Size of the vanilla block payload (objects + plain Merkle)."""
    object_bytes = sum(obj.nbytes() for obj in block.objects)
    merkle_bytes = (2 * len(block.objects) - 1) * DIGEST_NBYTES
    return object_bytes + merkle_bytes + 64  # header fields
