"""Temporal data objects (paper Section 3).

Each object is ``o_i = ⟨t_i, V_i, W_i⟩``: a timestamp, a vector of
numerical attributes, and a set-valued attribute.  The range→set
transform (Section 5.3) turns ``V_i`` into binary-prefix elements, so
the object's *unified* attribute multiset is ``W'_i = trans(V_i) + W_i``
and every query reduces to CNF set-matching against ``W'_i``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.rangetrans import value_prefix_set
from repro.crypto.hashing import digest
from repro.errors import QueryError


@dataclass(frozen=True)
class DataObject:
    """One timestamped record stored in a block.

    ``vector`` components must be quantised integers in ``[0, 2^bits)``
    for whatever prefix width ``bits`` the deployment uses; datasets are
    responsible for quantisation (see :mod:`repro.datasets`).
    """

    object_id: int
    timestamp: int
    vector: tuple[int, ...]
    keywords: frozenset[str] = field(default_factory=frozenset)

    def attribute_multiset(self, bits: int) -> Counter:
        """``W' = trans(V) + W`` — the unified set-valued attribute."""
        attrs: Counter = Counter()
        for dim, value in enumerate(self.vector):
            for prefix in value_prefix_set(value, bits, dim):
                attrs[prefix] += 1
        for keyword in self.keywords:
            attrs[keyword] += 1
        return attrs

    def serialize(self) -> bytes:
        """Canonical byte encoding (input to ObjectHash)."""
        parts = [
            self.object_id.to_bytes(8, "big"),
            self.timestamp.to_bytes(8, "big"),
            len(self.vector).to_bytes(2, "big"),
        ]
        for value in self.vector:
            if value < 0:
                raise QueryError("vector components must be non-negative")
            parts.append(value.to_bytes(8, "big"))
        for keyword in sorted(self.keywords):
            parts.append(keyword.encode("utf-8"))
        return digest(*parts)

    def nbytes(self) -> int:
        """Approximate wire size of the raw object (for VO accounting)."""
        return 16 + 8 * len(self.vector) + sum(len(k) for k in self.keywords)
