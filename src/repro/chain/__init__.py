"""Blockchain substrate: objects, blocks, consensus, miner, light node."""

from repro.chain.block import Block, BlockHeader, SkipEntry, ZERO_HASH
from repro.chain.chain import Blockchain
from repro.chain.consensus import check_nonce, solve_nonce
from repro.chain.light import LightNode
from repro.chain.miner import MODES, Miner, ProtocolParams
from repro.chain.object import DataObject

__all__ = [
    "Block",
    "BlockHeader",
    "Blockchain",
    "DataObject",
    "LightNode",
    "MODES",
    "Miner",
    "ProtocolParams",
    "SkipEntry",
    "ZERO_HASH",
    "check_nonce",
    "solve_nonce",
]
