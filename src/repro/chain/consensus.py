"""Simulated Proof-of-Work consensus (paper Section 2).

``ConsProof`` is a nonce with ``H(core | nonce) ≤ Z`` where ``Z``
encodes the mining difficulty as a number of leading zero bits.  The
ADS design is deliberately consensus-independent (that is one of the
paper's compatibility claims), so this module is small and swappable;
benchmarks run with ``difficulty_bits=0`` to keep mining off the
measured path, integration tests run with a real non-zero difficulty.
"""

from __future__ import annotations

from repro.crypto.hashing import digest
from repro.errors import ChainError

#: Upper bound so a pathological difficulty cannot hang tests forever.
_MAX_ATTEMPTS = 1 << 28


def solve_nonce(core: bytes, difficulty_bits: int) -> int:
    """Find the smallest nonce satisfying the difficulty target."""
    if difficulty_bits < 0 or difficulty_bits > 64:
        raise ChainError("difficulty must be within [0, 64] bits")
    if difficulty_bits == 0:
        return 0
    target = 1 << (256 - difficulty_bits)
    for nonce in range(_MAX_ATTEMPTS):
        attempt = digest(core, nonce.to_bytes(8, "big"))
        if int.from_bytes(attempt, "big") < target:
            return nonce
    raise ChainError("exhausted nonce search space")


def check_nonce(core: bytes, nonce: int, difficulty_bits: int) -> bool:
    """Verify a consensus proof."""
    if difficulty_bits == 0:
        return True
    target = 1 << (256 - difficulty_bits)
    attempt = digest(core, nonce.to_bytes(8, "big"))
    return int.from_bytes(attempt, "big") < target
