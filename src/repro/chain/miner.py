"""The miner: builds blocks with embedded ADS (paper Sections 5–6).

The miner is a full node that, for each batch of objects, constructs
the intra-block tree (flat or Jaccard-clustered), the inter-block skip
entries, seals the header with a consensus nonce, and appends the block
to the chain.  ``ProtocolParams`` captures every deployment knob the
paper varies in its evaluation (index mode, accumulator, skip-list
size, prefix width).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.accumulators.base import MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.block import Block, BlockHeader, ZERO_HASH, skiplist_root_hash
from repro.chain.chain import Blockchain
from repro.chain.consensus import solve_nonce
from repro.chain.object import DataObject
from repro.errors import ChainError
from repro.index.inter import build_skip_entries
from repro.index.intra import build_flat_tree, build_intra_tree

#: Valid index configurations, in the paper's vocabulary.
MODES = ("nil", "intra", "both")


@dataclass(frozen=True)
class ProtocolParams:
    """Deployment parameters shared by miner, SP and user."""

    mode: str = "both"
    bits: int = 8
    skip_size: int = 5
    skip_base: int = 4
    difficulty_bits: int = 0
    clustered: bool = True

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ChainError(
                f"unknown index mode {self.mode!r}; expected one of {MODES}"
            )
        if self.bits < 1:
            raise ChainError("prefix width must be >= 1 bit")
        if self.skip_size < 0:
            raise ChainError("skip size must be >= 0")


class Miner:
    """Constructs consensus proofs and ADS-augmented blocks."""

    def __init__(
        self,
        chain: Blockchain,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
        pool=None,
    ) -> None:
        """``pool`` is an optional :class:`~repro.parallel.CryptoPool`:
        the per-node ``AttDigest`` commits of each mined block fan out
        across its workers (blocks stay byte-identical to serial
        mining — every digest is a pure function of its multiset)."""
        self.chain = chain
        self.accumulator = accumulator
        self.encoder = encoder
        self.params = params
        self.pool = pool

    def mine_block(self, objects: list[DataObject], timestamp: int) -> Block:
        """Build, seal, append and return the next block."""
        if not objects:
            raise ChainError("refusing to mine an empty block")
        params = self.params
        if params.mode == "nil":
            root = build_flat_tree(
                objects, self.accumulator, self.encoder, params.bits, pool=self.pool
            )
        else:
            root = build_intra_tree(
                objects,
                self.accumulator,
                self.encoder,
                params.bits,
                clustered=params.clustered,
                pool=self.pool,
            )

        attrs_sum: Counter = Counter()
        for leaf in root.iter_leaves():
            attrs_sum.update(leaf.attrs)
        if self.accumulator.supports_aggregation:
            sum_digest = self.accumulator.sum_values(
                [leaf.att_digest for leaf in root.iter_leaves()]
            )
        else:
            sum_digest = self.accumulator.accumulate(
                self.encoder.encode_multiset(attrs_sum)
            )

        skip_entries = []
        if params.mode == "both" and params.skip_size > 0:
            skip_entries = build_skip_entries(
                list(self.chain),
                root.node_hash,
                attrs_sum,
                sum_digest,
                self.accumulator,
                self.encoder,
                size=params.skip_size,
                base=params.skip_base,
            )

        tip = self.chain.tip
        header = BlockHeader(
            height=len(self.chain),
            prev_hash=tip.header.block_hash() if tip else ZERO_HASH,
            timestamp=timestamp,
            merkle_root=root.node_hash,
            skiplist_root=skiplist_root_hash(skip_entries, self.accumulator.backend),
        )
        nonce = solve_nonce(header.core_bytes(), params.difficulty_bits)
        header = BlockHeader(
            height=header.height,
            prev_hash=header.prev_hash,
            timestamp=header.timestamp,
            merkle_root=header.merkle_root,
            skiplist_root=header.skiplist_root,
            nonce=nonce,
        )
        block = Block(
            header=header,
            objects=list(objects),
            index_root=root,
            skip_entries=skip_entries,
            attrs_sum=attrs_sum,
            sum_digest=sum_digest,
        )
        self.chain.append(block)
        return block
