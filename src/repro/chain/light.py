"""Light node: header-only chain replica (paper Fig 1).

The query user runs a light node.  It syncs block headers from the
network (modelled here as reading them from any full node's chain),
re-validates linkage and consensus proofs — a light node must not trust
the full node it syncs from — and serves headers to the verifier.
"""

from __future__ import annotations

from repro.chain.block import BlockHeader, ZERO_HASH
from repro.chain.chain import Blockchain
from repro.chain.consensus import check_nonce
from repro.errors import ChainError


class LightNode:
    """Stores and validates block headers only."""

    def __init__(self, difficulty_bits: int = 0) -> None:
        self.difficulty_bits = difficulty_bits
        self._headers: list[BlockHeader] = []

    def sync(self, source: Blockchain | list[BlockHeader]) -> int:
        """Ingest new headers; returns how many were appended."""
        headers = source.headers() if isinstance(source, Blockchain) else source
        appended = 0
        for header in headers[len(self._headers):]:
            self.append_header(header)
            appended += 1
        return appended

    def append_header(self, header: BlockHeader) -> None:
        if header.height != len(self._headers):
            raise ChainError("header height does not extend the light chain")
        expected_prev = self._headers[-1].block_hash() if self._headers else ZERO_HASH
        if header.prev_hash != expected_prev:
            raise ChainError("header prev_hash mismatch during light sync")
        if not check_nonce(header.core_bytes(), header.nonce, self.difficulty_bits):
            raise ChainError("header consensus proof invalid")
        self._headers.append(header)

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._headers)

    def header(self, height: int) -> BlockHeader:
        if not 0 <= height < len(self._headers):
            raise ChainError(f"light node has no header at height {height}")
        return self._headers[height]

    def headers(self) -> list[BlockHeader]:
        return list(self._headers)

    def heights_in_window(self, start: int, end: int) -> list[int]:
        return [
            header.height
            for header in self._headers
            if start <= header.timestamp <= end
        ]

    def storage_nbytes(self) -> int:
        """Total header storage (the paper reports 800/960 bits/header)."""
        return sum(header.nbytes() for header in self._headers)
