"""The blockchain container shared by full nodes.

An append-only, validated sequence of blocks.  The chain layer owns
*validation* — header linkage, monotone timestamps, consensus-proof
checking, and the ``merkle_root`` binding over the intra-index tree —
and delegates *storage* to a pluggable
:class:`~repro.storage.store.BlockStore`: in-memory by default, or the
durable file backend from :mod:`repro.storage` so a service provider
survives restarts.  A store handed in with existing blocks (a reopened
chain directory) is **re-validated block by block** before the chain
accepts it, so recovery gives the same guarantees as having appended
every block live.

Window selection by timestamp serves the time-window query path; the
headers view feeds light nodes.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.chain.block import Block, BlockHeader, ZERO_HASH
from repro.chain.consensus import check_nonce
from repro.errors import ChainError


class Blockchain:
    """An append-only, validated sequence of blocks."""

    def __init__(self, difficulty_bits: int = 0, store=None) -> None:
        # imported here, not at module level: repro.storage's bootstrap
        # helpers import this module back
        from repro.storage.store import MemoryBlockStore

        self.difficulty_bits = difficulty_bits
        self.store = store if store is not None else MemoryBlockStore()
        self._revalidate()

    # -- validation ---------------------------------------------------------
    def _check_block(self, block: Block, prev: Block | None, height: int) -> None:
        """Every structural invariant one block must satisfy."""
        header = block.header
        if header.height != height:
            raise ChainError(
                f"height {header.height} does not extend chain of length {height}"
            )
        expected_prev = prev.header.block_hash() if prev else ZERO_HASH
        if header.prev_hash != expected_prev:
            raise ChainError("prev_hash does not match the chain tip")
        if prev is not None and header.timestamp < prev.header.timestamp:
            raise ChainError("block timestamp regressed")
        if not check_nonce(header.core_bytes(), header.nonce, self.difficulty_bits):
            raise ChainError("consensus proof invalid")
        if header.merkle_root != block.index_root.node_hash:
            raise ChainError("header merkle_root does not bind the index tree")

    def _revalidate(self) -> None:
        """Re-run every append-time check over a store's existing blocks."""
        prev: Block | None = None
        for height, block in enumerate(self.store):
            try:
                self._check_block(block, prev, height)
            except ChainError as exc:
                raise ChainError(f"recovered block {height} is invalid: {exc}") from exc
            prev = block

    # -- mutation -----------------------------------------------------------
    def append(self, block: Block) -> None:
        self._check_block(block, self.tip, len(self.store))
        self.store.append(block)

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.store)

    def block(self, height: int) -> Block:
        if not 0 <= height < len(self.store):
            raise ChainError(f"no block at height {height}")
        return self.store.block(height)

    @property
    def tip(self) -> Block | None:
        length = len(self.store)
        return self.store.block(length - 1) if length else None

    def headers(self) -> list[BlockHeader]:
        """Everything a light node syncs."""
        return [block.header for block in self.store]

    def heights_in_window(self, start: int, end: int) -> list[int]:
        """Heights of blocks whose timestamp falls in ``[start, end]``."""
        return [
            block.header.height
            for block in self.store
            if start <= block.header.timestamp <= end
        ]

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the backing store (no-op for memory)."""
        self.store.close()
