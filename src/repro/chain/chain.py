"""The blockchain container shared by full nodes.

Append-only list of blocks with structural validation: header linkage,
monotone timestamps, and consensus-proof checking.  Window selection by
timestamp serves the time-window query path; the headers view feeds
light nodes.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.chain.block import Block, BlockHeader, ZERO_HASH
from repro.chain.consensus import check_nonce
from repro.errors import ChainError


class Blockchain:
    """An append-only, validated sequence of blocks."""

    def __init__(self, difficulty_bits: int = 0) -> None:
        self.difficulty_bits = difficulty_bits
        self._blocks: list[Block] = []

    # -- mutation -----------------------------------------------------------
    def append(self, block: Block) -> None:
        header = block.header
        if header.height != len(self._blocks):
            raise ChainError(
                f"height {header.height} does not extend chain of length {len(self._blocks)}"
            )
        expected_prev = self._blocks[-1].header.block_hash() if self._blocks else ZERO_HASH
        if header.prev_hash != expected_prev:
            raise ChainError("prev_hash does not match the chain tip")
        if self._blocks and header.timestamp < self._blocks[-1].header.timestamp:
            raise ChainError("block timestamp regressed")
        if not check_nonce(header.core_bytes(), header.nonce, self.difficulty_bits):
            raise ChainError("consensus proof invalid")
        if header.merkle_root != block.index_root.node_hash:
            raise ChainError("header merkle_root does not bind the index tree")
        self._blocks.append(block)

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def block(self, height: int) -> Block:
        if not 0 <= height < len(self._blocks):
            raise ChainError(f"no block at height {height}")
        return self._blocks[height]

    @property
    def tip(self) -> Block | None:
        return self._blocks[-1] if self._blocks else None

    def headers(self) -> list[BlockHeader]:
        """Everything a light node syncs."""
        return [block.header for block in self._blocks]

    def heights_in_window(self, start: int, end: int) -> list[int]:
        """Heights of blocks whose timestamp falls in ``[start, end]``."""
        return [
            block.header.height
            for block in self._blocks
            if start <= block.header.timestamp <= end
        ]
