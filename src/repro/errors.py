"""Exception hierarchy for the vChain reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing verification failures (the security-critical path)
from plain usage errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class CryptoError(ReproError):
    """A cryptographic operation received invalid inputs."""


class KeyCapacityError(CryptoError):
    """A multiset exceeds the capacity ``q`` of the published public key."""


class NotDisjointError(CryptoError):
    """``ProveDisjoint`` was called on multisets that intersect."""


class AggregationError(CryptoError):
    """``Sum``/``ProofSum`` aggregation preconditions were violated."""


class VerificationError(ReproError):
    """A verification object failed to authenticate the claimed results.

    Raising (rather than returning ``False``) is reserved for structural
    failures; boolean verdicts are returned by ``verify_*`` helpers.  The
    message always names the check that failed, because a light node
    operator needs to know *why* an SP response was rejected.
    """


class ChainError(ReproError):
    """Blockchain structural invariant violated (bad header linkage etc.)."""


class QueryError(ReproError):
    """Malformed query (empty CNF, inverted range bounds, etc.)."""


class StorageError(ReproError):
    """Durable block storage failed (bad manifest, unrecoverable log)."""


class ParallelError(ReproError):
    """The crypto worker pool failed (dead worker, use after shutdown)."""


class SubscriptionError(ReproError):
    """Subscription lifecycle misuse (double registration, unknown id)."""


class ServerBusyError(ReproError):
    """The server refused the request under load (admission gate or
    per-client rate limit).  Deliberately cheap to produce: the request
    was rejected *before* any proving work, so a client seeing this
    should back off and retry rather than assume the answer is wrong.
    """


class DeadlineExpiredError(ReproError):
    """The request's deadline lapsed before its response could be sent.

    The deadline travels with the request (see
    :class:`~repro.wire.EnvelopeRequest`); the server checks it both
    before starting the work and after the work completes, so a reply
    that would arrive uselessly late is replaced by this error.
    """
