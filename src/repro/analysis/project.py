"""The project index: every source module parsed once, plus the
cross-module resolution the rules share.

Rules never touch the filesystem or ``ast.parse`` themselves — they
receive one :class:`ProjectIndex` and query it.  The index provides the
three resolution capabilities the checkers need beyond a single file's
AST:

* **symbol resolution** — follow ``from x import y`` chains (and the
  PEP 562 ``_EXPORTS`` lazy-export table of :mod:`repro.core`) to the
  defining module, so an annotation like ``VONode`` resolves to the
  union alias in :mod:`repro.core.vo` and from there to its member
  classes;
* **dataclass fields** — field lists *including inherited ones*
  (``TimeWindowQuery`` adds ``start``/``end`` to the ``numeric``/
  ``boolean`` it inherits from ``Query``), in dataclass ``__init__``
  order so positional constructor calls map correctly;
* **the class graph** — a subclass index over every top-level class, so
  conformance and pickle-reachability checks can close over
  "every project subclass of X".

Everything is resolved statically from the ASTs; nothing is imported.
That keeps the analyzer runnable on broken code and free of import
side effects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

#: recursion cap on import chains / alias indirection / base chains
_MAX_DEPTH = 20


@dataclass
class Module:
    """One parsed source file."""

    name: str
    path: Path
    rel: str
    tree: ast.Module
    lines: list[str]

    @property
    def is_package(self) -> bool:
        return self.path.name == "__init__.py"


def is_dataclass_def(classdef: ast.ClassDef) -> bool:
    for decorator in classdef.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "ClassVar"
    return isinstance(annotation, ast.Name) and annotation.id == "ClassVar"


class ProjectIndex:
    """Parsed view of one source tree, with cross-module resolution.

    ``root`` is the project root; sources are read from ``root/src``
    when that directory exists (the repo layout) and from ``root``
    itself otherwise (test fixtures).  Files that fail to parse are
    skipped — the analyzer reports on what it can read rather than
    dying on a syntax error a linter already catches.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root).resolve()
        src = self.root / "src"
        self.source_root = src if src.is_dir() else self.root
        self.modules: dict[str, Module] = {}
        self._file_lines: dict[str, list[str]] = {}
        self._imports: dict[str, dict[str, tuple[str, str | None]]] = {}
        self._class_by_key: dict[tuple[str, str], tuple[Module, ast.ClassDef]] = {}
        self._subclass_index: dict[tuple[str, str], set[tuple[str, str]]] | None = None
        self._load()

    def _load(self) -> None:
        for path in sorted(self.source_root.rglob("*.py")):
            parts = path.relative_to(self.source_root).parts
            if any(part.startswith(".") for part in parts):
                continue
            name_parts = list(parts)
            if name_parts[-1] == "__init__.py":
                name_parts.pop()
            else:
                name_parts[-1] = name_parts[-1][:-3]
            if not name_parts:
                continue
            try:
                text = path.read_text(encoding="utf-8")
                tree = ast.parse(text)
            except (OSError, SyntaxError, ValueError):
                continue
            name = ".".join(name_parts)
            rel = path.relative_to(self.root).as_posix()
            self.modules[name] = Module(name, path, rel, tree, text.splitlines())

    # -- plain lookups -----------------------------------------------------
    def module(self, name: str) -> Module | None:
        return self.modules.get(name)

    def iter_modules(self, *prefixes: str) -> list[Module]:
        """Modules under any of the dotted ``prefixes`` (all when none)."""
        if not prefixes:
            return list(self.modules.values())
        return [
            module
            for module in self.modules.values()
            if any(
                module.name == prefix or module.name.startswith(prefix + ".")
                for prefix in prefixes
            )
        ]

    def packages(self) -> list[Module]:
        return [module for module in self.modules.values() if module.is_package]

    def file_lines(self, rel: str) -> list[str]:
        """Lines of any file under the project root (for suppression)."""
        if rel not in self._file_lines:
            try:
                text = (self.root / rel).read_text(encoding="utf-8")
            except OSError:
                text = ""
            self._file_lines[rel] = text.splitlines()
        return self._file_lines[rel]

    def iter_classes(self) -> list[tuple[Module, ast.ClassDef]]:
        """Every top-level class in the project."""
        return [
            (module, node)
            for module in self.modules.values()
            for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        ]

    # -- imports and symbol resolution -------------------------------------
    def imports(self, module: Module) -> dict[str, tuple[str, str | None]]:
        """Local name → ``(source module, symbol)``; symbol ``None`` for
        whole-module imports.  Function-local imports are included —
        the repo uses them to break cycles."""
        cached = self._imports.get(module.name)
        if cached is not None:
            return cached
        table: dict[str, tuple[str, str | None]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    source = alias.name if alias.asname else alias.name.split(".")[0]
                    table[local] = (source, None)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = (base, alias.name)
        self._imports[module.name] = table
        return table

    def _import_base(self, module: Module, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        parts = module.name.split(".")
        if not module.is_package:
            parts = parts[:-1]
        if node.level - 1 > len(parts):
            return None
        parts = parts[: len(parts) - (node.level - 1)]
        if node.module:
            parts.append(node.module)
        return ".".join(parts) if parts else None

    def resolve(
        self, module: Module, name: str, _depth: int = 0
    ) -> tuple[Module, ast.stmt] | None:
        """The defining ``(module, node)`` of ``name`` as seen from
        ``module``, following import chains; ``None`` when it resolves
        outside the project (stdlib, third-party)."""
        if _depth > _MAX_DEPTH:
            return None
        for node in module.tree.body:
            if isinstance(
                node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name == name:
                return module, node
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return module, node
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == name
            ):
                return module, node
        imported = self.imports(module).get(name)
        if imported is not None:
            source_name, symbol = imported
            source = self.modules.get(source_name)
            if source is None or symbol is None:
                return None
            return self.resolve(source, symbol, _depth + 1)
        lazy = self._lazy_exports(module)
        if lazy is not None and name in lazy:
            target = self.modules.get(lazy[name])
            if target is not None and target is not module:
                return self.resolve(target, name, _depth + 1)
        return None

    def _lazy_exports(self, module: Module) -> dict[str, str] | None:
        """The PEP 562 ``_EXPORTS`` name→module table, when present."""
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "_EXPORTS":
                    if isinstance(node.value, ast.Dict):
                        table = {}
                        for key, value in zip(node.value.keys, node.value.values):
                            if (
                                isinstance(key, ast.Constant)
                                and isinstance(key.value, str)
                                and isinstance(value, ast.Constant)
                                and isinstance(value.value, str)
                            ):
                                table[key.value] = value.value
                        return table
        return None

    def resolve_module_alias(self, module: Module, name: str) -> Module | None:
        """The module a bare name refers to (``import x``, ``from p
        import submodule``), or ``None``."""
        imported = self.imports(module).get(name)
        if imported is None:
            return None
        source_name, symbol = imported
        if symbol is None:
            return self.modules.get(source_name)
        return self.modules.get(f"{source_name}.{symbol}")

    # -- class resolution ---------------------------------------------------
    def resolve_classes(
        self, module: Module, expr: ast.expr, _depth: int = 0
    ) -> list[tuple[Module, ast.ClassDef]]:
        """Concrete project classes an annotation/alias expression names.

        Unions (``A | B``, ``Union[A, B]``, ``Optional[A]``), string
        annotations, parenthesised alias chains (``Request = (A | B)``)
        and tuples all expand; ``None`` and container generics
        (``list[A]``) contribute nothing — a container parameter is a
        delegation site, not a direct encoding of ``A``.
        """
        if _depth > _MAX_DEPTH:
            return []
        if isinstance(expr, ast.Name):
            resolved = self.resolve(module, expr.id)
            if resolved is None:
                return []
            found_module, node = resolved
            if isinstance(node, ast.ClassDef):
                return [(found_module, node)]
            if isinstance(node, ast.Assign):
                return self.resolve_classes(found_module, node.value, _depth + 1)
            if isinstance(node, ast.AnnAssign) and node.value is not None:
                return self.resolve_classes(found_module, node.value, _depth + 1)
            return []
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name):
                target = self.resolve_module_alias(module, expr.value.id)
                if target is not None:
                    resolved = self.resolve(target, expr.attr)
                    if resolved is not None and isinstance(resolved[1], ast.ClassDef):
                        return [(resolved[0], resolved[1])]
            return []
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            return self.resolve_classes(
                module, expr.left, _depth + 1
            ) + self.resolve_classes(module, expr.right, _depth + 1)
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            try:
                parsed = ast.parse(expr.value, mode="eval").body
            except (SyntaxError, ValueError):
                return []
            return self.resolve_classes(module, parsed, _depth + 1)
        if isinstance(expr, ast.Subscript):
            head = expr.value
            head_name = None
            if isinstance(head, ast.Name):
                head_name = head.id
            elif isinstance(head, ast.Attribute):
                head_name = head.attr
            if head_name == "Optional":
                return self.resolve_classes(module, expr.slice, _depth + 1)
            if head_name == "Union":
                elements = (
                    expr.slice.elts
                    if isinstance(expr.slice, ast.Tuple)
                    else [expr.slice]
                )
                classes: list[tuple[Module, ast.ClassDef]] = []
                for element in elements:
                    classes += self.resolve_classes(module, element, _depth + 1)
                return classes
            return []
        if isinstance(expr, ast.Tuple):
            classes = []
            for element in expr.elts:
                classes += self.resolve_classes(module, element, _depth + 1)
            return classes
        return []

    def dataclass_fields(
        self, module: Module, classdef: ast.ClassDef, _depth: int = 0
    ) -> list[str] | None:
        """Field names in dataclass ``__init__`` order (inherited first),
        or ``None`` when the class is not a dataclass."""
        if _depth > _MAX_DEPTH or not is_dataclass_def(classdef):
            return None
        fields: list[str] = []
        for base in classdef.bases:
            for base_module, base_class in self.resolve_classes(module, base):
                base_fields = self.dataclass_fields(base_module, base_class, _depth + 1)
                for name in base_fields or ():
                    if name not in fields:
                        fields.append(name)
        for node in classdef.body:
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _is_classvar(node.annotation):
                    continue
                if node.target.id not in fields:
                    fields.append(node.target.id)
        return fields

    # -- the class graph ----------------------------------------------------
    def _ensure_class_graph(self) -> dict[tuple[str, str], set[tuple[str, str]]]:
        if self._subclass_index is not None:
            return self._subclass_index
        index: dict[tuple[str, str], set[tuple[str, str]]] = {}
        for module, classdef in self.iter_classes():
            self._class_by_key[(module.name, classdef.name)] = (module, classdef)
        for module, classdef in self.iter_classes():
            key = (module.name, classdef.name)
            for base in classdef.bases:
                for base_module, base_class in self.resolve_classes(module, base):
                    base_key = (base_module.name, base_class.name)
                    index.setdefault(base_key, set()).add(key)
        self._subclass_index = index
        return index

    def subclasses(
        self, module: Module, classdef: ast.ClassDef
    ) -> list[tuple[Module, ast.ClassDef]]:
        """All transitive project subclasses of ``classdef``."""
        index = self._ensure_class_graph()
        found: list[tuple[Module, ast.ClassDef]] = []
        seen: set[tuple[str, str]] = set()
        stack = [(module.name, classdef.name)]
        while stack:
            for child_key in sorted(index.get(stack.pop(), ())):
                if child_key in seen:
                    continue
                seen.add(child_key)
                child = self._class_by_key.get(child_key)
                if child is not None:
                    found.append(child)
                    stack.append(child_key)
        return found

    def ancestors(
        self, module: Module, classdef: ast.ClassDef, _depth: int = 0
    ) -> list[tuple[Module, ast.ClassDef]]:
        """Project base classes, nearest first (depth-first, de-duped)."""
        if _depth > _MAX_DEPTH:
            return []
        chain: list[tuple[Module, ast.ClassDef]] = []
        seen: set[tuple[str, str]] = set()
        for base in classdef.bases:
            for base_module, base_class in self.resolve_classes(module, base):
                key = (base_module.name, base_class.name)
                if key in seen:
                    continue
                seen.add(key)
                chain.append((base_module, base_class))
                for grand in self.ancestors(base_module, base_class, _depth + 1):
                    grand_key = (grand[0].name, grand[1].name)
                    if grand_key not in seen:
                        seen.add(grand_key)
                        chain.append(grand)
        return chain

    # -- __all__ ------------------------------------------------------------
    def module_all(self, module: Module) -> tuple[list[str] | None, int] | None:
        """``(names, lineno)`` of the module's ``__all__``; names is
        ``None`` when the assignment exists but cannot be resolved
        statically; the whole result is ``None`` when absent.

        Handles literal lists/tuples and the ``sorted(_EXPORTS)`` form
        :mod:`repro.core` uses for its lazy-export table.
        """
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    value = node.value
                    if value is None:
                        return None, node.lineno
                    return self._name_list(module, value), node.lineno
        return None

    def _name_list(self, module: Module, expr: ast.expr) -> list[str] | None:
        if isinstance(expr, (ast.List, ast.Tuple)):
            names = []
            for element in expr.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None
                names.append(element.value)
            return names
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "sorted"
            and len(expr.args) == 1
        ):
            inner = expr.args[0]
            if isinstance(inner, ast.Name):
                resolved = self.resolve(module, inner.id)
                if resolved is not None and isinstance(resolved[1], ast.Assign):
                    inner = resolved[1].value
            if isinstance(inner, ast.Dict):
                names = []
                for key in inner.keys:
                    if not (
                        isinstance(key, ast.Constant) and isinstance(key.value, str)
                    ):
                        return None
                    names.append(key.value)
                return sorted(names)
            listed = self._name_list(module, inner)
            return sorted(listed) if listed is not None else None
        return None
