"""fsync-discipline: storage installs pointers only after syncing data.

The storage layer's durability contract (PR 3, extended to stripes in
PR 9) is an ordering rule: anything that *points at* data — an index
entry naming a record's offset, an ``os.replace`` installing a manifest
— must reach the disk only after the data it points at is fsync'd.
Violate the order and a crash can leave a pointer to garbage that
recovery trusts.  Two mechanical checks over :mod:`repro.storage`:

* every ``os.replace(...)`` call must be lexically preceded, in the
  same function body, by an ``os.fsync(...)`` of the replacement
  contents (the write-to-temp / fsync / rename idiom — use
  ``_write_file_durably``, which encodes it once);
* every ``.write(...)`` on an index file handle (a receiver whose name
  contains ``index``) must be lexically preceded, in the same function
  body, by a flush/fsync of some *other* handle — the segment data the
  new index entry points at.

Lexical order within one function is a proxy for runtime order — the
same trade the lock-discipline rule makes.  Helpers that take the
handle as a parameter (``_flush``, ``_write_file_durably``) satisfy the
rule at their call sites by naming, which is exactly the discipline the
convention wants: sync the data, visibly, before publishing a pointer
to it.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import Module, ProjectIndex

NAME = "fsync-discipline"
DESCRIPTION = "os.replace/index writes must follow an fsync of the data they point at"

#: the subsystem carrying the durability contract
SCOPES = ("repro.storage",)

#: call attributes that count as syncing data to disk
_SYNCING_ATTRS = {"fsync", "flush", "_flush"}


def _receiver_name(node: ast.expr) -> str | None:
    """The identifier a call receiver ends in (``self._index_file`` ->
    ``_index_file``), or ``None`` for non-name receivers."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_index_handle(name: str | None) -> bool:
    return name is not None and "index" in name.lower()


def _is_os_call(call: ast.Call, attr: str) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == attr
        and isinstance(func.value, ast.Name)
        and func.value.id == "os"
    )


def _syncs_data(call: ast.Call) -> bool:
    """Does this call flush/fsync something that is not an index handle?

    ``os.fsync(fd)``, ``handle.flush()`` and ``self._flush(handle)``
    all count, as long as the synced handle is not itself named like an
    index — syncing the index before writing it proves nothing about
    the data the entry points at.
    """
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _SYNCING_ATTRS:
        return False
    if isinstance(func.value, ast.Name) and func.value.id == "os":
        # os.fsync(X.fileno()) — look through to what is being synced
        for arg in call.args:
            if isinstance(arg, ast.Call):
                synced = _receiver_name(
                    arg.func.value if isinstance(arg.func, ast.Attribute) else arg.func
                )
            else:
                synced = _receiver_name(arg)
            if _is_index_handle(synced):
                return False
        return True
    if func.attr == "flush":
        return not _is_index_handle(_receiver_name(func.value))
    # a helper like self._flush(handle): check the handle argument
    for arg in call.args:
        if _is_index_handle(_receiver_name(arg)):
            return False
    return True


class _BodyCalls(ast.NodeVisitor):
    """Call nodes lexically inside one function's own statements.

    Nested ``def``/``lambda``/class bodies get their own visit — their
    execution order is unrelated to the enclosing body's.
    """

    def __init__(self) -> None:
        self.calls: list[ast.Call] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


def _check_function(
    function: ast.FunctionDef, context: str, module: Module
) -> list[Finding]:
    visitor = _BodyCalls()
    for stmt in function.body:
        visitor.visit(stmt)
    findings = []
    data_synced = False
    for call in visitor.calls:
        if _syncs_data(call):
            data_synced = True
            continue
        if _is_os_call(call, "replace") and not data_synced:
            findings.append(
                Finding(
                    rule=NAME,
                    path=module.rel,
                    line=call.lineno,
                    message=(
                        f"{context} calls os.replace without first fsyncing "
                        "the replacement contents (use _write_file_durably: "
                        "write, flush, fsync, then rename)"
                    ),
                )
            )
            continue
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "write"
            and _is_index_handle(_receiver_name(func.value))
            and not data_synced
        ):
            findings.append(
                Finding(
                    rule=NAME,
                    path=module.rel,
                    line=call.lineno,
                    message=(
                        f"{context} writes an index entry before syncing the "
                        "data it points at (flush/fsync the segment first — "
                        "a crash must never leave an index pointing at "
                        "unwritten bytes)"
                    ),
                )
            )
    return findings


def check(project: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.iter_modules(*SCOPES):
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                findings += _check_function(node, node.name, module)
            elif isinstance(node, ast.ClassDef):
                for method in node.body:
                    if isinstance(method, ast.FunctionDef):
                        findings += _check_function(
                            method, f"{node.name}.{method.name}", module
                        )
    return findings
