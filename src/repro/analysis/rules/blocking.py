"""async-discipline: ``async def`` bodies never call blocking primitives.

The asyncio server (``repro/api/aio.py``) multiplexes every connection
over one event loop; a single blocking call inside a coroutine stalls
*all* of them at once.  The repo's convention: blocking work leaves the
loop through ``run_in_executor``, never runs on it.  This rule makes
that mechanical for the calls that have actually bitten asyncio
codebases:

* ``socket.*(...)`` — module-level socket operations (``socket.
  create_connection``, …) block the loop for a full network round trip;
* ``time.sleep(...)`` — freezes the loop outright (``asyncio.sleep``
  is the awaitable form);
* any ``.result(...)`` call — synchronously waiting on a
  ``concurrent.futures`` future from a coroutine deadlocks the moment
  the pool needs the loop to make progress (wrap the future or use
  ``run_in_executor`` and ``await`` instead).

Scope: :mod:`repro.api` (the only subsystem with coroutines).  Only
the coroutine's own statements count — a nested ``def``/``lambda``
runs later, on whatever thread calls it, so its body is exempt.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import Module, ProjectIndex

NAME = "async-discipline"
DESCRIPTION = "async def bodies must not call blocking primitives directly"

#: the subsystem that hosts the event loop
SCOPES = ("repro.api",)

#: modules whose every function blocks (when called as ``module.fn(...)``)
_BLOCKING_MODULES = {"socket"}

#: specific ``module.function`` calls that block
_BLOCKING_FUNCTIONS = {("time", "sleep")}

#: blocking zero-argument methods, by attribute name (futures' ``.result()``)
_BLOCKING_METHODS = {"result"}


def _blocking_reason(call: ast.Call) -> str | None:
    """Why this call blocks the event loop, or ``None`` if it does not."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if isinstance(func.value, ast.Name):
        if func.value.id in _BLOCKING_MODULES:
            return f"{func.value.id}.{func.attr}() blocks the event loop"
        if (func.value.id, func.attr) in _BLOCKING_FUNCTIONS:
            return (
                f"{func.value.id}.{func.attr}() freezes the event loop "
                f"(use asyncio.sleep)"
            )
    if func.attr in _BLOCKING_METHODS:
        return (
            ".result() waits synchronously on the event loop "
            "(await the future, or wrap it via run_in_executor)"
        )
    return None


class _CoroutineBody(ast.NodeVisitor):
    """Collects Call nodes lexically inside one coroutine's own body.

    Nested ``def``/``async def``/``lambda``/class bodies are skipped:
    they execute later, off the loop (or as their own coroutine, which
    gets its own visit).
    """

    def __init__(self) -> None:
        self.calls: list[ast.Call] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


def _check_coroutine(
    coroutine: ast.AsyncFunctionDef, context: str, module: Module
) -> list[Finding]:
    visitor = _CoroutineBody()
    for stmt in coroutine.body:
        visitor.visit(stmt)
    findings = []
    for call in visitor.calls:
        reason = _blocking_reason(call)
        if reason is not None:
            findings.append(
                Finding(
                    rule=NAME,
                    path=module.rel,
                    line=call.lineno,
                    message=f"async {context} calls a blocking primitive: {reason}",
                )
            )
    return findings


def check(project: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.iter_modules(*SCOPES):
        for node in module.tree.body:
            if isinstance(node, ast.AsyncFunctionDef):
                findings += _check_coroutine(node, node.name, module)
            elif isinstance(node, ast.ClassDef):
                for method in node.body:
                    if isinstance(method, ast.AsyncFunctionDef):
                        findings += _check_coroutine(
                            method, f"{node.name}.{method.name}", module
                        )
    return findings
