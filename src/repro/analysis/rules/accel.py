"""accel-dispatch: accelerated arithmetic flows through the dispatch seam.

The byte-parity guarantee of :mod:`repro.crypto.accel` — swap the
provider, get identical bytes — only holds if the *whole* crypto stack
reaches gmpy2 and the ``_accelmodule`` C extension through one seam
(:mod:`repro.crypto.accel.dispatch`).  A module that imports ``gmpy2``
directly has hard-wired an optional dependency (the repo must run with
neither accelerator installed), and one that imports ``_accelmodule``
or a provider module bypasses the probe/fallback logic and the parity
gate around it.

Mechanically, within ``repro.crypto`` (and ``repro.accumulators``,
whose key oracle sits on the same hot path):

* only :mod:`repro.crypto.accel.gmpy2_backend` may import ``gmpy2``;
* only :mod:`repro.crypto.accel.native` may import ``_accelmodule``;
* only :mod:`repro.crypto.accel.dispatch` may import the provider
  modules (``pure`` / ``gmpy2_backend`` / ``native``; the accelerated
  providers may also import ``pure``, whose scalar seam they reuse) —
  everyone else imports ``dispatch`` (or the package re-exports) and
  lets the active provider decide.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectIndex

NAME = "accel-dispatch"
DESCRIPTION = "crypto modules reach gmpy2/_accelmodule only via accel.dispatch"

#: the packages that must stay provider-agnostic
SCOPES = ("repro.crypto", "repro.accumulators")

#: module -> the places allowed to import it directly.  ``pure`` is
#: also importable by the other providers: it carries no optional
#: dependency, and they reuse its scalar seam (CPython's ``pow`` is
#: already C-speed) rather than duplicating it.
_RESTRICTED = {
    "gmpy2": frozenset({"repro.crypto.accel.gmpy2_backend"}),
    "_accelmodule": frozenset({"repro.crypto.accel.native"}),
    "repro.crypto.accel._accelmodule": frozenset({"repro.crypto.accel.native"}),
    "repro.crypto.accel.pure": frozenset(
        {
            "repro.crypto.accel.dispatch",
            "repro.crypto.accel.gmpy2_backend",
            "repro.crypto.accel.native",
        }
    ),
    "repro.crypto.accel.gmpy2_backend": frozenset({"repro.crypto.accel.dispatch"}),
    "repro.crypto.accel.native": frozenset({"repro.crypto.accel.dispatch"}),
}


def _imported_names(node: ast.stmt) -> list[str]:
    """Fully-qualified module names an import statement pulls in."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level:  # relative: resolved against the package below
            return []
        base = node.module or ""
        names = [base] if base else []
        # ``from repro.crypto.accel import native`` names the provider
        # module through the alias list, not the ``from`` clause
        names += [f"{base}.{alias.name}" for alias in node.names if base]
        return names
    return []


def _relative_names(module_name: str, node: ast.ImportFrom) -> list[str]:
    """Resolve ``from . import native``-style imports to absolute names."""
    parts = module_name.split(".")
    # level 1 inside a module strips the module itself; each extra level
    # strips one more package (packages themselves are __init__ modules)
    base_parts = parts[: len(parts) - node.level]
    base = ".".join(base_parts + ([node.module] if node.module else []))
    if not base:
        return []
    return [base] + [f"{base}.{alias.name}" for alias in node.names]


def check(project: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.iter_modules(*SCOPES):
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            names = _imported_names(node)
            if isinstance(node, ast.ImportFrom) and node.level:
                source = module.name
                if module.is_package:
                    source += ".__init__"  # packages resolve one level up
                names = _relative_names(source, node)
            for name in names:
                allowed = _RESTRICTED.get(name)
                if allowed is None or module.name in allowed:
                    continue
                findings.append(
                    Finding(
                        rule=NAME,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"{module.name} imports {name} directly; only "
                            f"{', '.join(sorted(allowed))} may — route "
                            "through repro.crypto.accel.dispatch so the "
                            "provider probe and pure fallback stay in charge"
                        ),
                    )
                )
    return findings
