"""lock-discipline: private state of lock-owning classes is written
under that lock.

The serving stack's concurrency model (``repro/api/service.py``'s
module docstring) hinges on a convention no runtime check enforces: a
class that owns a ``threading.Lock``/``RLock`` named ``_lock`` (or
``*_lock``) mutates its ``self._*`` attributes only inside ``with
self._lock``.  This rule makes the convention mechanical: every store
to a ``self._``-prefixed attribute — plain assignment, augmented
assignment, annotated assignment, ``del``, or a subscript store like
``self._queues[k] = v`` — outside a lexical ``with self.<lock>`` block
is a finding.

Scope: :mod:`repro.cache`, :mod:`repro.parallel` and :mod:`repro.api`
(the subsystems whose objects are hit from multiple threads).
Constructors and pickle hooks are exempt (no concurrent access exists
before ``__init__`` returns / during unpickling), as are reads — the
repo's flags (``_closed``, ``_closing``) are intentionally read without
the lock on fast paths.

Known limitations, by design: only *lexical* nesting counts (a helper
called with the lock held must take the lock itself — re-entrant locks
make that cheap), and mutation through method calls
(``self._conns.add(...)``) is out of scope.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import Module, ProjectIndex

NAME = "lock-discipline"
DESCRIPTION = "writes to self._* attributes of lock-owning classes must hold the lock"

#: subsystems whose classes are accessed from multiple threads
SCOPES = ("repro.cache", "repro.parallel", "repro.api")

#: methods that run before/without concurrent access
_EXEMPT_METHODS = {
    "__init__",
    "__post_init__",
    "__new__",
    "__getstate__",
    "__setstate__",
    "__reduce__",
    "__reduce_ex__",
    "__del__",
}

_LOCK_FACTORIES = {"Lock", "RLock"}


def _is_lock_factory(expr: ast.expr) -> bool:
    """``threading.Lock()``/``RLock()`` (or the bare imported names)."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    return isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES


def _lock_factory_name(expr: ast.expr) -> bool:
    """The un-called factory, as passed to ``field(default_factory=...)``."""
    if isinstance(expr, ast.Attribute):
        return expr.attr in _LOCK_FACTORIES
    return isinstance(expr, ast.Name) and expr.id in _LOCK_FACTORIES


def _owned_locks(classdef: ast.ClassDef) -> set[str]:
    """Lock attributes this class owns, by name.

    Ownership means ``self.<name> = threading.Lock()`` in ``__init__``
    (the plain-class pattern) or a dataclass field with
    ``field(default_factory=threading.Lock)`` (the ``EndpointStats``
    pattern).  The value must actually be a lock factory, so names like
    ``_lock_file`` holding a path never count.
    """
    locks: set[str] = set()
    for node in classdef.body:
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and _matches_lock_name(node.target.id)
            and isinstance(node.value, ast.Call)
        ):
            for keyword in node.value.keywords:
                if keyword.arg == "default_factory" and _lock_factory_name(
                    keyword.value
                ):
                    locks.add(node.target.id)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _matches_lock_name(target.attr)
                        and _is_lock_factory(stmt.value)
                    ):
                        locks.add(target.attr)
    return locks


def _matches_lock_name(name: str) -> bool:
    return name == "_lock" or name.endswith("_lock")


def _acquires_lock(with_stmt: ast.With | ast.AsyncWith, locks: set[str]) -> bool:
    for item in with_stmt.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in locks
        ):
            return True
    return False


def _store_targets(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target]
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.target]
    if isinstance(stmt, ast.Delete):
        return list(stmt.targets)
    return []


def _self_private_stores(target: ast.expr) -> list[ast.Attribute]:
    """``self._x`` attributes this assignment target mutates."""
    if isinstance(target, (ast.Tuple, ast.List)):
        stores = []
        for element in target.elts:
            stores += _self_private_stores(element)
        return stores
    if isinstance(target, ast.Starred):
        return _self_private_stores(target.value)
    if isinstance(target, ast.Attribute):
        if (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr.startswith("_")
        ):
            return [target]
        return []
    if isinstance(target, ast.Subscript):
        return _self_private_stores(target.value)
    return []


def _sub_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if block:
            bodies.append(block)
    for handler in getattr(stmt, "handlers", ()):
        bodies.append(handler.body)
    return bodies


def _scan_block(
    body: list[ast.stmt],
    locks: set[str],
    held: bool,
    context: str,
    module: Module,
    findings: list[Finding],
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            _scan_block(
                stmt.body,
                locks,
                held or _acquires_lock(stmt, locks),
                context,
                module,
                findings,
            )
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # a nested def runs later, under its caller's locking
        if not held:
            for target in _store_targets(stmt):
                for store in _self_private_stores(target):
                    lock_list = " / ".join(f"self.{name}" for name in sorted(locks))
                    findings.append(
                        Finding(
                            rule=NAME,
                            path=module.rel,
                            line=store.lineno,
                            message=(
                                f"{context} writes self.{store.attr} outside "
                                f"'with {lock_list}'"
                            ),
                        )
                    )
        _scan_block(_sub_bodies_flat(stmt), locks, held, context, module, findings)


def _sub_bodies_flat(stmt: ast.stmt) -> list[ast.stmt]:
    flat: list[ast.stmt] = []
    for body in _sub_bodies(stmt):
        flat.extend(body)
    return flat


def check(project: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.iter_modules(*SCOPES):
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            locks = _owned_locks(node)
            if not locks:
                continue
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in _EXEMPT_METHODS:
                    continue
                context = f"{node.name}.{method.name}"
                _scan_block(method.body, locks, False, context, module, findings)
    return findings
