"""pickle-safety: nothing unpicklable is reachable from pool state.

Under the ``spawn`` start method, everything :class:`~repro.parallel.
pool.CryptoPool` ships to its workers crosses the process boundary via
pickle.  PR 5 established that boundary with a one-off manual audit;
this rule keeps the audit alive.  The roots are declared explicitly in
:data:`repro.parallel.pool.POOL_STATE_TYPES` — adding a type to the
pool's worker state means adding it to that registry, and the rule
closes over everything reachable from it:

* project subclasses of every reachable class (the registry names
  abstract bases like ``MultisetAccumulator``; the concrete
  accumulators are what actually cross);
* ``self.x = SomeClass(...)`` constructions inside ``__init__``;
* ``self.x = <parameter>`` where the parameter is annotated with a
  project class;
* dataclass field annotations.

Within each reachable class, a finding fires for attributes that
cannot pickle under spawn: thread primitives (``threading.Lock`` and
friends), lambdas, functions defined locally in a method, open sockets
and open files.  A class that defines ``__getstate__`` / ``__reduce__``
controls its own pickled form and is exempt — and traversal stops
there, since its stored attributes no longer correspond to what
crosses the boundary (``KeyOracle`` drops its window tables in
transit; ``CurveOps`` re-resolves through a named registry).
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import Module, ProjectIndex

NAME = "pickle-safety"
DESCRIPTION = "types crossing the CryptoPool boundary stay spawn-picklable"

#: the module-level tuple naming the pool's worker-state root types
REGISTRY_NAME = "POOL_STATE_TYPES"

_PICKLE_HOOKS = {"__getstate__", "__reduce__", "__reduce_ex__"}

_THREAD_PRIMITIVES = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
}
_SOCKET_FACTORIES = {"socket", "create_connection", "create_server"}


def _registry_roots(
    project: ProjectIndex,
) -> list[tuple[Module, ast.ClassDef]]:
    roots: list[tuple[Module, ast.ClassDef]] = []
    for module in project.iter_modules():
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == REGISTRY_NAME:
                    roots += project.resolve_classes(module, node.value)
    return roots


def _has_pickle_hook(classdef: ast.ClassDef) -> bool:
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name in _PICKLE_HOOKS
        for node in classdef.body
    )


def _unpicklable_value(expr: ast.expr, local_defs: set[str]) -> str | None:
    """Why this assigned value cannot pickle, or ``None`` if it's fine."""
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.Name) and expr.id in local_defs:
        return f"the locally-defined function {expr.id!r}"
    if isinstance(expr, ast.Call):
        func = expr.func
        name = None
        base = None
        if isinstance(func, ast.Attribute):
            name = func.attr
            if isinstance(func.value, ast.Name):
                base = func.value.id
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _THREAD_PRIMITIVES:
            return f"a threading.{name}"
        if name in _SOCKET_FACTORIES and (base == "socket" or base is None):
            return "an open socket"
        if name == "open" and base is None:
            return "an open file"
    return None


def _param_annotations(func: ast.FunctionDef) -> dict[str, ast.expr]:
    args = func.args
    return {
        param.arg: param.annotation
        for param in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if param.annotation is not None
    }


def _scan_class(
    project: ProjectIndex,
    module: Module,
    classdef: ast.ClassDef,
    findings: list[Finding],
) -> list[tuple[Module, ast.ClassDef]]:
    """Report unpicklable state in one class; return classes it stores."""
    stored: list[tuple[Module, ast.ClassDef]] = []
    for node in classdef.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            stored += project.resolve_classes(module, node.annotation)
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        annotations = _param_annotations(node)
        local_defs = {
            stmt.name
            for stmt in ast.walk(node)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt is not node
        }
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                reason = _unpicklable_value(stmt.value, local_defs)
                if reason is not None:
                    findings.append(
                        Finding(
                            rule=NAME,
                            path=module.rel,
                            line=stmt.lineno,
                            message=(
                                f"{classdef.name}.{target.attr} holds {reason}, "
                                f"which cannot pickle across the pool boundary"
                            ),
                        )
                    )
                if node.name == "__init__":
                    value = stmt.value
                    if isinstance(value, ast.Call):
                        stored += project.resolve_classes(module, value.func)
                    elif isinstance(value, ast.Name) and value.id in annotations:
                        stored += project.resolve_classes(module, annotations[value.id])
    return stored


def check(project: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    queue = _registry_roots(project)
    seen: set[tuple[str, str]] = set()
    while queue:
        module, classdef = queue.pop()
        key = (module.name, classdef.name)
        if key in seen:
            continue
        seen.add(key)
        queue += project.subclasses(module, classdef)
        if _has_pickle_hook(classdef):
            continue  # controls its own pickled form
        queue += _scan_class(project, module, classdef, findings)
    return findings
