"""codec-completeness: wire codecs cover every dataclass field.

The failure mode this rule exists for has already happened twice in
this repo's history: a stats/metadata dataclass grows a field, the
codec in :mod:`repro.wire` is not updated, and the field silently
round-trips to its default — no test fails unless one happens to
assert on that exact field.  The rule checks, per wire module:

* **encode coverage** — every field of every dataclass the module
  encodes is *read* by some encoder function (``write_*`` /
  ``encode_*``);
* **decode coverage** — every field is *passed to the constructor* by
  some decoder function (``read_*`` / ``decode_*``), whether by
  keyword or positionally (positions map through dataclass field
  order, inherited fields first).

A dataclass counts as "encoded by module M" when an encoder in M
annotates a parameter with it (unions and ``Optional`` expand, through
cross-module aliases like ``VONode`` and ``Request``) or
``isinstance``-checks a value against it.  Field reads are counted on
the variables so bound — a ``.height`` read on a ``VONode``-typed
parameter credits each member class.  Container annotations
(``list[DataObject]``) are deliberately ignored, and a class with zero
field reads *and* zero constructions in M is treated as delegated to
another codec module (e.g. ``TimeWindowVO`` inside
``request_codec``) and skipped — both keep delegation from producing
false positives.

Fields that are *derived* on decode rather than stored (recomputed
hashes, rebuilt multisets) are the legitimate exceptions; suppress
them at the encoder with ``# vlint: disable=codec-completeness`` and a
reason.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import Module, ProjectIndex

NAME = "codec-completeness"
DESCRIPTION = "wire codecs read and reconstruct every dataclass field"

#: the modules whose functions are codecs
SCOPE = "repro.wire"

_ENCODER_PREFIXES = ("write_", "encode_", "_write_")
_DECODER_PREFIXES = ("read_", "decode_", "_read_")

_ClassKey = tuple[str, str]


def _functions(module: Module, prefixes: tuple[str, ...]) -> list[ast.FunctionDef]:
    return [
        node
        for node in module.tree.body
        if isinstance(node, ast.FunctionDef) and node.name.startswith(prefixes)
    ]


def _parameters(func: ast.FunctionDef) -> list[ast.arg]:
    args = func.args
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)


class _ClassInfo:
    """Everything the rule tracks about one encoded dataclass."""

    def __init__(
        self, module: Module, classdef: ast.ClassDef, fields: list[str]
    ) -> None:
        self.module = module
        self.classdef = classdef
        self.fields = fields
        self.first_line = 0  # where module M first references the class
        self.read_fields: set[str] = set()
        self.constructed_fields: set[str] = set()
        self.constructed = False


def _bindings_for(
    project: ProjectIndex,
    module: Module,
    func: ast.FunctionDef,
    classes: dict[_ClassKey, _ClassInfo],
) -> dict[str, set[_ClassKey]]:
    """Variable name → encoded classes it may hold, within ``func``.

    Sources: parameter annotations and ``isinstance(var, Cls)`` checks
    (treated as binding for the whole function — branch-sensitive
    narrowing is not worth the complexity for codec bodies).
    """
    bindings: dict[str, set[_ClassKey]] = {}

    def bind(name: str, resolved: list[tuple[Module, ast.ClassDef]], line: int) -> None:
        for found_module, found_class in resolved:
            key = (found_module.name, found_class.name)
            if key not in classes:
                fields = project.dataclass_fields(found_module, found_class)
                if fields is None:
                    continue
                classes[key] = _ClassInfo(found_module, found_class, fields)
                classes[key].first_line = line
            bindings.setdefault(name, set()).add(key)

    for param in _parameters(func):
        if param.annotation is not None:
            bind(
                param.arg,
                project.resolve_classes(module, param.annotation),
                func.lineno,
            )
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
            and isinstance(node.args[0], ast.Name)
        ):
            bind(
                node.args[0].id,
                project.resolve_classes(module, node.args[1]),
                node.lineno,
            )
    return bindings


def _record_reads(
    func: ast.FunctionDef,
    bindings: dict[str, set[_ClassKey]],
    classes: dict[_ClassKey, _ClassInfo],
) -> None:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            for key in bindings.get(node.value.id, ()):
                classes[key].read_fields.add(node.attr)


def _record_constructions(
    func: ast.FunctionDef, classes: dict[_ClassKey, _ClassInfo]
) -> None:
    by_name: dict[str, list[_ClassInfo]] = {}
    for info in classes.values():
        by_name.setdefault(info.classdef.name, []).append(info)
    for node in ast.walk(func):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        for info in by_name.get(node.func.id, ()):
            info.constructed = True
            for position, _arg in enumerate(node.args):
                if position < len(info.fields):
                    info.constructed_fields.add(info.fields[position])
            for keyword in node.keywords:
                if keyword.arg is None:  # **kwargs: assume full coverage
                    info.constructed_fields.update(info.fields)
                elif keyword.arg in info.fields:
                    info.constructed_fields.add(keyword.arg)


def check(project: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.iter_modules(SCOPE):
        encoders = _functions(module, _ENCODER_PREFIXES)
        decoders = _functions(module, _DECODER_PREFIXES)
        if not encoders:
            continue
        classes: dict[_ClassKey, _ClassInfo] = {}
        for encoder in encoders:
            bindings = _bindings_for(project, module, encoder, classes)
            _record_reads(encoder, bindings, classes)
        for decoder in decoders:
            _record_constructions(decoder, classes)
        for key in sorted(classes):
            info = classes[key]
            if not info.read_fields and not info.constructed:
                continue  # delegated wholesale to another codec module
            missing_reads = [f for f in info.fields if f not in info.read_fields]
            if missing_reads:
                findings.append(
                    Finding(
                        rule=NAME,
                        path=module.rel,
                        line=info.first_line,
                        message=(
                            f"{info.classdef.name} field(s) "
                            f"{', '.join(missing_reads)} never read by an "
                            f"encoder in {module.name}"
                        ),
                    )
                )
            if not info.constructed:
                findings.append(
                    Finding(
                        rule=NAME,
                        path=module.rel,
                        line=info.first_line,
                        message=(
                            f"{info.classdef.name} is encoded but never "
                            f"reconstructed by a decoder in {module.name}"
                        ),
                    )
                )
                continue
            missing_ctor = [f for f in info.fields if f not in info.constructed_fields]
            if missing_ctor:
                findings.append(
                    Finding(
                        rule=NAME,
                        path=module.rel,
                        line=info.first_line,
                        message=(
                            f"{info.classdef.name} field(s) "
                            f"{', '.join(missing_ctor)} never passed to its "
                            f"constructor by a decoder in {module.name}"
                        ),
                    )
                )
    return findings
