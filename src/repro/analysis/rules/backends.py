"""backend-conformance: ABC subclasses implement the full contract.

The crypto stack is written against abstract bases —
:class:`~repro.crypto.backend.PairingBackend` (17 methods + optional
hooks) and :class:`~repro.accumulators.base.MultisetAccumulator` — and
new substrates arrive as subclasses (``bn254`` in PR 4).  Python only
enforces ``@abstractmethod`` coverage at *instantiation*, and nothing
at all checks that an override keeps the base's parameter names — yet
callers like the MSM fast path call hooks with keyword arguments, so a
renamed parameter is a latent ``TypeError`` on a code path tests may
not reach.

The rule is generic over every project class that declares
``@abstractmethod`` methods:

* each **concrete** subclass (one declaring no abstract methods of its
  own) must define every inherited abstract method somewhere along its
  project base chain;
* every override — of abstract *or* optional-hook methods — must keep
  the base's positional parameter names and order (``*args``-style
  signatures on either side skip the comparison, as do
  property/method mismatches).
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import Module, ProjectIndex

NAME = "backend-conformance"
DESCRIPTION = "ABC subclasses implement every abstract method, signatures intact"

_Method = ast.FunctionDef | ast.AsyncFunctionDef


def _methods(classdef: ast.ClassDef) -> list[_Method]:
    return [
        node
        for node in classdef.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _decorator_names(method: _Method) -> set[str]:
    names = set()
    for decorator in method.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _is_abstract(method: _Method) -> bool:
    return any(
        name in ("abstractmethod", "abstractproperty")
        for name in _decorator_names(method)
    )


def _abstract_methods(classdef: ast.ClassDef) -> dict[str, _Method]:
    return {m.name: m for m in _methods(classdef) if _is_abstract(m)}


def _positional_names(method: _Method) -> list[str] | None:
    """Positional parameter names, or ``None`` when ``*args``/``**kwargs``
    make the signature open-ended (comparison is skipped then)."""
    args = method.args
    if args.vararg is not None or args.kwarg is not None:
        return None
    return [a.arg for a in (*args.posonlyargs, *args.args)]


def check(project: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[tuple[str, str]] = set()
    for module, classdef in project.iter_classes():
        base_abstract = _abstract_methods(classdef)
        if not base_abstract:
            continue
        for sub_module, sub_class in project.subclasses(module, classdef):
            sub_key = (sub_module.name, sub_class.name)
            chain = [(sub_module, sub_class)] + project.ancestors(sub_module, sub_class)
            # nearest definition of each method name along the chain
            nearest: dict[str, _Method] = {}
            for _chain_module, chain_class in chain:
                for method in _methods(chain_class):
                    nearest.setdefault(method.name, method)
            if not _abstract_methods(sub_class) and sub_key not in reported:
                missing = sorted(
                    name
                    for name in base_abstract
                    if name not in nearest or _is_abstract(nearest[name])
                )
                if missing:
                    reported.add(sub_key)
                    findings.append(
                        Finding(
                            rule=NAME,
                            path=sub_module.rel,
                            line=sub_class.lineno,
                            message=(
                                f"{sub_class.name} leaves {classdef.name} "
                                f"abstract method(s) unimplemented: "
                                f"{', '.join(missing)}"
                            ),
                        )
                    )
            for method in _methods(sub_class):
                base_method = None
                for _chain_module, chain_class in chain[1:]:
                    for candidate in _methods(chain_class):
                        if candidate.name == method.name:
                            base_method = candidate
                            break
                    if base_method is not None:
                        break
                if base_method is None:
                    continue
                if ("property" in _decorator_names(method)) != (
                    "property" in _decorator_names(base_method)
                ):
                    continue
                ours = _positional_names(method)
                theirs = _positional_names(base_method)
                if ours is None or theirs is None or ours == theirs:
                    continue
                findings.append(
                    Finding(
                        rule=NAME,
                        path=sub_module.rel,
                        line=method.lineno,
                        message=(
                            f"{sub_class.name}.{method.name}({', '.join(ours)}) "
                            f"does not match the base signature "
                            f"({', '.join(theirs)}) — keyword callers will break"
                        ),
                    )
                )
    # a class under two ABCs would repeat its signature findings
    return list(dict.fromkeys(findings))
