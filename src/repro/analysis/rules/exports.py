"""exports-parity: ``__all__`` and docs/API.md describe the same API.

``tests/test_exports.py`` already proves every ``__all__`` entry
*imports*; nothing proved the documentation matches.  This rule closes
the loop against the "Public API reference" appendix of
``docs/API.md``: one ``### `repro.<package>` `` subsection per public
package, whose backticked identifiers are compared *as a set* against
the package's statically-resolved ``__all__`` (literal lists and the
``sorted(_EXPORTS)`` lazy-table form both resolve).

Findings fire for a package with no appendix section, an export the
appendix omits, a documented name the package does not export, and an
appendix section for a package that does not exist.  The comparison is
deliberately set-based — prose, ordering and descriptions are free;
only the name inventory is contractual.
"""

from __future__ import annotations

import re

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectIndex

NAME = "exports-parity"
DESCRIPTION = "package __all__ matches the docs/API.md reference appendix"

DOC_PATH = "docs/API.md"

#: an appendix subsection: ### `repro` or ### `repro.wire`
_SECTION_RE = re.compile(r"^#{2,4}\s+`(repro(?:\.[A-Za-z0-9_.]+)?)`\s*$")
_HEADING_RE = re.compile(r"^#{1,4}\s")
_IDENT_RE = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")


def _doc_sections(lines: list[str]) -> dict[str, tuple[int, set[str]]]:
    """Package → ``(heading line, documented names)`` from the appendix."""
    sections: dict[str, tuple[int, set[str]]] = {}
    current: str | None = None
    for number, line in enumerate(lines, start=1):
        match = _SECTION_RE.match(line)
        if match:
            current = match.group(1)
            sections.setdefault(current, (number, set()))
            continue
        if _HEADING_RE.match(line):
            current = None
            continue
        if current is not None:
            heading, names = sections[current]
            names.update(_IDENT_RE.findall(line))
            sections[current] = (heading, names)
    return sections


def check(project: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    doc_lines = project.file_lines(DOC_PATH)
    if not doc_lines:
        findings.append(
            Finding(
                rule=NAME,
                path=DOC_PATH,
                line=1,
                message=f"{DOC_PATH} is missing — the API reference is the "
                f"other half of the exports contract",
            )
        )
        return findings
    sections = _doc_sections(doc_lines)
    packages = {
        module.name: module
        for module in project.packages()
        if module.name == "repro" or module.name.startswith("repro.")
    }
    for name in sorted(packages):
        module = packages[name]
        resolved = project.module_all(module)
        if resolved is None:
            findings.append(
                Finding(
                    rule=NAME,
                    path=module.rel,
                    line=1,
                    message=f"package {name} declares no __all__",
                )
            )
            continue
        exported, line = resolved
        if exported is None:
            findings.append(
                Finding(
                    rule=NAME,
                    path=module.rel,
                    line=line,
                    message=f"package {name} has an __all__ the analyzer "
                    f"cannot resolve statically",
                )
            )
            continue
        if name not in sections:
            findings.append(
                Finding(
                    rule=NAME,
                    path=module.rel,
                    line=line,
                    message=f"package {name} has no `### \\`{name}\\`` section "
                    f"in {DOC_PATH}'s API reference",
                )
            )
            continue
        heading, documented = sections[name]
        undocumented = sorted(set(exported) - documented)
        if undocumented:
            findings.append(
                Finding(
                    rule=NAME,
                    path=module.rel,
                    line=line,
                    message=f"{name} exports {', '.join(undocumented)} but "
                    f"{DOC_PATH} does not document them",
                )
            )
        phantom = sorted(documented - set(exported))
        if phantom:
            findings.append(
                Finding(
                    rule=NAME,
                    path=DOC_PATH,
                    line=heading,
                    message=f"{DOC_PATH} documents {', '.join(phantom)} under "
                    f"{name}, which does not export them",
                )
            )
    for name in sorted(set(sections) - set(packages)):
        findings.append(
            Finding(
                rule=NAME,
                path=DOC_PATH,
                line=sections[name][0],
                message=f"{DOC_PATH} documents package {name}, which does "
                f"not exist",
            )
        )
    return findings
