"""The eight repo-specific checkers.

Each rule is a module exposing ``NAME``, ``DESCRIPTION`` and
``check(project) -> list[Finding]``; :data:`ALL_RULES` is the registry
the driver runs.  To add a rule: write the module, append it here, add
a fixture to ``tests/test_analysis.py``, and document the guarantee in
docs/ARCHITECTURE.md.
"""

from repro.analysis.rules import (
    accel,
    backends,
    blocking,
    codec,
    exports,
    fsync,
    locks,
    pickles,
)

#: registry order is report order for equal file/line
ALL_RULES = (codec, locks, pickles, backends, exports, blocking, fsync, accel)

__all__ = sorted(
    [
        "ALL_RULES",
        "accel",
        "backends",
        "blocking",
        "codec",
        "exports",
        "fsync",
        "locks",
        "pickles",
    ]
)
