"""Finding and severity model for the vlint static-analysis suite.

A :class:`Finding` is one rule violation pinned to a file and line.
Findings are plain data — rules produce them, the driver filters them
through suppression comments and renders them as human-readable lines
or JSON.  Keeping the model dumb means a rule never needs to know how
its output is consumed (terminal, CI annotation, test assertion).

Suppression is per-line and per-rule::

    self._closed = True  # vlint: disable=lock-discipline -- drained above

A ``# vlint: disable=<rule>[,<rule>...]`` comment on the finding's line
(or on a comment line directly above it) silences exactly the named
rules; ``disable=all`` silences every rule.  The optional ``-- reason``
tail is for the reader — the analyzer ignores it but reviewers should
not: a suppression without a reason is a code smell.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum


class Severity(Enum):
    """How bad a finding is; ``--check`` fails on any ERROR."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        """The canonical one-line human form, grep- and editor-friendly."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity.value,
        }


#: ``# vlint: disable=rule-a,rule-b`` with an optional ``-- reason`` tail
_SUPPRESS_RE = re.compile(r"#\s*vlint:\s*disable=([A-Za-z0-9_,\-]+)")


def suppressed_rules(source_line: str) -> frozenset[str]:
    """Rule names a single source line suppresses (empty when none)."""
    match = _SUPPRESS_RE.search(source_line)
    if match is None:
        return frozenset()
    return frozenset(name.strip() for name in match.group(1).split(",") if name.strip())


def is_suppressed(finding: Finding, lines: list[str]) -> bool:
    """Whether ``finding`` is silenced by a comment in its file.

    ``lines`` is the file's full line list (0-indexed; findings are
    1-indexed).  The comment may sit on the finding's own line or in
    the contiguous block of pure-comment lines directly above it — the
    style used when the flagged statement is too long to carry a
    trailing comment, or the reason too long for one line.
    """
    index = finding.line - 1
    if not 0 <= index < len(lines):
        return False
    candidates = [lines[index]]
    above = index - 1
    while above >= 0 and lines[above].lstrip().startswith("#"):
        candidates.append(lines[above])
        above -= 1
    for candidate in candidates:
        names = suppressed_rules(candidate)
        if "all" in names or finding.rule in names:
            return True
    return False
