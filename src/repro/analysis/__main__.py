"""``python -m repro.analysis`` — run the vlint suite from the shell.

Exit status: ``--check`` exits 1 when any unsuppressed finding remains
(this is the CI gate); without it the run is report-only and always
exits 0, so exploratory runs never fail a pipeline by accident.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.driver import AnalysisError, rule_names, run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis (vlint).",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="project root (default: cwd; sources read from ROOT/src if present)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any unsuppressed finding remains (the CI gate)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule names and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(rule_names()))
        return 0
    try:
        report = run(args.root, rules=args.rules)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.as_json() if args.json else report.render())
    if args.check and not report.ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
