"""Rule registry and the analysis run loop.

A rule is a module with three attributes — ``NAME`` (the kebab-case
identifier used in findings and suppression comments), ``DESCRIPTION``
(one line for ``--list-rules``) and ``check(project) -> list[Finding]``.
The driver builds one :class:`~repro.analysis.project.ProjectIndex`,
hands it to every selected rule, filters the raw findings through the
per-line suppression comments, and packages the result for the CLI and
the tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from types import ModuleType

from repro.analysis.findings import Finding, is_suppressed
from repro.analysis.project import ProjectIndex
from repro.analysis.rules import ALL_RULES
from repro.errors import ReproError


class AnalysisError(ReproError):
    """Bad analyzer invocation (unknown rule, unreadable root)."""


@dataclass
class Report:
    """One analysis run: surviving findings plus suppression accounting."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"{len(self.findings)} finding(s), {self.suppressed} suppressed, "
            f"{len(self.rules)} rule(s) run"
        )
        lines.append(summary)
        return "\n".join(lines)

    def as_json(self) -> str:
        return json.dumps(
            {
                "findings": [finding.as_dict() for finding in self.findings],
                "suppressed": self.suppressed,
                "rules": self.rules,
            },
            indent=2,
        )


def rule_names() -> list[str]:
    return [rule.NAME for rule in ALL_RULES]


def select_rules(names: list[str] | None) -> list[ModuleType]:
    if not names:
        return list(ALL_RULES)
    by_name = {rule.NAME: rule for rule in ALL_RULES}
    selected = []
    for name in names:
        if name not in by_name:
            known = ", ".join(sorted(by_name))
            raise AnalysisError(f"unknown rule {name!r} (known: {known})")
        selected.append(by_name[name])
    return selected


def run(
    root: Path | str,
    rules: list[str] | None = None,
    project: ProjectIndex | None = None,
) -> Report:
    """Run the selected rules (all by default) over ``root``."""
    if project is None:
        project = ProjectIndex(Path(root))
    selected = select_rules(rules)
    report = Report(rules=[rule.NAME for rule in selected])
    for rule in selected:
        for finding in rule.check(project):
            if is_suppressed(finding, project.file_lines(finding.path)):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return report
