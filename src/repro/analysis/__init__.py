"""Repo-specific static analysis ("vlint").

The codebase rests on invariants that no runtime check enforces: wire
codecs must cover every dataclass field, shared state in the serving
stack must be mutated under its lock, pool work items must stay
spawn-picklable, crypto backends must implement the full abstract
contract, and ``__all__`` must match the documented API.  This package
checks all five statically — pure AST analysis, nothing imported or
executed — and gates them in CI via ``python -m repro.analysis
--check``.

See docs/ARCHITECTURE.md ("Static analysis") for what each rule
guarantees, how to suppress a finding, and how to add a rule.
"""

from repro.analysis.driver import AnalysisError, Report, rule_names, run
from repro.analysis.findings import Finding, Severity, is_suppressed
from repro.analysis.project import Module, ProjectIndex

__all__ = sorted(
    [
        "AnalysisError",
        "Finding",
        "Module",
        "ProjectIndex",
        "Report",
        "Severity",
        "is_suppressed",
        "rule_names",
        "run",
    ]
)
