"""Rich result objects returned by the client API.

:class:`VerifiedResponse` replaces the bare
``(results, vo, sp_stats, user_stats)`` tuple of the legacy
entrypoints.  The client *always* runs verification before handing the
response back; a forged or tampered answer is captured rather than
raised, so callers choose between the two idioms::

    resp = client.query().window(0, 100).any_of("Benz").execute()
    if resp.ok:
        use(resp.results)

    resp.raise_for_forgery()      # or: fail fast

For transition, a VerifiedResponse still unpacks like the legacy
4-tuple (``results, vo, sp_stats, user_stats = resp``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.chain.object import DataObject
from repro.core.prover import QueryStats
from repro.core.query import Query
from repro.core.verifier import VerifyStats
from repro.core.vo import TimeWindowVO
from repro.errors import VerificationError


@dataclass
class VerifiedResponse:
    """A fully verified SP answer with both parties' accounting."""

    query: Query
    results: list[DataObject]
    vo: TimeWindowVO
    sp_stats: QueryStats
    user_stats: VerifyStats | None
    #: exact wire size of the VO (what a remote user would download)
    vo_nbytes: int
    #: client-observed wall clock for the full round trip, including
    #: transport encode/decode and verification
    wall_seconds: float
    #: the verification failure, when the SP's answer did not authenticate
    error: VerificationError | None = field(default=None)

    @property
    def ok(self) -> bool:
        """True iff the answer verified; ``results`` is empty otherwise."""
        return self.error is None

    def raise_for_forgery(self) -> "VerifiedResponse":
        """Raise the captured :class:`VerificationError`, if any."""
        if self.error is not None:
            raise self.error
        return self

    @property
    def sp_seconds(self) -> float:
        return self.sp_stats.sp_seconds

    @property
    def user_seconds(self) -> float:
        return self.user_stats.user_seconds if self.user_stats is not None else 0.0

    def __iter__(self) -> Iterator[object]:
        """Legacy 4-tuple unpacking: results, vo, sp_stats, user_stats."""
        yield self.results
        yield self.vo
        yield self.sp_stats
        yield self.user_stats


@dataclass(frozen=True)
class VerifiedDelivery:
    """One verified subscription push covering a contiguous height run."""

    query_id: int
    from_height: int
    up_to_height: int
    results: list[DataObject]
    stats: VerifyStats
    vo_nbytes: int

    def heights(self) -> list[int]:
        return list(range(self.from_height, self.up_to_height + 1))
