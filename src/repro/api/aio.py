"""Asyncio socket server: every connection on one event loop.

:class:`AsyncSocketServer` serves the same length-prefixed frame
protocol as :class:`~repro.api.transport.SocketServer` — byte-for-byte
identical requests and responses, so the two are interchangeable from
any client's point of view — but multiplexes *all* connections and
subscription deliveries over a single event loop instead of spending a
reader thread per connection.  Crypto-heavy request bodies never run on
the loop: each one is dispatched into the endpoint's worker pool via
``loop.run_in_executor(endpoint.executor, ...)``, so connection count
and query concurrency stay independent knobs and a thousand mostly-idle
clients cost file descriptors, not threads.

Production-traffic hygiene, all loop-side so an abusive client cannot
touch a pool worker:

* **Admission gate** — at most ``max_inflight`` requests dispatched or
  queued on the pool at once; excess requests are rejected up front
  with a typed ``busy`` error frame
  (:class:`~repro.errors.ServerBusyError` client-side), which clients
  may freely retry.
* **Per-client rate limit** — a token bucket per connection
  (``rate_limit`` requests/second, ``rate_burst`` burst); drained
  buckets also answer ``busy``.
* **Deadlines** — request envelopes carry the client's latency budget;
  expired requests are abandoned before *and* discarded after
  execution (see :func:`~repro.api.transport.dispatch_request`), and
  each expiry is counted here.
* **Backpressure and eviction** — response writes respect the
  transport's write-buffer high watermark (``send_queue_limit``); a
  client that stops reading for ``drain_timeout`` seconds is evicted,
  so one stalled downlink can never pin server memory.
* **Graceful drain** — :meth:`stop` quits accepting, half-closes every
  connection so in-flight requests finish and their responses are
  sent, and reports (never swallows) handlers that outlive the budget.

Every one of these shows up as a counter in :class:`ServerCounters`,
which the server attaches to its endpoint so
:meth:`~repro.api.service.ServiceEndpoint.stats` (and the wire-level
``server_stats()``) expose the whole serving stack in one snapshot.

Threading model: the loop runs on one background thread.  All mutable
server state (``_inflight``, ``_closing``, the task and writer sets) is
touched only from that thread; ``start()``/``stop()`` synchronise with
it through an event handshake and ``run_coroutine_threadsafe``, so the
class needs no lock of its own.  :class:`ServerCounters` has one,
because stats snapshots are read from pool threads.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time
import warnings
from dataclasses import dataclass, field
from functools import partial

from typing import Callable

from repro.api.service import ServiceEndpoint
from repro.api.transport import (
    _STATUS_ERROR,
    MAX_FRAME_NBYTES,
    FrameTap,
    dispatch_request,
)
from repro.wire import WireError, decode_error, encode_error


@dataclass
class ServerCounters:
    """Transport-level serving counters across one server's lifetime.

    Increment through :meth:`bump` — bumps happen on the event loop,
    but :meth:`as_dict` snapshots are taken from pool threads answering
    stats requests, so reads and writes must synchronise.  Every bump
    also wakes :meth:`wait_for`, which is how tests observe a counter
    crossing a threshold without sleep-and-poll loops.
    """

    connections_opened: int = 0
    connections_closed: int = 0
    requests: int = 0
    admission_rejections: int = 0
    rate_limited: int = 0
    deadlines_expired: int = 0
    protocol_errors: int = 0
    evictions: int = 0
    _cond: threading.Condition = field(
        default_factory=threading.Condition, repr=False, compare=False
    )

    def bump(self, counter: str) -> None:
        with self._cond:
            setattr(self, counter, getattr(self, counter) + 1)
            self._cond.notify_all()

    def wait_for(self, counter: str, minimum: int = 1, timeout: float = 10.0) -> bool:
        """Block until ``counter`` reaches ``minimum``; False on timeout."""
        with self._cond:
            reached = self._cond.wait_for(
                lambda: getattr(self, counter) >= minimum, timeout=timeout
            )
        return bool(reached)

    def as_dict(self) -> dict[str, int]:
        """Coherent snapshot of every counter."""
        with self._cond:
            return {
                "connections_opened": self.connections_opened,
                "connections_closed": self.connections_closed,
                "requests": self.requests,
                "admission_rejections": self.admission_rejections,
                "rate_limited": self.rate_limited,
                "deadlines_expired": self.deadlines_expired,
                "protocol_errors": self.protocol_errors,
                "evictions": self.evictions,
            }


class _TokenBucket:
    """Classic token bucket; loop-thread-only, so no lock.

    ``rate`` tokens/second refill up to ``burst`` capacity; each
    request takes one token.  A new connection starts with a full
    bucket, so short bursts inside the budget are never penalised.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.capacity = burst
        self.tokens = burst
        self.clock = clock
        self.stamp = clock()

    def take(self) -> bool:
        now = self.clock()
        self.tokens = min(self.capacity, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


def _busy_frame(message: str) -> bytes:
    """A typed ``busy`` error frame (client raises ServerBusyError)."""
    return bytes([_STATUS_ERROR]) + encode_error("busy", message)


def _response_error_kind(response: bytes) -> str | None:
    """The error kind a response frame carries, or ``None`` if it's ok."""
    if not response or response[0] != _STATUS_ERROR:
        return None
    try:
        kind, _message = decode_error(response[1:])
    except WireError:
        return None
    return kind


class AsyncSocketServer:
    """Serves one ServiceEndpoint over TCP on a single event loop.

    A drop-in peer of :class:`~repro.api.transport.SocketServer`: same
    constructor shape, same ``start()``/``stop()``/context-manager
    lifecycle, same ``address`` attribute, same wire bytes.  See the
    module docstring for the hygiene knobs.
    """

    def __init__(
        self,
        endpoint: ServiceEndpoint,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int | None = None,
        rate_limit: float | None = None,
        rate_burst: int | None = None,
        drain_timeout: float = 10.0,
        send_queue_limit: int = 1 << 20,
        sock_sndbuf: int | None = None,
        tap: FrameTap | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """``max_inflight`` caps requests concurrently dispatched to the
        worker pool (``None`` = unbounded); ``rate_limit`` is per-client
        requests/second with bursts up to ``rate_burst`` (default: the
        rate, rounded up); ``drain_timeout`` is how long a response may
        sit undelivered before the client is evicted;
        ``send_queue_limit`` is the per-connection write-buffer high
        watermark in bytes; ``sock_sndbuf`` (mostly for tests) pins
        SO_SNDBUF on accepted connections so kernel buffering cannot
        mask slow clients.

        ``tap`` observes every frame crossing the server — requests,
        responses, and the busy/error frames synthesised loop-side —
        for the :mod:`repro.testing` session recorder.  ``clock`` is
        the monotonic time source for rate limiting and deadlines;
        tests substitute a manual clock to drive both without sleeping.
        """
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1 (or None)")
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError("rate_limit must be positive (or None)")
        self.endpoint = endpoint
        self.backend = endpoint.sp.accumulator.backend
        self.max_inflight = max_inflight
        self.rate_limit = rate_limit
        self.rate_burst = (
            rate_burst
            if rate_burst is not None
            else (max(1, round(rate_limit)) if rate_limit is not None else 1)
        )
        self.drain_timeout = drain_timeout
        self.send_queue_limit = send_queue_limit
        self.sock_sndbuf = sock_sndbuf
        self.tap = tap
        self.clock = clock
        self._next_channel = 0  # loop-thread only, like the sets below
        self.counters = ServerCounters()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._closing = False
        self._inflight = 0
        self._tasks: set[asyncio.Task[None]] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "AsyncSocketServer":
        """Run the event loop on a background daemon thread."""
        thread = threading.Thread(
            target=self._run_loop, name="vchain-async-server", daemon=True
        )
        self._thread = thread
        thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("async server failed to start") from self._startup_error
        self.endpoint.attach_server(self.counters.as_dict)
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except BaseException as exc:
            self._startup_error = exc
        finally:
            self._ready.set()  # unblock start() even on startup failure
            asyncio.set_event_loop(None)
            loop.close()

    async def _serve(self) -> None:
        stop_event = asyncio.Event()
        self._stop_event = stop_event
        server = await asyncio.start_server(self._handle, sock=self._listener)
        self._server = server
        self._ready.set()
        await stop_event.wait()

    def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop serving.  With ``drain``, in-flight requests finish and
        their responses are sent before connections close; without it,
        connections are aborted immediately.

        ``timeout`` is the total shutdown budget.  Handlers (or the
        loop thread) still alive when it runs out are reported with a
        ``RuntimeWarning`` — a hung prover is something the operator
        should hear about, not something ``stop()`` swallows.
        """
        budget_end = time.monotonic() + timeout
        self.endpoint.attach_server(None)
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            # never started: only the listener exists
            try:
                self._listener.close()
            except OSError:
                pass
            return
        if thread.is_alive():
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self._shutdown(drain, budget_end), loop
                )
                future.result(timeout=max(0.1, budget_end - time.monotonic()) + 0.5)
            except Exception:  # the loop may already be gone; join below
                pass
        thread.join(timeout=max(0.0, budget_end - time.monotonic()) + 0.5)
        if thread.is_alive():
            warnings.warn(
                f"AsyncSocketServer.stop() timed out after {timeout}s with the "
                f"event-loop thread ({thread.name}) still running",
                RuntimeWarning,
                stacklevel=2,
            )
        try:
            self._listener.close()
        except OSError:
            pass

    async def _shutdown(self, drain: bool, budget_end: float) -> None:
        self._closing = True
        server = self._server
        if server is not None:
            server.close()
            await server.wait_closed()
        tasks = {task for task in self._tasks if not task.done()}
        for writer in list(self._writers):
            sock = writer.get_extra_info("socket")
            try:
                if drain and sock is not None:
                    # half-close: handlers see EOF and exit after
                    # finishing (and answering) their current request
                    sock.shutdown(socket.SHUT_RD)
                elif not drain:
                    writer.transport.abort()
            except OSError:
                pass
        if not drain:
            for task in tasks:
                task.cancel()
        if tasks:
            _done, pending = await asyncio.wait(
                tasks, timeout=max(0.0, budget_end - time.monotonic())
            )
            for task in pending:
                task.cancel()
            if pending and drain:
                warnings.warn(
                    f"AsyncSocketServer drain timed out with {len(pending)} "
                    "connection handler(s) still running; cancelled",
                    RuntimeWarning,
                    stacklevel=2,
                )
        stop_event = self._stop_event
        if stop_event is not None:
            stop_event.set()

    def __enter__(self) -> "AsyncSocketServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- per-connection handler --------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._writers.add(writer)
        self.counters.bump("connections_opened")
        sock = writer.get_extra_info("socket")
        if sock is not None and self.sock_sndbuf is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, self.sock_sndbuf)
        writer.transport.set_write_buffer_limits(high=self.send_queue_limit)
        session = self.endpoint.session()
        channel = self._next_channel
        self._next_channel += 1
        bucket = (
            _TokenBucket(self.rate_limit, float(self.rate_burst), self.clock)
            if self.rate_limit is not None
            else None
        )
        loop = asyncio.get_running_loop()
        try:
            while not self._closing:
                header = await reader.readexactly(4)
                (length,) = struct.unpack(">I", header)
                if length > MAX_FRAME_NBYTES:
                    return  # garbage or abuse; drop the connection
                payload = await reader.readexactly(length)
                if self.tap is not None:
                    self.tap(channel, "request", payload)
                self.counters.bump("requests")
                if bucket is not None and not bucket.take():
                    self.counters.bump("rate_limited")
                    response = _busy_frame("per-client rate limit exceeded")
                elif (
                    self.max_inflight is not None
                    and self._inflight >= self.max_inflight
                ):
                    self.counters.bump("admission_rejections")
                    response = _busy_frame(
                        f"server is at max inflight requests ({self.max_inflight})"
                    )
                else:
                    # the pool runs the whole request body; query_inline
                    # keeps queries from re-submitting into the same pool
                    # (a deadlock once every worker is a dispatcher)
                    self._inflight += 1
                    try:
                        response = await loop.run_in_executor(
                            self.endpoint.executor,
                            partial(
                                dispatch_request,
                                self.endpoint,
                                self.backend,
                                payload,
                                session=session,
                                query_runner=self.endpoint.query_inline,
                                clock=self.clock,
                            ),
                        )
                    finally:
                        self._inflight -= 1
                    kind = _response_error_kind(response)
                    if kind == "deadline":
                        self.counters.bump("deadlines_expired")
                    elif kind == "wire":
                        # the client sent bytes that don't decode — a
                        # protocol bug or tampering worth surfacing
                        self.counters.bump("protocol_errors")
                if self.tap is not None:
                    self.tap(channel, "response", response)
                writer.write(struct.pack(">I", len(response)) + response)
                try:
                    await asyncio.wait_for(writer.drain(), timeout=self.drain_timeout)
                except TimeoutError:
                    # the client stopped reading; cut it loose before it
                    # pins any more server memory
                    self.counters.bump("evictions")
                    writer.transport.abort()
                    return
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return  # client hung up or the link failed mid-frame
        finally:
            session.close()
            self.counters.bump("connections_closed")
            self._writers.discard(writer)
            if task is not None:
                self._tasks.discard(task)
            try:
                writer.close()
            except OSError:
                pass
