"""The light-node client: queries, subscriptions, header sync.

:class:`VChainClient` binds a light node (header store + verifier) to a
:class:`~repro.api.transport.Transport`.  Every answer crossing the
transport is verified before the caller sees it — the client *is* the
paper's query user, with an ergonomic surface::

    client = net.client                      # LocalTransport, in-process
    resp = (client.query()
                  .window(0, 100)
                  .range(low=(180,), high=(250,))
                  .all_of("Sedan")
                  .any_of("Benz", "BMW")
                  .execute())
    resp.raise_for_forgery()

    with client.subscribe().any_of("Benz").open() as stream:
        for delivery in stream.poll():
            use(delivery.results)

Remote use swaps the transport, nothing else::

    server = SocketServer(ServiceEndpoint(sp)).start()
    client = VChainClient.connect(server.address, accumulator, encoder, params)
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from repro.accumulators.base import MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.miner import ProtocolParams
from repro.core.query import SubscriptionQuery, TimeWindowQuery
from repro.core.sp import ServiceProvider
from repro.core.user import QueryUser
from repro.errors import SubscriptionError, VerificationError
from repro.subscribe.client import SubscriptionClient
from repro.subscribe.engine import Delivery
from repro.wire import ServerStats
from repro.api.builder import QueryBuilder
from repro.api.options import ClientOptions
from repro.api.response import VerifiedDelivery, VerifiedResponse
from repro.api.service import ServiceEndpoint
from repro.api.transport import (
    _TIMEOUT_UNSET,
    LocalTransport,
    SocketTransport,
    Transport,
    _resolve_options,
)


class VChainClient:
    """A verifying client for one service provider, over any transport."""

    def __init__(
        self,
        transport: Transport,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
        user: QueryUser | None = None,
    ) -> None:
        self.transport = transport
        self.accumulator = accumulator
        self.encoder = encoder
        self.params = params
        self.user = user or QueryUser(accumulator, encoder, params)
        self.subscriptions = SubscriptionClient(
            self.user.light, accumulator, encoder, params
        )

    # -- constructors ------------------------------------------------------
    @classmethod
    def local(
        cls,
        endpoint: ServiceEndpoint | ServiceProvider,
        user: QueryUser | None = None,
        **engine_options: Any,
    ) -> "VChainClient":
        """In-process client.  Pass a shared :class:`ServiceEndpoint` when
        several clients should multiplex one subscription engine (and
        share its cross-query proofs); a bare ServiceProvider gets a
        fresh endpoint."""
        if isinstance(endpoint, ServiceProvider):
            endpoint = ServiceEndpoint(endpoint, **engine_options)
        elif engine_options:
            raise ValueError("engine options apply only when building an endpoint")
        sp = endpoint.sp
        return cls(
            LocalTransport(endpoint), sp.accumulator, sp.encoder, sp.params, user=user
        )

    @classmethod
    def connect(
        cls,
        address: tuple[str, int],
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
        user: QueryUser | None = None,
        timeout: float | None = _TIMEOUT_UNSET,
        *,
        options: ClientOptions | None = None,
    ) -> "VChainClient":
        """Client over the length-prefixed socket transport.

        ``options`` (a :class:`~repro.api.options.ClientOptions`)
        carries every transport knob: connect timeout, per-request
        deadline, retries, backoff.  The bare ``timeout=`` kwarg is the
        deprecated pre-options spelling and maps to
        ``ClientOptions(connect_timeout=timeout,
        request_deadline=timeout)``.
        """
        resolved = _resolve_options(options, timeout, "VChainClient.connect")
        transport = SocketTransport(address, accumulator.backend, options=resolved)
        return cls(transport, accumulator, encoder, params, user=user)

    # -- fluent entrypoints ------------------------------------------------
    def query(self) -> QueryBuilder:
        """Start building a historical time-window query."""
        return QueryBuilder(self)

    def subscribe(self) -> QueryBuilder:
        """Start building a subscription query."""
        return QueryBuilder(self, subscription=True)

    # -- execution ---------------------------------------------------------
    def execute(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> VerifiedResponse:
        """Run a prebuilt query: sync headers, ask the SP, verify."""
        started = time.perf_counter()
        results, vo, sp_stats = self.transport.time_window_query(query, batch=batch)
        # sync *after* the answer: the chain only grows, so the headers
        # fetched now are guaranteed to cover every block the VO cites
        self.sync_headers()
        error: VerificationError | None = None
        user_stats = None
        verified = []
        try:
            verified, user_stats = self.user.verify(query, results, vo)
        except VerificationError as exc:
            error = exc
        return VerifiedResponse(
            query=query,
            results=verified,
            vo=vo,
            sp_stats=sp_stats,
            user_stats=user_stats,
            vo_nbytes=vo.nbytes(self.accumulator.backend),
            wall_seconds=time.perf_counter() - started,
            error=error,
        )

    def execute_many(
        self, queries: list[TimeWindowQuery], batch: bool | None = None
    ) -> list[VerifiedResponse]:
        """Run several queries, verifying all answers in one batch pass.

        The SP answers each query separately, but client-side
        verification goes through
        :meth:`~repro.core.verifier.QueryVerifier.batch_verify`: all
        disjointness checks sharing a clause — across every response —
        collapse into one aggregated pairing, so verifying a whole
        window of VOs costs far fewer pairings than verifying them one
        by one.  The combined :class:`VerifyStats` is attached to every
        response; ``wall_seconds`` covers the whole batch.

        If the batch pass rejects, each answer is re-verified
        individually so one forged response surfaces in *its* response
        ``error`` without poisoning the rest.
        """
        started = time.perf_counter()
        answers = [
            self.transport.time_window_query(query, batch=batch)
            for query in queries
        ]
        self.sync_headers()
        items = [
            (query, results, vo)
            for query, (results, vo, _stats) in zip(queries, answers)
        ]
        try:
            all_verified, user_stats = self.user.batch_verify(items)
            verdicts = [(verified, user_stats, None) for verified in all_verified]
        except VerificationError:
            verdicts = []
            for query, results, vo in items:
                try:
                    verified, stats = self.user.verify(query, results, vo)
                    verdicts.append((verified, stats, None))
                except VerificationError as exc:
                    verdicts.append(([], None, exc))
        wall = time.perf_counter() - started
        return [
            VerifiedResponse(
                query=query,
                results=verified,
                vo=vo,
                sp_stats=sp_stats,
                user_stats=user_stats,
                vo_nbytes=vo.nbytes(self.accumulator.backend),
                wall_seconds=wall,
                error=error,
            )
            for (query, (results, vo, sp_stats)), (verified, user_stats, error)
            in zip(zip(queries, answers), verdicts)
        ]

    def stream(
        self, query: SubscriptionQuery, since_height: int | None = None
    ) -> "SubscriptionStream":
        """Register a subscription and open its delivery stream."""
        query_id, since = self.transport.register(query, since_height=since_height)
        self.subscriptions.track(query_id, query, since_height=since)
        return SubscriptionStream(self, query_id)

    def sync_headers(self) -> int:
        """Pull any block headers the light node is missing."""
        headers = self.transport.headers(from_height=len(self.user.light))
        return self.user.light.sync(self.user.light.headers() + headers)

    def server_stats(self) -> ServerStats:
        """The server's observability snapshot, typed end to end.

        Over a socket transport this is a real wire request; against a
        :class:`~repro.api.transport.LocalTransport` it reads the
        endpoint directly.  Either way the answer is the server-side
        :meth:`~repro.api.service.ServiceEndpoint.stats` snapshot —
        endpoint counters, cache and pool stats, and (when a socket
        server is attached) its admission/rate-limit/eviction counters.
        """
        return self.transport.server_stats()

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "VChainClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SubscriptionStream:
    """Iterator/context-manager over one subscription's deliveries.

    ``poll()`` fetches and verifies everything currently due; iterating
    the stream drains the same set.  ``flush()`` additionally forces a
    lazy engine to emit the evidence parked on its pending stack.
    Leaving the ``with`` block deregisters the query on the SP.
    """

    def __init__(self, client: VChainClient, query_id: int) -> None:
        self.client = client
        self.query_id = query_id
        self._closed = False

    def poll(self) -> list[VerifiedDelivery]:
        """Verified deliveries due now."""
        self._ensure_open()
        deliveries = self.client.transport.poll(self.query_id)
        if deliveries:
            # sync after fetching: deliveries reference blocks the SP had
            # when it answered, so the headers fetched now cover them even
            # if more blocks were mined mid-poll
            self.client.sync_headers()
        return [self._verify(delivery) for delivery in deliveries]

    def flush(self) -> list[VerifiedDelivery]:
        """Poll, then drain a lazy subscription's pending evidence."""
        verified = self.poll()
        delivery = self.client.transport.flush(self.query_id)
        if delivery is not None:
            self.client.sync_headers()
            verified.append(self._verify(delivery))
        return verified

    def _verify(self, delivery: Delivery) -> VerifiedDelivery:
        results, stats = self.client.subscriptions.on_delivery(delivery)
        return VerifiedDelivery(
            query_id=delivery.query_id,
            from_height=delivery.from_height,
            up_to_height=delivery.up_to_height,
            results=results,
            stats=stats,
            vo_nbytes=delivery.vo.nbytes(self.client.accumulator.backend),
        )

    def __iter__(self) -> Iterator[VerifiedDelivery]:
        yield from self.poll()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SubscriptionError(f"stream for query {self.query_id} is closed")

    def close(self) -> None:
        """Deregister with the SP and stop tracking; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.client.subscriptions.untrack(self.query_id)
        self.client.transport.deregister(self.query_id)

    def __enter__(self) -> "SubscriptionStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
