"""Client/server API for the vChain reproduction.

The transport-ready surface over the paper's machinery: a fluent
:class:`QueryBuilder`, rich :class:`VerifiedResponse` /
:class:`VerifiedDelivery` results, a :class:`SubscriptionStream`, and
pluggable :class:`Transport` implementations (in-process
:class:`LocalTransport`, length-prefixed :class:`SocketTransport`).
The socket protocol is served either by the asyncio
:class:`AsyncSocketServer` (the default: one event loop, admission
control, rate limits, slow-client eviction) or the thread-per-connection
:class:`SocketServer`.  See ``docs/API.md`` for the guided tour.
"""

from repro.api.aio import AsyncSocketServer, ServerCounters
from repro.api.builder import QueryBuilder
from repro.api.client import SubscriptionStream, VChainClient
from repro.api.options import ClientOptions
from repro.api.response import VerifiedDelivery, VerifiedResponse
from repro.api.service import ClientSession, EndpointStats, ServiceEndpoint
from repro.api.transport import (
    FrameTap,
    LocalTransport,
    SocketServer,
    SocketTransport,
    Transport,
    TransportError,
    dispatch_request,
    perform_request,
)

__all__ = [
    "AsyncSocketServer",
    "ClientOptions",
    "ClientSession",
    "EndpointStats",
    "FrameTap",
    "LocalTransport",
    "QueryBuilder",
    "ServerCounters",
    "ServiceEndpoint",
    "SocketServer",
    "SocketTransport",
    "SubscriptionStream",
    "Transport",
    "TransportError",
    "VChainClient",
    "VerifiedDelivery",
    "VerifiedResponse",
    "dispatch_request",
    "perform_request",
    "serve",
]


def __getattr__(name: str) -> object:
    # ``serve`` is imported lazily so ``python -m repro.api.server`` does
    # not re-import the module it is executing (runpy's double-import
    # warning); everything else stays an eager import.
    if name == "serve":
        from repro.api.server import serve

        return serve
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
