"""Fluent query construction.

A :class:`QueryBuilder` assembles the paper's two query forms —
``⟨[ts, te], [α, β], ϒ⟩`` and ``⟨-, [α, β], ϒ⟩`` — clause by clause,
validating every step *at build time* so malformed queries never reach
a transport::

    client.query() \
        .window(0, 100) \
        .range(low=(180,), high=(250,)) \
        .all_of("Sedan") \
        .any_of("Benz", "BMW") \
        .execute()

``all_of`` adds one single-attribute CNF clause per argument (a pure
conjunction); ``any_of`` adds one disjunctive clause; ``where`` splices
in raw CNF clauses for anything more exotic.  The same builder serves
subscriptions (``client.subscribe()``), where ``window`` is rejected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.query import (
    CNFCondition,
    RangeCondition,
    SubscriptionQuery,
    TimeWindowQuery,
)
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.client import SubscriptionStream, VChainClient
    from repro.api.response import VerifiedResponse


def _as_bound(value: int | tuple[int, ...], label: str) -> tuple[int, ...]:
    if isinstance(value, bool) or value is None:
        raise QueryError(f"range {label} bound must be an int or tuple of ints")
    if isinstance(value, int):
        bound: tuple[int, ...] = (value,)
    else:
        try:
            bound = tuple(value)
        except TypeError:
            raise QueryError(f"range {label} bound must be an int or tuple of ints")
    if not bound or not all(
        isinstance(v, int) and not isinstance(v, bool) for v in bound
    ):
        raise QueryError(f"range {label} bound must be a non-empty tuple of ints")
    if any(v < 0 for v in bound):
        # attribute values live in a non-negative encoded domain, and the
        # wire format would reject negatives at encode time anyway —
        # surface it here so local and remote transports agree
        raise QueryError(f"range {label} bound must be non-negative")
    return bound


class QueryBuilder:
    """Builds a TimeWindowQuery or SubscriptionQuery step by step."""

    def __init__(
        self, client: "VChainClient | None" = None, *, subscription: bool = False
    ) -> None:
        self._client = client
        self._subscription = subscription
        self._window: tuple[int, int] | None = None
        self._numeric: RangeCondition | None = None
        self._clauses: list[frozenset[str]] = []

    # -- the fluent surface ------------------------------------------------
    def window(self, start: int, end: int) -> "QueryBuilder":
        """Restrict to block timestamps in ``[start, end]``."""
        if self._subscription:
            raise QueryError("subscription queries have no time window")
        if self._window is not None:
            raise QueryError("window() was already set")
        if not all(
            isinstance(v, int) and not isinstance(v, bool) for v in (start, end)
        ):
            raise QueryError("window bounds must be ints")
        if start < 0:
            raise QueryError("window bounds must be non-negative")
        if start > end:
            raise QueryError("time window start exceeds end")
        self._window = (start, end)
        return self

    def range(
        self,
        low: int | tuple[int, ...] | None = None,
        high: int | tuple[int, ...] | None = None,
    ) -> "QueryBuilder":
        """Numeric predicate ``V ∈ [low, high]``, component-wise."""
        if self._numeric is not None:
            raise QueryError("range() was already set")
        if low is None or high is None:
            raise QueryError("range() needs both low and high bounds")
        self._numeric = RangeCondition(
            low=_as_bound(low, "low"), high=_as_bound(high, "high")
        )
        return self

    def all_of(self, *attributes: str) -> "QueryBuilder":
        """Require every named attribute (one CNF clause each)."""
        if not attributes:
            raise QueryError("all_of() needs at least one attribute")
        for attribute in attributes:
            self._clauses.append(self._clause([attribute]))
        return self

    def any_of(self, *attributes: str) -> "QueryBuilder":
        """Require at least one of the named attributes (one OR-clause)."""
        if not attributes:
            raise QueryError("any_of() needs at least one attribute")
        self._clauses.append(self._clause(attributes))
        return self

    def where(self, clauses: Iterable[Iterable[str]]) -> "QueryBuilder":
        """Splice raw CNF clauses, ``[["Benz", "BMW"], ["Sedan"]]`` style."""
        appended = [self._clause(clause) for clause in clauses]
        if not appended:
            raise QueryError("where() needs at least one clause")
        self._clauses.extend(appended)
        return self

    @staticmethod
    def _clause(attributes: Iterable[str]) -> frozenset[str]:
        clause = frozenset(attributes)
        if not clause:
            raise QueryError("CNF clause must not be empty")
        if not all(isinstance(a, str) for a in clause):
            raise QueryError("attributes must be strings")
        return clause

    # -- compilation -------------------------------------------------------
    def build(self) -> TimeWindowQuery | SubscriptionQuery:
        """Compile to the matching query dataclass."""
        boolean = (
            CNFCondition(tuple(self._clauses)) if self._clauses else CNFCondition.true()
        )
        if self._subscription:
            return SubscriptionQuery(numeric=self._numeric, boolean=boolean)
        start, end = self._window if self._window is not None else (0, 2**63 - 1)
        return TimeWindowQuery(
            start=start, end=end, numeric=self._numeric, boolean=boolean
        )

    # -- execution through the bound client --------------------------------
    def execute(self, batch: bool | None = None) -> "VerifiedResponse":
        """Run the compiled time-window query and verify the answer."""
        if self._client is None:
            raise QueryError("builder is not bound to a client; use build()")
        if self._subscription:
            raise QueryError("subscription builders open a stream, not execute()")
        query = self.build()
        assert isinstance(query, TimeWindowQuery)
        return self._client.execute(query, batch=batch)

    def open(self, since_height: int | None = None) -> "SubscriptionStream":
        """Register the compiled subscription and open a delivery stream."""
        if self._client is None:
            raise QueryError("builder is not bound to a client; use build()")
        if not self._subscription:
            raise QueryError("time-window builders execute(), they do not open()")
        query = self.build()
        assert isinstance(query, SubscriptionQuery)
        return self._client.stream(query, since_height=since_height)
