"""Pluggable SP↔user transports.

A :class:`Transport` is the client's only handle on a service provider.
Two implementations ship:

* :class:`LocalTransport` — in-process and zero-copy: calls the
  :class:`~repro.api.service.ServiceEndpoint` directly, passing query
  and VO objects by reference.  The default for examples and tests.
* :class:`SocketTransport` / :class:`SocketServer` — a length-prefixed
  frame protocol over TCP.  Every request and response crosses the link
  as canonical :mod:`repro.wire` bytes, so the full protocol is
  exercised end-to-end: a forged group element in a response is
  rejected by ``backend.decode`` while parsing, before any verification
  logic runs.

Frame format: a 4-byte big-endian length followed by the payload.
Requests are :func:`repro.wire.encode_request` bytes; responses carry a
status byte (``0`` ok, ``1`` error) followed by the per-request body.
Server-side errors are re-raised client-side as the matching exception
class.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
import warnings
from typing import Callable, Protocol

from repro.chain.block import BlockHeader
from repro.chain.object import DataObject
from repro.core.prover import QueryStats
from repro.core.query import SubscriptionQuery, TimeWindowQuery
from repro.core.vo import TimeWindowVO
from repro.crypto.backend import PairingBackend
from repro.errors import (
    CryptoError,
    DeadlineExpiredError,
    QueryError,
    ReproError,
    ServerBusyError,
    SubscriptionError,
    VerificationError,
)
from repro.subscribe.engine import Delivery
from repro.wire import (
    BareRequest,
    DeregisterRequest,
    EnvelopeRequest,
    FlushRequest,
    HeadersRequest,
    PollRequest,
    QueryRequest,
    RegisterRequest,
    ServerStats,
    StatsRequest,
    WireError,
    decode_deliveries,
    decode_error,
    decode_flush_response,
    decode_headers_response,
    decode_query_response,
    decode_register_response,
    decode_request,
    decode_stats_response,
    encode_deliveries,
    encode_error,
    encode_flush_response,
    encode_headers_response,
    encode_query_response,
    encode_register_response,
    encode_request,
    encode_stats_response,
    peek_deadline,
)
from repro.api.options import ClientOptions
from repro.api.service import ClientSession, ServiceEndpoint

_STATUS_OK = 0
_STATUS_ERROR = 1

#: a response frame may carry a large VO, but never gigabytes
MAX_FRAME_NBYTES = 1 << 30

#: error-kind tags carried in error responses, mapped back to classes
_ERROR_CLASSES: dict[str, type[ReproError]] = {
    "query": QueryError,
    "subscription": SubscriptionError,
    "verification": VerificationError,
    "wire": WireError,
    "crypto": CryptoError,
    "busy": ServerBusyError,
    "deadline": DeadlineExpiredError,
    "error": ReproError,
}


def _error_kind(exc: ReproError) -> str:
    for kind, cls in _ERROR_CLASSES.items():
        if kind != "error" and isinstance(exc, cls):
            return kind
    return "error"


class TransportError(ReproError):
    """The transport link itself failed (closed socket, bad frame)."""


#: Observer of raw frames crossing a transport: ``(channel, event,
#: payload)`` where ``event`` is ``"request"`` or ``"response"`` and
#: ``payload`` is the frame body exactly as it crossed the wire (inside
#: the 4-byte length prefix).  ``channel`` numbers the connection the
#: frame used — a client transport bumps it on every reconnect, a server
#: assigns one per accepted connection.  Taps observe *everything*,
#: including error frames, and must be cheap and non-raising; the
#: recorders in :mod:`repro.testing` are the intended consumers.
FrameTap = Callable[[int, str, bytes], None]


class Transport(Protocol):
    """What a client needs from a service provider, typed end to end."""

    def time_window_query(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]: ...

    def register(
        self, query: SubscriptionQuery, since_height: int | None = None
    ) -> tuple[int, int]: ...

    def deregister(self, query_id: int) -> None: ...

    def poll(self, query_id: int) -> list[Delivery]: ...

    def flush(self, query_id: int) -> Delivery | None: ...

    def headers(self, from_height: int = 0) -> list[BlockHeader]: ...

    def server_stats(self) -> ServerStats: ...

    def close(self) -> None: ...


class LocalTransport:
    """In-process transport: zero-copy calls into a ServiceEndpoint."""

    def __init__(self, endpoint: ServiceEndpoint) -> None:
        self.endpoint = endpoint

    def time_window_query(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
        return self.endpoint.time_window_query(query, batch=batch)

    def register(
        self, query: SubscriptionQuery, since_height: int | None = None
    ) -> tuple[int, int]:
        return self.endpoint.register(query, since_height=since_height)

    def deregister(self, query_id: int) -> None:
        self.endpoint.deregister(query_id)

    def poll(self, query_id: int) -> list[Delivery]:
        return self.endpoint.poll(query_id)

    def flush(self, query_id: int) -> Delivery | None:
        return self.endpoint.flush(query_id)

    def headers(self, from_height: int = 0) -> list[BlockHeader]:
        return self.endpoint.headers(from_height)

    def server_stats(self) -> ServerStats:
        return self.endpoint.server_stats()

    def close(self) -> None:
        pass


# -- framing ------------------------------------------------------------------
def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def _recv_exact(sock: socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = struct.unpack(">I", _recv_exact(sock, 4))
    if length > MAX_FRAME_NBYTES:
        raise TransportError("frame exceeds sanity bound")
    return _recv_exact(sock, length)


#: sentinel distinguishing "not passed" from an explicit ``timeout=None``
_TIMEOUT_UNSET: float = -1.0


def _resolve_options(
    options: ClientOptions | None, timeout: float | None, caller: str
) -> ClientOptions:
    """Fold the deprecated ``timeout=`` kwarg into :class:`ClientOptions`."""
    if timeout == _TIMEOUT_UNSET:
        return options or ClientOptions()
    warnings.warn(
        f"{caller}(timeout=...) is deprecated; pass options="
        "ClientOptions(connect_timeout=..., request_deadline=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    if options is not None:
        raise ValueError("pass either the deprecated timeout= or options=, not both")
    return ClientOptions(connect_timeout=timeout, request_deadline=timeout)


class SocketTransport:
    """Client side of the length-prefixed TCP protocol.

    Behaviour is configured through one :class:`ClientOptions` bag:
    ``connect_timeout`` bounds dialing, ``request_deadline`` bounds
    every request (client-side socket timeout *and* a server-side
    deadline carried in the request envelope), and ``retries`` /
    ``backoff`` govern reconnect-and-retry for idempotent requests and
    :class:`~repro.errors.ServerBusyError` rejections.

    The ``timeout=`` kwarg is the deprecated pre-:class:`ClientOptions`
    form and maps to ``connect_timeout=timeout, request_deadline=
    timeout`` (its historical meaning).
    """

    def __init__(
        self,
        address: tuple[str, int],
        backend: PairingBackend,
        timeout: float | None = _TIMEOUT_UNSET,
        *,
        options: ClientOptions | None = None,
        tap: FrameTap | None = None,
    ) -> None:
        self.backend = backend
        self.address = address
        self.options = _resolve_options(options, timeout, "SocketTransport")
        self._tap = tap
        self._channel = 0
        self._lock = threading.Lock()
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        opts = self.options
        last: Exception | None = None
        for attempt in range(opts.retries + 1):
            if attempt:
                time.sleep(opts.backoff * (2 ** (attempt - 1)))
            try:
                sock = socket.create_connection(
                    self.address, timeout=opts.connect_timeout
                )
                sock.settimeout(opts.request_deadline)
                return sock
            except OSError as exc:
                last = exc
        raise TransportError(f"could not connect to {self.address}: {last}") from last

    def _reconnect(self) -> None:
        with self._lock:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = self._connect()
            self._channel += 1

    def _request(self, payload: bytes) -> bytes:
        with self._lock:
            if self._tap is not None:
                self._tap(self._channel, "request", payload)
            _send_frame(self._sock, payload)
            response = _recv_frame(self._sock)
            if self._tap is not None:
                self._tap(self._channel, "response", response)
        if not response:
            raise TransportError("empty response frame")
        status, body = response[0], response[1:]
        if status == _STATUS_OK:
            return body
        if status == _STATUS_ERROR:
            kind, message = decode_error(body)
            raise _ERROR_CLASSES.get(kind, ReproError)(message)
        raise TransportError(f"unknown response status {status}")

    def _call(self, request: BareRequest, *, idempotent: bool) -> bytes:
        """One request with the options-driven retry policy.

        Busy rejections are safe to retry for every request kind (the
        server rejected before doing any work).  Link failures retry
        only idempotent requests — a resent ``register`` could double-
        register if the loss hit the response, not the request.
        """
        deadline_ms = self.options.deadline_ms()
        wire_request: BareRequest | EnvelopeRequest = request
        if deadline_ms is not None:
            wire_request = EnvelopeRequest(request=request, deadline_ms=deadline_ms)
        payload = encode_request(wire_request)
        last: Exception | None = None
        for attempt in range(self.options.retries + 1):
            if attempt:
                time.sleep(self.options.backoff * (2 ** (attempt - 1)))
            try:
                return self._request(payload)
            except ServerBusyError as exc:
                last = exc  # rejected pre-execution; the link is fine
            except (TransportError, OSError) as exc:
                last = exc
                if not idempotent:
                    raise
                try:
                    self._reconnect()
                except TransportError as reconnect_exc:
                    last = reconnect_exc
        assert last is not None
        raise last

    def time_window_query(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
        body = self._call(QueryRequest(query=query, batch=batch), idempotent=True)
        return decode_query_response(self.backend, body)

    def register(
        self, query: SubscriptionQuery, since_height: int | None = None
    ) -> tuple[int, int]:
        body = self._call(
            RegisterRequest(query=query, since_height=since_height), idempotent=False
        )
        return decode_register_response(body)

    def deregister(self, query_id: int) -> None:
        self._call(DeregisterRequest(query_id=query_id), idempotent=False)

    def poll(self, query_id: int) -> list[Delivery]:
        body = self._call(PollRequest(query_id=query_id), idempotent=False)
        return decode_deliveries(self.backend, body)

    def flush(self, query_id: int) -> Delivery | None:
        body = self._call(FlushRequest(query_id=query_id), idempotent=False)
        return decode_flush_response(self.backend, body)

    def headers(self, from_height: int = 0) -> list[BlockHeader]:
        body = self._call(HeadersRequest(from_height=from_height), idempotent=True)
        return decode_headers_response(body)

    def server_stats(self) -> ServerStats:
        return decode_stats_response(self._call(StatsRequest(), idempotent=True))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: signature of :meth:`ServiceEndpoint.time_window_query` — servers that
#: already run request handlers *on* the endpoint's worker pool pass
#: :meth:`ServiceEndpoint.query_inline` instead, to avoid a pool deadlock
QueryRunner = Callable[
    [TimeWindowQuery, bool | None],
    tuple[list[DataObject], TimeWindowVO, QueryStats],
]


def perform_request(
    endpoint: ServiceEndpoint,
    backend: PairingBackend,
    request: BareRequest,
    session: "ClientSession | None" = None,
    *,
    deadline_at: float | None = None,
    query_runner: QueryRunner | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> bytes:
    """Run one decoded request and encode its response body.

    Raises on failure; :func:`dispatch_request` owns the framing and
    error-to-frame mapping.  ``deadline_at`` is a ``clock()`` instant
    (``time.monotonic()`` by default): requests already past it are
    abandoned up front rather than charged against the worker pool.
    """
    if deadline_at is not None and clock() >= deadline_at:
        raise DeadlineExpiredError("deadline expired before execution")
    if isinstance(request, QueryRequest):
        run = query_runner if query_runner is not None else endpoint.time_window_query
        results, vo, stats = run(request.query, request.batch)
        return encode_query_response(backend, results, vo, stats)
    if isinstance(request, RegisterRequest):
        query_id, since = endpoint.register(
            request.query, since_height=request.since_height
        )
        if session is not None:
            session.track(query_id)
        return encode_register_response(query_id, since)
    if isinstance(request, DeregisterRequest):
        endpoint.deregister(request.query_id)
        if session is not None:
            session.untrack(request.query_id)
        return b""
    if isinstance(request, PollRequest):
        return encode_deliveries(backend, endpoint.poll(request.query_id))
    if isinstance(request, FlushRequest):
        return encode_flush_response(backend, endpoint.flush(request.query_id))
    if isinstance(request, StatsRequest):
        return encode_stats_response(endpoint.server_stats())
    return encode_headers_response(endpoint.headers(request.from_height))


def dispatch_request(
    endpoint: ServiceEndpoint,
    backend: PairingBackend,
    payload: bytes,
    session: "ClientSession | None" = None,
    *,
    query_runner: QueryRunner | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> bytes:
    """Decode one request frame, run it, encode the response frame body.

    With a ``session``, subscription registrations are tracked so the
    transport can deregister them when the connection drops.  Errors —
    including non-:class:`ReproError` server bugs — become error frames
    rather than escaping, so one bad request never kills a connection
    handler (per-session error isolation).

    If the frame is a deadline envelope, the budget is enforced twice:
    expired-on-arrival requests are rejected before any work, and a
    result whose deadline lapsed mid-execution is discarded in favour of
    a ``deadline`` error frame (the client has already given up on it).
    """
    try:
        deadline_ms, inner = peek_deadline(payload)
        deadline_at = (
            clock() + deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        request = decode_request(inner)
        assert not isinstance(request, EnvelopeRequest)  # peek_deadline unwrapped it
        body = perform_request(
            endpoint,
            backend,
            request,
            session=session,
            deadline_at=deadline_at,
            query_runner=query_runner,
            clock=clock,
        )
        if deadline_at is not None and clock() >= deadline_at:
            raise DeadlineExpiredError("deadline expired during execution")
    except ReproError as exc:
        return bytes([_STATUS_ERROR]) + encode_error(_error_kind(exc), str(exc))
    except Exception as exc:  # isolate server bugs to the offending request
        return bytes([_STATUS_ERROR]) + encode_error(
            "error", f"internal server error: {exc}"
        )
    return bytes([_STATUS_OK]) + body


class SocketServer:
    """Serves one ServiceEndpoint over TCP.

    One lightweight *reader* thread per connection parses frames and
    writes responses; the actual query work runs on the endpoint's
    worker pool, so connection count and query concurrency are
    independent knobs.  A slow or hung client occupies only its own
    reader thread — never a pool worker, never another client's
    connection — and ``idle_timeout`` reaps connections that stop
    sending frames.  Each connection gets a
    :class:`~repro.api.service.ClientSession`; its subscriptions are
    deregistered when the connection ends, however it ends.
    """

    def __init__(
        self,
        endpoint: ServiceEndpoint,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        idle_timeout: float | None = None,
    ) -> None:
        self.endpoint = endpoint
        self.backend = endpoint.sp.accumulator.backend
        self.idle_timeout = idle_timeout
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._threads: set[threading.Thread] = set()
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._accept_thread: threading.Thread | None = None
        self._closing = False

    def start(self) -> "SocketServer":
        """Accept connections on a background daemon thread."""
        thread = threading.Thread(
            target=self._accept_loop, name="vchain-socket-server", daemon=True
        )
        with self._conn_lock:
            self._accept_thread = thread
        thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.settimeout(self.idle_timeout)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._conn_lock:
                self._conns.add(conn)
                self._threads.add(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        # requests on one connection are served strictly in order; the
        # endpoint runs queries on its worker pool and serialises
        # subscription state itself, so concurrent clients are safe
        session = self.endpoint.session()
        try:
            while not self._closing:
                try:
                    payload = _recv_frame(conn)
                except (TransportError, OSError):
                    return  # client hung up, timed out, or sent garbage
                response = dispatch_request(
                    self.endpoint, self.backend, payload, session=session
                )
                try:
                    _send_frame(conn, response)
                except OSError:
                    return
        finally:
            session.close()
            with self._conn_lock:
                self._conns.discard(conn)
                # prune ourselves so a long-lived server does not hoard
                # one dead Thread object per connection ever served
                self._threads.discard(threading.current_thread())
            try:
                conn.close()
            except OSError:
                pass

    def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop serving.  With ``drain``, in-flight requests finish and
        their responses are sent before connections close; without it,
        connections are torn down immediately.

        ``timeout`` is a total budget shared by every join in the
        shutdown (accept thread included), not a per-thread allowance.
        Threads still alive when it runs out are reported with a
        ``RuntimeWarning`` naming them — a hung prover is something the
        operator should hear about, not something ``stop()`` swallows.
        """
        budget_end = time.monotonic() + timeout
        with self._conn_lock:
            self._closing = True
        try:
            # close() alone does not wake a thread blocked in accept()
            # on Linux; shutdown() does, so the accept thread exits now
            # instead of silently eating the join budget
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        stragglers: list[threading.Thread] = []
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=max(0.0, budget_end - time.monotonic()))
            if self._accept_thread.is_alive():
                stragglers.append(self._accept_thread)
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                # half-close: readers see EOF and exit after finishing
                # (and answering) the request they are working on
                conn.shutdown(socket.SHUT_RD if drain else socket.SHUT_RDWR)
            except OSError:
                pass
        with self._conn_lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=max(0.0, budget_end - time.monotonic()))
            if thread.is_alive():
                stragglers.append(thread)
        with self._conn_lock:
            leftovers = list(self._conns)
        for conn in leftovers:
            try:
                conn.close()
            except OSError:
                pass
        if stragglers:
            names = ", ".join(t.name for t in stragglers)
            warnings.warn(
                f"SocketServer.stop() timed out after {timeout}s with "
                f"{len(stragglers)} thread(s) still running: {names}",
                RuntimeWarning,
                stacklevel=2,
            )

    def __enter__(self) -> "SocketServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
