"""Long-lived SP daemon: serve a persisted chain over the socket protocol.

The missing piece between "a chain directory on disk" and "a service a
client can dial": reopen the durable chain (recovering and re-validating
it), wrap it in a :class:`~repro.api.service.ServiceEndpoint`, and serve
the full SP↔user wire protocol over TCP until interrupted.  Because the
chain is file-backed, the daemon can be killed and relaunched at will —
clients reconnect and get byte-identical, verifiable answers.

Run it as a module::

    python -m repro.api.server --data-dir ./chain-data --port 9090

Clients in other processes reconstruct the deployment from the same
directory::

    from repro.api import VChainClient
    from repro.storage import open_deployment

    accumulator, encoder, params = open_deployment("./chain-data")
    client = VChainClient.connect(("127.0.0.1", 9090), accumulator,
                                  encoder, params)

(The manifest's setup seed regenerates the *whole* KeyGen, trapdoor
included — a stand-in for a trusted-setup ceremony, not public key
material; see :func:`repro.storage.bootstrap.open_deployment`.)

``serve()`` is the embeddable form: it returns the running server
(whose endpoint owns the store) and leaves the waiting/shutdown
choreography to the caller.  The default server is the asyncio
:class:`~repro.api.aio.AsyncSocketServer` — one event loop multiplexing
every connection, with admission control, per-client rate limits and
slow-client eviction; ``--threaded`` (or ``threaded=True``) restores
the thread-per-connection :class:`~repro.api.transport.SocketServer`.
"""

from __future__ import annotations

import argparse
import os
from typing import Any, Sequence

from repro.api.aio import AsyncSocketServer
from repro.api.service import ServiceEndpoint
from repro.api.transport import FrameTap, SocketServer


def serve(
    data_dir: str | os.PathLike[str] | Sequence[str | os.PathLike[str]],
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    threaded: bool = False,
    idle_timeout: float | None = None,
    max_inflight: int | None = None,
    rate_limit: float | None = None,
    tap: FrameTap | None = None,
    **endpoint_options: Any,
) -> SocketServer | AsyncSocketServer:
    """Reopen ``data_dir`` and serve it; returns the started server.

    ``server.stop()`` followed by ``server.endpoint.close()`` shuts the
    whole stack down, syncing the store.  ``endpoint_options`` are
    forwarded to :meth:`ServiceEndpoint.open` (``max_workers=``,
    ``cache_fragments=``, ``lazy=``, ...).

    ``max_inflight`` and ``rate_limit`` are the async server's traffic
    hygiene knobs; ``idle_timeout`` applies to the threaded server.
    ``tap`` (async server only) observes every frame the server moves —
    the hook the :mod:`repro.testing` session recorder plugs into.
    """
    if threaded and tap is not None:
        raise ValueError("frame taps require the async server (threaded=False)")
    endpoint = ServiceEndpoint.open(data_dir, **endpoint_options)
    try:
        server: SocketServer | AsyncSocketServer
        if threaded:
            server = SocketServer(endpoint, host, port, idle_timeout=idle_timeout)
        else:
            server = AsyncSocketServer(
                endpoint,
                host,
                port,
                max_inflight=max_inflight,
                rate_limit=rate_limit,
                tap=tap,
            )
    except Exception:
        endpoint.close()
        raise
    try:
        return server.start()
    except Exception:
        endpoint.close()
        raise


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.server",
        description="Serve a persisted vChain chain directory over TCP.",
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        help="chain directory (VChainNetwork.create(data_dir=...)); for a "
        "striped deployment, its parent directory of node-* stripe dirs",
    )
    parser.add_argument(
        "--stripe-dirs",
        default=None,
        metavar="DIR,DIR,...",
        help="comma-separated surviving stripe directories of a striped "
        "deployment (standby failover: any quorum able to reconstruct "
        "the chain is enough); alternative to --data-dir",
    )
    parser.add_argument(
        "--parity",
        type=int,
        default=None,
        metavar="M",
        help="assert the deployment was created with this many parity "
        "stripes (refuses to serve a mismatched manifest)",
    )
    parser.add_argument(
        "--scrub-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run the endpoint-owned background scrubber every this many "
        "seconds (striped stores only)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--max-workers", type=int, default=8, help="concurrent query threads"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="crypto worker processes (1 = serial, 0 = one per core); "
        "proving and subscription work fan out across them",
    )
    parser.add_argument(
        "--threaded",
        action="store_true",
        help="serve with the thread-per-connection SocketServer instead "
        "of the default asyncio server",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        help="seconds before an idle connection is reaped (0 disables; "
        "threaded server only)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission gate: reject (typed busy error) once this many "
        "requests are in flight (async server only)",
    )
    parser.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="per-client requests/second token bucket (async server only)",
    )
    parser.add_argument(
        "--accel",
        default=None,
        choices=("auto", "pure", "gmpy2", "native"),
        help="arithmetic provider for the crypto hot loops (default: "
        "probe for the fastest installed; results are byte-identical "
        "under every choice)",
    )
    parser.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on append (only matters if embedded miners write)",
    )
    parser.add_argument(
        "--record",
        default=None,
        metavar="PATH",
        help="write every frame served to this .vrec recording on "
        "shutdown (async server only; see repro.testing)",
    )
    args = parser.parse_args(argv)
    if args.record and args.threaded:
        parser.error("--record requires the async server (drop --threaded)")
    if (args.data_dir is None) == (args.stripe_dirs is None):
        parser.error("exactly one of --data-dir / --stripe-dirs is required")
    target: str | list[str] = args.data_dir
    if args.stripe_dirs is not None:
        target = [d for d in args.stripe_dirs.split(",") if d]
        if not target:
            parser.error("--stripe-dirs needs at least one directory")

    if args.accel is not None:
        from repro.crypto.accel import dispatch

        dispatch.set_impl(args.accel)

    recorder = None
    tap: FrameTap | None = None
    if args.record:
        from repro.testing import SessionRecorder

        recorder = SessionRecorder(label="server-session")
        tap = recorder.tap()

    server = serve(
        target,
        args.host,
        args.port,
        threaded=args.threaded,
        idle_timeout=args.idle_timeout or None,
        max_inflight=args.max_inflight,
        rate_limit=args.rate_limit,
        tap=tap,
        max_workers=args.max_workers,
        workers=args.workers,
        fsync=not args.no_fsync,
        scrub_interval=args.scrub_interval,
    )
    endpoint = server.endpoint
    if args.parity is not None:
        health = endpoint.storage_health()
        if health is None or health["m"] != args.parity:
            found = "an unstriped store" if health is None else f"m={health['m']}"
            server.stop(drain=False)
            endpoint.close()
            parser.error(f"--parity {args.parity} but the deployment has {found}")
    host, port = server.address
    shown = target if isinstance(target, str) else ",".join(target)
    print(
        f"serving {shown} ({len(endpoint.sp.chain)} blocks) "
        f"on {host}:{port} — Ctrl-C to stop",
        flush=True,
    )
    try:
        # the accept loop runs on a daemon thread; park the main thread.
        # SIGTERM (systemd/docker stop) must take the same graceful path
        # as Ctrl-C, or the store's per-node LOCK files are left stale.
        import signal
        import threading

        def _sigterm(signum: int, frame: object) -> None:
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _sigterm)
        threading.Event().wait()
    except KeyboardInterrupt:
        print("stopping...", flush=True)
    finally:
        server.stop(drain=True)
        endpoint.close()
        if recorder is not None:
            recorder.save(args.record)
            frames = len(recorder.recording().frames)
            print(f"recorded {frames} frame(s) to {args.record}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
