"""Server-side request dispatcher.

:class:`ServiceEndpoint` is the one object a transport talks to on the
SP side.  It owns the query processor (through the
:class:`~repro.core.sp.ServiceProvider`) and one
:class:`~repro.subscribe.engine.SubscriptionEngine`, multiplexes every
registered subscription over newly mined blocks, and queues deliveries
per query until the subscriber polls.  Both the in-process
:class:`~repro.api.transport.LocalTransport` and the socket server
dispatch into the same endpoint, so local and remote answers are
identical by construction.

Concurrency model: time-window queries are **read-only** against the
append-only chain, so they run on a worker pool (``max_workers``
concurrent queries; excess callers queue) instead of serialising behind
the endpoint lock.  Proving work is amortised across workers through a
shared :class:`~repro.cache.VOFragmentCache` and
:class:`~repro.cache.ProofCache` — VOs are recomputable, so overlapping
windows and repeated conditions reuse per-block fragments and
disjointness proofs instead of re-proving.  Subscription state (the
engine, the delivery queues) stays behind one lock, because
registration order and block ingestion must be serialised anyway.

Each transport connection gets a :class:`ClientSession`; when the
connection drops, the session deregisters every subscription it opened
so a vanished client cannot leak engine state.  ``close()`` drains the
worker pool for a graceful shutdown.

Block ingestion is pull-based: each ``poll``/``flush`` first feeds any
chain blocks the engine has not seen yet, in height order.  This keeps
the endpoint free of callbacks into the miner — it only ever reads
``sp.chain``.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, cast

from repro.cache import CacheStats, ProofCache, VOFragmentCache
from repro.chain.block import BlockHeader
from repro.chain.object import DataObject
from repro.core.prover import QueryStats
from repro.core.query import SubscriptionQuery, TimeWindowQuery
from repro.core.sp import ServiceProvider
from repro.core.vo import TimeWindowVO
from repro.crypto.accel import dispatch
from repro.errors import ReproError, SubscriptionError
from repro.parallel import CryptoPool, ParallelConfig, make_pool
from repro.subscribe.engine import Delivery, SubscriptionEngine
from repro.wire import Scalar, ServerStats


@dataclass
class EndpointStats:
    """Serving counters across one endpoint's lifetime.

    Increment through :meth:`bump` — counters are hit from every reader
    and worker thread, and an unsynchronised ``+=`` loses updates.
    Every bump also wakes :meth:`wait_for`, which is how tests observe
    a counter crossing a threshold without sleep-and-poll loops.
    """

    queries: int = 0
    registrations: int = 0
    deregistrations: int = 0
    polls: int = 0
    flushes: int = 0
    header_syncs: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    _cond: threading.Condition = field(
        default_factory=threading.Condition, repr=False, compare=False
    )

    def bump(self, counter: str) -> None:
        with self._cond:
            setattr(self, counter, getattr(self, counter) + 1)
            self._cond.notify_all()

    def wait_for(self, counter: str, minimum: int = 1, timeout: float = 10.0) -> bool:
        """Block until ``counter`` reaches ``minimum``; False on timeout."""
        with self._cond:
            reached = self._cond.wait_for(
                lambda: getattr(self, counter) >= minimum, timeout=timeout
            )
        return bool(reached)

    def as_dict(self) -> dict[str, int]:
        """Coherent snapshot of every counter."""
        with self._cond:
            return {
                "queries": self.queries,
                "registrations": self.registrations,
                "deregistrations": self.deregistrations,
                "polls": self.polls,
                "flushes": self.flushes,
                "header_syncs": self.header_syncs,
                "sessions_opened": self.sessions_opened,
                "sessions_closed": self.sessions_closed,
            }


class ClientSession:
    """Per-connection state: the subscriptions this client opened.

    Transports create one session per connection and ``close()`` it when
    the connection ends (cleanly or not); every subscription the session
    still owns is deregistered, so a hung or vanished client cannot leak
    engine registrations or delivery queues.
    """

    def __init__(self, endpoint: "ServiceEndpoint") -> None:
        self.endpoint = endpoint
        self._query_ids: set[int] = set()
        self._lock = threading.Lock()
        self._closed = False

    def track(self, query_id: int) -> None:
        with self._lock:
            self._query_ids.add(query_id)

    def untrack(self, query_id: int) -> None:
        with self._lock:
            self._query_ids.discard(query_id)

    def close(self) -> None:
        """Deregister everything this session still owns; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            orphans = list(self._query_ids)
            self._query_ids.clear()
        for query_id in orphans:
            try:
                self.endpoint.deregister(query_id)
            except SubscriptionError:
                pass  # already deregistered through another path
        self.endpoint.counters.bump("sessions_closed")


class ServiceEndpoint:
    """Dispatches the full SP↔user protocol against one service provider."""

    def __init__(
        self,
        sp: ServiceProvider,
        *,
        use_iptree: bool = True,
        lazy: bool = False,
        iptree_dims: int | None = None,
        iptree_max_depth: int = 6,
        max_workers: int = 8,
        cache_fragments: int = 512,
        cache_proofs: int = 4096,
        workers: int = 1,
        parallel: ParallelConfig | None = None,
        scrub_interval: float | None = None,
        scrub_batch: int = 64,
    ) -> None:
        """``max_workers`` bounds concurrent query execution (1 restores
        the serial dispatcher); ``cache_fragments``/``cache_proofs``
        size the per-endpoint VO-fragment and proof caches (0 disables
        either).

        ``scrub_interval`` (seconds) starts an endpoint-owned background
        scrubber for a striped store: every interval it verifies the
        next ``scrub_batch`` block heights' stripes, repairs deviations
        and rebuilds lost node directories (see
        :meth:`repro.storage.StripedBlockStore.scrub_step`).  A
        non-positive interval raises :class:`ValueError`; the option is
        ignored when the chain's store has no scrubber (plain file or
        in-memory stores).

        ``workers`` scales the *crypto*, not the dispatch: >1 starts a
        :class:`~repro.parallel.CryptoPool` of worker processes that
        the query processor and subscription engine fan proving across
        (``parallel`` accepts a full
        :class:`~repro.parallel.ParallelConfig` instead).  The endpoint
        owns a pool it started and closes it on :meth:`close`; with the
        default ``workers=1`` it simply inherits whatever pool the
        :class:`~repro.core.sp.ServiceProvider` was built with.  Run at
        most one ``workers>1`` endpoint per SP at a time: the query
        processor is shared, so the most recently constructed
        endpoint's pool serves its queries.
        """
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if scrub_interval is not None and scrub_interval <= 0:
            raise ValueError("scrub_interval must be positive (seconds)")
        self.sp = sp
        self.max_workers = max_workers
        self.counters = EndpointStats()
        self.fragment_cache = VOFragmentCache(cache_fragments)
        self.proof_cache = ProofCache(sp.accumulator, sp.encoder, cache_proofs)
        self._owned_pool: CryptoPool | None = None
        # inherit the pool the SP was *built* with — never another
        # endpoint's transient pool picked off sp.processor
        self._inherited_pool: CryptoPool | None = getattr(sp, "pool", None)
        pool = self._inherited_pool
        if workers != 1 or parallel is not None:
            self._owned_pool = make_pool(
                sp.accumulator, sp.encoder, workers=workers, config=parallel
            )
        try:
            if self._owned_pool is not None:
                pool = self._owned_pool
                sp.processor.pool = pool
            self.engine = SubscriptionEngine(
                sp.accumulator,
                sp.encoder,
                sp.params,
                use_iptree=use_iptree,
                lazy=lazy,
                iptree_dims=iptree_dims,
                iptree_max_depth=iptree_max_depth,
                proof_cache=self.proof_cache,
                pool=pool,
            )
        except Exception:
            # a bad engine option must not leak live worker processes
            if self._owned_pool is not None:
                sp.processor.pool = self._inherited_pool
                self._owned_pool.close()
                self._owned_pool = None
            raise
        self._queues: dict[int, deque[Delivery]] = {}
        self._ingested = 0  # chain height the engine has processed up to
        # one endpoint may serve many transports (and the socket server
        # runs one reader thread per connection): every entrypoint that
        # touches the engine or the queues holds this lock.  Queries do
        # NOT take it — they go through the worker pool instead.
        self._lock = threading.RLock()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="vchain-sp-worker"
        )
        self._closed = False
        self._owns_store = False
        self._server_counters: Callable[[], dict[str, int]] | None = None
        # background scrubbing (striped stores only): a daemon thread
        # calls scrub_step every interval until close() sets the event
        self._scrub_stop = threading.Event()
        self._scrub_thread: threading.Thread | None = None
        self._scrub_batch = scrub_batch
        if scrub_interval is not None and hasattr(sp.chain.store, "scrub_step"):
            self._scrub_thread = threading.Thread(
                target=self._scrub_loop,
                args=(scrub_interval,),
                name="vchain-scrubber",
                daemon=True,
            )
            self._scrub_thread.start()

    @classmethod
    def open(
        cls,
        data_dir: str | os.PathLike[str] | Sequence[str | os.PathLike[str]],
        *,
        fsync: bool = True,
        **endpoint_options: Any,
    ) -> "ServiceEndpoint":
        """Serve a chain directory written by a previous process.

        Reopens the durable chain (re-validating every recovered
        header), reconstructs the SP from the persisted trusted setup,
        and wraps it in an endpoint that **owns** the store —
        ``close()`` also closes the underlying files.
        ``endpoint_options`` are the regular constructor options
        (``max_workers=``, ``cache_fragments=``, ...).

        ``data_dir`` also takes a striped deployment — a parent
        directory of ``node-*`` stripe dirs, or an explicit sequence of
        surviving ones.  This is the standby-SP takeover path: point a
        fresh process at whatever directories outlived the primary.
        """
        sp = ServiceProvider.open(data_dir, fsync=fsync)
        try:
            endpoint = cls(sp, **endpoint_options)
        except Exception:
            sp.close()  # bad endpoint options must not leak open store files
            raise
        endpoint._owns_store = True
        return endpoint

    # -- sessions ----------------------------------------------------------
    def session(self) -> ClientSession:
        """A new per-connection session (transports close it on drop)."""
        self.counters.bump("sessions_opened")
        return ClientSession(self)

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, wait: bool = True) -> None:
        """Stop accepting work; with ``wait``, drain in-flight queries.

        An endpoint constructed through :meth:`open` also closes the
        chain's backing store, so the data directory is cleanly synced
        when the endpoint shuts down."""
        with self._lock:
            self._closed = True
            owned, self._owned_pool = self._owned_pool, None
        self._scrub_stop.set()
        if self._scrub_thread is not None:
            self._scrub_thread.join(timeout=10.0)
        self._pool.shutdown(wait=wait)
        if owned is not None:
            # hand the processor back its original pool before stopping
            # ours — but only if we are still the one wired in (another
            # endpoint on the same SP may have installed its own since)
            if self.sp.processor.pool is owned:
                self.sp.processor.pool = self._inherited_pool
            owned.close(wait=wait)
        if self._owns_store:
            self.sp.close()

    def __enter__(self) -> "ServiceEndpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _scrub_loop(self, interval: float) -> None:
        """Body of the endpoint-owned scrubber thread.

        Runs until :meth:`close`; a scrub failure (e.g. the store closed
        under it during shutdown) ends the loop rather than killing the
        process — scrubbing is maintenance, not correctness.
        """
        store = self.sp.chain.store
        while not self._scrub_stop.wait(interval):
            try:
                store.scrub_step(self._scrub_batch)
            except ReproError:
                break

    def storage_health(self) -> dict[str, Scalar] | None:
        """The chain store's health counters, or ``None`` for stores
        without degradation tracking (memory, plain file)."""
        health = getattr(self.sp.chain.store, "health", None)
        if health is None:
            return None
        return cast("dict[str, Scalar]", health())

    def cache_stats(self) -> dict[str, CacheStats]:
        """Snapshot of both serving caches, keyed ``fragments``/``proofs``."""
        return {
            "fragments": self.fragment_cache.stats(),
            "proofs": self.proof_cache.stats(),
        }

    @property
    def pool(self) -> CryptoPool | None:
        """The live :class:`~repro.parallel.CryptoPool`, if any."""
        return self._owned_pool or self._inherited_pool

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The query worker pool, for transports that schedule into it.

        The async socket server dispatches every request body through
        ``loop.run_in_executor(endpoint.executor, ...)`` so connection
        multiplexing (the event loop) and crypto concurrency
        (``max_workers``) stay independent knobs — exactly as they are
        for the threaded server.
        """
        return self._pool

    def attach_server(self, counters: Callable[[], dict[str, int]] | None) -> None:
        """Register (or clear) a socket server's counter snapshot.

        A running server attaches its transport-level counters —
        admission rejections, rate limiting, evictions — so one
        :meth:`stats` call covers the whole serving stack.  Pass
        ``None`` on server stop.
        """
        with self._lock:
            self._server_counters = counters

    def stats(self) -> dict[str, object]:
        """One observability snapshot: endpoint, caches, engine, pool,
        and — when a socket server is attached — its transport counters.

        Everything a load generator or dashboard needs, as plain JSON-
        ready dicts (see ``benchmarks/bench_load.py`` for the consumer).
        """
        engine = self.engine.stats
        pool = self.pool
        server = self._server_counters
        return {
            "endpoint": self.counters.as_dict(),
            "caches": {
                "fragments": self.fragment_cache.stats().as_info(),
                "proofs": self.proof_cache.stats().as_info(),
            },
            "engine": {
                "proofs_computed": engine.proofs_computed,
                "proofs_shared": engine.proofs_shared,
                "deliveries": engine.deliveries,
                "parallel_tasks": engine.parallel_tasks,
            },
            "pool": pool.stats().as_info() if pool is not None else None,
            "server": server() if server is not None else None,
            "storage": self.storage_health(),
            "accel": dispatch.active_impl(),
        }

    def server_stats(self) -> ServerStats:
        """The :meth:`stats` snapshot in its typed, wire-ready form.

        This is what :class:`~repro.api.client.VChainClient`'s
        ``server_stats()`` receives over any transport — the socket
        server answers a stats request with exactly this object.
        """
        snapshot = self.stats()
        return ServerStats(
            endpoint=cast("dict[str, Scalar]", snapshot["endpoint"]),
            caches=cast("dict[str, dict[str, Scalar]]", snapshot["caches"]),
            engine=cast("dict[str, Scalar]", snapshot["engine"]),
            pool=cast("dict[str, Scalar] | None", snapshot["pool"]),
            server=cast("dict[str, Scalar] | None", snapshot["server"]),
            storage=cast("dict[str, Scalar] | None", snapshot["storage"]),
            accel=cast("str", snapshot["accel"]),
        )

    # -- time-window queries ----------------------------------------------
    def query_inline(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
        """Run one query on the *calling* thread, with the shared caches.

        This is the unit of work :meth:`time_window_query` submits to
        the worker pool.  Transports that already sit on a pool thread
        — the async server dispatches whole request bodies through
        ``run_in_executor`` — call it directly, so a query never
        occupies two workers (or deadlocks a saturated pool by
        submitting from inside it).
        """
        if self._closed:
            raise ReproError("service endpoint is closed")
        self.counters.bump("queries")
        return cast(
            "tuple[list[DataObject], TimeWindowVO, QueryStats]",
            self.sp.processor.time_window_query(
                query,
                batch=batch,
                fragment_cache=self.fragment_cache,
                proof_cache=self.proof_cache,
            ),
        )

    def time_window_query(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
        """Run one query on the worker pool (blocks for the answer).

        Callers beyond ``max_workers`` queue; a slow query therefore
        delays at most the workers it occupies, never the subscription
        path, which does not touch the pool.
        """
        if self._closed:
            raise ReproError("service endpoint is closed")
        try:
            future = self._pool.submit(self.query_inline, query, batch=batch)
        except RuntimeError:  # pool shut down between check and submit
            raise ReproError("service endpoint is closed") from None
        return future.result()

    # -- subscriptions -----------------------------------------------------
    def register(
        self, query: SubscriptionQuery, since_height: int | None = None
    ) -> tuple[int, int]:
        """Register a subscription; returns ``(query_id, since_height)``.

        ``since_height`` defaults to the next block to be mined, i.e. a
        new subscription sees the future, not the backlog.  An explicit
        earlier height works as long as the engine has not processed it
        yet — already-processed heights cannot be subscribed to
        retroactively, because the engine never replays them.
        """
        with self._lock:
            if self._closed:
                raise ReproError("service endpoint is closed")
            if since_height is None:
                since_height = len(self.sp.chain)
            elif since_height < self._ingested:
                raise SubscriptionError(
                    f"height {since_height} was already processed; "
                    f"subscriptions start at {self._ingested} or later"
                )
            if not self._queues:
                # no live subscription covers the blocks below
                # ``since_height``: skip them instead of replaying the
                # whole backlog through the engine on the next poll
                self._ingested = since_height
            query_id = self.engine.register(query, since_height=since_height)
            self._queues[query_id] = deque()
            self.counters.bump("registrations")
            return query_id, since_height

    def deregister(self, query_id: int) -> None:
        with self._lock:
            self.engine.deregister(query_id)
            self._queues.pop(query_id, None)
            self.counters.bump("deregistrations")

    def poll(self, query_id: int) -> list[Delivery]:
        """Due deliveries for one subscription (after ingesting new blocks)."""
        with self._lock:
            if query_id not in self._queues:
                raise SubscriptionError(f"query {query_id} is not registered")
            self._ingest()
            queue = self._queues[query_id]
            deliveries = list(queue)
            queue.clear()
            self.counters.bump("polls")
            return deliveries

    def flush(self, query_id: int) -> Delivery | None:
        """Drain a lazy subscription's pending mismatch evidence."""
        with self._lock:
            if query_id not in self._queues:
                raise SubscriptionError(f"query {query_id} is not registered")
            self._ingest()
            if self._queues[query_id]:
                raise SubscriptionError(
                    f"query {query_id} has undelivered results; poll before flushing"
                )
            self.counters.bump("flushes")
            return cast("Delivery | None", self.engine.flush(query_id))

    def _ingest(self) -> None:
        # callers already hold the (reentrant) lock; taking it here too
        # keeps the method safe standalone and the discipline lexical
        with self._lock:
            chain = self.sp.chain
            while self._ingested < len(chain):
                block = chain.block(self._ingested)
                for delivery in self.engine.process_block(block):
                    queue = self._queues.get(delivery.query_id)
                    if queue is not None:
                        queue.append(delivery)
                self._ingested += 1

    # -- header sync -------------------------------------------------------
    def headers(self, from_height: int = 0) -> list[BlockHeader]:
        with self._lock:
            self.counters.bump("header_syncs")
            return cast("list[BlockHeader]", self.sp.chain.headers()[from_height:])
