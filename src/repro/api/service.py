"""Server-side request dispatcher.

:class:`ServiceEndpoint` is the one object a transport talks to on the
SP side.  It owns the query processor (through the
:class:`~repro.core.sp.ServiceProvider`) and one
:class:`~repro.subscribe.engine.SubscriptionEngine`, multiplexes every
registered subscription over newly mined blocks, and queues deliveries
per query until the subscriber polls.  Both the in-process
:class:`~repro.api.transport.LocalTransport` and the socket server
dispatch into the same endpoint, so local and remote answers are
identical by construction.

Block ingestion is pull-based: each ``poll``/``flush`` first feeds any
chain blocks the engine has not seen yet, in height order.  This keeps
the endpoint free of callbacks into the miner — it only ever reads
``sp.chain``.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.chain.block import BlockHeader
from repro.chain.object import DataObject
from repro.core.prover import QueryStats
from repro.core.query import SubscriptionQuery, TimeWindowQuery
from repro.core.sp import ServiceProvider
from repro.core.vo import TimeWindowVO
from repro.errors import SubscriptionError
from repro.subscribe.engine import Delivery, SubscriptionEngine


class ServiceEndpoint:
    """Dispatches the full SP↔user protocol against one service provider."""

    def __init__(
        self,
        sp: ServiceProvider,
        *,
        use_iptree: bool = True,
        lazy: bool = False,
        iptree_dims: int | None = None,
        iptree_max_depth: int = 6,
    ) -> None:
        self.sp = sp
        self.engine = SubscriptionEngine(
            sp.accumulator,
            sp.encoder,
            sp.params,
            use_iptree=use_iptree,
            lazy=lazy,
            iptree_dims=iptree_dims,
            iptree_max_depth=iptree_max_depth,
        )
        self._queues: dict[int, deque[Delivery]] = {}
        self._ingested = 0  # chain height the engine has processed up to
        # one endpoint may serve many transports (and the socket server
        # runs one thread per connection): every entrypoint that touches
        # the engine or the queues holds this lock
        self._lock = threading.RLock()

    # -- time-window queries ----------------------------------------------
    def time_window_query(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
        with self._lock:
            return self.sp.processor.time_window_query(query, batch=batch)

    # -- subscriptions -----------------------------------------------------
    def register(
        self, query: SubscriptionQuery, since_height: int | None = None
    ) -> tuple[int, int]:
        """Register a subscription; returns ``(query_id, since_height)``.

        ``since_height`` defaults to the next block to be mined, i.e. a
        new subscription sees the future, not the backlog.  An explicit
        earlier height works as long as the engine has not processed it
        yet — already-processed heights cannot be subscribed to
        retroactively, because the engine never replays them.
        """
        with self._lock:
            if since_height is None:
                since_height = len(self.sp.chain)
            elif since_height < self._ingested:
                raise SubscriptionError(
                    f"height {since_height} was already processed; "
                    f"subscriptions start at {self._ingested} or later"
                )
            if not self._queues:
                # no live subscription covers the blocks below
                # ``since_height``: skip them instead of replaying the
                # whole backlog through the engine on the next poll
                self._ingested = since_height
            query_id = self.engine.register(query, since_height=since_height)
            self._queues[query_id] = deque()
            return query_id, since_height

    def deregister(self, query_id: int) -> None:
        with self._lock:
            self.engine.deregister(query_id)
            self._queues.pop(query_id, None)

    def poll(self, query_id: int) -> list[Delivery]:
        """Due deliveries for one subscription (after ingesting new blocks)."""
        with self._lock:
            if query_id not in self._queues:
                raise SubscriptionError(f"query {query_id} is not registered")
            self._ingest()
            queue = self._queues[query_id]
            deliveries = list(queue)
            queue.clear()
            return deliveries

    def flush(self, query_id: int) -> Delivery | None:
        """Drain a lazy subscription's pending mismatch evidence."""
        with self._lock:
            if query_id not in self._queues:
                raise SubscriptionError(f"query {query_id} is not registered")
            self._ingest()
            if self._queues[query_id]:
                raise SubscriptionError(
                    f"query {query_id} has undelivered results; poll before flushing"
                )
            return self.engine.flush(query_id)

    def _ingest(self) -> None:
        chain = self.sp.chain
        while self._ingested < len(chain):
            block = chain.block(self._ingested)
            for delivery in self.engine.process_block(block):
                queue = self._queues.get(delivery.query_id)
                if queue is not None:
                    queue.append(delivery)
            self._ingested += 1

    # -- header sync -------------------------------------------------------
    def headers(self, from_height: int = 0) -> list[BlockHeader]:
        with self._lock:
            return self.sp.chain.headers()[from_height:]
