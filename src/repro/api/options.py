"""Consolidated client-side configuration.

Before this module the client's knobs were scattered: connect and
request timeouts rode a single ``timeout=`` kwarg on
:meth:`~repro.api.client.VChainClient.connect` and
:class:`~repro.api.transport.SocketTransport`, and there was no way to
express retries at all.  :class:`ClientOptions` is the one place those
decisions live::

    options = ClientOptions(connect_timeout=5.0, request_deadline=2.0,
                            retries=2, backoff=0.1)
    client = VChainClient.connect(address, accumulator, encoder, params,
                                  options=options)

The old ``timeout=`` kwargs keep working behind ``DeprecationWarning``
shims (the PR 1 migration pattern): ``timeout=t`` maps to
``ClientOptions(connect_timeout=t, request_deadline=t)``, which is
exactly the old behaviour — ``t`` bounded every socket operation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClientOptions:
    """Every client-side transport knob, in one immutable bag.

    ``connect_timeout``
        Seconds to wait for the TCP connection (``None`` = OS default).
        Connection attempts are retried ``retries`` times with
        exponential ``backoff``.

    ``request_deadline``
        Per-request latency budget in seconds.  Enforced twice: the
        socket blocks at most this long per operation client-side, and
        the budget travels in the request envelope so the *server*
        abandons work whose answer would arrive too late (the client
        then sees :class:`~repro.errors.DeadlineExpiredError`).
        ``None`` disables both.

    ``retries``
        Extra attempts after a failure.  Link failures
        (:class:`~repro.api.transport.TransportError`, ``OSError``)
        reconnect and resend, but only for idempotent requests —
        queries, header syncs, stats.  :class:`~repro.errors.\
ServerBusyError` rejections are retried for *every* request kind,
        because the server rejected before doing any work.

    ``backoff``
        Base seconds between attempts; attempt ``n`` sleeps
        ``backoff * 2**(n-1)``.
    """

    connect_timeout: float | None = None
    request_deadline: float | None = None
    retries: int = 0
    backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        for name in ("connect_timeout", "request_deadline"):
            value: float | None = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")

    def deadline_ms(self) -> int | None:
        """The wire form of ``request_deadline`` (min 1ms), or ``None``."""
        if self.request_deadline is None:
            return None
        return max(1, round(self.request_deadline * 1000))
