"""Smart-contract deployment path (paper Appendix E).

The paper notes vChain can be deployed without a new chain: a smart
contract on a host blockchain maintains a *logical chain* whose blocks
carry the vChain ADS.  This module reproduces that pattern in Python:
:class:`HostChain` is a minimal contract-execution substrate (ordered
transactions, deterministic state, an event log and a gas meter) and
:class:`VChainContract` is the contract from Listing 1 — its
``build_vchain`` entry point constructs the intra/inter indexes,
derives the block hash, and appends to contract storage.

The logical chain produced here is byte-compatible with the native one:
the same :class:`~repro.core.prover.QueryProcessor` and verifier run
against it unchanged (the integration tests do exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.accumulators.base import MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.block import Block, BlockHeader, ZERO_HASH
from repro.chain.chain import Blockchain
from repro.chain.miner import Miner, ProtocolParams
from repro.chain.object import DataObject
from repro.errors import ChainError


@dataclass
class Event:
    """A contract event appended to the host-chain log."""

    name: str
    payload: dict[str, Any]


@dataclass
class HostChain:
    """A minimal deterministic contract substrate.

    Transactions are function calls executed in order; each call is
    metered (a flat cost per object processed stands in for EVM gas)
    and appends its events to the log.  There is no concurrency and no
    reentrancy — the simplest model that still exercises the
    contract-deployment code path end to end.
    """

    gas_per_object: int = 21000
    events: list[Event] = field(default_factory=list)
    gas_used: int = 0

    def execute(self, call: Callable[[], list[Event]], n_objects: int) -> None:
        self.gas_used += self.gas_per_object * n_objects
        self.events.extend(call())


class VChainContract:
    """The Listing-1 contract: builds and stores logical vChain blocks."""

    def __init__(
        self,
        host: HostChain,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
    ) -> None:
        self.host = host
        # contract storage: blockhash -> Block, plus the chain itself
        self.chain = Blockchain(difficulty_bits=0)
        self.storage: dict[bytes, Block] = {}
        # the contract "is" the miner for the logical chain, but the host
        # chain's consensus already orders transactions, so difficulty=0.
        contract_params = ProtocolParams(
            mode=params.mode,
            bits=params.bits,
            skip_size=params.skip_size,
            skip_base=params.skip_base,
            difficulty_bits=0,
            clustered=params.clustered,
        )
        self._miner = Miner(self.chain, accumulator, encoder, contract_params)

    def build_vchain(self, objects: list[DataObject], timestamp: int) -> bytes:
        """The contract entry point; returns the new logical block hash."""
        if not objects:
            raise ChainError("BuildvChain called with no objects")

        new_hash: list[bytes] = []

        def _call() -> list[Event]:
            block = self._miner.mine_block(objects, timestamp)
            block_hash = block.header.block_hash()
            self.storage[block_hash] = block
            new_hash.append(block_hash)
            return [
                Event(
                    name="VChainBlockBuilt",
                    payload={
                        "height": block.height,
                        "block_hash": block_hash,
                        "merkle_root": block.header.merkle_root,
                        "skiplist_root": block.header.skiplist_root,
                    },
                )
            ]

        self.host.execute(_call, n_objects=len(objects))
        return new_hash[0]

    def block_by_hash(self, block_hash: bytes) -> Block:
        block = self.storage.get(block_hash)
        if block is None:
            raise ChainError("unknown logical block hash")
        return block

    def headers(self) -> list[BlockHeader]:
        return self.chain.headers()

    @property
    def tip_hash(self) -> bytes:
        tip = self.chain.tip
        return tip.header.block_hash() if tip else ZERO_HASH
