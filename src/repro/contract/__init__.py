"""Smart-contract (logical chain) deployment path — paper Appendix E."""

from repro.contract.logical_chain import Event, HostChain, VChainContract

__all__ = ["Event", "HostChain", "VChainContract"]
