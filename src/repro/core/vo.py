"""Verification objects (VOs).

A VO is the SP's cryptographic transcript of a query: for every block in
the window, either a tree transcript (matching leaves returned in full,
mismatching subtrees pruned with a disjointness proof, expanded internal
nodes with their AttDigests) or a skip-list entry covering a run of
blocks at once.  The user replays the transcript against its own block
headers.

Three node kinds (mirroring Algorithm 3's cases):

* :class:`VOMatchLeaf` — the object itself; the verifier recomputes the
  object hash *and* its AttDigest from raw attributes, so a tampered
  object breaks the Merkle reconstruction.
* :class:`VOMismatchNode` — a pruned subtree: the child-hash component,
  the node's AttDigest, the query clause it is disjoint from, and either
  an individual proof or a reference to a batch group.
* :class:`VOExpandNode` — an explored internal node (digest needed to
  recompute its hash; ``None`` in nil-mode trees).

``nbytes`` methods account wire size exactly: group elements at real
group widths, hashes at 32 bytes, objects at their serialized size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accumulators.base import AccumulatorValue, DisjointProof
from repro.chain.object import DataObject
from repro.crypto.hashing import DIGEST_NBYTES


def _clause_nbytes(clause: frozenset[str]) -> int:
    return sum(len(element.encode()) for element in clause)


@dataclass(frozen=True)
class VOMatchLeaf:
    """A result object, returned in full."""

    obj: DataObject

    def nbytes(self, backend) -> int:
        return self.obj.nbytes()


@dataclass(frozen=True)
class VOMismatchNode:
    """A pruned (mismatching) subtree with its disjointness evidence."""

    child_component: bytes
    att_digest: AccumulatorValue
    clause: frozenset[str]
    proof: DisjointProof | None = None
    group: int | None = None

    def nbytes(self, backend) -> int:
        total = DIGEST_NBYTES + self.att_digest.nbytes(backend)
        total += _clause_nbytes(self.clause)
        if self.proof is not None:
            total += self.proof.nbytes(backend)
        return total


@dataclass(frozen=True)
class VOExpandNode:
    """An explored internal node; children transcripts in order."""

    att_digest: AccumulatorValue | None
    children: tuple["VONode", ...]

    def nbytes(self, backend) -> int:
        total = self.att_digest.nbytes(backend) if self.att_digest else 0
        return total + sum(child.nbytes(backend) for child in self.children)


VONode = VOMatchLeaf | VOMismatchNode | VOExpandNode


@dataclass(frozen=True)
class VOBlock:
    """Per-block transcript rooted at the intra-index root."""

    height: int
    root: VONode

    def nbytes(self, backend) -> int:
        return 8 + self.root.nbytes(backend)


@dataclass(frozen=True)
class VOSkip:
    """An inter-block skip: one proof covering ``distance`` blocks.

    ``sibling_hashes`` carries the entry hashes of the *other* skip
    distances at this block so the verifier can recompute SkipListRoot.
    """

    height: int
    distance: int
    att_digest: AccumulatorValue
    clause: frozenset[str]
    proof: DisjointProof | None = None
    group: int | None = None
    sibling_hashes: tuple[tuple[int, bytes], ...] = ()

    def nbytes(self, backend) -> int:
        total = 16 + self.att_digest.nbytes(backend) + _clause_nbytes(self.clause)
        if self.proof is not None:
            total += self.proof.nbytes(backend)
        return total + DIGEST_NBYTES * len(self.sibling_hashes)


@dataclass(frozen=True)
class BatchGroup:
    """One aggregated disjointness proof shared by many mismatch sites.

    Online batch verification (Sec. 6.3): all member nodes/skips are
    disjoint from ``clause``; the verifier Sums their digests and checks
    the single aggregated proof.  acc2 only.
    """

    clause: frozenset[str]
    proof: DisjointProof

    def nbytes(self, backend) -> int:
        return _clause_nbytes(self.clause) + self.proof.nbytes(backend)


@dataclass
class TimeWindowVO:
    """Full VO for a time-window query: entries ordered newest→oldest."""

    entries: list[VOBlock | VOSkip] = field(default_factory=list)
    batch_groups: dict[int, BatchGroup] = field(default_factory=dict)

    def nbytes(self, backend) -> int:
        total = sum(entry.nbytes(backend) for entry in self.entries)
        total += sum(group.nbytes(backend) for group in self.batch_groups.values())
        return total
