"""Core vChain machinery: queries, VOs, prover, verifier, facades.

Attribute access is lazy (PEP 562): low-level modules such as
:mod:`repro.core.rangetrans` are imported by :mod:`repro.chain` at class
definition time, so an eager package ``__init__`` would create an import
cycle (chain → core → prover → chain).
"""

from importlib import import_module

_EXPORTS = {
    "QueryProcessor": "repro.core.prover",
    "QueryStats": "repro.core.prover",
    "CNFCondition": "repro.core.query",
    "Query": "repro.core.query",
    "RangeCondition": "repro.core.query",
    "SubscriptionQuery": "repro.core.query",
    "TimeWindowQuery": "repro.core.query",
    "quantize": "repro.core.rangetrans",
    "range_cover": "repro.core.rangetrans",
    "trans_range": "repro.core.rangetrans",
    "trans_vector": "repro.core.rangetrans",
    "value_prefix_set": "repro.core.rangetrans",
    "ServiceProvider": "repro.core.sp",
    "QueryUser": "repro.core.user",
    "QueryVerifier": "repro.core.verifier",
    "VerifyStats": "repro.core.verifier",
    "BatchGroup": "repro.core.vo",
    "TimeWindowVO": "repro.core.vo",
    "VOBlock": "repro.core.vo",
    "VOExpandNode": "repro.core.vo",
    "VOMatchLeaf": "repro.core.vo",
    "VOMismatchNode": "repro.core.vo",
    "VOSkip": "repro.core.vo",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    return getattr(import_module(module_name), name)
