"""Query-user facade (the light node issuing verifiable queries)."""

from __future__ import annotations

import warnings

from repro.accumulators.base import MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.chain import Blockchain
from repro.chain.light import LightNode
from repro.chain.miner import ProtocolParams
from repro.chain.object import DataObject
from repro.core.query import TimeWindowQuery
from repro.core.verifier import QueryVerifier, VerifyStats
from repro.core.vo import TimeWindowVO


class QueryUser:
    """A light node: syncs headers, queries an SP, verifies the answer."""

    def __init__(
        self,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
        pool=None,
    ) -> None:
        """``pool`` (a :class:`~repro.parallel.CryptoPool`) parallelises
        :meth:`batch_verify`'s weighted aggregation; not owned here."""
        self.light = LightNode(difficulty_bits=params.difficulty_bits)
        self.verifier = QueryVerifier(
            self.light, accumulator, encoder, params, pool=pool
        )
        self.params = params

    def sync_headers(self, source: Blockchain) -> int:
        """Pull new block headers from any full node."""
        return self.light.sync(source)

    def verify(
        self,
        query: TimeWindowQuery,
        results: list[DataObject],
        vo: TimeWindowVO,
    ) -> tuple[list[DataObject], VerifyStats]:
        """Check an SP response; raises VerificationError when forged."""
        return self.verifier.verify_time_window(query, results, vo)

    def batch_verify(
        self, items: list[tuple]
    ) -> tuple[list[list[DataObject]], VerifyStats]:
        """Verify many ``(query, results, vo)`` answers in one pass.

        Cross-VO disjointness checks against the same clause collapse
        into one aggregated pairing (acc2); see
        :meth:`repro.core.verifier.QueryVerifier.batch_verify`.
        """
        return self.verifier.batch_verify(items)

    def query(self, sp, query: TimeWindowQuery, batch: bool | None = None):
        """Deprecated one-shot convenience; use :class:`repro.api.VChainClient`.

        Returns the legacy ``(results, vo, sp_stats, user_stats)`` tuple.
        New code gets the same answer as a rich
        :class:`~repro.api.VerifiedResponse` via
        ``VChainClient.local(sp, user=self).execute(query)``.
        """
        warnings.warn(
            "QueryUser.query() is deprecated; use repro.api.VChainClient",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.sp import ServiceProvider

        if type(sp) is ServiceProvider:
            # skip the deprecated facade so one legacy call warns once,
            # while subclasses and other duck-typed providers keep their
            # time_window_query override in the loop
            results, vo, sp_stats = sp.processor.time_window_query(query, batch=batch)
        else:
            results, vo, sp_stats = sp.time_window_query(query, batch=batch)
        verified, user_stats = self.verify(query, results, vo)
        return verified, vo, sp_stats, user_stats
