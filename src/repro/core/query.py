"""Query model: monotone CNF conditions, time-window and subscription
queries (paper Section 3).

A Boolean condition is a monotone CNF over the unified attribute domain:
a conjunction of clauses, each clause a disjunction (a set) of
attributes.  The range predicate ``V ∈ [α, β]`` is folded in via the
Section 5.3 transform — each dimension contributes one OR-clause of
dyadic prefixes — so matching and mismatch-proving reduce entirely to
clause/multiset intersection tests:

* ``W`` *matches* the CNF iff every clause intersects ``W``;
* ``W`` *mismatches* iff some clause is disjoint from ``W`` — and that
  clause is exactly the equivalence set handed to ``ProveDisjoint``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.rangetrans import trans_range
from repro.errors import QueryError


@dataclass(frozen=True)
class CNFCondition:
    """A monotone Boolean function in conjunctive normal form."""

    clauses: tuple[frozenset[str], ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if not clause:
                raise QueryError("CNF clause must not be empty")

    @staticmethod
    def of(clauses: Iterable[Iterable[str]]) -> "CNFCondition":
        """Build from nested iterables: ``[["Benz","BMW"],["Sedan"]]``."""
        return CNFCondition(tuple(frozenset(clause) for clause in clauses))

    @staticmethod
    def true() -> "CNFCondition":
        """The always-true condition (zero clauses)."""
        return CNFCondition(())

    def matches(self, attributes: Counter | frozenset[str]) -> bool:
        """True iff every clause intersects the attribute multiset."""
        return all(
            any(element in attributes for element in clause) for clause in self.clauses
        )

    def mismatch_clause(
        self, attributes: Counter | frozenset[str]
    ) -> frozenset[str] | None:
        """The first clause disjoint from ``attributes``, or ``None``.

        This is the "equivalence set" of Algorithm 1: returning it with a
        disjointness proof convinces the verifier the object cannot
        satisfy the conjunction.
        """
        for clause in self.clauses:
            if not any(element in attributes for element in clause):
                return clause
        return None

    def conjoin(self, other: "CNFCondition") -> "CNFCondition":
        return CNFCondition(self.clauses + other.clauses)

    def nbytes(self) -> int:
        """Wire size of the condition (for VO accounting)."""
        return sum(len(e.encode()) for clause in self.clauses for e in clause)


@dataclass(frozen=True)
class RangeCondition:
    """Numeric predicate ``V ∈ [low, high]`` (component-wise)."""

    low: tuple[int, ...]
    high: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.low) != len(self.high):
            raise QueryError("range bounds have mismatched dimensionality")
        for lo, hi in zip(self.low, self.high):
            if lo > hi:
                raise QueryError(f"inverted range bound [{lo}, {hi}]")

    def contains(self, vector: tuple[int, ...]) -> bool:
        if len(vector) < len(self.low):
            raise QueryError("vector dimensionality below range predicate's")
        return all(
            lo <= vector[dim] <= hi
            for dim, (lo, hi) in enumerate(zip(self.low, self.high))
        )

    def to_cnf(self, bits: int) -> CNFCondition:
        """Section 5.3: one dyadic-cover OR-clause per dimension."""
        return CNFCondition(trans_range(self.low, self.high, bits))


@dataclass(frozen=True)
class Query:
    """The Boolean range condition common to both query forms.

    ``transformed(bits)`` produces the *unified* CNF ϒ' = trans([α,β]) ∧ ϒ
    that provers and verifiers operate on.
    """

    numeric: RangeCondition | None = None
    boolean: CNFCondition = field(default_factory=CNFCondition.true)

    def transformed(self, bits: int) -> CNFCondition:
        if self.numeric is None:
            return self.boolean
        return self.numeric.to_cnf(bits).conjoin(self.boolean)

    def matches_object(self, obj, bits: int) -> bool:
        """Ground-truth match on the raw object (used by the verifier to
        re-check soundness of returned results, and by tests)."""
        if self.numeric is not None and not self.numeric.contains(obj.vector):
            return False
        return self.boolean.matches(obj.attribute_multiset(bits))

    def in_window(self, timestamp: int) -> bool:
        """Base queries are unwindowed; TimeWindowQuery overrides."""
        return True


@dataclass(frozen=True)
class TimeWindowQuery(Query):
    """``q = ⟨[ts, te], [α, β], ϒ⟩`` — historical window query."""

    start: int = 0
    end: int = 2**63 - 1

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise QueryError("time window start exceeds end")

    def in_window(self, timestamp: int) -> bool:
        return self.start <= timestamp <= self.end


@dataclass(frozen=True)
class SubscriptionQuery(Query):
    """``q = ⟨-, [α, β], ϒ⟩`` — continuous query until deregistered."""
