"""User-side result verification (light node).

The verifier replays the SP's VO against block headers it synced
itself.  It establishes, per the paper's threat model:

* **soundness** — every returned object hashes into a Merkle root that
  matches the block header (so it exists on-chain, untampered) *and*
  satisfies the query predicate (re-checked on raw attributes);
* **completeness** — every block of the window is accounted for, either
  by a tree transcript whose reconstructed root matches the header
  (with every pruned subtree carrying a valid disjointness proof
  against an actual query clause), or by a verified skip-list entry.

Any deviation raises :class:`VerificationError` naming the failed
check.  Verification cost (time, pairing count) is reported via
:class:`VerifyStats` — this is the paper's "user CPU time" metric.

Every disjointness check here — per-clause, per-group, and the
random-weighted aggregates of :meth:`QueryVerifier.batch_verify` — is a
pairing-*product* equation, and the accumulators evaluate it through
``backend.multi_pairing``: the Miller loops of the product accumulate
into one value that pays a single final exponentiation.  The weighting
exponentiations of a batch run on the Jacobian wNAF fast path, so
batching is cheap even before aggregation kicks in.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.accumulators.base import (
    AccumulatorValue,
    DisjointProof,
    MultisetAccumulator,
)
from repro.accumulators.encoding import ElementEncoder
from repro.chain.light import LightNode
from repro.chain.miner import ProtocolParams
from repro.chain.object import DataObject
from repro.core.query import CNFCondition, TimeWindowQuery
from repro.core.vo import (
    TimeWindowVO,
    VOBlock,
    VOExpandNode,
    VOMatchLeaf,
    VOMismatchNode,
    VONode,
    VOSkip,
)
from repro.crypto.hashing import digest
from repro.errors import VerificationError
from repro.index.inter import pre_skipped_hash, skip_distances
from repro.index.intra import encode_digest, internal_hash
from repro.parallel import weighted_fold


@dataclass
class VerifyStats:
    """User-side accounting for one verification."""

    user_seconds: float = 0.0
    disjoint_checks: int = 0
    digests_recomputed: int = 0
    nodes_replayed: int = 0
    #: individual checks folded into aggregated pairings by batch_verify
    batched_checks: int = 0
    #: weighted checks fanned out to CryptoPool workers
    parallel_tasks: int = 0


@dataclass
class _GroupMembers:
    """Digests collected for one batch group during the walk."""

    clause: frozenset[str] | None = None
    digests: list[AccumulatorValue] = field(default_factory=list)


@dataclass(frozen=True)
class _DeferredCheck:
    """One disjointness check postponed by :meth:`QueryVerifier.batch_verify`."""

    item: int
    value: AccumulatorValue
    clause: frozenset[str]
    proof: DisjointProof


class QueryVerifier:
    """Replays VOs for a light-node user."""

    def __init__(
        self,
        light_node: LightNode,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
        pool=None,
    ) -> None:
        """``pool`` (a :class:`~repro.parallel.CryptoPool`) splits
        :meth:`batch_verify`'s random-weighted aggregation into
        per-worker partial products; ``None`` keeps it inline."""
        self.light = light_node
        self.accumulator = accumulator
        self.encoder = encoder
        self.params = params
        self.pool = pool
        self._clause_cache: dict[frozenset[str], AccumulatorValue] = {}

    # -- public API -----------------------------------------------------
    def verify_time_window(
        self,
        query: TimeWindowQuery,
        claimed_results: list[DataObject],
        vo: TimeWindowVO,
    ) -> tuple[list[DataObject], VerifyStats]:
        """Verify ``(claimed_results, vo)``; returns (results, stats).

        Raises :class:`VerificationError` on the first failed check.
        """
        heights = self.light.heights_in_window(query.start, query.end)
        return self.verify_over_heights(query, heights, claimed_results, vo)

    def verify_over_heights(
        self,
        query,
        heights: list[int],
        claimed_results: list[DataObject],
        vo: TimeWindowVO,
        *,
        _defer: tuple[int, list[_DeferredCheck]] | None = None,
    ) -> tuple[list[DataObject], VerifyStats]:
        """Verify a VO claimed to cover exactly ``heights`` (ascending).

        Shared by time-window verification (heights derived from the
        query window) and subscription verification (heights are the
        contiguous run since the previous delivery).  With ``_defer``
        set (internal, used by :meth:`batch_verify`), the structural
        replay runs in full but pairing-equation checks are collected
        into the deferred list instead of being verified immediately.
        """
        started = time.perf_counter()
        stats = VerifyStats()
        cnf = query.transformed(self.params.bits)
        groups: dict[int, _GroupMembers] = {}
        verified: list[DataObject] = []

        cursor = len(heights) - 1
        for entry in vo.entries:
            if cursor < 0:
                raise VerificationError("VO has entries beyond the query window")
            expected_height = heights[cursor]
            if isinstance(entry, VOBlock):
                if entry.height != expected_height:
                    raise VerificationError(
                        f"VO block height {entry.height}, expected {expected_height}"
                    )
                root_hash = self._replay_node(
                    entry.root, query, cnf, groups, verified, stats, _defer
                )
                header = self.light.header(entry.height)
                if root_hash != header.merkle_root:
                    raise VerificationError(
                        f"reconstructed Merkle root mismatch at height {entry.height}"
                    )
                cursor -= 1
            elif isinstance(entry, VOSkip):
                self._replay_skip(entry, expected_height, cnf, groups, stats, _defer)
                cursor -= entry.distance
            else:  # pragma: no cover - structural guard
                raise VerificationError(f"unknown VO entry type {type(entry).__name__}")
        if cursor >= 0:
            raise VerificationError(
                f"VO does not cover {cursor + 1} block(s) of the query window"
            )

        self._check_groups(vo, groups, stats, _defer)
        self._check_claimed(claimed_results, verified)
        stats.user_seconds = time.perf_counter() - started
        return verified, stats

    def batch_verify(
        self,
        items: Sequence[tuple],
    ) -> tuple[list[list[DataObject]], VerifyStats]:
        """Verify many ``(query, claimed_results, vo)`` answers in one pass.

        Structural replay (Merkle reconstruction, window coverage,
        predicate re-checks) still runs per VO, but the pairing-equation
        work is shared: all disjointness checks against the same clause
        — across *all* the VOs — are aggregated into a single pairing
        via acc2's ``Sum``/``ProofSum``, after scaling each member by a
        random exponent so independently forged proofs cannot cancel.
        Clause digests are computed once per distinct clause.

        Returns the per-item verified result lists and one combined
        :class:`VerifyStats` (``batched_checks`` counts the individual
        checks folded into aggregates).  Raises
        :class:`VerificationError` naming the offending batch item on
        the first failure.  Without an aggregating accumulator the
        checks fall back to individual pairings but still share the
        clause-digest cache.
        """
        started = time.perf_counter()
        stats = VerifyStats()
        deferred: list[_DeferredCheck] = []
        all_verified: list[list[DataObject]] = []
        for index, (query, claimed, vo) in enumerate(items):
            heights = self.light.heights_in_window(query.start, query.end)
            try:
                verified, item_stats = self.verify_over_heights(
                    query, heights, claimed, vo, _defer=(index, deferred)
                )
            except VerificationError as exc:
                raise VerificationError(f"batch item {index}: {exc}") from exc
            stats.disjoint_checks += item_stats.disjoint_checks
            stats.digests_recomputed += item_stats.digests_recomputed
            stats.nodes_replayed += item_stats.nodes_replayed
            all_verified.append(verified)
        self._flush_deferred(deferred, stats)
        stats.user_seconds = time.perf_counter() - started
        return all_verified, stats

    def _flush_deferred(
        self, deferred: list[_DeferredCheck], stats: VerifyStats
    ) -> None:
        """Run the postponed disjointness checks, aggregated per clause."""
        by_clause: dict[frozenset[str], list[_DeferredCheck]] = {}
        for check in deferred:
            by_clause.setdefault(check.clause, []).append(check)
        rng = random.SystemRandom()
        backend = self.accumulator.backend
        use_pool = self.pool is not None and not self.pool.serial
        for clause, checks in by_clause.items():
            clause_digest = self._clause_digest(clause, stats)
            if len(checks) > 1 and self.accumulator.supports_aggregation:
                weights = [rng.randrange(1, backend.order) for _ in checks]
                stats.disjoint_checks += 1
                stats.batched_checks += len(checks)
                # the weighting exponentiations dominate; with a pool
                # and enough checks, workers fold chunk partials and the
                # parent merges them (associative, so the same Sum)
                if use_pool and len(checks) >= max(4, self.pool.workers):
                    summed_value, summed_proof = self.pool.weighted_sums(
                        [(check.value, check.proof) for check in checks], weights
                    )
                    stats.parallel_tasks += len(checks)
                else:
                    summed_value, summed_proof = weighted_fold(
                        self.accumulator,
                        [
                            (check.value, check.proof, weight)
                            for check, weight in zip(checks, weights)
                        ],
                    )
                if self.accumulator.verify_disjoint(
                    summed_value, clause_digest, summed_proof
                ):
                    continue
                # aggregate failed: fall through to pinpoint the culprit
            for check in checks:
                stats.disjoint_checks += 1
                if not self.accumulator.verify_disjoint(
                    check.value, clause_digest, check.proof
                ):
                    raise VerificationError(
                        f"batch item {check.item}: "
                        "disjointness proof failed verification"
                    )
            if len(checks) > 1 and self.accumulator.supports_aggregation:
                # unreachable algebraically: the aggregate is the weighted
                # product of the individual equations
                raise VerificationError(  # pragma: no cover - structural guard
                    "aggregated batch verification failed without a culprit"
                )

    # -- tree replay ------------------------------------------------------
    def _replay_node(
        self,
        node: VONode,
        query: TimeWindowQuery,
        cnf: CNFCondition,
        groups: dict[int, _GroupMembers],
        verified: list[DataObject],
        stats: VerifyStats,
        defer: tuple[int, list[_DeferredCheck]] | None = None,
    ) -> bytes:
        stats.nodes_replayed += 1
        if isinstance(node, VOMatchLeaf):
            obj = node.obj
            if not query.in_window(obj.timestamp):
                raise VerificationError(
                    f"object {obj.object_id} lies outside the query window"
                )
            if not query.matches_object(obj, self.params.bits):
                raise VerificationError(
                    f"object {obj.object_id} does not satisfy the query"
                )
            att_digest = self.accumulator.accumulate(
                self.encoder.encode_multiset(obj.attribute_multiset(self.params.bits))
            )
            stats.digests_recomputed += 1
            verified.append(obj)
            return internal_hash(
                obj.serialize(), encode_digest(self.accumulator.backend, att_digest)
            )
        if isinstance(node, VOMismatchNode):
            self._check_mismatch(
                node.clause,
                node.att_digest,
                node.proof,
                node.group,
                cnf,
                groups,
                stats,
                defer,
            )
            return internal_hash(
                node.child_component,
                encode_digest(self.accumulator.backend, node.att_digest),
            )
        if isinstance(node, VOExpandNode):
            if not node.children:
                raise VerificationError("expanded VO node has no children")
            component = digest(
                *(
                    self._replay_node(child, query, cnf, groups, verified, stats, defer)
                    for child in node.children
                )
            )
            if node.att_digest is None:
                return component
            return internal_hash(
                component, encode_digest(self.accumulator.backend, node.att_digest)
            )
        raise VerificationError(f"unknown VO node type {type(node).__name__}")

    # -- skip replay -----------------------------------------------------------
    def _replay_skip(
        self,
        skip: VOSkip,
        expected_height: int,
        cnf: CNFCondition,
        groups: dict[int, _GroupMembers],
        stats: VerifyStats,
        defer: tuple[int, list[_DeferredCheck]] | None = None,
    ) -> None:
        if skip.height != expected_height:
            raise VerificationError(
                f"VO skip at height {skip.height}, expected {expected_height}"
            )
        valid_distances = [
            d
            for d in skip_distances(self.params.skip_size, self.params.skip_base)
            if d - 1 <= skip.height
        ]
        if skip.distance not in valid_distances:
            raise VerificationError(
                f"skip distance {skip.distance} not in the protocol schedule"
            )
        header = self.light.header(skip.height)
        prev_hashes = [
            self.light.header(h).block_hash()
            for h in range(skip.height - 1, skip.height - skip.distance, -1)
        ]
        pre_hash = pre_skipped_hash(header.merkle_root, prev_hashes)
        entry_hash = digest(
            pre_hash, encode_digest(self.accumulator.backend, skip.att_digest)
        )
        hashes = {distance: sibling for distance, sibling in skip.sibling_hashes}
        if skip.distance in hashes:
            raise VerificationError("VO skip duplicates its own entry hash")
        hashes[skip.distance] = entry_hash
        if sorted(hashes) != valid_distances:
            raise VerificationError("VO skip sibling hashes do not match the schedule")
        root = digest(*(hashes[d] for d in valid_distances))
        if root != header.skiplist_root:
            raise VerificationError(
                f"reconstructed SkipListRoot mismatch at height {skip.height}"
            )
        self._check_mismatch(
            skip.clause,
            skip.att_digest,
            skip.proof,
            skip.group,
            cnf,
            groups,
            stats,
            defer,
        )

    # -- mismatch evidence -------------------------------------------------------
    def _clause_digest(self, clause: frozenset[str], stats: VerifyStats):
        value = self._clause_cache.get(clause)
        if value is None:
            value = self.accumulator.accumulate(
                self.encoder.encode_multiset(Counter(clause))
            )
            self._clause_cache[clause] = value
            stats.digests_recomputed += 1
        return value

    def _check_mismatch(
        self,
        clause: frozenset[str],
        att_digest: AccumulatorValue,
        proof,
        group: int | None,
        cnf: CNFCondition,
        groups: dict[int, _GroupMembers],
        stats: VerifyStats,
        defer: tuple[int, list[_DeferredCheck]] | None = None,
    ) -> None:
        if clause not in cnf.clauses:
            raise VerificationError(
                "mismatch proof references a clause that is not part of the query"
            )
        if group is not None:
            member = groups.setdefault(group, _GroupMembers())
            if member.clause is None:
                member.clause = clause
            elif member.clause != clause:
                raise VerificationError(
                    "batch group mixes mismatch proofs for different clauses"
                )
            member.digests.append(att_digest)
            return
        if proof is None:
            raise VerificationError("mismatch node carries neither proof nor group")
        if defer is not None:
            item, checks = defer
            checks.append(_DeferredCheck(item, att_digest, clause, proof))
            return
        stats.disjoint_checks += 1
        if not self.accumulator.verify_disjoint(
            att_digest, self._clause_digest(clause, stats), proof
        ):
            raise VerificationError("disjointness proof failed verification")

    def _check_groups(
        self,
        vo: TimeWindowVO,
        groups: dict[int, _GroupMembers],
        stats: VerifyStats,
        defer: tuple[int, list[_DeferredCheck]] | None = None,
    ) -> None:
        for group_id, members in groups.items():
            batch = vo.batch_groups.get(group_id)
            if batch is None:
                raise VerificationError(f"VO lacks batch group {group_id}")
            if batch.clause != members.clause:
                raise VerificationError(
                    f"batch group {group_id} clause does not match its members"
                )
            summed = self.accumulator.sum_values(members.digests)
            if defer is not None:
                item, checks = defer
                checks.append(_DeferredCheck(item, summed, batch.clause, batch.proof))
                continue
            stats.disjoint_checks += 1
            if not self.accumulator.verify_disjoint(
                summed, self._clause_digest(batch.clause, stats), batch.proof
            ):
                raise VerificationError(
                    f"aggregated disjointness proof of group {group_id} failed"
                )

    @staticmethod
    def _check_claimed(
        claimed: list[DataObject], verified: list[DataObject]
    ) -> None:
        claimed_ids = sorted(obj.object_id for obj in claimed)
        verified_ids = sorted(obj.object_id for obj in verified)
        if claimed_ids != verified_ids:
            raise VerificationError(
                "claimed result set differs from the VO-verified result set"
            )
