"""Service-provider facade (the untrusted full node answering queries)."""

from __future__ import annotations

import os
import warnings
from typing import Sequence

from repro.accumulators.base import MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.chain import Blockchain
from repro.chain.miner import ProtocolParams
from repro.chain.object import DataObject
from repro.core.prover import QueryProcessor, QueryStats
from repro.core.query import TimeWindowQuery
from repro.core.vo import TimeWindowVO


class ServiceProvider:
    """A full node offering verifiable query services to light users.

    Thin façade over :class:`QueryProcessor`.  Transports talk to it
    through :class:`repro.api.ServiceEndpoint`, which also multiplexes
    subscription queries via
    :class:`repro.subscribe.engine.SubscriptionEngine`.

    An SP over a durable chain directory reopens across process
    restarts via :meth:`open` — headers are re-validated on the way up
    and answers are byte-identical to the pre-restart chain's.
    """

    def __init__(
        self,
        chain: Blockchain,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
        pool=None,
    ) -> None:
        """``pool`` (a :class:`~repro.parallel.CryptoPool`) parallelises
        the processor's disjointness proving; the SP does not own it —
        whoever built the pool closes it."""
        self.chain = chain
        self.accumulator = accumulator
        self.encoder = encoder
        self.params = params
        self.pool = pool
        self.processor = QueryProcessor(chain, accumulator, encoder, params, pool=pool)

    @classmethod
    def open(
        cls,
        data_dir: str | os.PathLike | Sequence[str | os.PathLike],
        fsync: bool = True,
    ) -> "ServiceProvider":
        """Reopen an SP from a chain directory written by a previous
        process (see :mod:`repro.storage.bootstrap` for what is
        reconstructed and re-validated).  ``data_dir`` takes anything
        :func:`~repro.storage.bootstrap.open_chain_setup` does —
        including a striped deployment's surviving quorum of node
        directories, which is how a standby SP takes over."""
        from repro.storage.bootstrap import open_chain_setup

        setup = open_chain_setup(data_dir, fsync=fsync)
        return cls(setup.chain, setup.accumulator, setup.encoder, setup.params)

    def close(self) -> None:
        """Close the chain's backing store (no-op for memory chains)."""
        self.chain.close()

    def time_window_query(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
        """Deprecated direct entrypoint; use :class:`repro.api.VChainClient`.

        The positional-tuple answer survives for compatibility, but new
        code should go through a client and transport — the endpoint
        path is what the wire protocol and its tests exercise.
        """
        warnings.warn(
            "ServiceProvider.time_window_query() is deprecated; route queries "
            "through repro.api.VChainClient (or a ServiceEndpoint)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.processor.time_window_query(query, batch=batch)
