"""Service-provider facade (the untrusted full node answering queries)."""

from __future__ import annotations

import warnings

from repro.accumulators.base import MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.chain import Blockchain
from repro.chain.miner import ProtocolParams
from repro.chain.object import DataObject
from repro.core.prover import QueryProcessor, QueryStats
from repro.core.query import TimeWindowQuery
from repro.core.vo import TimeWindowVO


class ServiceProvider:
    """A full node offering verifiable query services to light users.

    Thin façade over :class:`QueryProcessor`.  Transports talk to it
    through :class:`repro.api.ServiceEndpoint`, which also multiplexes
    subscription queries via
    :class:`repro.subscribe.engine.SubscriptionEngine`.
    """

    def __init__(
        self,
        chain: Blockchain,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
    ) -> None:
        self.chain = chain
        self.accumulator = accumulator
        self.encoder = encoder
        self.params = params
        self.processor = QueryProcessor(chain, accumulator, encoder, params)

    def time_window_query(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
        """Deprecated direct entrypoint; use :class:`repro.api.VChainClient`.

        The positional-tuple answer survives for compatibility, but new
        code should go through a client and transport — the endpoint
        path is what the wire protocol and its tests exercise.
        """
        warnings.warn(
            "ServiceProvider.time_window_query() is deprecated; route queries "
            "through repro.api.VChainClient (or a ServiceEndpoint)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.processor.time_window_query(query, batch=batch)
