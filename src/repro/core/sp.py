"""Service-provider facade (the untrusted full node answering queries)."""

from __future__ import annotations

from repro.accumulators.base import MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.chain import Blockchain
from repro.chain.miner import ProtocolParams
from repro.chain.object import DataObject
from repro.core.prover import QueryProcessor, QueryStats
from repro.core.query import TimeWindowQuery
from repro.core.vo import TimeWindowVO


class ServiceProvider:
    """A full node offering verifiable query services to light users.

    Thin façade over :class:`QueryProcessor`; subscription queries are
    handled by :class:`repro.subscribe.engine.SubscriptionEngine`, which
    composes with this class (see the examples).
    """

    def __init__(
        self,
        chain: Blockchain,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
    ) -> None:
        self.chain = chain
        self.accumulator = accumulator
        self.encoder = encoder
        self.params = params
        self.processor = QueryProcessor(chain, accumulator, encoder, params)

    def time_window_query(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
        """Answer a historical Boolean range query with a VO."""
        return self.processor.time_window_query(query, batch=batch)
