"""Range→set transformation (paper Section 5.3).

Numerical values become sets of *binary prefixes*: the value 4 in a
3-bit space is ``100``, transformed into ``{1*, 10*, 100}``.  A range
``[α, β]`` becomes the minimal set of binary-tree nodes (dyadic
intervals) exactly covering it — e.g. ``[0, 6]`` in 3 bits is
``{0*, 10*, 110}``.  Then ``v ∈ [α, β]`` iff the two prefix sets
intersect, which reduces numeric range predicates to the same
set-disjointness machinery as keyword predicates.

Prefixes are namespaced per dimension (the paper's subscript notation):
``"2:10*"`` is the prefix ``10*`` of dimension 2, so multi-dimensional
vectors cannot cross-match between dimensions.  Keyword attributes never
contain ``:`` followed by binary digits in our datasets, and even a
collision would only make a clause *easier* to match, never letting a
mismatch masquerade as a match — soundness is re-checked on raw objects
by the verifier.
"""

from __future__ import annotations

from repro.errors import QueryError


def _prefix_token(dim: int, bits_used: str, total_bits: int) -> str:
    """Render a prefix of ``bits_used`` (may be shorter than the space)."""
    star = "*" if len(bits_used) < total_bits else ""
    return f"{dim}:{bits_used}{star}"


def value_prefix_set(value: int, bits: int, dim: int = 0) -> frozenset[str]:
    """``trans(v)`` — all binary prefixes of ``v`` in a ``bits``-wide space.

    Includes the full bit string and every proper prefix (including the
    root ``*`` is omitted: the root matches everything and carries no
    information, and the paper's example ``trans(4) = {1*, 10*, 100}``
    likewise starts at the first bit).
    """
    if bits < 1:
        raise QueryError("prefix space must have at least 1 bit")
    if not 0 <= value < (1 << bits):
        raise QueryError(f"value {value} outside [0, 2^{bits})")
    bit_string = format(value, f"0{bits}b")
    return frozenset(
        _prefix_token(dim, bit_string[:length], bits) for length in range(1, bits + 1)
    )


def range_cover(low: int, high: int, bits: int, dim: int = 0) -> frozenset[str]:
    """``trans([α, β])`` — minimal dyadic cover of ``[low, high]``.

    Returns the prefix tokens of the highest tree nodes whose spans lie
    entirely inside the range; their union is exactly ``[low, high]``.
    """
    if bits < 1:
        raise QueryError("prefix space must have at least 1 bit")
    space = 1 << bits
    if not 0 <= low <= high < space:
        raise QueryError(f"range [{low}, {high}] invalid for 2^{bits} space")

    cover: list[str] = []

    def descend(node_low: int, node_high: int, path: str) -> None:
        if low <= node_low and node_high <= high:
            if path:
                cover.append(_prefix_token(0, path, bits))
            else:
                # whole space: cover with the two top-level prefixes so the
                # clause stays non-empty and intersects every value.
                cover.append(_prefix_token(0, "0", bits))
                cover.append(_prefix_token(0, "1", bits))
            return
        if node_high < low or node_low > high:
            return
        mid = (node_low + node_high) // 2
        descend(node_low, mid, path + "0")
        descend(mid + 1, node_high, path + "1")

    descend(0, space - 1, "")
    # retarget tokens to the requested dimension
    if dim != 0:
        cover = [f"{dim}:{token.split(':', 1)[1]}" for token in cover]
    return frozenset(cover)


def trans_vector(vector: tuple[int, ...], bits: int) -> frozenset[str]:
    """Prefix set of a multi-dimensional vector (per-dimension union)."""
    prefixes: set[str] = set()
    for dim, value in enumerate(vector):
        prefixes |= value_prefix_set(value, bits, dim)
    return frozenset(prefixes)


def trans_range(
    low: tuple[int, ...], high: tuple[int, ...], bits: int
) -> tuple[frozenset[str], ...]:
    """Range condition → CNF clauses (one OR-clause per dimension).

    ``[(0,3),(6,4)]`` becomes ``(0:… ∨ …) ∧ (1:… ∨ …)`` per the paper's
    multi-dimensional example; each returned frozenset is one clause.
    """
    if len(low) != len(high):
        raise QueryError("range bounds have mismatched dimensionality")
    return tuple(
        range_cover(lo, hi, bits, dim) for dim, (lo, hi) in enumerate(zip(low, high))
    )


def quantize(value: float, low: float, high: float, bits: int) -> int:
    """Map a real value in ``[low, high]`` onto the integer prefix space."""
    if high <= low:
        raise QueryError("quantize needs high > low")
    space = (1 << bits) - 1
    clipped = min(max(value, low), high)
    return round((clipped - low) / (high - low) * space)
