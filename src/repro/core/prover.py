"""SP-side verifiable query processing (Algorithms 1, 3 and 4).

The :class:`QueryProcessor` walks the window newest→oldest.  At each
block it first tries the inter-block skip list (largest distance first,
Algorithm 4); failing that it runs the intra-index tree search
(Algorithm 3), pruning mismatching subtrees with disjointness proofs and
returning matching leaves as results.

*Online batch verification* (Section 6.3): with an aggregating
accumulator (acc2) and ``batch=True``, mismatch sites that share the
same query clause are grouped; the SP computes **one** proof per group
against the multiset *sum* of the group's members (algebraically equal
to the ProofSum of the individual proofs) — fewer pairings for the user
and fewer group elements on the wire.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from repro.accumulators.base import MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.block import Block
from repro.chain.chain import Blockchain
from repro.chain.object import DataObject
from repro.chain.miner import ProtocolParams
from repro.core.query import CNFCondition, TimeWindowQuery
from repro.core.vo import (
    BatchGroup,
    TimeWindowVO,
    VOBlock,
    VOExpandNode,
    VOMatchLeaf,
    VOMismatchNode,
    VONode,
    VOSkip,
)
from repro.errors import QueryError
from repro.index.intra import IndexNode, children_hash


@dataclass
class QueryStats:
    """SP-side accounting for one query."""

    sp_seconds: float = 0.0
    blocks_scanned: int = 0
    blocks_skipped: int = 0
    proofs_computed: int = 0
    nodes_visited: int = 0
    results: int = 0


@dataclass
class _BatchCollector:
    """Accumulates same-clause mismatch multisets for one query."""

    accumulator: MultisetAccumulator
    encoder: ElementEncoder
    groups: dict[frozenset[str], int] = field(default_factory=dict)
    sums: dict[int, Counter] = field(default_factory=dict)

    def group_for(self, clause: frozenset[str], attrs: Counter) -> int:
        group = self.groups.get(clause)
        if group is None:
            group = len(self.groups)
            self.groups[clause] = group
            self.sums[group] = Counter()
        self.sums[group].update(attrs)
        return group

    def finalize(self) -> dict[int, BatchGroup]:
        finished: dict[int, BatchGroup] = {}
        for clause, group in self.groups.items():
            proof = self.accumulator.prove_disjoint(
                self.encoder.encode_multiset(self.sums[group]),
                self.encoder.encode_multiset(Counter(clause)),
            )
            finished[group] = BatchGroup(clause=clause, proof=proof)
        return finished


class QueryProcessor:
    """The service provider's verifiable query engine."""

    def __init__(
        self,
        chain: Blockchain,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
    ) -> None:
        self.chain = chain
        self.accumulator = accumulator
        self.encoder = encoder
        self.params = params

    # -- public API -----------------------------------------------------
    def time_window_query(
        self, query: TimeWindowQuery, batch: bool | None = None
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
        """Process a time-window query; returns (results, VO, stats).

        ``batch`` defaults to the accumulator's aggregation capability.
        """
        if batch is None:
            batch = self.accumulator.supports_aggregation
        if batch and not self.accumulator.supports_aggregation:
            raise QueryError("online batch verification requires acc2")

        start = time.perf_counter()
        stats = QueryStats()
        cnf = query.transformed(self.params.bits)
        collector = (
            _BatchCollector(self.accumulator, self.encoder) if batch else None
        )
        results: list[DataObject] = []
        vo = TimeWindowVO()

        heights = self.chain.heights_in_window(query.start, query.end)
        cursor = len(heights) - 1
        while cursor >= 0:
            height = heights[cursor]
            block = self.chain.block(height)
            skip = self._try_skip(block, cnf, collector, stats)
            if skip is not None:
                vo.entries.append(skip)
                cursor -= skip.distance
                stats.blocks_skipped += min(skip.distance, cursor + skip.distance + 1)
                continue
            root_transcript = self._process_tree(
                block.index_root, cnf, collector, results, stats
            )
            vo.entries.append(VOBlock(height=height, root=root_transcript))
            stats.blocks_scanned += 1
            cursor -= 1

        if collector is not None:
            vo.batch_groups = collector.finalize()
            stats.proofs_computed += len(vo.batch_groups)
        stats.results = len(results)
        stats.sp_seconds = time.perf_counter() - start
        return results, vo, stats

    # -- Algorithm 4: inter-block skips ------------------------------------
    def _try_skip(
        self,
        block: Block,
        cnf: CNFCondition,
        collector: _BatchCollector | None,
        stats: QueryStats,
    ) -> VOSkip | None:
        if self.params.mode != "both" or not block.skip_entries:
            return None
        for entry in sorted(block.skip_entries, key=lambda e: -e.distance):
            clause = cnf.mismatch_clause(entry.attrs)
            if clause is None:
                continue
            proof = None
            group = None
            if collector is not None:
                group = collector.group_for(clause, entry.attrs)
            else:
                proof = self.accumulator.prove_disjoint(
                    self.encoder.encode_multiset(entry.attrs),
                    self.encoder.encode_multiset(Counter(clause)),
                )
                stats.proofs_computed += 1
            siblings = tuple(
                (other.distance, other.entry_hash(self.accumulator.backend))
                for other in block.skip_entries
                if other.distance != entry.distance
            )
            return VOSkip(
                height=block.height,
                distance=entry.distance,
                att_digest=entry.att_digest,
                clause=clause,
                proof=proof,
                group=group,
                sibling_hashes=siblings,
            )
        return None

    # -- Algorithm 3: intra-block tree search --------------------------------
    def _process_tree(
        self,
        node: IndexNode,
        cnf: CNFCondition,
        collector: _BatchCollector | None,
        results: list[DataObject],
        stats: QueryStats,
    ) -> VONode:
        stats.nodes_visited += 1
        if node.att_digest is not None:
            clause = cnf.mismatch_clause(node.attrs)
            if clause is not None:
                return self._mismatch_node(node, clause, collector, stats)
            if node.is_leaf:
                results.append(node.obj)
                return VOMatchLeaf(obj=node.obj)
            return VOExpandNode(
                att_digest=node.att_digest,
                children=tuple(
                    self._process_tree(child, cnf, collector, results, stats)
                    for child in node.children
                ),
            )
        # nil-mode internal node: no digest, always explored
        return VOExpandNode(
            att_digest=None,
            children=tuple(
                self._process_tree(child, cnf, collector, results, stats)
                for child in node.children
            ),
        )

    def _mismatch_node(
        self,
        node: IndexNode,
        clause: frozenset[str],
        collector: _BatchCollector | None,
        stats: QueryStats,
    ) -> VOMismatchNode:
        component = (
            node.obj.serialize() if node.is_leaf else children_hash(node.children)
        )
        proof = None
        group = None
        if collector is not None:
            group = collector.group_for(clause, node.attrs)
        else:
            proof = self.accumulator.prove_disjoint(
                self.encoder.encode_multiset(node.attrs),
                self.encoder.encode_multiset(Counter(clause)),
            )
            stats.proofs_computed += 1
        return VOMismatchNode(
            child_component=component,
            att_digest=node.att_digest,
            clause=clause,
            proof=proof,
            group=group,
        )
