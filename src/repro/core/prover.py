"""SP-side verifiable query processing (Algorithms 1, 3 and 4).

The :class:`QueryProcessor` walks the window newest→oldest.  At each
block it first tries the inter-block skip list (largest distance first,
Algorithm 4); failing that it runs the intra-index tree search
(Algorithm 3), pruning mismatching subtrees with disjointness proofs and
returning matching leaves as results.

*Online batch verification* (Section 6.3): with an aggregating
accumulator (acc2) and ``batch=True``, mismatch sites that share the
same query clause are grouped; the SP computes **one** proof per group
against the multiset *sum* of the group's members (algebraically equal
to the ProofSum of the individual proofs) — fewer pairings for the user
and fewer group elements on the wire.

*Serving caches* (the concurrency path): every step of the window walk
is computed as a self-contained :class:`~repro.cache.BlockFragment` —
a pure function of ``(block, CNF, batch mode)`` — so a
:class:`~repro.cache.VOFragmentCache` can replay it for overlapping
windows and a :class:`~repro.cache.ProofCache` can reuse individual
disjointness proofs across queries and subscribers.  Both caches are
optional per-call arguments; omitted, behaviour and output bytes are
identical to the uncached path.

*Parallel proving* (the multicore path): with a live
:class:`~repro.parallel.CryptoPool`, mismatch-site proofs are *deferred*
— the window walk records ``(attrs, clause)`` work items and builds VO
nodes with proof placeholders, then one fan-out proves every site across
the worker processes and the placeholders are bound in walk order.
Proofs are pure functions of their site, so the bound VO is
byte-identical to the serial path's; the ``workers=1`` default keeps the
original inline proving untouched.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.accumulators.base import DisjointProof, MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.cache.fragments import (
    BlockFragment,
    ProofCache,
    VOFragmentCache,
    bind_groups,
    compute_disjoint_proof,
    multiset_signature,
)
from repro.chain.block import Block
from repro.chain.chain import Blockchain
from repro.chain.object import DataObject
from repro.chain.miner import ProtocolParams
from repro.core.query import CNFCondition, TimeWindowQuery
from repro.core.vo import (
    BatchGroup,
    TimeWindowVO,
    VOBlock,
    VOExpandNode,
    VOMatchLeaf,
    VOMismatchNode,
    VONode,
    VOSkip,
)
from repro.errors import QueryError
from repro.index.intra import IndexNode, children_hash


@dataclass
class QueryStats:
    """SP-side accounting for one query."""

    sp_seconds: float = 0.0
    blocks_scanned: int = 0
    blocks_skipped: int = 0
    proofs_computed: int = 0
    nodes_visited: int = 0
    results: int = 0
    #: per-block VO fragments replayed from the fragment cache
    cache_hits: int = 0
    #: fragment-cache lookups that had to compute (cache enabled only)
    cache_misses: int = 0
    #: disjointness proofs served from the proof cache instead of proved
    proofs_reused: int = 0
    #: crypto work items fanned out to CryptoPool workers
    parallel_tasks: int = 0
    #: worker-process count of the pool that served the query (0 = serial)
    workers_used: int = 0


def prove_sites(
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    sites: list[tuple[Counter, frozenset[str]]],
    proof_cache: ProofCache | None,
    stats: QueryStats | None,
    pool=None,
) -> list[DisjointProof]:
    """Disjointness proofs for many sites at once, in site order.

    Content-identical sites collapse to one computation, the proof cache
    is consulted first (and seeded with new proofs), and everything
    genuinely missing fans out across the
    :class:`~repro.parallel.CryptoPool` when one is live.  Stats match
    the serial path: with a cache, the first occurrence of a content
    counts ``proofs_computed`` and every repeat ``proofs_reused``;
    without one, every site counts ``proofs_computed`` (the serial code
    would have recomputed it).
    """
    proofs: list[DisjointProof | None] = [None] * len(sites)
    groups: dict[tuple, list[int]] = {}
    for index, (attrs, clause) in enumerate(sites):
        groups.setdefault((multiset_signature(attrs), clause), []).append(index)

    caching = proof_cache is not None and proof_cache.enabled
    to_compute: list[list[int]] = []
    for indices in groups.values():
        hit = None
        if caching:
            attrs, clause = sites[indices[0]]
            hit = proof_cache.lookup(attrs, clause)
        if hit is not None:
            for index in indices:
                proofs[index] = hit
            if stats is not None:
                stats.proofs_reused += len(indices)
        else:
            to_compute.append(indices)

    items = [sites[indices[0]] for indices in to_compute]
    if pool is not None and not pool.serial and len(items) > 1:
        computed = pool.map_prove(items)
        if stats is not None:
            stats.parallel_tasks += len(items)
    else:
        computed = [
            compute_disjoint_proof(accumulator, encoder, attrs, clause)
            for attrs, clause in items
        ]
    for indices, proof in zip(to_compute, computed):
        for index in indices:
            proofs[index] = proof
        attrs, clause = sites[indices[0]]
        if caching:
            proof_cache.seed(attrs, clause, proof)
            if stats is not None:
                stats.proofs_computed += 1
                stats.proofs_reused += len(indices) - 1
        elif stats is not None:
            stats.proofs_computed += len(indices)
    return proofs


@dataclass
class _BatchCollector:
    """Accumulates same-clause mismatch multisets for one query."""

    accumulator: MultisetAccumulator
    encoder: ElementEncoder
    groups: dict[frozenset[str], int] = field(default_factory=dict)
    sums: dict[int, Counter] = field(default_factory=dict)

    def group_for(self, clause: frozenset[str], attrs: Counter) -> int:
        group = self.groups.get(clause)
        if group is None:
            group = len(self.groups)
            self.groups[clause] = group
            self.sums[group] = Counter()
        self.sums[group].update(attrs)
        return group

    def finalize(
        self,
        proof_cache: ProofCache | None = None,
        stats: QueryStats | None = None,
        pool=None,
    ) -> dict[int, BatchGroup]:
        ordered = list(self.groups.items())
        sites = [(self.sums[group], clause) for clause, group in ordered]
        proofs = prove_sites(
            self.accumulator, self.encoder, sites, proof_cache, stats, pool
        )
        return {
            group: BatchGroup(clause=clause, proof=proof)
            for (clause, group), proof in zip(ordered, proofs)
        }


class _FragmentCollector:
    """Batch-mode recorder for one fragment: sums clauses, binds no ids.

    Mismatch sites built against it get ``group=None`` (the normalised
    form cached by :class:`~repro.cache.VOFragmentCache`); the per-clause
    attribute sums are merged into a query-global
    :class:`_BatchCollector` when the fragment is integrated.
    """

    def __init__(self) -> None:
        self.sums: dict[frozenset[str], Counter] = {}

    def group_for(self, clause: frozenset[str], attrs: Counter) -> None:
        self.sums.setdefault(clause, Counter()).update(attrs)
        return None

    def snapshot(self) -> tuple[tuple[frozenset[str], Counter], ...]:
        return tuple(self.sums.items())


@dataclass
class _PendingFragment:
    """A freshly computed fragment whose mismatch proofs are deferred."""

    vo_index: int
    cache_key: tuple | None
    fragment: BlockFragment
    sites: list[tuple[Counter, frozenset[str]]]


def _bind_site_proofs(node: VONode, proofs: Iterator[DisjointProof]) -> VONode:
    """Fill proof placeholders in the same DFS order the walk recorded."""
    if isinstance(node, VOMismatchNode):
        if node.proof is None and node.group is None:
            return replace(node, proof=next(proofs))
        return node
    if isinstance(node, VOExpandNode):
        children = tuple(_bind_site_proofs(child, proofs) for child in node.children)
        if all(new is old for new, old in zip(children, node.children)):
            return node
        return replace(node, children=children)
    return node


class QueryProcessor:
    """The service provider's verifiable query engine."""

    def __init__(
        self,
        chain: Blockchain,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        params: ProtocolParams,
        pool=None,
    ) -> None:
        """``pool`` (a :class:`~repro.parallel.CryptoPool`) fans the
        per-site disjointness proving of each query across worker
        processes; ``None`` (or a serial pool) keeps proving inline."""
        self.chain = chain
        self.accumulator = accumulator
        self.encoder = encoder
        self.params = params
        self.pool = pool

    # -- public API -----------------------------------------------------
    def time_window_query(
        self,
        query: TimeWindowQuery,
        batch: bool | None = None,
        *,
        fragment_cache: VOFragmentCache | None = None,
        proof_cache: ProofCache | None = None,
    ) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
        """Process a time-window query; returns (results, VO, stats).

        ``batch`` defaults to the accumulator's aggregation capability.
        ``fragment_cache``/``proof_cache`` memoise per-block fragments
        and disjointness proofs across calls; callers that share them
        (the :class:`~repro.api.ServiceEndpoint` serving path) amortise
        proving work over overlapping queries.
        """
        if batch is None:
            batch = self.accumulator.supports_aggregation
        if batch and not self.accumulator.supports_aggregation:
            raise QueryError("online batch verification requires acc2")

        start = time.perf_counter()
        stats = QueryStats()
        cnf = query.transformed(self.params.bits)
        collector = _BatchCollector(self.accumulator, self.encoder) if batch else None
        caching = fragment_cache is not None and fragment_cache.enabled
        use_pool = self.pool is not None and not self.pool.serial
        if use_pool:
            stats.workers_used = self.pool.workers
        pending: list[_PendingFragment] = []
        results: list[DataObject] = []
        vo = TimeWindowVO()

        heights = self.chain.heights_in_window(query.start, query.end)
        cursor = len(heights) - 1
        while cursor >= 0:
            height = heights[cursor]
            fragment = None
            key = None
            if caching:
                key = fragment_cache.key(height, cnf.clauses, batch)
                fragment = fragment_cache.get(key)
            if fragment is None:
                # in pool mode, per-node proofs are deferred: the walk
                # records sites and leaves placeholders to bind later
                sites: list | None = [] if use_pool and not batch else None
                fragment = self._compute_fragment(
                    self.chain.block(height), cnf, batch, stats, proof_cache, sites
                )
                if caching:
                    stats.cache_misses += 1
                if sites:
                    pending.append(
                        _PendingFragment(len(vo.entries), key, fragment, sites)
                    )
                elif caching:
                    fragment_cache.put(key, fragment)
            else:
                stats.cache_hits += 1

            entry = fragment.entry
            if collector is not None and fragment.clause_sums:
                for clause, attr_sum in fragment.clause_sums:
                    collector.group_for(clause, attr_sum)
                entry = bind_groups(entry, collector.groups)
            results.extend(fragment.results)
            vo.entries.append(entry)
            cursor -= fragment.covered
            if isinstance(entry, VOSkip):
                stats.blocks_skipped += min(entry.distance, cursor + entry.distance + 1)
            else:
                stats.blocks_scanned += 1

        if pending:
            self._resolve_pending(
                pending, vo, fragment_cache if caching else None, stats, proof_cache
            )
        if collector is not None:
            vo.batch_groups = collector.finalize(
                proof_cache, stats, self.pool if use_pool else None
            )
        stats.results = len(results)
        stats.sp_seconds = time.perf_counter() - start
        return results, vo, stats

    def _resolve_pending(
        self,
        pending: list[_PendingFragment],
        vo: TimeWindowVO,
        fragment_cache: VOFragmentCache | None,
        stats: QueryStats,
        proof_cache: ProofCache | None,
    ) -> None:
        """Prove every deferred site in one fan-out, then bind and cache.

        Cached fragments receive their fully bound form, so replays for
        other queries see exactly what the serial path would have
        stored.
        """
        all_sites = [site for item in pending for site in item.sites]
        proofs = prove_sites(
            self.accumulator, self.encoder, all_sites, proof_cache, stats, self.pool
        )
        cursor = 0
        for item in pending:
            span = iter(proofs[cursor : cursor + len(item.sites)])
            cursor += len(item.sites)
            entry = replace(
                item.fragment.entry,
                root=_bind_site_proofs(item.fragment.entry.root, span),
            )
            vo.entries[item.vo_index] = entry
            if fragment_cache is not None:
                fragment_cache.put(item.cache_key, replace(item.fragment, entry=entry))

    # -- per-block fragments ------------------------------------------------
    def _compute_fragment(
        self,
        block: Block,
        cnf: CNFCondition,
        batch: bool,
        stats: QueryStats,
        proof_cache: ProofCache | None,
        sites: list | None = None,
    ) -> BlockFragment:
        """One window step as a reusable fragment (skip or transcript).

        With ``sites`` (pool mode, non-batch) tree mismatch proofs are
        deferred: each site is appended as ``(attrs, clause)`` and its
        VO node carries a placeholder until ``_resolve_pending`` binds
        the proof.  Skip proofs stay inline — one per fragment.
        """
        collector = _FragmentCollector() if batch else None
        results: list[DataObject] = []
        skip = self._try_skip(block, cnf, collector, stats, proof_cache)
        if skip is not None:
            entry: VOBlock | VOSkip = skip
            covered = skip.distance
        else:
            root = self._process_tree(
                block.index_root, cnf, collector, results, stats, proof_cache, sites
            )
            entry = VOBlock(height=block.height, root=root)
            covered = 1
        return BlockFragment(
            entry=entry,
            results=tuple(results),
            covered=covered,
            clause_sums=collector.snapshot() if collector is not None else (),
        )

    def _prove(
        self,
        attrs: Counter,
        clause: frozenset[str],
        stats: QueryStats,
        proof_cache: ProofCache | None,
    ):
        """An individual disjointness proof, via the proof cache if any."""
        if proof_cache is not None and proof_cache.enabled:
            proof, hit = proof_cache.prove_disjoint(attrs, clause)
            if hit:
                stats.proofs_reused += 1
            else:
                stats.proofs_computed += 1
            return proof
        stats.proofs_computed += 1
        return compute_disjoint_proof(self.accumulator, self.encoder, attrs, clause)

    # -- Algorithm 4: inter-block skips ------------------------------------
    def _try_skip(
        self,
        block: Block,
        cnf: CNFCondition,
        collector: _FragmentCollector | None,
        stats: QueryStats,
        proof_cache: ProofCache | None,
    ) -> VOSkip | None:
        if self.params.mode != "both" or not block.skip_entries:
            return None
        for entry in sorted(block.skip_entries, key=lambda e: -e.distance):
            clause = cnf.mismatch_clause(entry.attrs)
            if clause is None:
                continue
            proof = None
            group = None
            if collector is not None:
                group = collector.group_for(clause, entry.attrs)
            else:
                proof = self._prove(entry.attrs, clause, stats, proof_cache)
            siblings = tuple(
                (other.distance, other.entry_hash(self.accumulator.backend))
                for other in block.skip_entries
                if other.distance != entry.distance
            )
            return VOSkip(
                height=block.height,
                distance=entry.distance,
                att_digest=entry.att_digest,
                clause=clause,
                proof=proof,
                group=group,
                sibling_hashes=siblings,
            )
        return None

    # -- Algorithm 3: intra-block tree search --------------------------------
    def _process_tree(
        self,
        node: IndexNode,
        cnf: CNFCondition,
        collector: _FragmentCollector | None,
        results: list[DataObject],
        stats: QueryStats,
        proof_cache: ProofCache | None,
        sites: list | None = None,
    ) -> VONode:
        stats.nodes_visited += 1
        if node.att_digest is not None:
            clause = cnf.mismatch_clause(node.attrs)
            if clause is not None:
                return self._mismatch_node(
                    node, clause, collector, stats, proof_cache, sites
                )
            if node.is_leaf:
                results.append(node.obj)
                return VOMatchLeaf(obj=node.obj)
            return VOExpandNode(
                att_digest=node.att_digest,
                children=tuple(
                    self._process_tree(
                        child, cnf, collector, results, stats, proof_cache, sites
                    )
                    for child in node.children
                ),
            )
        # nil-mode internal node: no digest, always explored
        return VOExpandNode(
            att_digest=None,
            children=tuple(
                self._process_tree(
                    child, cnf, collector, results, stats, proof_cache, sites
                )
                for child in node.children
            ),
        )

    def _mismatch_node(
        self,
        node: IndexNode,
        clause: frozenset[str],
        collector: _FragmentCollector | None,
        stats: QueryStats,
        proof_cache: ProofCache | None,
        sites: list | None = None,
    ) -> VOMismatchNode:
        component = (
            node.obj.serialize() if node.is_leaf else children_hash(node.children)
        )
        proof = None
        group = None
        if collector is not None:
            group = collector.group_for(clause, node.attrs)
        elif sites is not None:
            # pool mode: record the work item, bind the proof later
            sites.append((node.attrs, clause))
        else:
            proof = self._prove(node.attrs, clause, stats, proof_cache)
        return VOMismatchNode(
            child_component=component,
            att_digest=node.att_digest,
            clause=clause,
            proof=proof,
            group=group,
        )
