"""MHT-based baseline ADS (paper Section 5 discussion + Appendix D.1).

The traditional approach builds a sorted Merkle Hash Tree per query key.
To support range queries over *arbitrary* attribute combinations of a
``d``-dimensional database it needs one MHT per non-empty attribute
subset — ``2^d − 1`` trees per block — which is what Fig 16 measures
against the accumulator-based ADS (flat cost in ``d``).

:class:`SortedMHT` is a complete authenticated structure, not a stub:
it answers single-attribute range queries with boundary-inclusive
proofs (the classic completeness trick: return the two objects just
outside the range so the verifier can see nothing was omitted) and the
verifier replays Merkle paths against the root.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.chain.object import DataObject
from repro.crypto.hashing import digest
from repro.errors import VerificationError


@dataclass(frozen=True)
class _Leaf:
    key: tuple[int, ...]
    obj: DataObject

    def leaf_hash(self) -> bytes:
        key_bytes = b"".join(k.to_bytes(8, "big") for k in self.key)
        return digest(key_bytes, self.obj.serialize())


class SortedMHT:
    """A Merkle tree over objects sorted by a (composite) numeric key."""

    def __init__(self, objects: list[DataObject], key_dims: tuple[int, ...]) -> None:
        self.key_dims = key_dims
        self._leaves = sorted(
            (_Leaf(tuple(obj.vector[d] for d in key_dims), obj) for obj in objects),
            key=lambda leaf: leaf.key,
        )
        self._levels: list[list[bytes]] = [[leaf.leaf_hash() for leaf in self._leaves]]
        while len(self._levels[-1]) > 1:
            below = self._levels[-1]
            level = [
                # a lone tail node is promoted unchanged so audit paths
                # can simply skip levels where it has no sibling
                digest(below[i], below[i + 1]) if i + 1 < len(below) else below[i]
                for i in range(0, len(below), 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def n_nodes(self) -> int:
        return sum(len(level) for level in self._levels)

    def nbytes(self) -> int:
        """ADS storage: every node hash (leaves store objects anyway)."""
        return self.n_nodes * len(self.root)

    # -- authenticated single-dimension range query ------------------------
    def range_query(self, low: int, high: int) -> tuple[list[DataObject], dict]:
        """Results plus a VO with boundary leaves and Merkle paths.

        Keys compare on the first key dimension only (composite trees
        are for multi-attribute sort orders; Fig 16 measures their
        construction cost, queries use the leading attribute).
        """
        lo_idx = 0
        while lo_idx < len(self._leaves) and self._leaves[lo_idx].key[0] < low:
            lo_idx += 1
        hi_idx = lo_idx
        while hi_idx < len(self._leaves) and self._leaves[hi_idx].key[0] <= high:
            hi_idx += 1
        # boundary leaves prove completeness at both ends
        start = max(0, lo_idx - 1)
        end = min(len(self._leaves), hi_idx + 1)
        vo = {
            "span": (start, end),
            "leaves": [
                (self._leaves[i].key, self._leaves[i].obj) for i in range(start, end)
            ],
            "paths": [self._audit_path(i) for i in range(start, end)],
            "n_leaves": len(self._leaves),
        }
        return [leaf.obj for leaf in self._leaves[lo_idx:hi_idx]], vo

    def _audit_path(self, index: int) -> list[tuple[bool, bytes]]:
        path = []
        for level in self._levels[:-1]:
            sibling = index ^ 1
            if sibling < len(level):
                path.append((sibling < index, level[sibling]))
            index //= 2
        return path

    @staticmethod
    def verify_range(
        root: bytes, low: int, high: int, results: list[DataObject], vo: dict
    ) -> None:
        """Replay the VO; raises :class:`VerificationError` on forgery."""
        start, end = vo["span"]
        leaves = vo["leaves"]
        paths = vo["paths"]
        if len(leaves) != end - start or len(paths) != len(leaves):
            raise VerificationError("MHT VO structure inconsistent")
        # authenticate every returned leaf against the root
        for offset, ((key, obj), path) in enumerate(zip(leaves, paths)):
            node = _Leaf(tuple(key), obj).leaf_hash()
            index = start + offset
            for left_side, sibling in path:
                node = digest(sibling, node) if left_side else digest(node, sibling)
                index //= 2
            if node != root:
                raise VerificationError("MHT audit path does not reach the root")
        # keys must be sorted and bracket the range (completeness)
        keys = [key[0] for key, _obj in leaves]
        if keys != sorted(keys):
            raise VerificationError("MHT VO leaves are not in key order")
        if start > 0 and keys and keys[0] >= low:
            raise VerificationError("MHT VO missing the left boundary leaf")
        if end < vo["n_leaves"] and keys and keys[-1] <= high:
            raise VerificationError("MHT VO missing the right boundary leaf")
        expected = [obj for key, obj in leaves if low <= key[0] <= high]
        if [o.object_id for o in expected] != [o.object_id for o in results]:
            raise VerificationError("MHT result set does not match the VO span")


class MHTBaseline:
    """Per-block ADS: one sorted MHT per non-empty attribute subset."""

    def __init__(self, dims: int, max_subset: int | None = None) -> None:
        self.dims = dims
        self.max_subset = max_subset or dims

    def attribute_subsets(self) -> list[tuple[int, ...]]:
        subsets: list[tuple[int, ...]] = []
        for size in range(1, self.max_subset + 1):
            subsets.extend(combinations(range(self.dims), size))
        return subsets

    def build_block_ads(
        self, objects: list[DataObject]
    ) -> dict[tuple[int, ...], SortedMHT]:
        """All per-subset trees for one block (the Fig 16 cost driver)."""
        return {
            subset: SortedMHT(objects, subset) for subset in self.attribute_subsets()
        }

    @staticmethod
    def ads_nbytes(trees: dict[tuple[int, ...], SortedMHT]) -> int:
        return sum(tree.nbytes() for tree in trees.values())
