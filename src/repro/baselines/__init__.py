"""Baseline authenticated data structures (for comparison experiments)."""

from repro.baselines.mht import MHTBaseline, SortedMHT

__all__ = ["MHTBaseline", "SortedMHT"]
