"""Query workload generation (paper Section 9 defaults).

The evaluation draws 20 random queries per experiment with a controlled
numeric-range *selectivity* (fraction of the numeric space the range
covers: 10% for 4SQ/WX, 50% for ETH) and a disjunctive Boolean clause
of a fixed size (3 for 4SQ/WX, 9 for ETH).  WX range predicates involve
two of the seven attributes.
"""

from __future__ import annotations

import random

from repro.core.query import (
    CNFCondition,
    RangeCondition,
    SubscriptionQuery,
    TimeWindowQuery,
)
from repro.datasets.base import Dataset
from repro.errors import QueryError

#: Per-dataset evaluation defaults from Section 9.
DATASET_DEFAULTS = {
    "4SQ": {"selectivity": 0.10, "clause_size": 3, "range_dims": 2},
    "WX": {"selectivity": 0.10, "clause_size": 3, "range_dims": 2},
    "ETH": {"selectivity": 0.50, "clause_size": 9, "range_dims": 1},
}


def random_range(
    rng: random.Random, dims: int, bits: int, selectivity: float, range_dims: int
) -> RangeCondition:
    """A random axis-aligned range covering ``selectivity`` of the space.

    Only the first ``range_dims`` dimensions are constrained (the rest
    span fully), mirroring WX's two-attribute predicates.
    """
    if not 0.0 < selectivity <= 1.0:
        raise QueryError("selectivity must be in (0, 1]")
    space = 1 << bits
    constrained = min(range_dims, dims)
    per_dim = selectivity ** (1.0 / constrained)
    width = max(1, round(per_dim * space))
    low: list[int] = []
    high: list[int] = []
    for dim in range(dims):
        if dim < constrained:
            start = rng.randrange(max(1, space - width + 1))
            low.append(start)
            high.append(min(space - 1, start + width - 1))
        else:
            low.append(0)
            high.append(space - 1)
    return RangeCondition(low=tuple(low), high=tuple(high))


def random_boolean(
    rng: random.Random, vocabulary: list[str], clause_size: int
) -> CNFCondition:
    """One disjunctive clause of ``clause_size`` vocabulary terms."""
    terms = rng.sample(vocabulary, min(clause_size, len(vocabulary)))
    return CNFCondition.of([terms])


def make_time_window_queries(
    dataset: Dataset,
    n_queries: int,
    window_blocks: int,
    seed: int = 20,
    selectivity: float | None = None,
    clause_size: int | None = None,
) -> list[TimeWindowQuery]:
    """The paper's workload: random queries over a trailing window."""
    defaults = DATASET_DEFAULTS.get(dataset.name, DATASET_DEFAULTS["4SQ"])
    selectivity = selectivity if selectivity is not None else defaults["selectivity"]
    clause_size = clause_size if clause_size is not None else defaults["clause_size"]
    rng = random.Random(seed)
    last_ts = dataset.blocks[-1][0]
    window = window_blocks * dataset.block_interval
    queries = []
    for _ in range(n_queries):
        queries.append(
            TimeWindowQuery(
                start=max(0, last_ts - window + dataset.block_interval),
                end=last_ts,
                numeric=random_range(
                    rng, dataset.dims, dataset.bits, selectivity, defaults["range_dims"]
                ),
                boolean=random_boolean(rng, dataset.vocabulary, clause_size),
            )
        )
    return queries


def make_subscription_queries(
    dataset: Dataset,
    n_queries: int,
    seed: int = 21,
    selectivity: float | None = None,
    clause_size: int | None = None,
) -> list[SubscriptionQuery]:
    """Random subscriptions with the same predicate distribution."""
    defaults = DATASET_DEFAULTS.get(dataset.name, DATASET_DEFAULTS["4SQ"])
    selectivity = selectivity if selectivity is not None else defaults["selectivity"]
    clause_size = clause_size if clause_size is not None else defaults["clause_size"]
    rng = random.Random(seed)
    queries = []
    for _ in range(n_queries):
        queries.append(
            SubscriptionQuery(
                numeric=random_range(
                    rng, dataset.dims, dataset.bits, selectivity, defaults["range_dims"]
                ),
                boolean=random_boolean(rng, dataset.vocabulary, clause_size),
            )
        )
    return queries
