"""Dataset model shared by the synthetic generators.

A dataset is a sequence of blocks, each a ``(timestamp, objects)`` pair,
plus the metadata the benchmarks need (dimensionality, vocabulary,
block interval).  The paper's three datasets are reproduced as seeded
synthetic generators matching their published statistics (see
DESIGN.md's substitution table); all generators are deterministic given
a seed, so experiments are exactly repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.chain.object import DataObject


@dataclass
class Dataset:
    """A generated workload: blocks of objects plus metadata."""

    name: str
    blocks: list[tuple[int, list[DataObject]]]
    dims: int
    bits: int
    vocabulary: list[str]
    block_interval: int

    @property
    def n_objects(self) -> int:
        return sum(len(objects) for _, objects in self.blocks)

    def all_objects(self) -> list[DataObject]:
        return [obj for _, objects in self.blocks for obj in objects]


def zipf_choice(rng: random.Random, population: list[str], exponent: float = 1.1) -> str:
    """Zipf-distributed pick (rank-frequency) — keyword popularity skew."""
    # inverse-CDF sampling over a truncated zeta distribution
    n = len(population)
    weights_total = sum(1.0 / (rank ** exponent) for rank in range(1, n + 1))
    target = rng.random() * weights_total
    acc = 0.0
    for rank, item in enumerate(population, start=1):
        acc += 1.0 / (rank ** exponent)
        if acc >= target:
            return item
    return population[-1]


def sample_keywords(
    rng: random.Random, vocabulary: list[str], count: int, exponent: float = 1.1
) -> frozenset[str]:
    """``count`` distinct Zipf-weighted keywords."""
    chosen: set[str] = set()
    while len(chosen) < count:
        chosen.add(zipf_choice(rng, vocabulary, exponent))
    return frozenset(chosen)
