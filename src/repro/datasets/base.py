"""Dataset model shared by the synthetic generators.

A dataset is a sequence of blocks, each a ``(timestamp, objects)`` pair,
plus the metadata the benchmarks need (dimensionality, vocabulary,
block interval).  The paper's three datasets are reproduced as seeded
synthetic generators matching their published statistics (see
DESIGN.md's substitution table); all generators are deterministic given
a seed, so experiments are exactly repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.chain.object import DataObject


@dataclass
class Dataset:
    """A generated workload: blocks of objects plus metadata."""

    name: str
    blocks: list[tuple[int, list[DataObject]]]
    dims: int
    bits: int
    vocabulary: list[str]
    block_interval: int

    @property
    def n_objects(self) -> int:
        return sum(len(objects) for _, objects in self.blocks)

    def all_objects(self) -> list[DataObject]:
        return [obj for _, objects in self.blocks for obj in objects]


class ObjectFactory:
    """Builds :class:`DataObject` batches with sequential ids.

    Every example used to hand-roll the same ``(oid := oid + 1)`` loop;
    this is that loop, once.  ``make`` builds one object, ``batch``
    builds one block's worth from ``(vector, keywords)`` rows.
    """

    def __init__(self, start_id: int = 1) -> None:
        self._next_id = start_id

    def make(
        self,
        vector: tuple[int, ...] | int,
        keywords,
        timestamp: int,
    ) -> DataObject:
        if isinstance(vector, int):
            vector = (vector,)
        obj = DataObject(
            object_id=self._next_id,
            timestamp=timestamp,
            vector=tuple(vector),
            keywords=frozenset(keywords),
        )
        self._next_id += 1
        return obj

    def batch(self, rows, timestamp: int) -> list[DataObject]:
        """One block of objects from ``(vector, keywords)`` rows."""
        return [self.make(vector, keywords, timestamp) for vector, keywords in rows]


def zipf_choice(
    rng: random.Random, population: list[str], exponent: float = 1.1
) -> str:
    """Zipf-distributed pick (rank-frequency) — keyword popularity skew."""
    # inverse-CDF sampling over a truncated zeta distribution
    n = len(population)
    weights_total = sum(1.0 / (rank ** exponent) for rank in range(1, n + 1))
    target = rng.random() * weights_total
    acc = 0.0
    for rank, item in enumerate(population, start=1):
        acc += 1.0 / (rank ** exponent)
        if acc >= target:
            return item
    return population[-1]


def sample_keywords(
    rng: random.Random, vocabulary: list[str], count: int, exponent: float = 1.1
) -> frozenset[str]:
    """``count`` distinct Zipf-weighted keywords."""
    chosen: set[str] = set()
    while len(chosen) < count:
        chosen.add(zipf_choice(rng, vocabulary, exponent))
    return frozenset(chosen)
