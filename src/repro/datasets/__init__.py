"""Synthetic datasets and query workloads for the evaluation."""

from repro.datasets.base import Dataset, ObjectFactory, sample_keywords, zipf_choice
from repro.datasets.synthetic import (
    DEFAULT_BITS,
    GENERATORS,
    ethereum_like,
    foursquare_like,
    weather_like,
)
from repro.datasets.workload import (
    DATASET_DEFAULTS,
    make_subscription_queries,
    make_time_window_queries,
    random_boolean,
    random_range,
)

__all__ = [
    "DATASET_DEFAULTS",
    "DEFAULT_BITS",
    "Dataset",
    "GENERATORS",
    "ObjectFactory",
    "ethereum_like",
    "foursquare_like",
    "make_subscription_queries",
    "make_time_window_queries",
    "random_boolean",
    "random_range",
    "sample_keywords",
    "weather_like",
    "zipf_choice",
]
