"""Synthetic stand-ins for the paper's three evaluation datasets.

The real 4SQ / WX / ETH data is not redistributable, so each generator
reproduces the *statistics the evaluation depends on* (dimensionality,
keywords per object, vocabulary size and skew, objects per block,
block interval), per the substitution policy in DESIGN.md:

* ``foursquare_like`` — 2-D location vector, 2 keywords/object from a
  mid-size Zipf vocabulary, 30 s blocks, moderate similarity.
* ``weather_like``    — 7 numeric attributes, 2 description keywords
  from a *small* vocabulary (high inter-object similarity), hourly
  blocks with one object per "city".
* ``ethereum_like``   — 1 numeric amount, 2 address tokens from a large
  sparse vocabulary (low similarity — the regime where the inter-block
  index shines), 15 s blocks.
"""

from __future__ import annotations

import random

from repro.chain.object import DataObject
from repro.datasets.base import Dataset, sample_keywords

#: Default prefix width shared by generators and benchmark configs.
DEFAULT_BITS = 8


def foursquare_like(
    n_blocks: int,
    objects_per_block: int = 8,
    seed: int = 4,
    bits: int = DEFAULT_BITS,
    vocabulary_size: int = 400,
) -> Dataset:
    """Check-in style data: ⟨ts, [lon, lat], {place keywords}⟩."""
    rng = random.Random(seed)
    vocabulary = [f"place:{i}" for i in range(vocabulary_size)]
    interval = 30
    space = 1 << bits
    blocks: list[tuple[int, list[DataObject]]] = []
    object_id = 0
    # check-ins cluster around a handful of "hot spots" in the city
    hotspots = [(rng.randrange(space), rng.randrange(space)) for _ in range(8)]
    for height in range(n_blocks):
        timestamp = height * interval
        objects = []
        for _ in range(objects_per_block):
            cx, cy = rng.choice(hotspots)
            lon = min(space - 1, max(0, int(rng.gauss(cx, space / 16))))
            lat = min(space - 1, max(0, int(rng.gauss(cy, space / 16))))
            objects.append(
                DataObject(
                    object_id=object_id,
                    timestamp=timestamp,
                    vector=(lon, lat),
                    keywords=sample_keywords(rng, vocabulary, 2),
                )
            )
            object_id += 1
        blocks.append((timestamp, objects))
    return Dataset(
        name="4SQ",
        blocks=blocks,
        dims=2,
        bits=bits,
        vocabulary=vocabulary,
        block_interval=interval,
    )


def weather_like(
    n_blocks: int,
    objects_per_block: int = 36,
    seed: int = 7,
    bits: int = DEFAULT_BITS,
    dims: int = 7,
    vocabulary_size: int = 40,
) -> Dataset:
    """Hourly weather records: 7 numeric attrs + 2 description keywords.

    High similarity: the small description vocabulary and the per-city
    smooth attribute drift make neighbouring objects (and blocks) share
    most attribute values — the regime where intra-block clustering
    pays and inter-block skips rarely apply.
    """
    rng = random.Random(seed)
    vocabulary = [f"wx:{i}" for i in range(vocabulary_size)]
    interval = 3600
    space = 1 << bits
    # per-city slowly drifting attribute state
    cities = [
        [rng.randrange(space) for _ in range(dims)] for _ in range(objects_per_block)
    ]
    blocks: list[tuple[int, list[DataObject]]] = []
    object_id = 0
    for height in range(n_blocks):
        timestamp = height * interval
        objects = []
        for state in cities:
            for dim in range(dims):
                state[dim] = min(space - 1, max(0, state[dim] + rng.randint(-3, 3)))
            objects.append(
                DataObject(
                    object_id=object_id,
                    timestamp=timestamp,
                    vector=tuple(state),
                    keywords=sample_keywords(rng, vocabulary, 2, exponent=0.8),
                )
            )
            object_id += 1
        blocks.append((timestamp, objects))
    return Dataset(
        name="WX",
        blocks=blocks,
        dims=dims,
        bits=bits,
        vocabulary=vocabulary,
        block_interval=interval,
    )


def ethereum_like(
    n_blocks: int,
    objects_per_block: int = 12,
    seed: int = 9,
    bits: int = DEFAULT_BITS,
    vocabulary_size: int = 20000,
) -> Dataset:
    """Transaction records: ⟨ts, amount, {sender, receiver addresses}⟩.

    Sparse: a large address space means consecutive blocks rarely share
    set elements, so whole runs of blocks mismatch address queries —
    the inter-block skip list's best case (the paper's biggest ``both``
    over ``intra`` win is on ETH).
    """
    rng = random.Random(seed)
    vocabulary = [f"addr:{i:05x}" for i in range(vocabulary_size)]
    interval = 15
    space = 1 << bits
    blocks: list[tuple[int, list[DataObject]]] = []
    object_id = 0
    for height in range(n_blocks):
        timestamp = height * interval
        objects = []
        for _ in range(objects_per_block):
            # transfer amounts are heavy-tailed; map log-uniform to space
            amount = min(space - 1, int(rng.paretovariate(1.2)) % space)
            sender = f"send:{rng.choice(vocabulary)}"
            receiver = f"recv:{rng.choice(vocabulary)}"
            objects.append(
                DataObject(
                    object_id=object_id,
                    timestamp=timestamp,
                    vector=(amount,),
                    keywords=frozenset({sender, receiver}),
                )
            )
            object_id += 1
        blocks.append((timestamp, objects))
    return Dataset(
        name="ETH",
        blocks=blocks,
        dims=1,
        bits=bits,
        vocabulary=[f"send:{a}" for a in vocabulary]
        + [f"recv:{a}" for a in vocabulary],
        block_interval=interval,
    )


GENERATORS = {
    "4SQ": foursquare_like,
    "WX": weather_like,
    "ETH": ethereum_like,
}
