"""Multicore scale-out: process-pool parallelism for crypto work.

See :mod:`repro.parallel.pool` for the design.  The subsystem is wired
into every hot loop behind a ``workers=`` knob (``VChainNetwork.create``,
``ServiceEndpoint``, ``python -m repro.api.server --workers``); the
default of 1 keeps the original serial code paths byte-for-byte.
"""

from repro.parallel.pool import (
    CryptoPool,
    ParallelConfig,
    PoolStats,
    default_start_method,
    default_workers,
    make_pool,
    resolve_config,
    weighted_fold,
)

__all__ = [
    "CryptoPool",
    "ParallelConfig",
    "PoolStats",
    "default_start_method",
    "default_workers",
    "make_pool",
    "resolve_config",
    "weighted_fold",
]
