"""Process-pool parallelism for the crypto hot loops.

Everything expensive in this codebase is embarrassingly parallel at the
work-item level: mining commits an accumulator per intra-index node,
query processing proves disjointness per mismatch site, and batch
verification exponentiates per deferred check.  All of it is pure CPU
on plain Python ints, so threads cannot help (the GIL serialises them)
— real scale-out needs processes.

:class:`CryptoPool` owns a small fleet of worker processes that hold a
copy of the trusted setup (accumulator + encoder).  On platforms with
``fork`` the workers inherit the parent's state — key-power caches,
fixed-base window tables, encoder memos — for free at fork time; where
only ``spawn`` exists the state is pickled across (see the
``__getstate__``/``__reduce__`` support on :class:`~repro.accumulators.
keys.KeyOracle` and :class:`~repro.crypto.msm.CurveOps`).  Work is
shipped in chunks to amortise IPC, and every result is a pure function
of its work item, so parallel output is **byte-identical** to the
serial path by construction.

``ParallelConfig(workers=1)`` (the default everywhere) is the serial
escape hatch: no processes are started and every caller keeps today's
inline code path.  ``workers=0`` means "one per available core".

Error contract: exceptions raised *by the work itself* (e.g.
:class:`~repro.errors.NotDisjointError`) cross the process boundary and
re-raise unchanged in the caller.  A worker that dies (OOM-killed,
segfaulted) or a pool used after :meth:`CryptoPool.close` raises
:class:`~repro.errors.ParallelError` instead of hanging.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Sequence

from repro.accumulators.base import (
    AccumulatorValue,
    DisjointProof,
    MultisetAccumulator,
)
from repro.accumulators.encoding import ElementEncoder
from repro.crypto.accel import dispatch
from repro.errors import ParallelError

#: chunks scheduled per worker per map (smaller chunks balance skew,
#: larger chunks amortise pickling; 4 is a reasonable middle ground)
_CHUNKS_PER_WORKER = 4

#: the types shipped to worker processes at pool start (and therefore
#: pickled under the spawn start method) — the roots of the
#: pickle-safety static check; extend this when _init_worker grows state
POOL_STATE_TYPES = (MultisetAccumulator, ElementEncoder)


def default_workers() -> int:
    """The number of CPU cores this process may actually use."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_start_method() -> str:
    """``fork`` where available (free state inheritance), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for one :class:`CryptoPool`.

    ``workers=1`` is serial (no processes at all); ``workers=0`` resolves
    to one worker per available core.  ``chunk_size=None`` sizes chunks
    automatically from the map length.  ``start_method=None`` picks
    ``fork`` when the platform offers it.
    """

    workers: int = 1
    chunk_size: int | None = None
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ParallelError("workers must be >= 0 (0 = one per core)")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ParallelError("chunk_size must be >= 1")
        if (
            self.start_method is not None
            and self.start_method not in multiprocessing.get_all_start_methods()
        ):
            raise ParallelError(
                f"start method {self.start_method!r} unavailable on this platform"
            )

    def resolved_workers(self) -> int:
        return default_workers() if self.workers == 0 else self.workers

    @property
    def serial(self) -> bool:
        return self.resolved_workers() <= 1


@dataclass(frozen=True)
class PoolStats:
    """Immutable counters snapshot for one pool's lifetime."""

    workers: int = 1
    start_method: str = "serial"
    maps: int = 0
    tasks: int = 0
    chunks: int = 0

    def as_info(self) -> dict[str, int | str]:
        return {
            "workers": self.workers,
            "start_method": self.start_method,
            "maps": self.maps,
            "tasks": self.tasks,
            "chunks": self.chunks,
        }


# -- worker-side state ---------------------------------------------------
# One (accumulator, encoder) pair per worker process, installed by the
# pool initializer.  Under fork the objects arrive by inheritance; under
# spawn they are pickled (KeyOracle drops its fixed-base tables in
# transit and rebuilds them lazily).
_WORKER_ACCUMULATOR: MultisetAccumulator | None = None
_WORKER_ENCODER: ElementEncoder | None = None


def _init_worker(
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    accel_impl: str = "auto",
) -> None:  # pragma: no cover - runs in worker processes
    global _WORKER_ACCUMULATOR, _WORKER_ENCODER
    _WORKER_ACCUMULATOR = accumulator
    _WORKER_ENCODER = encoder
    # Match the parent's arithmetic provider (spawn-mode workers start
    # with a fresh, unresolved dispatch state).  fallback=True: a worker
    # landing in a leaner environment degrades to the probe order
    # instead of dying — results are byte-identical either way.
    dispatch.set_impl(accel_impl, fallback=True)


def _worker_sleep(seconds: float) -> int:  # pragma: no cover - worker-side
    """Warm-up no-op: forces the executor to actually start a worker."""
    time.sleep(seconds)
    return os.getpid()


def _execute_chunk(
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    payload: tuple[str, list[Any]],
) -> list[Any]:
    """Run one chunk of work items against explicit crypto state.

    Shared verbatim by the worker processes and the serial inline path,
    so both compute the same pure functions over the same inputs.
    """
    kind, items = payload
    if kind == "accumulate":
        return [accumulator.accumulate(encoded) for encoded in items]
    if kind == "prove":
        from repro.cache.fragments import compute_disjoint_proof

        return [
            compute_disjoint_proof(accumulator, encoder, attrs, clause)
            for attrs, clause in items
        ]
    if kind == "weighted":
        return [weighted_fold(accumulator, items)]
    raise ParallelError(f"unknown crypto work kind {kind!r}")


def weighted_fold(
    accumulator: MultisetAccumulator,
    items: Sequence[tuple[AccumulatorValue, DisjointProof, int]],
) -> tuple[AccumulatorValue, DisjointProof]:
    """``(Sum(value_i^w_i), ProofSum(proof_i^w_i))`` over weighted checks.

    The one implementation of the random-weighted aggregation fold,
    shared by the pool workers and
    :meth:`~repro.core.verifier.QueryVerifier.batch_verify`'s inline
    small-batch path — both must stay algebraically identical.
    """
    backend = accumulator.backend
    values = [
        AccumulatorValue(parts=tuple(backend.exp(part, weight) for part in value.parts))
        for value, _proof, weight in items
    ]
    proofs = [
        DisjointProof(parts=tuple(backend.exp(part, weight) for part in proof.parts))
        for _value, proof, weight in items
    ]
    return accumulator.sum_values(values), accumulator.sum_proofs(proofs)


def _worker_run(
    payload: tuple[str, list[Any]],
) -> list[Any]:  # pragma: no cover - runs in worker processes
    accumulator, encoder = _WORKER_ACCUMULATOR, _WORKER_ENCODER
    if accumulator is None or encoder is None:
        raise ParallelError("worker process was never initialised")
    return _execute_chunk(accumulator, encoder, payload)


class CryptoPool:
    """A process pool holding the trusted setup, mapped over crypto work.

    The three entry points mirror the three hot loops:

    * :meth:`map_accumulate` — mining's per-node commitments;
    * :meth:`map_prove` — the SP's per-site disjointness proofs;
    * :meth:`weighted_sums` — batch verification's random-weighted
      aggregation, returned as merged partial products.

    With a serial config no processes exist and every call executes
    inline; callers may also branch on :attr:`serial` to keep their
    original single-threaded code path untouched.
    """

    def __init__(
        self,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        config: ParallelConfig | None = None,
    ) -> None:
        self.config = config or ParallelConfig()
        self._accumulator = accumulator
        self._encoder = encoder
        self._workers = self.config.resolved_workers()
        self._start_method = "serial"
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        self._lock = threading.Lock()
        self._maps = 0
        self._tasks = 0
        self._chunks = 0
        if self._workers > 1:
            self._start_method = self.config.start_method or default_start_method()
            context = multiprocessing.get_context(self._start_method)
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(accumulator, encoder, dispatch.active_impl()),
            )
            self._warmup()

    # -- lifecycle -----------------------------------------------------
    def _warmup(self) -> None:
        """Start every worker now, while the parent is single-threaded.

        ``ProcessPoolExecutor`` forks lazily, one worker per submission;
        submitting ``workers`` overlapping sleeps forces the whole fleet
        up front.  That keeps all forking at construction time (before
        serving threads exist — forking a threaded process is where
        multiprocessing deadlocks come from) and charges table/cache
        warm-up to setup instead of the first measured map.
        """
        assert self._executor is not None
        futures = [
            self._executor.submit(_worker_sleep, 0.05) for _ in range(self._workers)
        ]
        try:
            for future in futures:
                future.result(timeout=60)
        except (BrokenProcessPool, TimeoutError) as exc:  # pragma: no cover
            # don't orphan whatever workers did come up
            self._executor.shutdown(wait=False, cancel_futures=True)
            raise ParallelError("crypto pool worker failed to start") from exc

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def serial(self) -> bool:
        return self._executor is None

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, wait: bool = True) -> None:
        """Shut the workers down; idempotent.  With ``wait`` the call
        blocks until in-flight chunks finish (graceful drain)."""
        with self._lock:
            self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=wait)

    def __enter__(self) -> "CryptoPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> PoolStats:
        with self._lock:
            return PoolStats(
                workers=self._workers,
                start_method=self._start_method,
                maps=self._maps,
                tasks=self._tasks,
                chunks=self._chunks,
            )

    # -- scheduling ----------------------------------------------------
    def _chunked(self, items: Sequence[Any], kind: str) -> list[tuple[str, list[Any]]]:
        size = self.config.chunk_size
        if size is None:
            size = max(1, -(-len(items) // (self._workers * _CHUNKS_PER_WORKER)))
        return [
            (kind, list(items[start : start + size]))
            for start in range(0, len(items), size)
        ]

    def _run(
        self, payloads: list[tuple[str, list[Any]]], n_items: int
    ) -> list[list[Any]]:
        if self._closed:
            raise ParallelError("crypto pool is closed")
        with self._lock:
            self._maps += 1
            self._tasks += n_items
            self._chunks += len(payloads)
        if self._executor is None:
            return [
                _execute_chunk(self._accumulator, self._encoder, payload)
                for payload in payloads
            ]
        try:
            return list(self._executor.map(_worker_run, payloads))
        except BrokenProcessPool as exc:
            raise ParallelError(
                "a crypto pool worker died mid-task; results are lost "
                "(the pool must be recreated)"
            ) from exc
        except RuntimeError as exc:
            # only the executor's own shutdown race converts; a
            # RuntimeError raised by the work itself (e.g. a
            # RecursionError) re-raises unchanged per the error contract
            if self._closed or "shutdown" in str(exc):
                raise ParallelError("crypto pool is closed") from exc
            raise

    # -- the three hot-loop entry points -------------------------------
    def map_accumulate(
        self, encoded_multisets: Sequence[Counter[int]]
    ) -> list[AccumulatorValue]:
        """``accumulate(X)`` for every encoded multiset, in order."""
        if not encoded_multisets:
            return []
        chunks = self._chunked(encoded_multisets, "accumulate")
        results = self._run(chunks, len(encoded_multisets))
        return [value for chunk in results for value in chunk]

    def map_prove(
        self, items: Sequence[tuple[Counter[str], frozenset[str]]]
    ) -> list[DisjointProof]:
        """``ProveDisjoint(attrs, clause)`` for every site, in order.

        Items carry *raw* attribute multisets; workers encode with their
        own encoder copy (the encoding is deterministic public
        parameterisation, so results match the serial path exactly).
        """
        if not items:
            return []
        chunks = self._chunked(items, "prove")
        return [proof for chunk in self._run(chunks, len(items)) for proof in chunk]

    def weighted_sums(
        self,
        checks: Sequence[tuple[AccumulatorValue, DisjointProof]],
        weights: Sequence[int],
    ) -> tuple[AccumulatorValue, DisjointProof]:
        """Random-weighted ``(Sum, ProofSum)`` over many deferred checks.

        Each worker exponentiates and folds its chunk into one partial
        product; the partials merge here with one more ``Sum``/
        ``ProofSum``.  Group operations are associative, so the result
        equals the serial left-to-right fold exactly.  Aggregating
        accumulators (acc2) only.
        """
        if len(checks) != len(weights):
            raise ParallelError("weighted_sums: checks and weights differ in length")
        if not checks:
            raise ParallelError("weighted_sums of an empty check list")
        triples = [
            (value, proof, weight)
            for (value, proof), weight in zip(checks, weights)
        ]
        chunks = self._chunked(triples, "weighted")
        partials = [pair for chunk in self._run(chunks, len(triples)) for pair in chunk]
        if len(partials) == 1:
            return partials[0]
        return (
            self._accumulator.sum_values([value for value, _proof in partials]),
            self._accumulator.sum_proofs([proof for _value, proof in partials]),
        )

    # -- debugging aids -------------------------------------------------
    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (empty when serial)."""
        if self._executor is None:
            return []
        processes = getattr(self._executor, "_processes", None) or {}
        return [
            process.pid for process in processes.values() if process.pid is not None
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CryptoPool(workers={self._workers}, "
            f"start_method={self._start_method!r}, closed={self._closed})"
        )


def make_pool(
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    workers: int = 1,
    config: ParallelConfig | None = None,
) -> CryptoPool | None:
    """``CryptoPool`` for the requested scale, or ``None`` when serial.

    The convenience constructor every ``workers=`` knob funnels through:
    returning ``None`` for the serial case lets call sites keep their
    original code path with a plain ``if pool is None`` test.  Pass
    *either* ``workers`` or a full ``config`` — both at once is
    rejected rather than silently preferring one.
    """
    config = resolve_config(workers, config)
    if config.serial:
        return None
    return CryptoPool(accumulator, encoder, config)


def resolve_config(
    workers: int = 1, config: ParallelConfig | None = None
) -> ParallelConfig:
    """Validate and normalise a ``workers=``/``config=`` argument pair.

    Callers with other side effects (e.g. ``VChainNetwork.create``
    initialising a data directory) run this *first*, so argument
    mistakes fail before anything touches disk or forks.
    """
    if config is not None and workers != 1:
        raise ParallelError(
            "pass either workers= or a ParallelConfig, not both "
            "(the config carries its own worker count)"
        )
    return config or ParallelConfig(workers=workers)
