"""The supersingular pairing curve ``E: y² = x³ + x`` over F_p.

With ``p ≡ 3 (mod 4)`` this curve is supersingular, has exactly ``p + 1``
points, and admits the distortion map ``φ(x, y) = (-x, i·y)`` into
``E(F_p²)`` (where ``i² = -1``), which makes the modified Tate pairing
*symmetric*: ``e(P, Q) = t(P, φ(Q))`` with ``e: G × G → μ_r ⊂ F_p²``.

The parameters below were generated once (seeded search, see DESIGN.md):
``p`` is a 511-bit prime with ``p + 1 = c·r`` for the 160-bit prime ``r``,
and ``G`` generates the order-``r`` subgroup.  This mirrors the symmetric
pairing setting the vChain paper assumes (``G`` and ``H`` of prime order
``p`` with ``e: G×G→H``).

Points are affine tuples ``(x, y)`` of integers; the point at infinity is
``None``.  F_p² elements are tuples ``(a, b)`` meaning ``a + b·i``.
"""

from __future__ import annotations

from repro.crypto.field import PrimeField
from repro.errors import CryptoError

# -- generated curve parameters (seeded search; see DESIGN.md) --------------
#: 511-bit base-field prime, p ≡ 3 (mod 4), p + 1 = COFACTOR * SUBGROUP_ORDER.
FIELD_PRIME = 6698761076839292804798032345080728102601495312568582201020813101747641604372147025074805141966745545006801312365215495120673940650645247493170428513098411  # noqa: E501
#: 160-bit prime order of the pairing subgroup G.
SUBGROUP_ORDER = 1132706623188116297760294080913586700152711772617
#: (p + 1) / r — multiplying a random point by this lands in G.
COFACTOR = 5913941827218206318452853784867549722579928714313055682319682572522111400768920319289074442463165537442636
#: Generator of the order-r subgroup.
GENERATOR = (
    644988812605011586882974006249781298230332375867338719806419586490892375218630209426126269839108199141760862373542734226452828421601520073703467960137507,  # noqa: E501
    3764700575257986830275127429272243840806088968049223078610082245509513780559587296633051565309428704792825022847512834742751350099724705828205459740325817,  # noqa: E501
)

Fp = PrimeField(FIELD_PRIME)
Fr = PrimeField(SUBGROUP_ORDER)

Point = tuple[int, int] | None


# -- affine curve arithmetic over F_p -----------------------------------------
def is_on_curve(point: Point) -> bool:
    """Check ``y² = x³ + x`` (infinity counts as on-curve)."""
    if point is None:
        return True
    x, y = point
    p = FIELD_PRIME
    return y * y % p == (x * x % p * x + x) % p


def add(lhs: Point, rhs: Point) -> Point:
    """Affine point addition (chord-and-tangent)."""
    if lhs is None:
        return rhs
    if rhs is None:
        return lhs
    p = FIELD_PRIME
    x1, y1 = lhs
    x2, y2 = rhs
    if x1 == x2:
        if (y1 + y2) % p == 0:
            return None
        # tangent; a = 1 for y² = x³ + x
        lam = (3 * x1 * x1 + 1) * pow(2 * y1, -1, p) % p
    else:
        lam = (y2 - y1) * pow(x2 - x1, -1, p) % p
    x3 = (lam * lam - x1 - x2) % p
    y3 = (lam * (x1 - x3) - y1) % p
    return (x3, y3)


def neg(point: Point) -> Point:
    if point is None:
        return None
    x, y = point
    return (x, (-y) % FIELD_PRIME)


def multiply(point: Point, scalar: int) -> Point:
    """Double-and-add scalar multiplication; scalar taken mod group order."""
    if scalar < 0:
        return neg(multiply(point, -scalar))
    result: Point = None
    addend = point
    while scalar:
        if scalar & 1:
            result = add(result, addend)
        addend = add(addend, addend)
        scalar >>= 1
    return result


def random_subgroup_point(rng) -> Point:
    """Hash-free random point in the order-r subgroup (for tests)."""
    p = FIELD_PRIME
    while True:
        x = rng.randrange(p)
        rhs = (x * x * x + x) % p
        y = Fp.sqrt(rhs)
        if y is None:
            continue
        candidate = multiply((x, y), COFACTOR)
        if candidate is not None:
            return candidate


def validate_subgroup(point: Point) -> None:
    """Raise unless ``point`` is on-curve and in the order-r subgroup."""
    if not is_on_curve(point):
        raise CryptoError("point is not on the curve")
    if point is not None and multiply(point, SUBGROUP_ORDER) is not None:
        raise CryptoError("point is not in the prime-order subgroup")


# -- F_p² arithmetic (for the pairing target group) ---------------------------
# Elements are (a, b) = a + b·i with i² = -1; valid because p ≡ 3 (mod 4)
# makes -1 a non-residue, so X² + 1 is irreducible over F_p.
Fp2Element = tuple[int, int]

FP2_ONE: Fp2Element = (1, 0)
FP2_ZERO: Fp2Element = (0, 0)


def fp2_add(u: Fp2Element, v: Fp2Element) -> Fp2Element:
    p = FIELD_PRIME
    return ((u[0] + v[0]) % p, (u[1] + v[1]) % p)


def fp2_sub(u: Fp2Element, v: Fp2Element) -> Fp2Element:
    p = FIELD_PRIME
    return ((u[0] - v[0]) % p, (u[1] - v[1]) % p)


def fp2_mul(u: Fp2Element, v: Fp2Element) -> Fp2Element:
    p = FIELD_PRIME
    a, b = u
    c, d = v
    real = (a * c - b * d) % p
    imag = (a * d + b * c) % p
    return (real, imag)


def fp2_square(u: Fp2Element) -> Fp2Element:
    p = FIELD_PRIME
    a, b = u
    return ((a - b) * (a + b) % p, 2 * a * b % p)


def fp2_inv(u: Fp2Element) -> Fp2Element:
    p = FIELD_PRIME
    a, b = u
    norm = (a * a + b * b) % p
    if norm == 0:
        raise CryptoError("zero has no inverse in F_p2")
    inv_norm = pow(norm, -1, p)
    return (a * inv_norm % p, (-b) * inv_norm % p)


def fp2_pow(u: Fp2Element, e: int) -> Fp2Element:
    if e < 0:
        return fp2_pow(fp2_inv(u), -e)
    result = FP2_ONE
    base = u
    while e:
        if e & 1:
            result = fp2_mul(result, base)
        base = fp2_square(base)
        e >>= 1
    return result


def fp2_conjugate(u: Fp2Element) -> Fp2Element:
    """Frobenius x ↦ x^p on F_p², i.e. conjugation a + bi ↦ a - bi."""
    return (u[0], (-u[1]) % FIELD_PRIME)
