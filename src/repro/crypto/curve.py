"""The supersingular pairing curve ``E: y² = x³ + x`` over F_p.

With ``p ≡ 3 (mod 4)`` this curve is supersingular, has exactly ``p + 1``
points, and admits the distortion map ``φ(x, y) = (-x, i·y)`` into
``E(F_p²)`` (where ``i² = -1``), which makes the modified Tate pairing
*symmetric*: ``e(P, Q) = t(P, φ(Q))`` with ``e: G × G → μ_r ⊂ F_p²``.

The parameters below were generated once (seeded search, see DESIGN.md):
``p`` is a 511-bit prime with ``p + 1 = c·r`` for the 160-bit prime ``r``,
and ``G`` generates the order-``r`` subgroup.  This mirrors the symmetric
pairing setting the vChain paper assumes (``G`` and ``H`` of prime order
``p`` with ``e: G×G→H``).

Points are affine tuples ``(x, y)`` of integers; the point at infinity is
``None``.  F_p² elements are tuples ``(a, b)`` meaning ``a + b·i``.

Hot paths (scalar multiplication, MSM in :mod:`repro.crypto.msm`) run in
Jacobian coordinates ``(X, Y, Z)`` with ``x = X/Z²``, ``y = Y/Z³`` so that
point addition costs ~12 field multiplications instead of a modular
inversion (~44 multiplications' worth on CPython).  ``Z = 0`` encodes the
point at infinity.  Affine chord-and-tangent ``add`` is kept both as the
reference implementation and for the pairing's Miller loop, which needs
the line slope anyway.
"""

from __future__ import annotations

from repro.crypto.accel import dispatch
from repro.crypto.field import PrimeField
from repro.errors import CryptoError

# -- generated curve parameters (seeded search; see DESIGN.md) --------------
#: 511-bit base-field prime, p ≡ 3 (mod 4), p + 1 = COFACTOR * SUBGROUP_ORDER.
FIELD_PRIME = 6698761076839292804798032345080728102601495312568582201020813101747641604372147025074805141966745545006801312365215495120673940650645247493170428513098411  # noqa: E501
#: 160-bit prime order of the pairing subgroup G.
SUBGROUP_ORDER = 1132706623188116297760294080913586700152711772617
#: (p + 1) / r — multiplying a random point by this lands in G.
COFACTOR = 5913941827218206318452853784867549722579928714313055682319682572522111400768920319289074442463165537442636  # noqa: E501
#: Generator of the order-r subgroup.
GENERATOR = (
    644988812605011586882974006249781298230332375867338719806419586490892375218630209426126269839108199141760862373542734226452828421601520073703467960137507,  # noqa: E501
    3764700575257986830275127429272243840806088968049223078610082245509513780559587296633051565309428704792825022847512834742751350099724705828205459740325817,  # noqa: E501
)

Fp = PrimeField(FIELD_PRIME)
Fr = PrimeField(SUBGROUP_ORDER)

Point = tuple[int, int] | None


# -- affine curve arithmetic over F_p -----------------------------------------
def is_on_curve(point: Point) -> bool:
    """Check ``y² = x³ + x`` (infinity counts as on-curve)."""
    if point is None:
        return True
    x, y = point
    p = FIELD_PRIME
    return y * y % p == (x * x % p * x + x) % p


def add(lhs: Point, rhs: Point) -> Point:
    """Affine point addition (chord-and-tangent)."""
    if lhs is None:
        return rhs
    if rhs is None:
        return lhs
    p = FIELD_PRIME
    x1, y1 = lhs
    x2, y2 = rhs
    if x1 == x2:
        if (y1 + y2) % p == 0:
            return None
        # tangent; a = 1 for y² = x³ + x
        lam = (3 * x1 * x1 + 1) * dispatch.modinv(2 * y1, p) % p
    else:
        lam = (y2 - y1) * dispatch.modinv(x2 - x1, p) % p
    x3 = (lam * lam - x1 - x2) % p
    y3 = (lam * (x1 - x3) - y1) % p
    return (x3, y3)


def neg(point: Point) -> Point:
    if point is None:
        return None
    x, y = point
    return (x, (-y) % FIELD_PRIME)


# -- Jacobian coordinates -----------------------------------------------------
JacPoint = tuple[int, int, int]

#: Jacobian point at infinity (any (X, Y, 0) with X, Y ≠ 0 works).
JAC_INFINITY: JacPoint = (1, 1, 0)


def to_jacobian(point: Point) -> JacPoint:
    if point is None:
        return JAC_INFINITY
    return (point[0], point[1], 1)


def from_jacobian(point: JacPoint) -> Point:
    x, y, z = point
    if z == 0:
        return None
    p = FIELD_PRIME
    z_inv = dispatch.modinv(z, p)
    z_inv2 = z_inv * z_inv % p
    return (x * z_inv2 % p, y * z_inv2 % p * z_inv % p)


def batch_from_jacobian(points: list[JacPoint]) -> list[Point]:
    """Normalize many Jacobian points with **one** inversion.

    Montgomery's trick: invert the product of all the Z coordinates,
    then peel off per-point inverses with two multiplications each.
    """
    p = FIELD_PRIME
    prefix: list[int] = []
    acc = 1
    for _, _, z in points:
        if z != 0:
            acc = acc * z % p
        prefix.append(acc)
    inv = dispatch.modinv(acc, p)
    out: list[Point] = [None] * len(points)
    for i in range(len(points) - 1, -1, -1):
        x, y, z = points[i]
        if z == 0:
            continue
        before = prefix[i - 1] if i > 0 else 1
        # walk the prefix products backwards to isolate 1/z_i
        z_inv = inv * before % p
        inv = inv * z % p
        z_inv2 = z_inv * z_inv % p
        out[i] = (x * z_inv2 % p, y * z_inv2 % p * z_inv % p)
    return out


def jac_neg(point: JacPoint) -> JacPoint:
    x, y, z = point
    return (x, (-y) % FIELD_PRIME, z)


def jac_double(point: JacPoint) -> JacPoint:
    x1, y1, z1 = point
    if z1 == 0 or y1 == 0:
        return JAC_INFINITY
    p = FIELD_PRIME
    yy = y1 * y1 % p
    s = 4 * x1 * yy % p
    zz = z1 * z1 % p
    m = (3 * x1 * x1 + zz * zz) % p  # a = 1 for y² = x³ + x
    x3 = (m * m - 2 * s) % p
    y3 = (m * (s - x3) - 8 * yy * yy) % p
    z3 = 2 * y1 * z1 % p
    return (x3, y3, z3)


def jac_add(lhs: JacPoint, rhs: JacPoint) -> JacPoint:
    if lhs[2] == 0:
        return rhs
    if rhs[2] == 0:
        return lhs
    p = FIELD_PRIME
    x1, y1, z1 = lhs
    x2, y2, z2 = rhs
    z1z1 = z1 * z1 % p
    z2z2 = z2 * z2 % p
    u1 = x1 * z2z2 % p
    u2 = x2 * z1z1 % p
    s1 = y1 * z2z2 % p * z2 % p
    s2 = y2 * z1z1 % p * z1 % p
    if u1 == u2:
        if s1 != s2:
            return JAC_INFINITY
        return jac_double(lhs)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    hh = h * h % p
    hhh = h * hh % p
    v = u1 * hh % p
    x3 = (r * r - hhh - 2 * v) % p
    y3 = (r * (v - x3) - s1 * hhh) % p
    z3 = z1 * z2 % p * h % p
    return (x3, y3, z3)


def jac_add_affine(lhs: JacPoint, rhs: Point) -> JacPoint:
    """Mixed addition: Jacobian ``lhs`` plus affine ``rhs`` (Z₂ = 1)."""
    if rhs is None:
        return lhs
    if lhs[2] == 0:
        return (rhs[0], rhs[1], 1)
    p = FIELD_PRIME
    x1, y1, z1 = lhs
    x2, y2 = rhs
    z1z1 = z1 * z1 % p
    u2 = x2 * z1z1 % p
    s2 = y2 * z1z1 % p * z1 % p
    if u2 == x1 % p:
        if (s2 - y1) % p:
            return JAC_INFINITY
        return jac_double(lhs)
    h = (u2 - x1) % p
    r = (s2 - y1) % p
    hh = h * h % p
    hhh = h * hh % p
    v = x1 * hh % p
    x3 = (r * r - hhh - 2 * v) % p
    y3 = (r * (v - x3) - y1 * hhh) % p
    z3 = z1 * h % p
    return (x3, y3, z3)


def multiply(point: Point, scalar: int) -> Point:
    """Scalar multiplication (width-5 wNAF over Jacobian coordinates).

    One modular inversion total (the final normalization) instead of one
    per double-and-add step; results are identical affine points.
    """
    if point is None or scalar == 0:
        return None
    if scalar < 0:
        return neg(multiply(point, -scalar))
    from repro.crypto import msm

    return msm.jac_to_affine(
        msm.SS512_OPS, msm.jac_scalar_mul(msm.SS512_OPS, point, scalar)
    )


def random_subgroup_point(rng) -> Point:
    """Hash-free random point in the order-r subgroup (for tests)."""
    p = FIELD_PRIME
    while True:
        x = rng.randrange(p)
        rhs = (x * x * x + x) % p
        y = Fp.sqrt(rhs)
        if y is None:
            continue
        candidate = multiply((x, y), COFACTOR)
        if candidate is not None:
            return candidate


#: Points whose order-r membership has already been proven.  VO decoding
#: re-validates every deserialized element, and real VOs repeat elements
#: constantly (clause digests, key powers, the generator), so caching the
#: expensive subgroup-order multiplication is a large win on that path.
#: The on-curve check is cheap and always re-run, so a cache hit can never
#: bless a point that would fail validation.
_SUBGROUP_CACHE: set[tuple[int, int]] = set()
_SUBGROUP_CACHE_MAX = 8192


def validate_subgroup(point: Point) -> None:
    """Raise unless ``point`` is on-curve and in the order-r subgroup."""
    if not is_on_curve(point):
        raise CryptoError("point is not on the curve")
    if point is None or point in _SUBGROUP_CACHE:
        return
    if multiply(point, SUBGROUP_ORDER) is not None:
        raise CryptoError("point is not in the prime-order subgroup")
    if len(_SUBGROUP_CACHE) >= _SUBGROUP_CACHE_MAX:
        _SUBGROUP_CACHE.pop()
    _SUBGROUP_CACHE.add(point)


# -- F_p² arithmetic (for the pairing target group) ---------------------------
# Elements are (a, b) = a + b·i with i² = -1; valid because p ≡ 3 (mod 4)
# makes -1 a non-residue, so X² + 1 is irreducible over F_p.
Fp2Element = tuple[int, int]

FP2_ONE: Fp2Element = (1, 0)
FP2_ZERO: Fp2Element = (0, 0)


def fp2_add(u: Fp2Element, v: Fp2Element) -> Fp2Element:
    p = FIELD_PRIME
    return ((u[0] + v[0]) % p, (u[1] + v[1]) % p)


def fp2_sub(u: Fp2Element, v: Fp2Element) -> Fp2Element:
    p = FIELD_PRIME
    return ((u[0] - v[0]) % p, (u[1] - v[1]) % p)


def fp2_mul(u: Fp2Element, v: Fp2Element) -> Fp2Element:
    hook = dispatch.active().ss512_fp2_mul
    if hook is not None:
        return hook(u, v)
    p = FIELD_PRIME
    a, b = u
    c, d = v
    real = (a * c - b * d) % p
    imag = (a * d + b * c) % p
    return (real, imag)


def fp2_square(u: Fp2Element) -> Fp2Element:
    hook = dispatch.active().ss512_fp2_square
    if hook is not None:
        return hook(u)
    p = FIELD_PRIME
    a, b = u
    return ((a - b) * (a + b) % p, 2 * a * b % p)


def fp2_inv(u: Fp2Element) -> Fp2Element:
    p = FIELD_PRIME
    a, b = u
    norm = (a * a + b * b) % p
    if norm == 0:
        raise CryptoError("zero has no inverse in F_p2")
    inv_norm = dispatch.modinv(norm, p)
    return (a * inv_norm % p, (-b) * inv_norm % p)


def fp2_pow(u: Fp2Element, e: int) -> Fp2Element:
    hook = dispatch.active().ss512_fp2_pow
    if hook is not None:
        accelerated = hook(u, e)
        if accelerated is not None:  # None: declined (oversized exponent)
            return accelerated
    if e < 0:
        # invert once, then square-and-multiply on |e| — no recursion
        u = fp2_inv(u)
        e = -e
    result = FP2_ONE
    base = u
    while e:
        if e & 1:
            result = fp2_mul(result, base)
        base = fp2_square(base)
        e >>= 1
    return result


def fp2_conjugate(u: Fp2Element) -> Fp2Element:
    """Frobenius x ↦ x^p on F_p², i.e. conjugation a + bi ↦ a - bi."""
    return (u[0], (-u[1]) % FIELD_PRIME)
