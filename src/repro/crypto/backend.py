"""Pairing-group backend abstraction.

The accumulators are written against an abstract symmetric pairing group
so that the same algorithm code runs on two substrates:

* :class:`SupersingularBackend` — the real Tate pairing from
  :mod:`repro.crypto.pairing` (cryptographically meaningful; slower);
* :class:`SimulatedBackend` (in :mod:`repro.crypto.simulated`) — exponent
  arithmetic mod ``r`` with identical algebra, used for large benchmark
  sweeps where the paper used the MCL C++ library.

Group elements are opaque to callers; use the backend methods.  The real
backend represents G elements as affine points and GT elements as F_p²
values.  ``encode``/``gt_encode`` give canonical bytes for hashing into
block headers, and ``element_nbytes``/``gt_nbytes`` drive VO-size
accounting (both backends report the *real* group widths so simulated
benchmark VO sizes match what a production deployment would transmit).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any

from repro.crypto import curve, msm, pairing
from repro.crypto.accel import dispatch
from repro.crypto.curve import FP2_ONE, fp2_inv, fp2_mul, fp2_pow
from repro.crypto.field import PrimeField
from repro.crypto.pairing import tate_pairing

GroupElement = Any
GTElement = Any

#: Serialized width of a G element: two 64-byte coordinates + 1 tag byte.
_G_NBYTES = 129
#: Serialized width of a GT (F_p²) element: two 64-byte coefficients.
_GT_NBYTES = 128


class PairingBackend(ABC):
    """A symmetric bilinear group ``e: G × G → GT`` of prime order ``r``."""

    #: human-readable backend identifier ("ss512" / "simulated")
    name: str
    #: prime group order r
    order: int
    #: scalar field Z_r
    scalar_field: PrimeField

    # -- G operations ---------------------------------------------------
    @abstractmethod
    def generator(self) -> GroupElement:
        """The fixed generator ``g`` of G."""

    @abstractmethod
    def identity(self) -> GroupElement:
        """The neutral element of G."""

    @abstractmethod
    def op(self, a: GroupElement, b: GroupElement) -> GroupElement:
        """The group operation (written multiplicatively in the paper)."""

    @abstractmethod
    def exp(self, base: GroupElement, scalar: int) -> GroupElement:
        """``base^scalar`` (scalar multiplication)."""

    @abstractmethod
    def eq(self, a: GroupElement, b: GroupElement) -> bool:
        """Constant-structure equality of G elements."""

    @abstractmethod
    def encode(self, a: GroupElement) -> bytes:
        """Canonical byte encoding (for hashing / VO size accounting)."""

    @abstractmethod
    def decode(self, data: bytes) -> GroupElement:
        """Parse a G element; raises CryptoError on malformed input.

        Security-relevant: the real backend validates curve membership
        and subgroup order, so a malicious SP cannot smuggle invalid
        points through a deserialized VO.
        """

    # -- GT operations -----------------------------------------------------
    @abstractmethod
    def pair(self, a: GroupElement, b: GroupElement) -> GTElement:
        """The bilinear map ``e(a, b)``."""

    @abstractmethod
    def gt_identity(self) -> GTElement:
        ...

    @abstractmethod
    def gt_op(self, a: GTElement, b: GTElement) -> GTElement:
        ...

    @abstractmethod
    def gt_exp(self, base: GTElement, scalar: int) -> GTElement:
        ...

    @abstractmethod
    def gt_inv(self, a: GTElement) -> GTElement:
        ...

    @abstractmethod
    def gt_eq(self, a: GTElement, b: GTElement) -> bool:
        ...

    @abstractmethod
    def gt_encode(self, a: GTElement) -> bytes:
        ...

    # -- helpers shared by all backends ------------------------------------
    @property
    def element_nbytes(self) -> int:
        """Transmitted size of one G element (real-group width)."""
        return _G_NBYTES

    @property
    def gt_nbytes(self) -> int:
        """Transmitted size of one GT element (real-group width)."""
        return _GT_NBYTES

    def inv(self, a: GroupElement) -> GroupElement:
        """The group inverse ``a^{-1}``.

        Default exponentiates by ``r - 1``; real backends override with
        the cheap point negation.  Needed to fold both sides of a
        pairing equation into one :meth:`multi_pairing` product.
        """
        return self.exp(a, self.order - 1)

    def multi_exp(self, bases: list[GroupElement], scalars: list[int]) -> GroupElement:
        """``Π bases[i]^scalars[i]`` — the workhorse of Setup().

        The default is a straightforward loop; the real backends
        override it with Pippenger's bucket method (:mod:`.msm`), which
        is what makes commit-heavy mining and proving tractable.
        """
        acc = self.identity()
        for base, scalar in zip(bases, scalars, strict=True):
            if scalar % self.order == 0:
                continue
            acc = self.op(acc, self.exp(base, scalar))
        return acc

    def fixed_base_table(self, base: GroupElement) -> Any:
        """Opaque precomputation for a base reused across many MSMs.

        The accumulator key powers ``g^{s^i}`` are multi-exponentiated
        by every commit in a block; real backends return precomputed
        window tables (:func:`repro.crypto.msm.fixed_base_windows`) that
        :meth:`multi_exp_tables` consumes.  The default returns the base
        unchanged so table-aware callers work on any backend.
        """
        return base

    def multi_exp_tables(self, tables: list[Any], scalars: list[int]) -> GroupElement:
        """:meth:`multi_exp` over :meth:`fixed_base_table` outputs."""
        return self.multi_exp(list(tables), list(scalars))

    def multi_pairing(
        self, pairs: list[tuple[GroupElement, GroupElement]]
    ) -> GTElement:
        """``Π e(a_i, b_i)`` — a pairing product.

        Every accumulator verification equation has this shape.  The
        default multiplies individual pairings; real backends override
        it to accumulate Miller-loop values and share a single final
        exponentiation across the whole product.
        """
        acc = self.gt_identity()
        for a, b in pairs:
            acc = self.gt_op(acc, self.pair(a, b))
        return acc

    def random_scalar(self, rng: random.Random) -> int:
        """Uniform non-zero scalar in Z_r (for key generation)."""
        return rng.randrange(1, self.order)

    @property
    def accel_impl(self) -> str:
        """Name of the arithmetic provider serving this backend.

        Real backends run on the process-wide active provider
        (``pure`` / ``gmpy2`` / ``native``); the simulated backend
        overrides this with ``"simulated"`` since it never touches
        group arithmetic.
        """
        return dispatch.active_impl()


class SupersingularBackend(PairingBackend):
    """The real pairing group (see :mod:`repro.crypto.curve`)."""

    name = "ss512"

    def __init__(self) -> None:
        self.order = curve.SUBGROUP_ORDER
        self.scalar_field = curve.Fr
        self._generator = curve.GENERATOR

    def generator(self) -> curve.Point:
        return self._generator

    def identity(self) -> curve.Point:
        return None

    def op(self, a: curve.Point, b: curve.Point) -> curve.Point:
        return curve.add(a, b)

    def exp(self, base: curve.Point, scalar: int) -> curve.Point:
        return curve.multiply(base, scalar % self.order)

    def inv(self, a: curve.Point) -> curve.Point:
        return curve.neg(a)

    def multi_exp(self, bases: list[curve.Point], scalars: list[int]) -> curve.Point:
        if len(bases) != len(scalars):
            raise ValueError("multi_exp: bases and scalars differ in length")
        return msm.msm(msm.SS512_OPS, bases, [s % self.order for s in scalars])

    def fixed_base_table(self, base: curve.Point) -> list[curve.Point] | None:
        return msm.fixed_base_windows(msm.SS512_OPS, base, self.order.bit_length())

    def multi_exp_tables(
        self, tables: list[list[curve.Point] | None], scalars: list[int]
    ) -> curve.Point:
        if len(tables) != len(scalars):
            raise ValueError("multi_exp_tables: tables and scalars differ in length")
        return msm.fixed_base_msm(
            msm.SS512_OPS, tables, [s % self.order for s in scalars]
        )

    def multi_pairing(
        self, pairs: list[tuple[curve.Point, curve.Point]]
    ) -> curve.Fp2Element:
        return pairing.multi_pairing(pairs)

    def eq(self, a: curve.Point, b: curve.Point) -> bool:
        return a == b

    def encode(self, a: curve.Point) -> bytes:
        if a is None:
            return b"\x00" * _G_NBYTES
        x, y = a
        return b"\x04" + x.to_bytes(64, "big") + y.to_bytes(64, "big")

    def decode(self, data: bytes) -> curve.Point:
        from repro.errors import CryptoError

        if len(data) != _G_NBYTES:
            raise CryptoError("G element encoding has wrong length")
        if data[0] == 0:
            if any(data):
                raise CryptoError("malformed identity encoding")
            return None
        if data[0] != 4:
            raise CryptoError("unknown G element encoding tag")
        point = (
            int.from_bytes(data[1:65], "big"),
            int.from_bytes(data[65:129], "big"),
        )
        curve.validate_subgroup(point)
        return point

    def pair(self, a: curve.Point, b: curve.Point) -> curve.Fp2Element:
        return tate_pairing(a, b)

    def gt_identity(self) -> curve.Fp2Element:
        return FP2_ONE

    def gt_op(self, a: curve.Fp2Element, b: curve.Fp2Element) -> curve.Fp2Element:
        return fp2_mul(a, b)

    def gt_exp(self, base: curve.Fp2Element, scalar: int) -> curve.Fp2Element:
        return fp2_pow(base, scalar % self.order)

    def gt_inv(self, a: curve.Fp2Element) -> curve.Fp2Element:
        return fp2_inv(a)

    def gt_eq(self, a: curve.Fp2Element, b: curve.Fp2Element) -> bool:
        return a == b

    def gt_encode(self, a: curve.Fp2Element) -> bytes:
        return a[0].to_bytes(64, "big") + a[1].to_bytes(64, "big")


def get_backend(name: str = "ss512", accel: str | None = None) -> PairingBackend:
    """Backend factory: ``"ss512"``, ``"bn254"`` (both real) or
    ``"simulated"`` (fast exponent arithmetic for benchmarks).

    ``accel`` selects the process-wide arithmetic provider before the
    backend is constructed: ``"auto"`` probes for the fastest available
    implementation, ``"pure"`` / ``"gmpy2"`` / ``"native"`` pin one
    explicitly (raising :class:`~repro.errors.CryptoError` when it is
    not installed).  ``None`` leaves the current selection untouched.
    The provider is global — it accelerates every backend instance —
    and never changes any byte the backend produces.
    """
    if accel is not None:
        dispatch.set_impl(accel)
    if name == "ss512":
        return SupersingularBackend()
    if name == "bn254":
        # local imports avoid cycles at module load
        from repro.crypto.bn_backend import BN254Backend

        return BN254Backend()
    if name == "simulated":
        from repro.crypto.simulated import SimulatedBackend

        return SimulatedBackend()
    raise ValueError(f"unknown pairing backend: {name!r}")
