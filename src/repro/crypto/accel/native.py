"""The native provider: Python wrappers over the ``_accelmodule`` C core.

The C extension implements Montgomery-form field arithmetic and whole
inner loops (wNAF ladder, fixed-base and Pippenger bucket passes, an
inversion-free Jacobian Miller loop) for the ss512 curve, plus the
Jacobian point kernels and wNAF ladder for both BN254 source groups.
This module adapts those functions to the kernel signatures the
dispatch layer expects: unwrapping ``FQ``/``FQ2`` coordinates to plain
ints on the way in and rewrapping on the way out, and short-circuiting
the identity cases the C code does not need to see.

Parity contract: every point kernel implements the *same* formula
sequence as the pure code, so Jacobian tuples — not just affine
results — are bit-identical.  The one documented exception is
``ss512_miller_raw``: its inversion-free line evaluation scales each
step's line by an F_p denominator, so the raw Miller value differs
from the pure one by an F_p factor that the final exponentiation
``(p²-1)/r = (p-1)·cofactor`` annihilates.  Raw values are only ever
consumed through the final exponentiation, and the parity suite
asserts equality on pairing outputs and VO bytes.

Import of this module fails cleanly when the extension has not been
built; the dispatch layer records the provider as unavailable.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.crypto import bn254, curve
from repro.crypto.accel import _accelmodule as _mod
from repro.crypto.accel import pure
from repro.crypto.accel.dispatch import MAX_SCALAR_BITS, CurveKernels, Fp2, Provider

JacPoint = Any
AffinePoint = Any

# An extension built from a stale checkout is worse than no extension:
# refuse to load unless its baked-in constants match the Python curves
# (ImportError marks the provider unavailable and the probe falls back).
_constants = _mod._constants()
if (
    _constants["ss512_p"] != curve.FIELD_PRIME
    or _constants["ss512_r"] != curve.SUBGROUP_ORDER
    or _constants["bn254_p"] != bn254.FIELD_MODULUS
):
    raise ImportError("_accelmodule was built for different curve parameters")


# -- ss512 kernels ------------------------------------------------------------
def _ss_add_affine(lhs: JacPoint, rhs: AffinePoint) -> JacPoint:
    if rhs is None:
        return lhs
    return _mod.ss512_jac_add_affine(lhs, rhs)


def _ss_scalar_mul(point: AffinePoint, scalar: int) -> JacPoint:
    return _mod.ss512_scalar_mul(point[0], point[1], scalar)


def _ss_fixed_base_msm(
    tables: Sequence[Any], scalars: Sequence[int], width: int
) -> JacPoint:
    return _mod.ss512_fixed_base_msm(list(tables), list(scalars), width)


def _ss_pippenger(
    pairs: list[tuple[AffinePoint, int]], width: int, max_bits: int
) -> JacPoint:
    return _mod.ss512_pippenger(pairs, width, max_bits)


def _ss_miller_raw(p_point: Any, q_point: Any) -> Fp2:
    if p_point is None or q_point is None:
        return curve.FP2_ONE
    return _mod.ss512_miller_raw(p_point[0], p_point[1], q_point[0], q_point[1])


def _ss_fp2_mul(u: Fp2, v: Fp2) -> Fp2:
    return _mod.ss512_fp2_mul(u[0], u[1], v[0], v[1])


def _ss_fp2_square(u: Fp2) -> Fp2:
    return _mod.ss512_fp2_square(u[0], u[1])


def _ss_fp2_pow(u: Fp2, e: int) -> Fp2 | None:
    if e < 0:
        u = curve.fp2_inv(u)
        e = -e
    if e.bit_length() > MAX_SCALAR_BITS:
        return None  # decline: caller runs the pure loop
    return _mod.ss512_fp2_pow(u[0], u[1], e)


# -- bn254 kernels (shared by G1 over FQ and G2 over FQ2) ---------------------
_FQ = bn254.FQ
_FQ2 = bn254.FQ2


def _wrap1(res: tuple[int, int, int] | None) -> JacPoint:
    if res is None:
        return None
    return (_FQ(res[0]), _FQ(res[1]), _FQ(res[2]))


def _wrap2(
    res: tuple[tuple[int, int], tuple[int, int], tuple[int, int]] | None,
) -> JacPoint:
    if res is None:
        return None
    return (_FQ2(res[0]), _FQ2(res[1]), _FQ2(res[2]))


def _bn_double(point: JacPoint) -> JacPoint:
    if point is None:
        return None
    x, y, z = point
    if type(x) is _FQ:
        return _wrap1(_mod.bn_jac_double(x.n, y.n, z.n))
    return _wrap2(_mod.bn2_jac_double(x.coeffs, y.coeffs, z.coeffs))


def _bn_add(p1: JacPoint, p2: JacPoint) -> JacPoint:
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if type(x1) is _FQ:
        return _wrap1(_mod.bn_jac_add(x1.n, y1.n, z1.n, x2.n, y2.n, z2.n))
    return _wrap2(
        _mod.bn2_jac_add(
            x1.coeffs, y1.coeffs, z1.coeffs, x2.coeffs, y2.coeffs, z2.coeffs
        )
    )


def _bn_add_affine(p1: JacPoint, affine: AffinePoint) -> JacPoint:
    if affine is None:
        return p1
    if p1 is None:
        return bn254.to_jacobian(affine)
    x1, y1, z1 = p1
    x2, y2 = affine
    if type(x1) is _FQ:
        return _wrap1(_mod.bn_jac_add_affine(x1.n, y1.n, z1.n, x2.n, y2.n))
    return _wrap2(
        _mod.bn2_jac_add_affine(x1.coeffs, y1.coeffs, z1.coeffs, x2.coeffs, y2.coeffs)
    )


def _bn_scalar_mul(point: AffinePoint, scalar: int) -> JacPoint:
    x, y = point
    if type(x) is _FQ:
        return _wrap1(_mod.bn_scalar_mul(x.n, y.n, scalar))
    return _wrap2(_mod.bn2_scalar_mul(x.coeffs, y.coeffs, scalar))


def build() -> Provider:
    ss512 = CurveKernels(
        to_jac=curve.to_jacobian,
        double=_mod.ss512_jac_double,
        add=_mod.ss512_jac_add,
        add_affine=_ss_add_affine,
        neg=curve.jac_neg,
        to_affine=curve.from_jacobian,
        batch_to_affine=curve.batch_from_jacobian,
        scalar_mul=_ss_scalar_mul,
        fixed_base_msm=_ss_fixed_base_msm,
        pippenger=_ss_pippenger,
    )
    bn = CurveKernels(
        to_jac=bn254.to_jacobian,
        double=_bn_double,
        add=_bn_add,
        add_affine=_bn_add_affine,
        neg=bn254.jac_neg,
        to_affine=bn254.from_jacobian,
        batch_to_affine=bn254.batch_from_jacobian,
        scalar_mul=_bn_scalar_mul,
    )
    # CPython's three-argument pow / int multiply are already C-speed
    # extended-gcd / Karatsuba over arbitrary widths; the extension's
    # fixed-width Montgomery contexts would not beat them, so the
    # scalar seam stays on the pure implementations.
    return Provider(
        name="native",
        modexp=pure._modexp,
        modinv=pure._modinv,
        imul=pure._imul,
        kernels={"ss512": ss512, "bn254": bn},
        ss512_miller_raw=_ss_miller_raw,
        ss512_fp2_mul=_ss_fp2_mul,
        ss512_fp2_square=_ss_fp2_square,
        ss512_fp2_pow=_ss_fp2_pow,
        meta=dict(_mod.impl_info()),
    )
