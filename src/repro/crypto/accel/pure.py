"""The pure-Python provider — the PR 4 fast path, verbatim.

This provider publishes **no** curve kernels: an empty kernel mapping
tells :func:`repro.crypto.msm._active_ops` to run the original
:class:`~repro.crypto.msm.CurveOps` adapters untouched, so selecting
``pure`` adds zero per-operation indirection.  The scalar seam maps
straight onto the CPython built-ins (whose ``pow(x, -1, p)`` extended
gcd is already C-speed).
"""

from __future__ import annotations

from repro.crypto.accel.dispatch import Provider


def _modexp(base: int, exponent: int, modulus: int) -> int:
    return pow(base, exponent, modulus)


def _modinv(value: int, modulus: int) -> int:
    return pow(value, -1, modulus)


def _imul(a: int, b: int) -> int:
    return a * b


def build() -> Provider:
    return Provider(
        name="pure",
        modexp=_modexp,
        modinv=_modinv,
        imul=_imul,
    )
