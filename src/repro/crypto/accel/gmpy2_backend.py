"""The gmpy2 provider: GMP ``mpz`` integers under the pure formulas.

The point formulas in :mod:`repro.crypto.curve` and
:mod:`repro.crypto.bn254` are polymorphic over int-like coordinates, so
this provider does not duplicate any algebra: its kernels lift
coordinates to ``mpz`` at the ``to_jac`` boundary, run the *same* pure
functions (whose ``%``, ``*`` and seam-routed inversions then all
execute inside GMP), and demote back to plain ``int`` at the
``to_affine`` boundary so canonical encodings never see an ``mpz``.
Identical formulas over an isomorphic integer type means identical
residues — byte parity with the pure path is structural, and the parity
suite (``tests/test_accel.py``) plus the in-run bench gate assert it
anyway.

Import of this module fails cleanly when gmpy2 is absent; the dispatch
layer records the provider as unavailable and falls back.
"""

from __future__ import annotations

from typing import Any

import gmpy2
from gmpy2 import invert, mpz, powmod

from repro.crypto import bn254, curve, pairing
from repro.crypto.accel.dispatch import CurveKernels, Fp2, Provider

JacPoint = Any
AffinePoint = Any

_MPZ_ONE = mpz(1)


# -- scalar seam --------------------------------------------------------------
def _modexp(base: int, exponent: int, modulus: int) -> int:
    try:
        return int(powmod(base, exponent, modulus))
    except ZeroDivisionError:
        # negative exponent on a non-invertible base: match builtin pow()
        raise ValueError("base is not invertible for the given modulus") from None


def _modinv(value: int, modulus: int) -> int:
    try:
        return int(invert(value, modulus))
    except ZeroDivisionError:
        raise ValueError("base is not invertible for the given modulus") from None


def _imul(a: int, b: int) -> int:
    return int(mpz(a) * mpz(b))


# -- ss512 kernels ------------------------------------------------------------
def _ss_to_jac(point: AffinePoint) -> JacPoint:
    if point is None:
        return curve.JAC_INFINITY
    return (mpz(point[0]), mpz(point[1]), _MPZ_ONE)


def _ss_to_affine(point: JacPoint) -> AffinePoint:
    result = curve.from_jacobian(point)
    if result is None:
        return None
    return (int(result[0]), int(result[1]))


def _ss_batch_to_affine(points: list[JacPoint]) -> list[AffinePoint]:
    return [
        None if result is None else (int(result[0]), int(result[1]))
        for result in curve.batch_from_jacobian(points)
    ]


def _ss_miller_raw(p_point: Any, q_point: Any) -> Fp2:
    """The pure Miller loop over mpz-lifted points — exact raw parity."""
    if p_point is None or q_point is None:
        return curve.FP2_ONE
    raw = pairing.miller_loop_raw(
        (mpz(p_point[0]), mpz(p_point[1])),
        (mpz(q_point[0]), mpz(q_point[1])),
    )
    return (int(raw[0]), int(raw[1]))


def _ss_fp2_pow(u: Fp2, e: int) -> Fp2:
    """Square-and-multiply kept in the mpz domain end to end."""
    if e < 0:
        u = curve.fp2_inv(u)
        e = -e
    p = curve.FIELD_PRIME
    ra, rb = _MPZ_ONE, mpz(0)
    a, b = mpz(u[0]), mpz(u[1])
    while e:
        if e & 1:
            ra, rb = (ra * a - rb * b) % p, (ra * b + rb * a) % p
        a, b = (a - b) * (a + b) % p, 2 * a * b % p
        e >>= 1
    return (int(ra), int(rb))


# -- bn254 kernels ------------------------------------------------------------
def _lift_field(element: Any) -> Any:
    if isinstance(element, bn254.FQ):
        return bn254.FQ(mpz(element.n))
    return type(element)([mpz(c) for c in element.coeffs])


def _demote_field(element: Any) -> Any:
    if isinstance(element, bn254.FQ):
        return bn254.FQ(int(element.n))
    return type(element)([int(c) for c in element.coeffs])


def _bn_to_jac(point: AffinePoint) -> JacPoint:
    if point is None:
        return None
    return bn254.to_jacobian((_lift_field(point[0]), _lift_field(point[1])))


def _bn_to_affine(point: JacPoint) -> AffinePoint:
    result = bn254.from_jacobian(point)
    if result is None:
        return None
    return (_demote_field(result[0]), _demote_field(result[1]))


def _bn_batch_to_affine(points: list[JacPoint]) -> list[AffinePoint]:
    return [
        None if result is None else (_demote_field(result[0]), _demote_field(result[1]))
        for result in bn254.batch_from_jacobian(points)
    ]


def build() -> Provider:
    ss512 = CurveKernels(
        to_jac=_ss_to_jac,
        double=curve.jac_double,
        add=curve.jac_add,
        add_affine=curve.jac_add_affine,
        neg=curve.jac_neg,
        to_affine=_ss_to_affine,
        batch_to_affine=_ss_batch_to_affine,
    )
    bn = CurveKernels(
        to_jac=_bn_to_jac,
        double=bn254.jac_double,
        add=bn254.jac_add,
        add_affine=bn254.jac_add_affine,
        neg=bn254.jac_neg,
        to_affine=_bn_to_affine,
        batch_to_affine=_bn_batch_to_affine,
    )
    return Provider(
        name="gmpy2",
        modexp=_modexp,
        modinv=_modinv,
        imul=_imul,
        kernels={"ss512": ss512, "bn254": bn},
        ss512_miller_raw=_ss_miller_raw,
        ss512_fp2_pow=_ss_fp2_pow,
        meta={"gmpy2": gmpy2.version(), "mp": gmpy2.mp_version()},
    )
