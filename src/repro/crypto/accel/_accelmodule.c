/* Native arithmetic kernels for repro.crypto — the "native" accel provider.
 *
 * Fixed-width Montgomery (CIOS) field arithmetic over the two base fields
 * (ss512: 8×64-bit limbs, a = 1; BN254: 4 limbs, a = 0), with a small
 * "ring" abstraction so the Jacobian point formulas and the wNAF ladder
 * are written once and serve F_p for ss512, F_q and F_q² for BN254
 * (both quadratic extensions are i² = -1).
 *
 * Parity contract (mirrors the pure code in curve.py / bn254.py / msm.py):
 * every formula below follows the *same* algebraic sequence as its pure
 * counterpart, so the Jacobian representative — including the Z
 * coordinate — is identical, and every value crossing back into Python
 * is a canonical residue in [0, p).  The one exception is
 * ss512_miller_raw, whose inversion-free line evaluation scales each
 * line by an F_p denominator that the final exponentiation annihilates
 * (documented in accel/native.py).
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

#if defined(PY_BIG_ENDIAN) && PY_BIG_ENDIAN
#error "_accelmodule assumes a little-endian host"
#endif

#define MAXL 8      /* widest field: ss512, 511-bit prime */
#define SLIMBS 9    /* scalar buffers: 512 bits + one limb of wNAF slack */
#define IM 8        /* offset of the imaginary part inside an elem */

typedef uint64_t elem[2 * MAXL]; /* [0..7] real, [8..15] imaginary */

/* ---------------------------------------------------------------------------
 * raw limb helpers (little-endian, n limbs)
 * ------------------------------------------------------------------------ */
static uint64_t
limbs_add(uint64_t *out, const uint64_t *a, const uint64_t *b, int n)
{
    uint64_t carry = 0;
    for (int i = 0; i < n; i++) {
        __uint128_t cur = (__uint128_t)a[i] + b[i] + carry;
        out[i] = (uint64_t)cur;
        carry = (uint64_t)(cur >> 64);
    }
    return carry;
}

static uint64_t
limbs_sub(uint64_t *out, const uint64_t *a, const uint64_t *b, int n)
{
    uint64_t borrow = 0;
    for (int i = 0; i < n; i++) {
        uint64_t bi = b[i];
        uint64_t t = a[i] - bi;
        uint64_t borrow2 = t > a[i];
        uint64_t t2 = t - borrow;
        borrow = borrow2 | (t2 > t);
        out[i] = t2;
    }
    return borrow;
}

static int
limbs_cmp(const uint64_t *a, const uint64_t *b, int n)
{
    for (int i = n - 1; i >= 0; i--) {
        if (a[i] != b[i])
            return a[i] > b[i] ? 1 : -1;
    }
    return 0;
}

static int
limbs_is_zero(const uint64_t *a, int n)
{
    for (int i = 0; i < n; i++)
        if (a[i])
            return 0;
    return 1;
}

static int
limbs_bit_length(const uint64_t *a, int n)
{
    for (int i = n - 1; i >= 0; i--) {
        if (a[i]) {
            int bits = 0;
            uint64_t v = a[i];
            while (v) {
                bits++;
                v >>= 1;
            }
            return i * 64 + bits;
        }
    }
    return 0;
}

/* out = a * 10 + digit (for parsing the decimal constants at init) */
static void
limbs_mul10_add(uint64_t *a, int n, uint64_t digit)
{
    uint64_t carry = digit;
    for (int i = 0; i < n; i++) {
        __uint128_t cur = (__uint128_t)a[i] * 10 + carry;
        a[i] = (uint64_t)cur;
        carry = (uint64_t)(cur >> 64);
    }
}

static void
limbs_from_dec(const char *s, uint64_t *out, int n)
{
    memset(out, 0, (size_t)n * 8);
    for (; *s; s++)
        limbs_mul10_add(out, n, (uint64_t)(*s - '0'));
}

/* ---------------------------------------------------------------------------
 * Montgomery field context
 * ------------------------------------------------------------------------ */
typedef struct {
    int n;               /* limb count */
    uint64_t p[MAXL];    /* modulus */
    uint64_t one[MAXL];  /* R mod p (Montgomery 1) */
    uint64_t r2[MAXL];   /* R² mod p */
    uint64_t n0;         /* -p⁻¹ mod 2⁶⁴ */
} fctx;

static void
fe_shl1_mod(const fctx *c, uint64_t *a)
{
    uint64_t carry = 0;
    for (int i = 0; i < c->n; i++) {
        uint64_t next = a[i] >> 63;
        a[i] = (a[i] << 1) | carry;
        carry = next;
    }
    if (carry || limbs_cmp(a, c->p, c->n) >= 0)
        limbs_sub(a, a, c->p, c->n);
}

static void
fctx_init(fctx *c, int n, const char *p_dec)
{
    c->n = n;
    limbs_from_dec(p_dec, c->p, n);
    /* n0 = -p⁻¹ mod 2⁶⁴ via Newton iteration (p odd) */
    uint64_t inv = 1;
    for (int i = 0; i < 6; i++)
        inv *= 2 - c->p[0] * inv;
    c->n0 = (uint64_t)0 - inv;
    /* R mod p and R² mod p by repeated doubling */
    memset(c->one, 0, sizeof(c->one));
    c->one[0] = 1;
    for (int i = 0; i < 64 * n; i++)
        fe_shl1_mod(c, c->one);
    memcpy(c->r2, c->one, sizeof(c->r2));
    for (int i = 0; i < 64 * n; i++)
        fe_shl1_mod(c, c->r2);
}

static void
fe_add(const fctx *c, const uint64_t *a, const uint64_t *b, uint64_t *out)
{
    uint64_t carry = limbs_add(out, a, b, c->n);
    if (carry || limbs_cmp(out, c->p, c->n) >= 0)
        limbs_sub(out, out, c->p, c->n);
}

static void
fe_sub(const fctx *c, const uint64_t *a, const uint64_t *b, uint64_t *out)
{
    if (limbs_sub(out, a, b, c->n))
        limbs_add(out, out, c->p, c->n);
}

static void
fe_neg(const fctx *c, const uint64_t *a, uint64_t *out)
{
    if (limbs_is_zero(a, c->n))
        memset(out, 0, (size_t)c->n * 8);
    else
        limbs_sub(out, c->p, a, c->n);
}

/* CIOS Montgomery multiplication: out = a·b·R⁻¹ mod p (a, b < p) */
static void
fe_mont_mul(const fctx *c, const uint64_t *a, const uint64_t *b, uint64_t *out)
{
    int n = c->n;
    uint64_t t[MAXL + 2];
    memset(t, 0, (size_t)(n + 2) * 8);
    for (int i = 0; i < n; i++) {
        uint64_t bi = b[i];
        uint64_t carry = 0;
        for (int j = 0; j < n; j++) {
            __uint128_t cur = (__uint128_t)a[j] * bi + t[j] + carry;
            t[j] = (uint64_t)cur;
            carry = (uint64_t)(cur >> 64);
        }
        __uint128_t cur = (__uint128_t)t[n] + carry;
        t[n] = (uint64_t)cur;
        t[n + 1] = (uint64_t)(cur >> 64);

        uint64_t m = t[0] * c->n0;
        cur = (__uint128_t)m * c->p[0] + t[0];
        carry = (uint64_t)(cur >> 64);
        for (int j = 1; j < n; j++) {
            cur = (__uint128_t)m * c->p[j] + t[j] + carry;
            t[j - 1] = (uint64_t)cur;
            carry = (uint64_t)(cur >> 64);
        }
        cur = (__uint128_t)t[n] + carry;
        t[n - 1] = (uint64_t)cur;
        t[n] = t[n + 1] + (uint64_t)(cur >> 64);
    }
    if (t[n] || limbs_cmp(t, c->p, c->n) >= 0)
        limbs_sub(out, t, c->p, c->n);
    else
        memcpy(out, t, (size_t)n * 8);
}

/* ---------------------------------------------------------------------------
 * Python long <-> limb conversions
 * ------------------------------------------------------------------------ */
#if PY_VERSION_HEX >= 0x030D00A4
#define AS_BYTES(o, buf, len) \
    _PyLong_AsByteArray((PyLongObject *)(o), (buf), (len), 1, 0, 1)
#else
#define AS_BYTES(o, buf, len) \
    _PyLong_AsByteArray((PyLongObject *)(o), (buf), (len), 1, 0)
#endif

static int
limbs_from_obj(PyObject *obj, uint64_t *out, int nlimbs)
{
    if (!PyLong_Check(obj)) {
        PyErr_Format(PyExc_TypeError, "expected int, got %.80s",
                     Py_TYPE(obj)->tp_name);
        return -1;
    }
    memset(out, 0, (size_t)nlimbs * 8);
    return AS_BYTES(obj, (unsigned char *)out, (size_t)nlimbs * 8);
}

static PyObject *
obj_from_limbs(const uint64_t *in, int nlimbs)
{
    return _PyLong_FromByteArray((const unsigned char *)in, (size_t)nlimbs * 8,
                                 1, 0);
}

/* Load a Python int as a field element in Montgomery form. */
static int
fe_from_obj(const fctx *c, PyObject *obj, uint64_t *out)
{
    uint64_t tmp[MAXL];
    if (limbs_from_obj(obj, tmp, c->n) < 0)
        return -1;
    while (limbs_cmp(tmp, c->p, c->n) >= 0)
        limbs_sub(tmp, tmp, c->p, c->n);
    fe_mont_mul(c, tmp, c->r2, out);
    return 0;
}

static PyObject *
fe_to_obj(const fctx *c, const uint64_t *a)
{
    static const uint64_t lone[MAXL] = {1};
    uint64_t tmp[MAXL];
    fe_mont_mul(c, a, lone, tmp);
    return obj_from_limbs(tmp, c->n);
}

/* ---------------------------------------------------------------------------
 * ring abstraction: F_p (ext = 0) or F_p[i]/(i²+1) (ext = 1) over one fctx
 * ------------------------------------------------------------------------ */
typedef struct {
    const fctx *f;
    int ext;
} ring;

static void
r_zero(const ring *R, uint64_t *a)
{
    memset(a, 0, sizeof(elem));
    (void)R;
}

static int
r_is_zero(const ring *R, const uint64_t *a)
{
    if (!limbs_is_zero(a, R->f->n))
        return 0;
    return !R->ext || limbs_is_zero(a + IM, R->f->n);
}

static void
r_copy(const ring *R, uint64_t *dst, const uint64_t *src)
{
    memcpy(dst, src, sizeof(elem));
    (void)R;
}

static void
r_one(const ring *R, uint64_t *a)
{
    memset(a, 0, sizeof(elem));
    memcpy(a, R->f->one, (size_t)R->f->n * 8);
}

static int
r_eq(const ring *R, const uint64_t *a, const uint64_t *b)
{
    if (limbs_cmp(a, b, R->f->n) != 0)
        return 0;
    return !R->ext || limbs_cmp(a + IM, b + IM, R->f->n) == 0;
}

static void
r_add(const ring *R, const uint64_t *a, const uint64_t *b, uint64_t *out)
{
    fe_add(R->f, a, b, out);
    if (R->ext)
        fe_add(R->f, a + IM, b + IM, out + IM);
}

static void
r_sub(const ring *R, const uint64_t *a, const uint64_t *b, uint64_t *out)
{
    fe_sub(R->f, a, b, out);
    if (R->ext)
        fe_sub(R->f, a + IM, b + IM, out + IM);
}

static void
r_neg(const ring *R, const uint64_t *a, uint64_t *out)
{
    fe_neg(R->f, a, out);
    if (R->ext)
        fe_neg(R->f, a + IM, out + IM);
}

/* out may not alias a or b */
static void
r_mul(const ring *R, const uint64_t *a, const uint64_t *b, uint64_t *out)
{
    const fctx *c = R->f;
    if (!R->ext) {
        fe_mont_mul(c, a, b, out);
        return;
    }
    uint64_t t1[MAXL], t2[MAXL], t3[MAXL];
    fe_mont_mul(c, a, b, t1);            /* ac */
    fe_mont_mul(c, a + IM, b + IM, t2);  /* bd */
    fe_mont_mul(c, a, b + IM, t3);       /* ad */
    fe_mont_mul(c, a + IM, b, out + IM); /* bc */
    fe_add(c, t3, out + IM, out + IM);   /* ad + bc */
    fe_sub(c, t1, t2, out);              /* ac - bd */
}

/* out may not alias a */
static void
r_sqr(const ring *R, const uint64_t *a, uint64_t *out)
{
    const fctx *c = R->f;
    if (!R->ext) {
        fe_mont_mul(c, a, a, out);
        return;
    }
    uint64_t t1[MAXL], t2[MAXL];
    fe_sub(c, a, a + IM, t1);          /* a - b */
    fe_add(c, a, a + IM, t2);          /* a + b */
    fe_mont_mul(c, a, a + IM, out + IM);
    fe_add(c, out + IM, out + IM, out + IM); /* 2ab */
    fe_mont_mul(c, t1, t2, out);       /* (a-b)(a+b) */
}

static void
r_dbl(const ring *R, const uint64_t *a, uint64_t *out)
{
    r_add(R, a, a, out);
}

/* ---------------------------------------------------------------------------
 * Jacobian points over a ring; z == 0 encodes the point at infinity
 * ------------------------------------------------------------------------ */
typedef struct {
    elem x, y, z;
} jpt;

static void
jp_set_inf(const ring *R, jpt *p)
{
    r_zero(R, p->x);
    r_zero(R, p->y);
    r_zero(R, p->z);
}

static int
jp_is_inf(const ring *R, const jpt *p)
{
    return r_is_zero(R, p->z);
}

static void
jp_copy(const ring *R, jpt *dst, const jpt *src)
{
    r_copy(R, dst->x, src->x);
    r_copy(R, dst->y, src->y);
    r_copy(R, dst->z, src->z);
}

static void
jp_neg(const ring *R, const jpt *p, jpt *out)
{
    r_copy(R, out->x, p->x);
    r_neg(R, p->y, out->y);
    r_copy(R, out->z, p->z);
}

/* Mirrors curve.jac_double / bn254.jac_double (a1 selects the a = 1 term).
 * out may alias p. */
static void
jp_double(const ring *R, int a1, const jpt *p, jpt *out)
{
    if (jp_is_inf(R, p) || r_is_zero(R, p->y)) {
        jp_set_inf(R, out);
        return;
    }
    elem yy, s, m, t1, t2, x3, y3, z3;
    r_sqr(R, p->y, yy);            /* yy = y² */
    r_mul(R, p->x, yy, t1);
    r_dbl(R, t1, t1);
    r_dbl(R, t1, s);               /* s = 4·x·yy */
    r_sqr(R, p->x, t1);
    r_dbl(R, t1, t2);
    r_add(R, t1, t2, m);           /* m = 3x² */
    if (a1) {
        r_sqr(R, p->z, t1);
        r_sqr(R, t1, t2);
        r_add(R, m, t2, m);        /* + z⁴ when a = 1 */
    }
    r_sqr(R, m, t1);
    r_dbl(R, s, t2);
    r_sub(R, t1, t2, x3);          /* x3 = m² - 2s */
    r_sub(R, s, x3, t1);
    r_mul(R, m, t1, t2);
    r_sqr(R, yy, t1);
    r_dbl(R, t1, t1);
    r_dbl(R, t1, t1);
    r_dbl(R, t1, t1);              /* 8·yy² */
    r_sub(R, t2, t1, y3);          /* y3 = m(s - x3) - 8yy² */
    r_mul(R, p->y, p->z, t1);
    r_dbl(R, t1, z3);              /* z3 = 2yz */
    r_copy(R, out->x, x3);
    r_copy(R, out->y, y3);
    r_copy(R, out->z, z3);
}

/* Mirrors curve.jac_add / bn254.jac_add.  out may alias either input. */
static void
jp_add(const ring *R, int a1, const jpt *p, const jpt *q, jpt *out)
{
    if (jp_is_inf(R, p)) {
        jp_copy(R, out, q);
        return;
    }
    if (jp_is_inf(R, q)) {
        jp_copy(R, out, p);
        return;
    }
    elem z1z1, z2z2, u1, u2, s1, s2, t1;
    r_sqr(R, p->z, z1z1);
    r_sqr(R, q->z, z2z2);
    r_mul(R, p->x, z2z2, u1);
    r_mul(R, q->x, z1z1, u2);
    r_mul(R, p->y, z2z2, t1);
    r_mul(R, t1, q->z, s1);
    r_mul(R, q->y, z1z1, t1);
    r_mul(R, t1, p->z, s2);
    if (r_eq(R, u1, u2)) {
        if (!r_eq(R, s1, s2))
            jp_set_inf(R, out);
        else
            jp_double(R, a1, p, out);
        return;
    }
    elem h, rr, hh, hhh, v, x3, y3, z3;
    r_sub(R, u2, u1, h);
    r_sub(R, s2, s1, rr);
    r_sqr(R, h, hh);
    r_mul(R, h, hh, hhh);
    r_mul(R, u1, hh, v);
    r_sqr(R, rr, t1);
    r_sub(R, t1, hhh, t1);
    r_sub(R, t1, v, t1);
    r_sub(R, t1, v, x3);           /* x3 = r² - hhh - 2v */
    r_sub(R, v, x3, t1);
    r_mul(R, rr, t1, y3);
    r_mul(R, s1, hhh, t1);
    r_sub(R, y3, t1, y3);          /* y3 = r(v - x3) - s1·hhh */
    r_mul(R, p->z, q->z, t1);
    r_mul(R, t1, h, z3);
    r_copy(R, out->x, x3);
    r_copy(R, out->y, y3);
    r_copy(R, out->z, z3);
}

/* Mirrors curve.jac_add_affine / bn254.jac_add_affine (Z₂ = 1).
 * (ax, ay) is an affine point in Montgomery form; out may alias p. */
static void
jp_add_affine(const ring *R, int a1, const jpt *p, const uint64_t *ax,
              const uint64_t *ay, jpt *out)
{
    if (jp_is_inf(R, p)) {
        r_copy(R, out->x, ax);
        r_copy(R, out->y, ay);
        r_one(R, out->z);
        return;
    }
    elem z1z1, u2, s2, t1;
    r_sqr(R, p->z, z1z1);
    r_mul(R, ax, z1z1, u2);
    r_mul(R, ay, z1z1, t1);
    r_mul(R, t1, p->z, s2);
    if (r_eq(R, u2, p->x)) {
        if (!r_eq(R, s2, p->y))
            jp_set_inf(R, out);
        else
            jp_double(R, a1, p, out);
        return;
    }
    elem h, rr, hh, hhh, v, x3, y3, z3;
    r_sub(R, u2, p->x, h);
    r_sub(R, s2, p->y, rr);
    r_sqr(R, h, hh);
    r_mul(R, h, hh, hhh);
    r_mul(R, p->x, hh, v);
    r_sqr(R, rr, t1);
    r_sub(R, t1, hhh, t1);
    r_sub(R, t1, v, t1);
    r_sub(R, t1, v, x3);
    r_sub(R, v, x3, t1);
    r_mul(R, rr, t1, y3);
    r_mul(R, p->y, hhh, t1);
    r_sub(R, y3, t1, y3);
    r_mul(R, p->z, h, z3);
    r_copy(R, out->x, x3);
    r_copy(R, out->y, y3);
    r_copy(R, out->z, z3);
}

/* ---------------------------------------------------------------------------
 * scalars and the width-5 wNAF ladder (mirrors msm._wnaf_digits and
 * msm.jac_scalar_mul)
 * ------------------------------------------------------------------------ */
static void
scalar_shr1(uint64_t *s)
{
    for (int i = 0; i < SLIMBS - 1; i++)
        s[i] = (s[i] >> 1) | (s[i + 1] << 63);
    s[SLIMBS - 1] >>= 1;
}

static void
scalar_sub_small(uint64_t *s, uint64_t v)
{
    for (int i = 0; i < SLIMBS && v; i++) {
        uint64_t t = s[i] - v;
        v = t > s[i];
        s[i] = t;
    }
}

static void
scalar_add_small(uint64_t *s, uint64_t v)
{
    for (int i = 0; i < SLIMBS && v; i++) {
        uint64_t t = s[i] + v;
        v = t < s[i];
        s[i] = t;
    }
}

#define WNAF_WIDTH 5
#define WNAF_TABLE 8 /* (1 << (width - 1)) / 2 odd multiples */
#define MAX_DIGITS 528

/* Consumes s; returns the digit count (little-endian, digits odd in
 * (-16, 16) for width 5). */
static int
wnaf_digits(uint64_t *s, int8_t *digits)
{
    const uint64_t window = 1u << WNAF_WIDTH;
    const uint64_t half = window >> 1;
    int count = 0;
    while (!limbs_is_zero(s, SLIMBS)) {
        int8_t digit = 0;
        if (s[0] & 1) {
            uint64_t d = s[0] & (window - 1);
            if (d >= half) {
                digit = (int8_t)((int64_t)d - (int64_t)window);
                scalar_add_small(s, window - d);
            } else {
                digit = (int8_t)d;
                scalar_sub_small(s, d);
            }
        }
        digits[count++] = digit;
        scalar_shr1(s);
    }
    return count;
}

/* scalar · (ax, ay), scalar > 0, scalar != 1 handled by the caller.
 * scalar9 is consumed. */
static void
jp_scalar_mul(const ring *R, int a1, const uint64_t *ax, const uint64_t *ay,
              uint64_t *scalar9, jpt *out)
{
    jpt base, twice, odd[WNAF_TABLE];
    r_copy(R, base.x, ax);
    r_copy(R, base.y, ay);
    r_one(R, base.z);
    jp_double(R, a1, &base, &twice);
    jp_copy(R, &odd[0], &base);
    for (int k = 1; k < WNAF_TABLE; k++)
        jp_add(R, a1, &odd[k - 1], &twice, &odd[k]);
    int8_t digits[MAX_DIGITS];
    int count = wnaf_digits(scalar9, digits);
    jpt acc, tmp;
    jp_set_inf(R, &acc);
    for (int i = count - 1; i >= 0; i--) {
        jp_double(R, a1, &acc, &acc);
        int d = digits[i];
        if (d > 0) {
            jp_add(R, a1, &acc, &odd[(d - 1) / 2], &acc);
        } else if (d < 0) {
            jp_neg(R, &odd[(-d - 1) / 2], &tmp);
            jp_add(R, a1, &acc, &tmp, &acc);
        }
    }
    jp_copy(R, out, &acc);
}

/* ---------------------------------------------------------------------------
 * bucket collapse (mirrors msm._collapse_buckets): buckets with z == 0 are
 * either empty or an accumulated point at infinity — in both cases the pure
 * code's add is the identity, so one representation serves both.
 * ------------------------------------------------------------------------ */
static void
jp_collapse_buckets(const ring *R, int a1, const jpt *buckets, int nbuckets,
                    jpt *out)
{
    jpt running, total;
    jp_set_inf(R, &running);
    jp_set_inf(R, &total);
    for (int d = nbuckets - 1; d >= 1; d--) {
        if (!jp_is_inf(R, &buckets[d]))
            jp_add(R, a1, &running, &buckets[d], &running);
        if (!jp_is_inf(R, &running))
            jp_add(R, a1, &total, &running, &total);
    }
    jp_copy(R, out, &total);
}

/* digit of an 8-limb scalar at bit offset `shift`, masked to `mask` */
static unsigned long
scalar_digit(const uint64_t *s, int shift, unsigned long mask)
{
    int limb = shift >> 6;
    int off = shift & 63;
    uint64_t lo = limb < MAXL ? s[limb] >> off : 0;
    if (off && limb + 1 < MAXL)
        lo |= s[limb + 1] << (64 - off);
    return (unsigned long)lo & mask;
}

/* ---------------------------------------------------------------------------
 * ss512 Miller loop, inversion-free: each line value is scaled by an F_p
 * denominator (2ya, xp - xa, and powers of Z), all annihilated by the
 * final exponentiation (p² - 1)/r = (p - 1)·cofactor.  Mirrors
 * pairing.miller_loop_raw / pairing._step up to those F_p factors.
 * ------------------------------------------------------------------------ */
static const fctx *SS; /* set at module init */
static ring RING_SS;   /* F_p for ss512 */
static ring RING_SS2;  /* F_p² for ss512 (i² = -1) */
static const fctx *BN;
static ring RING_BN;
static ring RING_BN2;
static uint64_t R_ORDER[MAXL]; /* ss512 subgroup order r */
static int R_ORDER_BITS;
static PyObject *CryptoError; /* repro.errors.CryptoError */

/* Tangent line at Jacobian T evaluated at S = (sx, i·sy), scaled by
 * 2·Y·Z³ ∈ F_p; T is replaced by 2T.  lre/lim are F_p elements. */
static void
miller_dbl_step(jpt *t, const uint64_t *sx, const uint64_t *sy, uint64_t *lre,
                uint64_t *lim)
{
    const fctx *c = SS;
    const ring *R = &RING_SS;
    if (limbs_is_zero(t->y, c->n)) {
        /* vertical tangent: l = (Z²·sx - X) / Z², scaled by Z² */
        uint64_t zz[MAXL], t1[MAXL];
        fe_mont_mul(c, t->z, t->z, zz);
        fe_mont_mul(c, zz, sx, t1);
        fe_sub(c, t1, t->x, lre);
        memset(lim, 0, (size_t)c->n * 8);
        jp_set_inf(R, t);
        return;
    }
    uint64_t yy[MAXL], zz[MAXL], m[MAXL], t1[MAXL], t2[MAXL];
    uint64_t s[MAXL], x3[MAXL], y3[MAXL], z3[MAXL];
    fe_mont_mul(c, t->y, t->y, yy);  /* Y² */
    fe_mont_mul(c, t->z, t->z, zz);  /* Z² */
    fe_mont_mul(c, t->x, t->x, t1);
    fe_add(c, t1, t1, t2);
    fe_add(c, t1, t2, m);            /* 3X² */
    fe_mont_mul(c, zz, zz, t1);
    fe_add(c, m, t1, m);             /* m = 3X² + Z⁴  (a = 1) */
    /* l_re = m·(X - Z²·sx) - 2Y² */
    fe_mont_mul(c, zz, sx, t1);
    fe_sub(c, t->x, t1, t1);
    fe_mont_mul(c, m, t1, t2);
    fe_add(c, yy, yy, t1);
    fe_sub(c, t2, t1, lre);
    /* z3 = 2YZ;  l_im = z3·Z²·sy */
    fe_mont_mul(c, t->y, t->z, t1);
    fe_add(c, t1, t1, z3);
    fe_mont_mul(c, z3, zz, t1);
    fe_mont_mul(c, t1, sy, lim);
    /* point update: s = 4X·Y², x3 = m² - 2s, y3 = m(s - x3) - 8Y⁴ */
    fe_mont_mul(c, t->x, yy, t1);
    fe_add(c, t1, t1, t1);
    fe_add(c, t1, t1, s);
    fe_mont_mul(c, m, m, t1);
    fe_add(c, s, s, t2);
    fe_sub(c, t1, t2, x3);
    fe_sub(c, s, x3, t1);
    fe_mont_mul(c, m, t1, y3);
    fe_mont_mul(c, yy, yy, t1);
    fe_add(c, t1, t1, t1);
    fe_add(c, t1, t1, t1);
    fe_add(c, t1, t1, t1);
    fe_sub(c, y3, t1, y3);
    memcpy(t->x, x3, (size_t)c->n * 8);
    memcpy(t->y, y3, (size_t)c->n * 8);
    memcpy(t->z, z3, (size_t)c->n * 8);
}

/* Chord line through Jacobian T and affine P = (xp, yp) evaluated at
 * S = (sx, i·sy), scaled by (xp - xa)·Z³ ∈ F_p; T is replaced by T + P.
 * sxp = sx - xp (precomputed).  Returns 0, or -1 with CryptoError set. */
static int
miller_add_step(jpt *t, const uint64_t *xp, const uint64_t *yp,
                const uint64_t *sx, const uint64_t *sy, const uint64_t *sxp,
                uint64_t *lre, uint64_t *lim)
{
    const fctx *c = SS;
    const ring *R = &RING_SS;
    if (jp_is_inf(R, t)) {
        PyErr_SetString(CryptoError,
                        "Miller loop did not close: point not of order r");
        return -1;
    }
    uint64_t zz[MAXL], u2[MAXL], s2[MAXL], t1[MAXL], t2[MAXL];
    fe_mont_mul(c, t->z, t->z, zz);
    fe_mont_mul(c, xp, zz, u2);
    fe_mont_mul(c, yp, zz, t1);
    fe_mont_mul(c, t1, t->z, s2);
    if (limbs_cmp(u2, t->x, c->n) == 0) {
        if (limbs_cmp(s2, t->y, c->n) == 0) {
            /* T == P: tangent case, same line as the doubling step */
            miller_dbl_step(t, sx, sy, lre, lim);
            return 0;
        }
        /* vertical chord: l = sx - xp, and T + P = infinity */
        memcpy(lre, sxp, (size_t)c->n * 8);
        memset(lim, 0, (size_t)c->n * 8);
        jp_set_inf(R, t);
        return 0;
    }
    uint64_t h[MAXL], rr[MAXL], hz[MAXL];
    fe_sub(c, u2, t->x, h);
    fe_sub(c, s2, t->y, rr);
    fe_mont_mul(c, h, t->z, hz);
    /* l_re = -(hz·yp + rr·(sx - xp));  l_im = hz·sy */
    fe_mont_mul(c, hz, yp, t1);
    fe_mont_mul(c, rr, sxp, t2);
    fe_add(c, t1, t2, t1);
    fe_neg(c, t1, lre);
    fe_mont_mul(c, hz, sy, lim);
    /* point update (mixed addition with z3 = hz) */
    uint64_t hh[MAXL], hhh[MAXL], v[MAXL], x3[MAXL], y3[MAXL];
    fe_mont_mul(c, h, h, hh);
    fe_mont_mul(c, h, hh, hhh);
    fe_mont_mul(c, t->x, hh, v);
    fe_mont_mul(c, rr, rr, t1);
    fe_sub(c, t1, hhh, t1);
    fe_sub(c, t1, v, t1);
    fe_sub(c, t1, v, x3);
    fe_sub(c, v, x3, t1);
    fe_mont_mul(c, rr, t1, y3);
    fe_mont_mul(c, t->y, hhh, t1);
    fe_sub(c, y3, t1, y3);
    memcpy(t->x, x3, (size_t)c->n * 8);
    memcpy(t->y, y3, (size_t)c->n * 8);
    memcpy(t->z, hz, (size_t)c->n * 8);
    return 0;
}

/* f_{r,P}(φ(Q)) up to an F_p factor.  P = (px, py), Q = (qx, qy) in
 * Montgomery form; out is an F_p² elem. */
static int
miller_loop(const uint64_t *px, const uint64_t *py, const uint64_t *qx,
            const uint64_t *qy, uint64_t *out)
{
    const fctx *c = SS;
    const ring *R2 = &RING_SS2;
    uint64_t sx[MAXL], sxp[MAXL];
    fe_neg(c, qx, sx); /* φ(Q) = (-xq, i·yq) */
    fe_sub(c, sx, px, sxp);
    jpt t;
    memset(&t, 0, sizeof(t));
    memcpy(t.x, px, (size_t)c->n * 8);
    memcpy(t.y, py, (size_t)c->n * 8);
    memcpy(t.z, c->one, (size_t)c->n * 8);
    elem f, line, tmp;
    r_one(R2, f);
    memset(line, 0, sizeof(line));
    for (int i = R_ORDER_BITS - 2; i >= 0; i--) {
        miller_dbl_step(&t, sx, qy, line, line + IM);
        r_sqr(R2, f, tmp);
        r_mul(R2, tmp, line, f);
        if ((R_ORDER[i >> 6] >> (i & 63)) & 1) {
            if (miller_add_step(&t, px, py, sx, qy, sxp, line, line + IM) < 0)
                return -1;
            r_mul(R2, f, line, tmp);
            r_copy(R2, f, tmp);
        }
    }
    if (!jp_is_inf(&RING_SS, &t)) {
        PyErr_SetString(CryptoError,
                        "Miller loop did not close: point not of order r");
        return -1;
    }
    r_copy(R2, out, f);
    return 0;
}

/* ---------------------------------------------------------------------------
 * Python wrappers: ss512 (coordinates are plain ints; infinity = z == 0,
 * canonically the tuple (1, 1, 0) exactly like curve.JAC_INFINITY)
 * ------------------------------------------------------------------------ */
static int
ss_jpt_from_obj(PyObject *obj, jpt *out)
{
    PyObject *seq = PySequence_Fast(obj, "expected a Jacobian (x, y, z) tuple");
    if (seq == NULL)
        return -1;
    if (PySequence_Fast_GET_SIZE(seq) != 3) {
        Py_DECREF(seq);
        PyErr_SetString(PyExc_ValueError, "expected a Jacobian (x, y, z) tuple");
        return -1;
    }
    uint64_t zraw[MAXL];
    if (limbs_from_obj(PySequence_Fast_GET_ITEM(seq, 2), zraw, SS->n) < 0) {
        Py_DECREF(seq);
        return -1;
    }
    memset(out, 0, sizeof(*out));
    if (limbs_is_zero(zraw, SS->n)) {
        Py_DECREF(seq);
        return 0; /* infinity */
    }
    while (limbs_cmp(zraw, SS->p, SS->n) >= 0)
        limbs_sub(zraw, zraw, SS->p, SS->n);
    fe_mont_mul(SS, zraw, SS->r2, out->z);
    if (fe_from_obj(SS, PySequence_Fast_GET_ITEM(seq, 0), out->x) < 0 ||
        fe_from_obj(SS, PySequence_Fast_GET_ITEM(seq, 1), out->y) < 0) {
        Py_DECREF(seq);
        return -1;
    }
    Py_DECREF(seq);
    return 0;
}

static int
ss_affine_from_obj(PyObject *obj, uint64_t *ax, uint64_t *ay)
{
    PyObject *seq = PySequence_Fast(obj, "expected an affine (x, y) tuple");
    if (seq == NULL)
        return -1;
    if (PySequence_Fast_GET_SIZE(seq) != 2) {
        Py_DECREF(seq);
        PyErr_SetString(PyExc_ValueError, "expected an affine (x, y) tuple");
        return -1;
    }
    int rc = fe_from_obj(SS, PySequence_Fast_GET_ITEM(seq, 0), ax);
    if (rc == 0)
        rc = fe_from_obj(SS, PySequence_Fast_GET_ITEM(seq, 1), ay);
    Py_DECREF(seq);
    return rc;
}

static PyObject *
ss_jpt_to_obj(const jpt *p)
{
    if (jp_is_inf(&RING_SS, p))
        return Py_BuildValue("(iii)", 1, 1, 0);
    PyObject *x = fe_to_obj(SS, p->x);
    PyObject *y = x ? fe_to_obj(SS, p->y) : NULL;
    PyObject *z = y ? fe_to_obj(SS, p->z) : NULL;
    if (z == NULL) {
        Py_XDECREF(x);
        Py_XDECREF(y);
        return NULL;
    }
    return Py_BuildValue("(NNN)", x, y, z);
}

static PyObject *
py_ss512_jac_double(PyObject *self, PyObject *arg)
{
    jpt p;
    if (ss_jpt_from_obj(arg, &p) < 0)
        return NULL;
    jp_double(&RING_SS, 1, &p, &p);
    return ss_jpt_to_obj(&p);
}

static PyObject *
py_ss512_jac_add(PyObject *self, PyObject *args)
{
    PyObject *lhs_obj, *rhs_obj;
    if (!PyArg_ParseTuple(args, "OO", &lhs_obj, &rhs_obj))
        return NULL;
    jpt p, q;
    if (ss_jpt_from_obj(lhs_obj, &p) < 0)
        return NULL;
    if (jp_is_inf(&RING_SS, &p))
        return Py_NewRef(rhs_obj); /* pure returns rhs verbatim */
    if (ss_jpt_from_obj(rhs_obj, &q) < 0)
        return NULL;
    if (jp_is_inf(&RING_SS, &q))
        return Py_NewRef(lhs_obj);
    jp_add(&RING_SS, 1, &p, &q, &p);
    return ss_jpt_to_obj(&p);
}

static PyObject *
py_ss512_jac_add_affine(PyObject *self, PyObject *args)
{
    PyObject *lhs_obj, *rhs_obj;
    if (!PyArg_ParseTuple(args, "OO", &lhs_obj, &rhs_obj))
        return NULL;
    jpt p;
    if (ss_jpt_from_obj(lhs_obj, &p) < 0)
        return NULL;
    if (jp_is_inf(&RING_SS, &p)) {
        /* pure: (rhs[0], rhs[1], 1) with the original coordinate objects */
        PyObject *seq = PySequence_Fast(rhs_obj, "expected an affine tuple");
        if (seq == NULL || PySequence_Fast_GET_SIZE(seq) != 2) {
            Py_XDECREF(seq);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_ValueError, "expected an affine tuple");
            return NULL;
        }
        PyObject *out = Py_BuildValue("(OOi)", PySequence_Fast_GET_ITEM(seq, 0),
                                      PySequence_Fast_GET_ITEM(seq, 1), 1);
        Py_DECREF(seq);
        return out;
    }
    uint64_t ax[MAXL], ay[MAXL];
    if (ss_affine_from_obj(rhs_obj, ax, ay) < 0)
        return NULL;
    jp_add_affine(&RING_SS, 1, &p, ax, ay, &p);
    return ss_jpt_to_obj(&p);
}

static PyObject *
py_ss512_scalar_mul(PyObject *self, PyObject *args)
{
    PyObject *x_obj, *y_obj, *s_obj;
    if (!PyArg_ParseTuple(args, "OOO", &x_obj, &y_obj, &s_obj))
        return NULL;
    uint64_t s[SLIMBS];
    memset(s, 0, sizeof(s));
    if (limbs_from_obj(s_obj, s, MAXL) < 0)
        return NULL;
    if (limbs_is_zero(s, MAXL))
        return Py_BuildValue("(iii)", 1, 1, 0);
    if (limbs_bit_length(s, MAXL) == 1)
        return Py_BuildValue("(OOi)", x_obj, y_obj, 1); /* scalar == 1 */
    uint64_t ax[MAXL], ay[MAXL];
    if (fe_from_obj(SS, x_obj, ax) < 0 || fe_from_obj(SS, y_obj, ay) < 0)
        return NULL;
    jpt out;
    jp_scalar_mul(&RING_SS, 1, ax, ay, s, &out);
    return ss_jpt_to_obj(&out);
}

static PyObject *
py_ss512_fixed_base_msm(PyObject *self, PyObject *args)
{
    PyObject *tables_obj, *scalars_obj;
    int width;
    if (!PyArg_ParseTuple(args, "OOi", &tables_obj, &scalars_obj, &width))
        return NULL;
    if (width < 1 || width > 16) {
        PyErr_SetString(PyExc_ValueError, "width must be in [1, 16]");
        return NULL;
    }
    PyObject *tables = PySequence_Fast(tables_obj, "tables must be a sequence");
    if (tables == NULL)
        return NULL;
    PyObject *scalars = PySequence_Fast(scalars_obj, "scalars must be a sequence");
    if (scalars == NULL) {
        Py_DECREF(tables);
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(tables);
    if (PySequence_Fast_GET_SIZE(scalars) != n) {
        PyErr_SetString(PyExc_ValueError,
                        "zip() argument 2 is shorter or longer than argument 1");
        goto fail;
    }
    unsigned long mask = (1ul << width) - 1;
    jpt *buckets = PyMem_Calloc(mask + 1, sizeof(jpt));
    if (buckets == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *table_obj = PySequence_Fast_GET_ITEM(tables, i);
        if (table_obj == Py_None)
            continue;
        uint64_t s[MAXL];
        if (limbs_from_obj(PySequence_Fast_GET_ITEM(scalars, i), s, MAXL) < 0)
            goto fail_buckets;
        int bits = limbs_bit_length(s, MAXL);
        if (bits == 0)
            continue;
        PyObject *table = PySequence_Fast(table_obj, "table must be a sequence");
        if (table == NULL)
            goto fail_buckets;
        Py_ssize_t tlen = PySequence_Fast_GET_SIZE(table);
        int nwin = (bits + width - 1) / width;
        for (int w = 0; w < nwin; w++) {
            unsigned long digit = scalar_digit(s, w * width, mask);
            if (!digit)
                continue;
            if (w >= tlen) {
                PyErr_SetString(PyExc_IndexError, "window table too short");
                Py_DECREF(table);
                goto fail_buckets;
            }
            PyObject *shifted = PySequence_Fast_GET_ITEM(table, w);
            if (shifted == Py_None)
                continue;
            uint64_t ax[MAXL], ay[MAXL];
            if (ss_affine_from_obj(shifted, ax, ay) < 0) {
                Py_DECREF(table);
                goto fail_buckets;
            }
            jpt *b = &buckets[digit];
            /* empty bucket (z == 0): mixed add yields (x, y, 1) = to_jac */
            jp_add_affine(&RING_SS, 1, b, ax, ay, b);
        }
        Py_DECREF(table);
    }
    jpt total;
    jp_collapse_buckets(&RING_SS, 1, buckets, (int)(mask + 1), &total);
    PyMem_Free(buckets);
    Py_DECREF(tables);
    Py_DECREF(scalars);
    return ss_jpt_to_obj(&total);
fail_buckets:
    PyMem_Free(buckets);
fail:
    Py_DECREF(tables);
    Py_DECREF(scalars);
    return NULL;
}

static PyObject *
py_ss512_pippenger(PyObject *self, PyObject *args)
{
    PyObject *pairs_obj;
    int width, max_bits;
    if (!PyArg_ParseTuple(args, "Oii", &pairs_obj, &width, &max_bits))
        return NULL;
    if (width < 1 || width > 16 || max_bits < 1 || max_bits > 64 * MAXL) {
        PyErr_SetString(PyExc_ValueError, "width/max_bits out of range");
        return NULL;
    }
    PyObject *pairs = PySequence_Fast(pairs_obj, "pairs must be a sequence");
    if (pairs == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(pairs);
    typedef struct {
        uint64_t x[MAXL], y[MAXL], s[MAXL];
    } ppair;
    ppair *loaded = PyMem_Malloc((size_t)(n > 0 ? n : 1) * sizeof(ppair));
    unsigned long mask = (1ul << width) - 1;
    jpt *buckets = PyMem_Malloc((mask + 1) * sizeof(jpt));
    if (loaded == NULL || buckets == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *pair = PySequence_Fast(PySequence_Fast_GET_ITEM(pairs, i),
                                         "pair must be a (point, scalar) tuple");
        if (pair == NULL || PySequence_Fast_GET_SIZE(pair) != 2) {
            Py_XDECREF(pair);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_ValueError,
                                "pair must be a (point, scalar) tuple");
            goto fail;
        }
        if (ss_affine_from_obj(PySequence_Fast_GET_ITEM(pair, 0), loaded[i].x,
                               loaded[i].y) < 0 ||
            limbs_from_obj(PySequence_Fast_GET_ITEM(pair, 1), loaded[i].s,
                           MAXL) < 0) {
            Py_DECREF(pair);
            goto fail;
        }
        Py_DECREF(pair);
    }
    jpt acc;
    jp_set_inf(&RING_SS, &acc);
    for (int win = (max_bits + width - 1) / width - 1; win >= 0; win--) {
        if (!jp_is_inf(&RING_SS, &acc)) {
            for (int k = 0; k < width; k++)
                jp_double(&RING_SS, 1, &acc, &acc);
        }
        memset(buckets, 0, (mask + 1) * sizeof(jpt));
        int shift = win * width;
        for (Py_ssize_t i = 0; i < n; i++) {
            unsigned long digit = scalar_digit(loaded[i].s, shift, mask);
            if (digit)
                jp_add_affine(&RING_SS, 1, &buckets[digit], loaded[i].x,
                              loaded[i].y, &buckets[digit]);
        }
        jpt coll;
        jp_collapse_buckets(&RING_SS, 1, buckets, (int)(mask + 1), &coll);
        jp_add(&RING_SS, 1, &acc, &coll, &acc);
    }
    PyMem_Free(loaded);
    PyMem_Free(buckets);
    Py_DECREF(pairs);
    return ss_jpt_to_obj(&acc);
fail:
    PyMem_Free(loaded);
    PyMem_Free(buckets);
    Py_DECREF(pairs);
    return NULL;
}

static PyObject *
py_ss512_miller_raw(PyObject *self, PyObject *args)
{
    PyObject *px_obj, *py_obj, *qx_obj, *qy_obj;
    if (!PyArg_ParseTuple(args, "OOOO", &px_obj, &py_obj, &qx_obj, &qy_obj))
        return NULL;
    uint64_t px[MAXL], py[MAXL], qx[MAXL], qy[MAXL];
    if (fe_from_obj(SS, px_obj, px) < 0 || fe_from_obj(SS, py_obj, py) < 0 ||
        fe_from_obj(SS, qx_obj, qx) < 0 || fe_from_obj(SS, qy_obj, qy) < 0)
        return NULL;
    elem f;
    if (miller_loop(px, py, qx, qy, f) < 0)
        return NULL;
    return Py_BuildValue("(NN)", fe_to_obj(SS, f), fe_to_obj(SS, f + IM));
}

static PyObject *
py_ss512_fp2_mul(PyObject *self, PyObject *args)
{
    PyObject *a_obj, *b_obj, *c_obj, *d_obj;
    if (!PyArg_ParseTuple(args, "OOOO", &a_obj, &b_obj, &c_obj, &d_obj))
        return NULL;
    elem u, v, out;
    memset(u, 0, sizeof(u));
    memset(v, 0, sizeof(v));
    if (fe_from_obj(SS, a_obj, u) < 0 || fe_from_obj(SS, b_obj, u + IM) < 0 ||
        fe_from_obj(SS, c_obj, v) < 0 || fe_from_obj(SS, d_obj, v + IM) < 0)
        return NULL;
    r_mul(&RING_SS2, u, v, out);
    return Py_BuildValue("(NN)", fe_to_obj(SS, out), fe_to_obj(SS, out + IM));
}

static PyObject *
py_ss512_fp2_square(PyObject *self, PyObject *args)
{
    PyObject *a_obj, *b_obj;
    if (!PyArg_ParseTuple(args, "OO", &a_obj, &b_obj))
        return NULL;
    elem u, out;
    memset(u, 0, sizeof(u));
    if (fe_from_obj(SS, a_obj, u) < 0 || fe_from_obj(SS, b_obj, u + IM) < 0)
        return NULL;
    r_sqr(&RING_SS2, u, out);
    return Py_BuildValue("(NN)", fe_to_obj(SS, out), fe_to_obj(SS, out + IM));
}

static PyObject *
py_ss512_fp2_pow(PyObject *self, PyObject *args)
{
    PyObject *a_obj, *b_obj, *e_obj;
    if (!PyArg_ParseTuple(args, "OOO", &a_obj, &b_obj, &e_obj))
        return NULL;
    elem base, result, tmp;
    memset(base, 0, sizeof(base));
    if (fe_from_obj(SS, a_obj, base) < 0 || fe_from_obj(SS, b_obj, base + IM) < 0)
        return NULL;
    uint64_t e[MAXL];
    if (limbs_from_obj(e_obj, e, MAXL) < 0)
        return NULL;
    r_one(&RING_SS2, result);
    int bits = limbs_bit_length(e, MAXL);
    for (int i = 0; i < bits; i++) {
        if ((e[i >> 6] >> (i & 63)) & 1) {
            r_mul(&RING_SS2, result, base, tmp);
            r_copy(&RING_SS2, result, tmp);
        }
        r_sqr(&RING_SS2, base, tmp);
        r_copy(&RING_SS2, base, tmp);
    }
    return Py_BuildValue("(NN)", fe_to_obj(SS, result),
                         fe_to_obj(SS, result + IM));
}

/* ---------------------------------------------------------------------------
 * Python wrappers: BN254 (coordinates are ints for G1, 2-sequences of ints
 * for G2 over F_q²; infinity = Python None, matching bn254.py)
 * ------------------------------------------------------------------------ */
static int
bn_elem_from_obj(const ring *R, PyObject *obj, uint64_t *out)
{
    memset(out, 0, sizeof(elem));
    if (!R->ext)
        return fe_from_obj(R->f, obj, out);
    PyObject *seq = PySequence_Fast(obj, "expected a 2-sequence of ints");
    if (seq == NULL)
        return -1;
    if (PySequence_Fast_GET_SIZE(seq) != 2) {
        Py_DECREF(seq);
        PyErr_SetString(PyExc_ValueError, "expected a 2-sequence of ints");
        return -1;
    }
    int rc = fe_from_obj(R->f, PySequence_Fast_GET_ITEM(seq, 0), out);
    if (rc == 0)
        rc = fe_from_obj(R->f, PySequence_Fast_GET_ITEM(seq, 1), out + IM);
    Py_DECREF(seq);
    return rc;
}

static PyObject *
bn_elem_to_obj(const ring *R, const uint64_t *a)
{
    if (!R->ext)
        return fe_to_obj(R->f, a);
    return Py_BuildValue("(NN)", fe_to_obj(R->f, a), fe_to_obj(R->f, a + IM));
}

static PyObject *
bn_jpt_to_obj(const ring *R, const jpt *p)
{
    if (jp_is_inf(R, p))
        Py_RETURN_NONE;
    return Py_BuildValue("(NNN)", bn_elem_to_obj(R, p->x),
                         bn_elem_to_obj(R, p->y), bn_elem_to_obj(R, p->z));
}

static PyObject *
bn_jac_double_impl(const ring *R, PyObject *args)
{
    PyObject *x_obj, *y_obj, *z_obj;
    if (!PyArg_ParseTuple(args, "OOO", &x_obj, &y_obj, &z_obj))
        return NULL;
    jpt p;
    if (bn_elem_from_obj(R, x_obj, p.x) < 0 ||
        bn_elem_from_obj(R, y_obj, p.y) < 0 ||
        bn_elem_from_obj(R, z_obj, p.z) < 0)
        return NULL;
    jp_double(R, 0, &p, &p);
    return bn_jpt_to_obj(R, &p);
}

static PyObject *
bn_jac_add_impl(const ring *R, PyObject *args)
{
    PyObject *obj[6];
    if (!PyArg_ParseTuple(args, "OOOOOO", &obj[0], &obj[1], &obj[2], &obj[3],
                          &obj[4], &obj[5]))
        return NULL;
    jpt p, q;
    if (bn_elem_from_obj(R, obj[0], p.x) < 0 ||
        bn_elem_from_obj(R, obj[1], p.y) < 0 ||
        bn_elem_from_obj(R, obj[2], p.z) < 0 ||
        bn_elem_from_obj(R, obj[3], q.x) < 0 ||
        bn_elem_from_obj(R, obj[4], q.y) < 0 ||
        bn_elem_from_obj(R, obj[5], q.z) < 0)
        return NULL;
    jp_add(R, 0, &p, &q, &p);
    return bn_jpt_to_obj(R, &p);
}

static PyObject *
bn_jac_add_affine_impl(const ring *R, PyObject *args)
{
    PyObject *obj[5];
    if (!PyArg_ParseTuple(args, "OOOOO", &obj[0], &obj[1], &obj[2], &obj[3],
                          &obj[4]))
        return NULL;
    jpt p;
    elem ax, ay;
    if (bn_elem_from_obj(R, obj[0], p.x) < 0 ||
        bn_elem_from_obj(R, obj[1], p.y) < 0 ||
        bn_elem_from_obj(R, obj[2], p.z) < 0 ||
        bn_elem_from_obj(R, obj[3], ax) < 0 ||
        bn_elem_from_obj(R, obj[4], ay) < 0)
        return NULL;
    jp_add_affine(R, 0, &p, ax, ay, &p);
    return bn_jpt_to_obj(R, &p);
}

static PyObject *
bn_scalar_mul_impl(const ring *R, PyObject *args)
{
    PyObject *x_obj, *y_obj, *s_obj;
    if (!PyArg_ParseTuple(args, "OOO", &x_obj, &y_obj, &s_obj))
        return NULL;
    uint64_t s[SLIMBS];
    memset(s, 0, sizeof(s));
    if (limbs_from_obj(s_obj, s, MAXL) < 0)
        return NULL;
    if (limbs_is_zero(s, MAXL))
        Py_RETURN_NONE;
    if (limbs_bit_length(s, MAXL) == 1) { /* scalar == 1: to_jacobian */
        if (R->ext)
            return Py_BuildValue("(OO(ii))", x_obj, y_obj, 1, 0);
        return Py_BuildValue("(OOi)", x_obj, y_obj, 1);
    }
    elem ax, ay;
    if (bn_elem_from_obj(R, x_obj, ax) < 0 || bn_elem_from_obj(R, y_obj, ay) < 0)
        return NULL;
    jpt out;
    jp_scalar_mul(R, 0, ax, ay, s, &out);
    return bn_jpt_to_obj(R, &out);
}

static PyObject *
py_bn_jac_double(PyObject *self, PyObject *args)
{
    return bn_jac_double_impl(&RING_BN, args);
}

static PyObject *
py_bn2_jac_double(PyObject *self, PyObject *args)
{
    return bn_jac_double_impl(&RING_BN2, args);
}

static PyObject *
py_bn_jac_add(PyObject *self, PyObject *args)
{
    return bn_jac_add_impl(&RING_BN, args);
}

static PyObject *
py_bn2_jac_add(PyObject *self, PyObject *args)
{
    return bn_jac_add_impl(&RING_BN2, args);
}

static PyObject *
py_bn_jac_add_affine(PyObject *self, PyObject *args)
{
    return bn_jac_add_affine_impl(&RING_BN, args);
}

static PyObject *
py_bn2_jac_add_affine(PyObject *self, PyObject *args)
{
    return bn_jac_add_affine_impl(&RING_BN2, args);
}

static PyObject *
py_bn_scalar_mul(PyObject *self, PyObject *args)
{
    return bn_scalar_mul_impl(&RING_BN, args);
}

static PyObject *
py_bn2_scalar_mul(PyObject *self, PyObject *args)
{
    return bn_scalar_mul_impl(&RING_BN2, args);
}

/* ---------------------------------------------------------------------------
 * metadata and module plumbing
 * ------------------------------------------------------------------------ */
static PyObject *
py_impl_info(PyObject *self, PyObject *noargs)
{
    return Py_BuildValue("{s:s, s:s}", "compiler", Py_GetCompiler(), "abi",
                         PY_VERSION);
}

static PyObject *
py_constants(PyObject *self, PyObject *noargs)
{
    return Py_BuildValue("{s:N, s:N, s:N}", "ss512_p",
                         obj_from_limbs(SS->p, SS->n), "ss512_r",
                         obj_from_limbs(R_ORDER, MAXL), "bn254_p",
                         obj_from_limbs(BN->p, BN->n));
}

static PyMethodDef accel_methods[] = {
    {"ss512_jac_double", py_ss512_jac_double, METH_O,
     "Jacobian doubling on the ss512 curve (a = 1)."},
    {"ss512_jac_add", py_ss512_jac_add, METH_VARARGS,
     "Jacobian addition on the ss512 curve."},
    {"ss512_jac_add_affine", py_ss512_jac_add_affine, METH_VARARGS,
     "Mixed Jacobian + affine addition on the ss512 curve."},
    {"ss512_scalar_mul", py_ss512_scalar_mul, METH_VARARGS,
     "Width-5 wNAF ladder: scalar * (x, y), Jacobian result."},
    {"ss512_fixed_base_msm", py_ss512_fixed_base_msm, METH_VARARGS,
     "Shared bucket pass over fixed-base window tables, Jacobian result."},
    {"ss512_pippenger", py_ss512_pippenger, METH_VARARGS,
     "One-shot Pippenger MSM over (point, scalar) pairs, Jacobian result."},
    {"ss512_miller_raw", py_ss512_miller_raw, METH_VARARGS,
     "Inversion-free Miller loop (raw value up to an F_p factor)."},
    {"ss512_fp2_mul", py_ss512_fp2_mul, METH_VARARGS,
     "F_p2 product for the ss512 pairing target group."},
    {"ss512_fp2_square", py_ss512_fp2_square, METH_VARARGS,
     "F_p2 square for the ss512 pairing target group."},
    {"ss512_fp2_pow", py_ss512_fp2_pow, METH_VARARGS,
     "F_p2 exponentiation (non-negative exponent up to 512 bits)."},
    {"bn_jac_double", py_bn_jac_double, METH_VARARGS,
     "Jacobian doubling on BN254 G1 (a = 0)."},
    {"bn2_jac_double", py_bn2_jac_double, METH_VARARGS,
     "Jacobian doubling on the BN254 twist over F_q2."},
    {"bn_jac_add", py_bn_jac_add, METH_VARARGS, "Jacobian addition on BN254 G1."},
    {"bn2_jac_add", py_bn2_jac_add, METH_VARARGS,
     "Jacobian addition on the BN254 twist."},
    {"bn_jac_add_affine", py_bn_jac_add_affine, METH_VARARGS,
     "Mixed addition on BN254 G1."},
    {"bn2_jac_add_affine", py_bn2_jac_add_affine, METH_VARARGS,
     "Mixed addition on the BN254 twist."},
    {"bn_scalar_mul", py_bn_scalar_mul, METH_VARARGS,
     "wNAF ladder on BN254 G1."},
    {"bn2_scalar_mul", py_bn2_scalar_mul, METH_VARARGS,
     "wNAF ladder on the BN254 twist."},
    {"impl_info", py_impl_info, METH_NOARGS,
     "Compiler/ABI metadata for benchmark reports."},
    {"_constants", py_constants, METH_NOARGS,
     "Field/group constants baked into the extension (for parity checks)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef accel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.crypto.accel._accelmodule",
    "Montgomery-arithmetic kernels for the ss512 and BN254 curves.",
    -1,
    accel_methods,
};

static fctx CTX_SS;
static fctx CTX_BN;

#define SS512_P_DEC                                                            \
    "669876107683929280479803234508072810260149531256858220102081310174764160" \
    "437214702507480514196674554500680131236521549512067394065064524749317042" \
    "8513098411"
#define SS512_R_DEC "1132706623188116297760294080913586700152711772617"
#define BN254_P_DEC                                                            \
    "218882428718392752222464057452572750886963111572978236626890378946452262" \
    "08583"

PyMODINIT_FUNC
PyInit__accelmodule(void)
{
    fctx_init(&CTX_SS, 8, SS512_P_DEC);
    fctx_init(&CTX_BN, 4, BN254_P_DEC);
    SS = &CTX_SS;
    BN = &CTX_BN;
    RING_SS.f = &CTX_SS;
    RING_SS.ext = 0;
    RING_SS2.f = &CTX_SS;
    RING_SS2.ext = 1;
    RING_BN.f = &CTX_BN;
    RING_BN.ext = 0;
    RING_BN2.f = &CTX_BN;
    RING_BN2.ext = 1;
    limbs_from_dec(SS512_R_DEC, R_ORDER, MAXL);
    R_ORDER_BITS = limbs_bit_length(R_ORDER, MAXL);

    PyObject *errors = PyImport_ImportModule("repro.errors");
    if (errors == NULL)
        return NULL;
    CryptoError = PyObject_GetAttrString(errors, "CryptoError");
    Py_DECREF(errors);
    if (CryptoError == NULL)
        return NULL;
    return PyModule_Create(&accel_module);
}
