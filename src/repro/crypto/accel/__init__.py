"""Accelerated field/curve arithmetic behind a runtime-probed seam.

Three interchangeable providers implement the same arithmetic surface
(scalar modexp/modinv, Jacobian point kernels, MSM inner loops, the
ss512 Miller loop):

* ``pure``  — the PR 4 pure-Python fast path (always available);
* ``gmpy2`` — GMP ``mpz`` integers under the identical formulas
  (``pip install .[accel]``);
* ``native`` — the optional ``_accelmodule`` C extension with
  Montgomery-form fixed-width arithmetic (``python setup.py
  build_ext --inplace`` or ``pip install .[accel]`` from source).

Select one per process with :func:`set_impl` (or the ``accel=``
argument of :func:`repro.crypto.get_backend`, or the ``REPRO_ACCEL``
environment variable); ``"auto"`` probes ``native → gmpy2 → pure``.
Every provider is byte-parity gated against pure Python — same block
encodings, same VO bytes — by ``tests/test_accel.py`` and the in-run
check in ``benchmarks/bench_crypto.py``.
"""

from repro.crypto.accel.dispatch import (
    PROBE_ORDER,
    CurveKernels,
    Provider,
    active,
    active_impl,
    available_impls,
    set_impl,
)

__all__ = [
    "PROBE_ORDER",
    "CurveKernels",
    "Provider",
    "active",
    "active_impl",
    "available_impls",
    "set_impl",
]
