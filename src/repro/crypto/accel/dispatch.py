"""Runtime dispatch between the arithmetic providers.

One process-wide *active provider* decides which implementation of the
scalar seam (modexp / modinv / big-int multiply) and of the per-curve
Jacobian kernels every hot path uses:

* ``pure``  — the PR 4 fast path, always available;
* ``gmpy2`` — the same algorithms running on GMP ``mpz`` integers
  (:mod:`repro.crypto.accel.gmpy2_backend`), when gmpy2 is installed;
* ``native`` — the C extension ``_accelmodule``
  (:mod:`repro.crypto.accel.native`), when it has been built.

Selection is explicit (:func:`set_impl`) or probed (``"auto"`` walks
:data:`PROBE_ORDER` and takes the first available provider).  The
default is ``"auto"`` — overridable with the ``REPRO_ACCEL``
environment variable — resolved lazily on first use, so merely
importing the crypto packages never fails in an environment with
neither accelerator installed.

The rest of ``repro.crypto`` reaches accelerated arithmetic **only**
through this module (enforced statically by the ``accel-dispatch``
vlint rule), which is what makes the pure-Python fallback provable:
swap the provider and every call site follows.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import CryptoError

#: probe order for ``"auto"`` — fastest available provider wins
PROBE_ORDER = ("native", "gmpy2", "pure")

#: environment override for the initial (lazily resolved) provider
ENV_VAR = "REPRO_ACCEL"

#: composite kernels decline scalars/exponents wider than this (the
#: native limb buffers hold 512-bit values; every real scalar is far
#: smaller), falling back to the generic Python loops.
MAX_SCALAR_BITS = 512

JacPoint = Any
AffinePoint = Any
Fp2 = tuple[int, int]


@dataclass(frozen=True)
class CurveKernels:
    """Accelerated Jacobian primitive set for one named curve group.

    Field-for-field compatible with the callable part of
    :class:`repro.crypto.msm.CurveOps`, so the MSM algorithms can run
    unchanged on provider-domain points.  The optional composites
    replace whole inner loops (wNAF ladder, bucket passes) when a
    provider implements them natively; ``None`` means "use the generic
    loop over the point kernels".
    """

    to_jac: Callable[[AffinePoint], JacPoint]
    double: Callable[[JacPoint], JacPoint]
    add: Callable[[JacPoint, JacPoint], JacPoint]
    add_affine: Callable[[JacPoint, AffinePoint], JacPoint]
    neg: Callable[[JacPoint], JacPoint]
    to_affine: Callable[[JacPoint], AffinePoint]
    batch_to_affine: Callable[[list[JacPoint]], list[AffinePoint]]
    #: ``(affine_point, scalar) -> jac`` — full width-5 wNAF ladder
    scalar_mul: Callable[[AffinePoint, int], JacPoint] | None = None
    #: ``(tables, scalars, width) -> jac`` — fixed-base bucket pass
    fixed_base_msm: Callable[[Sequence[Any], Sequence[int], int], JacPoint] | None = (
        None
    )
    #: ``(pairs, width, max_bits) -> jac`` — one-shot Pippenger
    pippenger: (
        Callable[[list[tuple[AffinePoint, int]], int, int], JacPoint] | None
    ) = None


@dataclass(frozen=True)
class Provider:
    """One arithmetic implementation: scalar seam + per-curve kernels."""

    name: str
    modexp: Callable[[int, int, int], int]
    modinv: Callable[[int, int], int]
    imul: Callable[[int, int], int]
    #: per-curve kernel sets keyed by ``CurveOps.name`` ("ss512",
    #: "bn254"); an empty mapping means "run the pure ops as given"
    kernels: Mapping[str, CurveKernels] = field(default_factory=dict)
    #: ``f_{r,P}(φ(Q))`` up to an F_p factor (killed by the final
    #: exponentiation) — consumers must only use it pre-final-exp
    ss512_miller_raw: Callable[[Any, Any], Fp2] | None = None
    ss512_fp2_mul: Callable[[Fp2, Fp2], Fp2] | None = None
    ss512_fp2_square: Callable[[Fp2], Fp2] | None = None
    #: returns ``None`` to decline (oversized exponent) — caller falls
    #: back to the pure loop
    ss512_fp2_pow: Callable[[Fp2, int], Fp2 | None] | None = None
    #: version/compiler details for benchmark metadata
    meta: Mapping[str, str] = field(default_factory=dict)


_LOCK = threading.RLock()
#: probed providers by name; ``None`` records "probed, unavailable"
_PROVIDERS: dict[str, Provider | None] = {}
_ACTIVE: Provider | None = None


def _load(name: str) -> Provider | None:
    """Build (or recall) the named provider; ``None`` if unavailable."""
    if name in _PROVIDERS:
        return _PROVIDERS[name]
    provider: Provider | None
    try:
        if name == "pure":
            from repro.crypto.accel import pure as module
        elif name == "gmpy2":
            from repro.crypto.accel import gmpy2_backend as module  # type: ignore[no-redef]
        elif name == "native":
            from repro.crypto.accel import native as module  # type: ignore[no-redef]
        else:
            raise CryptoError(
                f"unknown accel impl {name!r}; expected one of "
                f"'auto', {', '.join(repr(n) for n in PROBE_ORDER)}"
            )
        provider = module.build()
    except ImportError:
        provider = None
    _PROVIDERS[name] = provider
    return provider


def available_impls() -> tuple[str, ...]:
    """The providers that build in this environment, in probe order."""
    with _LOCK:
        return tuple(name for name in PROBE_ORDER if _load(name) is not None)


def set_impl(choice: str = "auto", *, fallback: bool = False) -> str:
    """Select the process-wide provider; returns the resolved name.

    ``"auto"`` probes :data:`PROBE_ORDER`.  An explicit choice that is
    not available raises :class:`~repro.errors.CryptoError` unless
    ``fallback=True``, which degrades to ``"auto"`` instead — the pool
    workers use that so a worker spawned into a leaner environment than
    its parent still comes up.
    """
    global _ACTIVE
    with _LOCK:
        provider: Provider | None = None
        if choice != "auto":
            provider = _load(choice)  # raises on unknown names
            if provider is None and not fallback:
                have = ", ".join(n for n in PROBE_ORDER if _load(n) is not None)
                raise CryptoError(
                    f"accel impl {choice!r} is not available in this "
                    f"environment (have: {have})"
                )
        if provider is None:
            for name in PROBE_ORDER:
                provider = _load(name)
                if provider is not None:
                    break
        assert provider is not None  # "pure" always builds
        _ACTIVE = provider
        return provider.name


def _curve_modules_initializing() -> bool:
    """True while ``curve`` or ``bn254`` is executing its module body.

    Both modules compute constants through the scalar seam at import
    time, and both are imported *by* the accelerated providers — so
    probing a provider mid-import would hand it a partially initialized
    module.  Seam calls made during that window run on pure arithmetic
    instead (identical results), and the real probe resolves on the
    first call after the imports complete.
    """
    for name in ("repro.crypto.curve", "repro.crypto.bn254"):
        module = sys.modules.get(name)
        spec = getattr(module, "__spec__", None)
        if module is not None and getattr(spec, "_initializing", False):
            return True
    return False


def _pure_provider() -> Provider:
    with _LOCK:
        provider = _load("pure")
    assert provider is not None  # "pure" always builds
    return provider


def active() -> Provider:
    """The active provider, resolving the lazy default on first use."""
    provider = _ACTIVE
    if provider is None:
        if _curve_modules_initializing():
            return _pure_provider()
        set_impl(os.environ.get(ENV_VAR, "auto"))
        provider = _ACTIVE
        assert provider is not None
    return provider


def active_impl() -> str:
    """Name of the active provider (``pure`` / ``gmpy2`` / ``native``)."""
    return active().name


# -- the scalar seam ----------------------------------------------------------
# Every ``pow(x, -1, p)`` / ``pow(a, e, m)`` chain in repro.crypto goes
# through these two functions, so swapping the provider swaps them all.
def modexp(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent % modulus`` (negative exponents invert)."""
    return active().modexp(base, exponent, modulus)


def modinv(value: int, modulus: int) -> int:
    """Modular inverse; raises ``ValueError`` when not invertible."""
    return active().modinv(value, modulus)


def imul(a: int, b: int) -> int:
    """Plain big-integer product (the Kronecker-substitution hot spot)."""
    return active().imul(a, b)
