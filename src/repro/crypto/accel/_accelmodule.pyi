"""Type stubs for the optional ``_accelmodule`` C extension.

Coordinate conventions mirror the pure modules: ss512 points are plain
``int`` tuples with ``(1, 1, 0)`` as Jacobian infinity; BN254 G1
coordinates are ints, twist coordinates are ``(re, im)`` int pairs, and
``None`` is the BN point at infinity.
"""

from typing import Sequence

_Jac = tuple[int, int, int]
_Affine = tuple[int, int]
_Fp2 = tuple[int, int]
_Pair2 = tuple[int, int]
_BnJac = tuple[int, int, int] | None
_Bn2Jac = tuple[_Pair2, _Pair2, _Pair2] | None

def ss512_jac_double(point: _Jac, /) -> _Jac: ...
def ss512_jac_add(lhs: _Jac, rhs: _Jac, /) -> _Jac: ...
def ss512_jac_add_affine(lhs: _Jac, rhs: _Affine, /) -> _Jac: ...
def ss512_scalar_mul(x: int, y: int, scalar: int, /) -> _Jac: ...
def ss512_fixed_base_msm(
    tables: Sequence[Sequence[_Affine | None] | None],
    scalars: Sequence[int],
    width: int,
    /,
) -> _Jac: ...
def ss512_pippenger(
    pairs: Sequence[tuple[_Affine, int]], width: int, max_bits: int, /
) -> _Jac: ...
def ss512_miller_raw(px: int, py: int, qx: int, qy: int, /) -> _Fp2: ...
def ss512_fp2_mul(a: int, b: int, c: int, d: int, /) -> _Fp2: ...
def ss512_fp2_square(a: int, b: int, /) -> _Fp2: ...
def ss512_fp2_pow(a: int, b: int, exponent: int, /) -> _Fp2: ...
def bn_jac_double(x: int, y: int, z: int, /) -> _BnJac: ...
def bn2_jac_double(
    x: Sequence[int], y: Sequence[int], z: Sequence[int], /
) -> _Bn2Jac: ...
def bn_jac_add(
    x1: int, y1: int, z1: int, x2: int, y2: int, z2: int, /
) -> _BnJac: ...
def bn2_jac_add(
    x1: Sequence[int],
    y1: Sequence[int],
    z1: Sequence[int],
    x2: Sequence[int],
    y2: Sequence[int],
    z2: Sequence[int],
    /,
) -> _Bn2Jac: ...
def bn_jac_add_affine(
    x1: int, y1: int, z1: int, x2: int, y2: int, /
) -> _BnJac: ...
def bn2_jac_add_affine(
    x1: Sequence[int],
    y1: Sequence[int],
    z1: Sequence[int],
    x2: Sequence[int],
    y2: Sequence[int],
    /,
) -> _Bn2Jac: ...
def bn_scalar_mul(x: int, y: int, scalar: int, /) -> _BnJac: ...
def bn2_scalar_mul(
    x: Sequence[int], y: Sequence[int], scalar: int, /
) -> _Bn2Jac: ...
def impl_info() -> dict[str, str]: ...
def _constants() -> dict[str, int]: ...
