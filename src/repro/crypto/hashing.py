"""Hashing helpers.

The paper uses 160-bit SHA-1 via Crypto++; we use SHA-256 throughout
(truncation would buy nothing in Python) and expose a single
:func:`digest` entry point so every header/Merkle/VO hash goes through
one canonical, length-prefixed concatenation scheme.  Length prefixing
matters: without it ``H(a | b)`` is ambiguous and the "hash chain"
security argument of Section 8 would not survive adversarially chosen
attribute strings.
"""

from __future__ import annotations

import hashlib

#: Byte width of every digest in the system.
DIGEST_NBYTES = 32


def digest(*parts: bytes) -> bytes:
    """SHA-256 over the length-prefixed concatenation of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def digest_to_int(data: bytes, modulus: int) -> int:
    """Map a digest into ``[0, modulus)`` with negligible bias.

    Expands the digest to twice the modulus width before reducing, the
    standard trick to keep the modular bias below ``2^-|modulus|``.
    """
    nbytes = (modulus.bit_length() + 7) // 8 * 2
    stretched = b""
    counter = 0
    while len(stretched) < nbytes:
        stretched += hashlib.sha256(counter.to_bytes(4, "big") + data).digest()
        counter += 1
    return int.from_bytes(stretched[:nbytes], "big") % modulus


def hash_str(value: str) -> bytes:
    """Digest of a unicode string (UTF-8)."""
    return digest(value.encode("utf-8"))
