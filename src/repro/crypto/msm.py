"""Multi-scalar multiplication (MSM) over the pairing curves.

Three algorithms, all running in Jacobian coordinates so no step pays a
modular inversion (only the final normalization back to affine does):

* :func:`pippenger` — the bucket method for one-shot inputs.  Scalars
  are cut into ``w``-bit windows; within a window every base falls into
  the bucket of its digit, and the buckets are collapsed with the
  running-sum trick.  Cost ``~t`` doublings plus ``(t/w)·(n + 2^{w+1})``
  additions for ``n`` points and ``t``-bit scalars, against ``n·1.5t``
  affine operations (each with an inversion) for the naive loop.

* :func:`fixed_base_windows` / :func:`fixed_base_msm` — precomputed
  shifted copies ``2^{wj}·B`` of a base that is reused across many
  MSMs (the accumulator key powers ``g^{s^i}``: every commit in a block
  multi-exponentiates over the same bases).  With tables in hand an MSM
  needs **no doublings at all** — ``n·t/w`` mixed additions plus one
  bucket collapse.

* :func:`jac_scalar_mul` — width-5 wNAF single-scalar multiplication,
  used by ``backend.exp`` and as Pippenger's ``n = 1`` case.

The algorithms are generic over a :class:`CurveOps` adapter so the same
code serves the ss512 curve (coordinates are plain ints, see
:data:`SS512_OPS`) and both BN254 source groups (coordinates are
``FQ``/``FQ2`` field elements, see :data:`BN254_OPS`).  Affine points
are ``(x, y)`` tuples with ``None`` as the point at infinity — exactly
the representation the curve modules use — so results are bit-for-bit
identical to the naive affine implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.crypto import bn254, curve
from repro.crypto.accel import dispatch

JacPoint = Any
AffinePoint = Any


@dataclass(frozen=True)
class CurveOps:
    """Jacobian primitive set for one short-Weierstrass group.

    Instances carry lambdas, so they cannot pickle by value; each named
    adapter registers itself in :data:`OPS_REGISTRY` and pickles as a
    reference resolved back through :func:`ops_by_name` — required for
    spawn-mode :class:`~repro.parallel.CryptoPool` workers, which receive
    the trusted setup (and anything that references an adapter) by
    pickling rather than by fork inheritance.
    """

    infinity: JacPoint
    is_infinity: Callable[[JacPoint], bool]
    to_jac: Callable[[AffinePoint], JacPoint]
    double: Callable[[JacPoint], JacPoint]
    add: Callable[[JacPoint, JacPoint], JacPoint]
    add_affine: Callable[[JacPoint, AffinePoint], JacPoint]
    neg: Callable[[JacPoint], JacPoint]
    to_affine: Callable[[JacPoint], AffinePoint]
    batch_to_affine: Callable[[list[JacPoint]], list[AffinePoint]]
    name: str = ""

    def __reduce__(self):
        if not self.name:
            raise TypeError("anonymous CurveOps instances cannot be pickled")
        return (ops_by_name, (self.name,))


#: named adapters, for pickling CurveOps by reference
OPS_REGISTRY: dict[str, "CurveOps"] = {}


def ops_by_name(name: str) -> "CurveOps":
    """Resolve a pickled :class:`CurveOps` reference."""
    try:
        return OPS_REGISTRY[name]
    except KeyError:
        raise TypeError(f"unknown CurveOps adapter {name!r}") from None


SS512_OPS = CurveOps(
    infinity=curve.JAC_INFINITY,
    is_infinity=lambda point: point[2] == 0,
    to_jac=curve.to_jacobian,
    double=curve.jac_double,
    add=curve.jac_add,
    add_affine=curve.jac_add_affine,
    neg=curve.jac_neg,
    to_affine=curve.from_jacobian,
    batch_to_affine=curve.batch_from_jacobian,
    name="ss512",
)

BN254_OPS = CurveOps(
    infinity=None,
    is_infinity=lambda point: point is None,
    to_jac=bn254.to_jacobian,
    double=bn254.jac_double,
    add=bn254.jac_add,
    add_affine=bn254.jac_add_affine,
    neg=bn254.jac_neg,
    to_affine=bn254.from_jacobian,
    batch_to_affine=bn254.batch_from_jacobian,
    name="bn254",
)

OPS_REGISTRY["ss512"] = SS512_OPS
OPS_REGISTRY["bn254"] = BN254_OPS


# -- accelerated-provider resolution ------------------------------------------
#: effective CurveOps per (provider, curve); transient (never pickled)
_ACCEL_OPS_CACHE: dict[tuple[str, str], CurveOps] = {}


def _active_ops(ops: CurveOps) -> tuple[CurveOps, dispatch.CurveKernels | None]:
    """The ops the active accel provider wants the algorithms to run on.

    The pure provider publishes no kernels, so this returns the original
    adapter untouched — selecting ``pure`` costs nothing per operation.
    An accelerated provider substitutes its kernel set (same call
    signatures, provider-domain points); the composite kernels ride
    along for the loops that can dispatch whole inner passes.
    """
    provider = dispatch.active()
    kernels = provider.kernels.get(ops.name) if ops.name else None
    if kernels is None:
        return ops, None
    key = (provider.name, ops.name)
    effective = _ACCEL_OPS_CACHE.get(key)
    if effective is None:
        effective = CurveOps(
            infinity=ops.infinity,
            is_infinity=ops.is_infinity,
            to_jac=kernels.to_jac,
            double=kernels.double,
            add=kernels.add,
            add_affine=kernels.add_affine,
            neg=kernels.neg,
            to_affine=kernels.to_affine,
            batch_to_affine=kernels.batch_to_affine,
        )
        _ACCEL_OPS_CACHE[key] = effective
    return effective, kernels


def jac_to_affine(ops: CurveOps, point: JacPoint) -> AffinePoint:
    """Normalize through the active provider, which also demotes any
    provider-domain coordinates back to the canonical Python types."""
    run_ops, _ = _active_ops(ops)
    return run_ops.to_affine(point)


# -- single-scalar multiplication (wNAF) --------------------------------------
def _wnaf_digits(scalar: int, width: int) -> list[int]:
    """Little-endian width-``w`` NAF: digits odd in ``(-2^{w-1}, 2^{w-1})``."""
    digits: list[int] = []
    window = 1 << width
    half = window >> 1
    while scalar:
        if scalar & 1:
            digit = scalar & (window - 1)
            if digit >= half:
                digit -= window
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def jac_scalar_mul(
    ops: CurveOps, point: AffinePoint, scalar: int, width: int = 5
) -> JacPoint:
    """``scalar · point`` in Jacobian coordinates (``scalar > 0``)."""
    if point is None or scalar == 0:
        return ops.infinity
    run_ops, kernels = _active_ops(ops)
    if (
        kernels is not None
        and kernels.scalar_mul is not None
        and width == 5
        and 0 < scalar
        and scalar.bit_length() <= dispatch.MAX_SCALAR_BITS
    ):
        return kernels.scalar_mul(point, scalar)
    base = run_ops.to_jac(point)
    if scalar == 1:
        return base
    twice = run_ops.double(base)
    odd = [base]  # odd[k] = (2k+1)·P
    for _ in range((1 << (width - 1)) // 2 - 1):
        odd.append(run_ops.add(odd[-1], twice))
    acc = run_ops.infinity
    for digit in reversed(_wnaf_digits(scalar, width)):
        acc = run_ops.double(acc)
        if digit > 0:
            acc = run_ops.add(acc, odd[(digit - 1) // 2])
        elif digit < 0:
            acc = run_ops.add(acc, run_ops.neg(odd[(-digit - 1) // 2]))
    return acc


# -- one-shot Pippenger --------------------------------------------------------
def _pick_window(n_points: int, max_bits: int) -> int:
    """Bucket width minimising ``(t/w)·(n + 2^{w+1})`` — roughly ``ln n``."""
    best_w, best_cost = 1, None
    for w in range(1, 17):
        n_windows = (max_bits + w - 1) // w
        cost = n_windows * (n_points + (2 << w))
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w


def _collapse_buckets(ops: CurveOps, buckets: list[JacPoint | None]) -> JacPoint:
    """``Σ d·bucket[d]`` via the descending running-sum trick."""
    running = ops.infinity
    total = ops.infinity
    for bucket in reversed(buckets[1:]):
        if bucket is not None:
            running = ops.add(running, bucket)
        if not ops.is_infinity(running):
            total = ops.add(total, running)
    return total


def pippenger(
    ops: CurveOps, bases: Sequence[AffinePoint], scalars: Sequence[int]
) -> JacPoint:
    """``Σ scalars[i] · bases[i]`` (scalars non-negative) in Jacobian form."""
    pairs = [
        (base, scalar)
        for base, scalar in zip(bases, scalars)
        if base is not None and scalar != 0
    ]
    if not pairs:
        return ops.infinity
    if len(pairs) == 1:
        return jac_scalar_mul(ops, pairs[0][0], pairs[0][1])
    max_bits = max(scalar.bit_length() for _, scalar in pairs)
    width = _pick_window(len(pairs), max_bits)
    run_ops, kernels = _active_ops(ops)
    if (
        kernels is not None
        and kernels.pippenger is not None
        and max_bits <= dispatch.MAX_SCALAR_BITS
        and all(scalar > 0 for _, scalar in pairs)
    ):
        return kernels.pippenger(pairs, width, max_bits)
    mask = (1 << width) - 1
    acc = run_ops.infinity
    for win in range(((max_bits + width - 1) // width) - 1, -1, -1):
        if not run_ops.is_infinity(acc):
            for _ in range(width):
                acc = run_ops.double(acc)
        shift = win * width
        buckets: list[JacPoint | None] = [None] * (mask + 1)
        for base, scalar in pairs:
            digit = (scalar >> shift) & mask
            if digit:
                slot = buckets[digit]
                buckets[digit] = (
                    run_ops.to_jac(base)
                    if slot is None
                    else run_ops.add_affine(slot, base)
                )
        acc = run_ops.add(acc, _collapse_buckets(run_ops, buckets))
    return acc


def msm(
    ops: CurveOps, bases: Sequence[AffinePoint], scalars: Sequence[int]
) -> AffinePoint:
    """Affine Pippenger MSM."""
    return jac_to_affine(ops, pippenger(ops, bases, scalars))


# -- fixed-base MSM with precomputed window tables ----------------------------
#: Window width for fixed-base tables.  Precompute cost is amortised over
#: every commit that reuses the base, so a wide window pays off quickly.
FIXED_BASE_WINDOW = 8


def fixed_base_windows(
    ops: CurveOps,
    base: AffinePoint,
    num_bits: int,
    width: int = FIXED_BASE_WINDOW,
) -> list[AffinePoint] | None:
    """Shifted copies ``[B, 2^w·B, 2^{2w}·B, ...]`` covering ``num_bits``."""
    if base is None:
        return None
    run_ops, _ = _active_ops(ops)
    n_windows = (num_bits + width - 1) // width
    jac = run_ops.to_jac(base)
    copies = [jac]
    for _ in range(n_windows - 1):
        for _ in range(width):
            jac = run_ops.double(jac)
        copies.append(jac)
    return run_ops.batch_to_affine(copies)


def fixed_base_msm(
    ops: CurveOps,
    tables: Sequence[list[AffinePoint] | None],
    scalars: Sequence[int],
    width: int = FIXED_BASE_WINDOW,
) -> AffinePoint:
    """``Σ scalars[i] · B_i`` from each base's precomputed window table.

    Every window of every scalar lands in one shared bucket pass, so the
    whole MSM is mixed additions only — no doublings.
    """
    if len(tables) != len(scalars):
        raise ValueError("tables and scalars must have equal length")
    run_ops, kernels = _active_ops(ops)
    if (
        kernels is not None
        and kernels.fixed_base_msm is not None
        and all(
            0 <= scalar and scalar.bit_length() <= dispatch.MAX_SCALAR_BITS
            for scalar in scalars
        )
    ):
        return run_ops.to_affine(kernels.fixed_base_msm(tables, scalars, width))
    mask = (1 << width) - 1
    buckets: list[JacPoint | None] = [None] * (mask + 1)
    for table, scalar in zip(tables, scalars, strict=True):
        if table is None or scalar == 0:
            continue
        window = 0
        while scalar:
            digit = scalar & mask
            if digit:
                shifted = table[window]
                if shifted is not None:
                    slot = buckets[digit]
                    buckets[digit] = (
                        run_ops.to_jac(shifted)
                        if slot is None
                        else run_ops.add_affine(slot, shifted)
                    )
            scalar >>= width
            window += 1
    return run_ops.to_affine(_collapse_buckets(run_ops, buckets))
