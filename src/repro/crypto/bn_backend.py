"""Symmetric backend on top of the asymmetric BN254 pairing.

The accumulators are written against a symmetric pairing
``e: G × G → GT`` (the paper's formulation).  BN curves give an
*asymmetric* ``e: G1 × G2 → GT``; the standard bridge is to carry each
"G" element as a **diagonal pair** ``(g1^k, g2^k)`` — the group
operation acts component-wise and ``pair(a, b) := e(a.g1, b.g2)``,
which is bilinear and, on diagonal elements, symmetric.  Every element
this library ever builds is diagonal (all come from key powers and
group operations on them), so the accumulator algebra carries over
verbatim, at 2× the element size — which is also why the paper's MCL
deployment reports per-element sizes different from our ss512 backend.
"""

from __future__ import annotations

from repro.crypto import bn254 as bn
from repro.crypto import msm
from repro.crypto.backend import PairingBackend
from repro.crypto.field import PrimeField
from repro.errors import CryptoError

#: G1 point (65 bytes w/ tag at 32-byte coords) + G2 point (129 bytes).
_G_NBYTES = 194
#: FQ12 element: 12 × 32-byte coefficients.
_GT_NBYTES = 384

BNElement = tuple  # (g1_point, g2_point)

#: G2 points whose r-order subgroup membership has already been proven;
#: VO decoding repeats elements constantly, and the order-multiply that
#: proves membership dwarfs every other decode cost.
_G2_SUBGROUP_CACHE: set[tuple] = set()
_G2_SUBGROUP_CACHE_MAX = 8192


class BN254Backend(PairingBackend):
    """Diagonal-pair symmetric view of the BN254 ate pairing."""

    name = "bn254"

    def __init__(self) -> None:
        self.order = bn.CURVE_ORDER
        self.scalar_field = PrimeField(bn.CURVE_ORDER)

    # -- G (diagonal pairs) ------------------------------------------------
    def generator(self) -> BNElement:
        return (bn.G1, bn.G2)

    def identity(self) -> BNElement:
        return (None, None)

    def op(self, a: BNElement, b: BNElement) -> BNElement:
        return (bn.add(a[0], b[0]), bn.add(a[1], b[1]))

    def exp(self, base: BNElement, scalar: int) -> BNElement:
        scalar %= self.order
        return (bn.multiply(base[0], scalar), bn.multiply(base[1], scalar))

    def inv(self, a: BNElement) -> BNElement:
        return (bn.neg(a[0]), bn.neg(a[1]))

    def multi_exp(self, bases: list[BNElement], scalars: list[int]) -> BNElement:
        if len(bases) != len(scalars):
            raise ValueError("multi_exp: bases and scalars differ in length")
        reduced = [s % self.order for s in scalars]
        return (
            msm.msm(msm.BN254_OPS, [base[0] for base in bases], reduced),
            msm.msm(msm.BN254_OPS, [base[1] for base in bases], reduced),
        )

    def fixed_base_table(self, base: BNElement) -> tuple:
        bits = self.order.bit_length()
        return (
            msm.fixed_base_windows(msm.BN254_OPS, base[0], bits),
            msm.fixed_base_windows(msm.BN254_OPS, base[1], bits),
        )

    def multi_exp_tables(self, tables: list[tuple], scalars: list[int]) -> BNElement:
        if len(tables) != len(scalars):
            raise ValueError("multi_exp_tables: tables and scalars differ in length")
        reduced = [s % self.order for s in scalars]
        return (
            msm.fixed_base_msm(msm.BN254_OPS, [t[0] for t in tables], reduced),
            msm.fixed_base_msm(msm.BN254_OPS, [t[1] for t in tables], reduced),
        )

    def eq(self, a: BNElement, b: BNElement) -> bool:
        return a == b

    def encode(self, a: BNElement) -> bytes:
        g1, g2 = a
        if g1 is None:
            part1 = b"\x00" * 65
        else:
            part1 = b"\x04" + g1[0].n.to_bytes(32, "big") + g1[1].n.to_bytes(32, "big")
        if g2 is None:
            part2 = b"\x00" * 129
        else:
            coeffs = g2[0].coeffs + g2[1].coeffs
            part2 = b"\x04" + b"".join(c.to_bytes(32, "big") for c in coeffs)
        return part1 + part2

    def decode(self, data: bytes) -> BNElement:
        if len(data) != _G_NBYTES:
            raise CryptoError("BN254 element encoding has wrong length")
        part1, part2 = data[:65], data[65:]
        if part1[0] == 0:
            g1 = None
        elif part1[0] == 4:
            g1 = (
                bn.FQ(int.from_bytes(part1[1:33], "big")),
                bn.FQ(int.from_bytes(part1[33:65], "big")),
            )
            if not bn.is_on_curve(g1, bn.B1):
                raise CryptoError("decoded G1 point not on curve")
        else:
            raise CryptoError("unknown G1 encoding tag")
        if part2[0] == 0:
            g2 = None
        elif part2[0] == 4:
            coeffs = [
                int.from_bytes(part2[1 + 32 * i : 33 + 32 * i], "big") for i in range(4)
            ]
            g2 = (bn.FQ2(coeffs[:2]), bn.FQ2(coeffs[2:]))
            if not bn.is_on_curve(g2, bn.B2):
                raise CryptoError("decoded G2 point not on twisted curve")
            key = tuple(coeffs)
            if key not in _G2_SUBGROUP_CACHE:
                if bn.multiply(g2, self.order) is not None:
                    raise CryptoError("decoded G2 point not in the r-order subgroup")
                if len(_G2_SUBGROUP_CACHE) >= _G2_SUBGROUP_CACHE_MAX:
                    _G2_SUBGROUP_CACHE.pop()
                _G2_SUBGROUP_CACHE.add(key)
        else:
            raise CryptoError("unknown G2 encoding tag")
        return (g1, g2)

    # -- GT -------------------------------------------------------------------
    def pair(self, a: BNElement, b: BNElement):
        return bn.pairing(b[1], a[0])

    def multi_pairing(self, pairs: list[tuple[BNElement, BNElement]]):
        """Pairing product with one shared final exponentiation.

        On BN254 the final exponentiation (a ~2800-bit FQ12 power) costs
        as much as the Miller loop itself, so folding a verification
        equation's ``k`` pairings into one product nearly halves it.
        """
        f = bn.FQ12.one()
        for a, b in pairs:
            q, p = b[1], a[0]
            # validate like pair() does — even when the partner element is
            # the identity, a malformed point must raise, not be skipped
            if q is not None and not bn.is_on_curve(q, bn.B2):
                raise CryptoError("G2 point not on the twisted curve")
            if p is not None and not bn.is_on_curve(p, bn.B1):
                raise CryptoError("G1 point not on the curve")
            if q is None or p is None:
                continue
            f = f * bn.miller_loop_raw(bn.twist(q), bn.cast_to_fq12(p))
        return bn.final_exponentiate(f)

    def gt_identity(self):
        return bn.FQ12.one()

    def gt_op(self, a, b):
        return a * b

    def gt_exp(self, base, scalar: int):
        return base ** (scalar % self.order)

    def gt_inv(self, a):
        return a.inv()

    def gt_eq(self, a, b) -> bool:
        return a == b

    def gt_encode(self, a) -> bytes:
        return b"".join(c.to_bytes(32, "big") for c in a.coeffs)

    # -- sizes (BN-specific widths) -----------------------------------------
    @property
    def element_nbytes(self) -> int:
        return _G_NBYTES

    @property
    def gt_nbytes(self) -> int:
        return _GT_NBYTES
