"""The BN254 (alt_bn128) pairing curve.

The paper's implementation uses the MCL library over Barreto–Naehrig
curves; this module provides the same curve family from scratch: the
base field F_p, quadratic and twelfth-degree extension towers, both
source groups (G1 over F_p, G2 over the sextic twist over F_p²), and
the ate pairing via a Miller loop with the Frobenius end-corrections.

Parameters are the public EIP-196/197 constants.  The pairing is
*asymmetric* (``e: G1 × G2 → GT``); :class:`repro.crypto.bn_backend`
wraps it into the symmetric interface the accumulators use.  Pure
Python, so a pairing costs on the order of a second — fine for the
``slow``-marked correctness tests, not for benchmark sweeps.
"""

from __future__ import annotations

from repro.crypto.accel import dispatch
from repro.errors import CryptoError

#: Base field prime.
FIELD_MODULUS = 21888242871839275222246405745257275088696311157297823662689037894645226208583  # noqa: E501
#: Order of G1/G2 (a prime; also the GT exponent group order).
CURVE_ORDER = 21888242871839275222246405745257275088548364400416034343698204186575808495617  # noqa: E501

ATE_LOOP_COUNT = 29793968203157093288
LOG_ATE_LOOP_COUNT = 63

_P = FIELD_MODULUS


class FQ:
    """Element of the base field F_p."""

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n % _P

    def __add__(self, other):
        return FQ(self.n + _coerce(other))

    __radd__ = __add__

    def __sub__(self, other):
        return FQ(self.n - _coerce(other))

    def __rsub__(self, other):
        return FQ(_coerce(other) - self.n)

    def __mul__(self, other):
        return FQ(self.n * _coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return FQ(self.n * dispatch.modinv(_coerce(other), _P))

    def __pow__(self, exponent: int):
        return FQ(dispatch.modexp(self.n, exponent, _P))

    def __neg__(self):
        return FQ(-self.n)

    def __eq__(self, other):
        if isinstance(other, FQ):
            return self.n == other.n
        if isinstance(other, int):
            return self.n == other % _P
        return NotImplemented

    def __hash__(self):
        return hash(("FQ", self.n))

    def __repr__(self):
        return f"FQ({self.n})"

    @classmethod
    def one(cls):
        return cls(1)

    @classmethod
    def zero(cls):
        return cls(0)


def _coerce(value) -> int:
    if isinstance(value, FQ):
        return value.n
    if isinstance(value, int):
        return value
    raise TypeError(f"cannot coerce {type(value).__name__} into FQ")


class FQP:
    """Element of F_p[X] / modulus — the extension-tower workhorse."""

    degree = 0
    modulus_coeffs: tuple[int, ...] = ()

    def __init__(self, coeffs) -> None:
        if len(coeffs) != self.degree:
            raise CryptoError(f"{type(self).__name__} needs {self.degree} coefficients")
        self.coeffs = tuple(c % _P for c in coeffs)

    # -- ring ops -------------------------------------------------------
    def __add__(self, other):
        self._same(other)
        return type(self)([a + b for a, b in zip(self.coeffs, other.coeffs)])

    def __sub__(self, other):
        self._same(other)
        return type(self)([a - b for a, b in zip(self.coeffs, other.coeffs)])

    def __mul__(self, other):
        if isinstance(other, (int, FQ)):
            k = _coerce(other)
            return type(self)([c * k for c in self.coeffs])
        self._same(other)
        deg = self.degree
        buf = [0] * (deg * 2 - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                buf[i + j] += a * b
        for exp in range(deg * 2 - 2, deg - 1, -1):
            top = buf[exp]
            if top == 0:
                continue
            buf[exp] = 0
            for i, mc in enumerate(self.modulus_coeffs):
                buf[exp - deg + i] -= top * mc
        return type(self)(buf[:deg])

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, (int, FQ)):
            inv = dispatch.modinv(_coerce(other), _P)
            return type(self)([c * inv for c in self.coeffs])
        self._same(other)
        return self * other.inv()

    def __pow__(self, exponent: int):
        if exponent < 0:
            return self.inv() ** (-exponent)
        result = type(self).one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def __neg__(self):
        return type(self)([-c for c in self.coeffs])

    def __eq__(self, other):
        return type(self) is type(other) and self.coeffs == other.coeffs

    def __hash__(self):
        return hash((type(self).__name__, self.coeffs))

    def __repr__(self):
        return f"{type(self).__name__}({list(self.coeffs)})"

    def inv(self):
        """Inverse via extended Euclid over F_p[X]."""
        lm, hm = [1] + [0] * self.degree, [0] * (self.degree + 1)
        low = list(self.coeffs) + [0]
        high = list(self.modulus_coeffs) + [1]
        while _deg(low):
            r = _poly_div(high, low)
            r += [0] * (self.degree + 1 - len(r))
            nm = list(hm)
            new = list(high)
            for i in range(self.degree + 1):
                for j in range(self.degree + 1 - i):
                    nm[i + j] -= lm[i] * r[j]
                    new[i + j] -= low[i] * r[j]
            nm = [c % _P for c in nm]
            new = [c % _P for c in new]
            lm, low, hm, high = nm, new, lm, low
        if low[0] == 0:
            raise CryptoError("zero has no inverse in the extension field")
        inv0 = dispatch.modinv(low[0], _P)
        return type(self)([c * inv0 % _P for c in lm[: self.degree]])

    def _same(self, other) -> None:
        if type(self) is not type(other):
            raise CryptoError("mixed extension-field arithmetic")

    @classmethod
    def one(cls):
        return cls([1] + [0] * (cls.degree - 1))

    @classmethod
    def zero(cls):
        return cls([0] * cls.degree)


def _deg(poly) -> int:
    d = len(poly) - 1
    while d and poly[d] == 0:
        d -= 1
    return d


def _poly_div(a, b):
    """Quotient of dense polynomials over F_p (py_ecc-style helper)."""
    dega, degb = _deg(a), _deg(b)
    temp = list(a)
    quotient = [0] * len(a)
    inv_lead = dispatch.modinv(b[degb], _P)
    for i in range(dega - degb, -1, -1):
        factor = temp[degb + i] * inv_lead % _P
        quotient[i] = (quotient[i] + factor) % _P
        for c in range(degb + 1):
            temp[c + i] -= b[c] * factor
        temp = [t % _P for t in temp]
    return quotient[: _deg(quotient) + 1] or [0]


class FQ2(FQP):
    degree = 2
    modulus_coeffs = (1, 0)  # w² = -1


class FQ12(FQP):
    degree = 12
    modulus_coeffs = (82, 0, 0, 0, 0, 0, -18, 0, 0, 0, 0, 0)  # w¹² = 18w⁶ − 82


# -- curve arithmetic (generic over the coefficient field) -------------------
B1 = FQ(3)
B2 = FQ2([3, 0]) / FQ2([9, 1])

G1 = (FQ(1), FQ(2))
G2 = (
    FQ2([
        10857046999023057135944570762232829481370756359578518086990519993285655852781,
        11559732032986387107991004021392285783925812861821192530917403151452391805634,
    ]),
    FQ2([
        8495653923123431417604973247489272438418190587263600148770280649306958101930,
        4082367875863433681332203403145435568316851327593401208105741076214120093531,
    ]),
)

Point = tuple | None


def is_on_curve(point: Point, b) -> bool:
    if point is None:
        return True
    x, y = point
    return y * y - x * x * x == b


def double(point: Point) -> Point:
    if point is None:
        return None
    x, y = point
    m = (x * x * 3) / (y * 2)
    new_x = m * m - x * 2
    new_y = -m * new_x + m * x - y
    return (new_x, new_y)


def add(p1: Point, p2: Point) -> Point:
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2 and y1 == y2:
        return double(p1)
    if x1 == x2:
        return None
    m = (y2 - y1) / (x2 - x1)
    new_x = m * m - x1 - x2
    new_y = -m * new_x + m * x1 - y1
    return (new_x, new_y)


def multiply(point: Point, scalar: int) -> Point:
    """Scalar multiplication (wNAF over Jacobian coordinates).

    One field inversion total instead of one per double-and-add step;
    identical affine results.  Generic over the coordinate field, so it
    serves G1 (FQ) and G2 (FQ2) alike.
    """
    if point is None or scalar == 0:
        return None
    if scalar < 0:
        return multiply(neg(point), -scalar)
    from repro.crypto import msm  # local import: msm imports this module

    return msm.jac_to_affine(
        msm.BN254_OPS, msm.jac_scalar_mul(msm.BN254_OPS, point, scalar)
    )


def neg(point: Point) -> Point:
    if point is None:
        return None
    x, y = point
    return (x, -y)


# -- Jacobian coordinates (generic over FQ / FQ2) ------------------------------
# (X, Y, Z) with x = X/Z², y = Y/Z³; the point at infinity is None.  Both
# source groups live on a = 0 curves (y² = x³ + b), so doubling needs no
# Z⁴ term.
JacPoint = tuple | None


def _field_is_zero(element) -> bool:
    if isinstance(element, FQ):
        return element.n == 0
    return all(c == 0 for c in element.coeffs)


def _field_one_like(element):
    return type(element).one()


def _field_inv(element):
    if isinstance(element, FQ):
        return FQ(dispatch.modinv(element.n, _P))
    return element.inv()


def to_jacobian(point: Point) -> JacPoint:
    if point is None:
        return None
    x, y = point
    return (x, y, _field_one_like(x))


def from_jacobian(point: JacPoint) -> Point:
    if point is None:
        return None
    x, y, z = point
    if _field_is_zero(z):
        return None
    z_inv = _field_inv(z)
    z_inv2 = z_inv * z_inv
    return (x * z_inv2, y * z_inv2 * z_inv)


def batch_from_jacobian(points: list[JacPoint]) -> list[Point]:
    """Normalize many Jacobian points with one field inversion."""
    acc = None
    prefix: list = []
    for point in points:
        if point is not None and not _field_is_zero(point[2]):
            acc = point[2] if acc is None else acc * point[2]
        prefix.append(acc)
    out: list[Point] = [None] * len(points)
    if acc is None:
        return out
    inv = _field_inv(acc)
    for i in range(len(points) - 1, -1, -1):
        point = points[i]
        if point is None or _field_is_zero(point[2]):
            continue
        x, y, z = point
        before = prefix[i - 1] if i > 0 else None
        z_inv = inv if before is None else inv * before
        inv = inv * z
        z_inv2 = z_inv * z_inv
        out[i] = (x * z_inv2, y * z_inv2 * z_inv)
    return out


def jac_neg(point: JacPoint) -> JacPoint:
    if point is None:
        return None
    x, y, z = point
    return (x, -y, z)


def jac_double(point: JacPoint) -> JacPoint:
    if point is None:
        return None
    x1, y1, z1 = point
    if _field_is_zero(y1):
        return None
    yy = y1 * y1
    s = x1 * yy * 4
    m = x1 * x1 * 3  # a = 0 for both BN254 source groups
    x3 = m * m - s - s
    y3 = m * (s - x3) - yy * yy * 8
    z3 = y1 * z1 * 2
    return (x3, y3, z3)


def jac_add(p1: JacPoint, p2: JacPoint) -> JacPoint:
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1z1 = z1 * z1
    z2z2 = z2 * z2
    u1 = x1 * z2z2
    u2 = x2 * z1z1
    s1 = y1 * z2z2 * z2
    s2 = y2 * z1z1 * z1
    if u1 == u2:
        if s1 != s2:
            return None
        return jac_double(p1)
    h = u2 - u1
    r = s2 - s1
    hh = h * h
    hhh = h * hh
    v = u1 * hh
    x3 = r * r - hhh - v - v
    y3 = r * (v - x3) - s1 * hhh
    z3 = z1 * z2 * h
    return (x3, y3, z3)


def jac_add_affine(p1: JacPoint, affine: Point) -> JacPoint:
    """Mixed addition: Jacobian plus affine (Z₂ = 1)."""
    if affine is None:
        return p1
    if p1 is None:
        return to_jacobian(affine)
    x1, y1, z1 = p1
    x2, y2 = affine
    z1z1 = z1 * z1
    u2 = x2 * z1z1
    s2 = y2 * z1z1 * z1
    if u2 == x1:
        if s2 != y1:
            return None
        return jac_double(p1)
    h = u2 - x1
    r = s2 - y1
    hh = h * h
    hhh = h * hh
    v = x1 * hh
    x3 = r * r - hhh - v - v
    y3 = r * (v - x3) - y1 * hhh
    z3 = z1 * h
    return (x3, y3, z3)


# -- twist and pairing -----------------------------------------------------------
_W = FQ12([0, 1] + [0] * 10)


def twist(point) -> Point:
    """Map a G2 point (over FQ2) onto the curve over FQ12."""
    if point is None:
        return None
    x, y = point
    xc = [x.coeffs[0] - x.coeffs[1] * 9, x.coeffs[1]]
    yc = [y.coeffs[0] - y.coeffs[1] * 9, y.coeffs[1]]
    nx = FQ12([xc[0]] + [0] * 5 + [xc[1]] + [0] * 5)
    ny = FQ12([yc[0]] + [0] * 5 + [yc[1]] + [0] * 5)
    return (nx * (_W ** 2), ny * (_W ** 3))


def cast_to_fq12(point) -> Point:
    if point is None:
        return None
    x, y = point
    return (
        FQ12([x.n] + [0] * 11),
        FQ12([y.n] + [0] * 11),
    )


def _linefunc(p1, p2, t):
    """Line through p1, p2 evaluated at t (affine; py_ecc formulation)."""
    x1, y1 = p1
    x2, y2 = p2
    xt, yt = t
    if x1 != x2:
        m = (y2 - y1) / (x2 - x1)
        return m * (xt - x1) - (yt - y1)
    if y1 == y2:
        m = (x1 * x1 * 3) / (y1 * 2)
        return m * (xt - x1) - (yt - y1)
    return xt - x1


def _step(p1, p2, t):
    """``(line through p1, p2 evaluated at t, p1 + p2)`` with one slope.

    The naive loop computed the slope twice per Miller step — once in
    :func:`_linefunc` and again in :func:`double`/:func:`add` — and each
    slope costs a full FQ12 inversion.  Sharing it halves the dominant
    cost of the loop while producing exactly the same values.
    """
    x1, y1 = p1
    x2, y2 = p2
    xt, yt = t
    if x1 != x2:
        m = (y2 - y1) / (x2 - x1)
    elif y1 == y2:
        m = (x1 * x1 * 3) / (y1 * 2)
    else:
        return xt - x1, None  # vertical line; p1 + p2 = infinity
    line = m * (xt - x1) - (yt - y1)
    new_x = m * m - x1 - x2
    new_y = -m * new_x + m * x1 - y1
    return line, (new_x, new_y)


#: (p¹² − 1) / r — the exponent of the GT final exponentiation.
FINAL_EXP_POWER = (_P**12 - 1) // CURVE_ORDER


def final_exponentiate(f: FQ12) -> FQ12:
    """Map a raw Miller value into the order-r subgroup of FQ12*."""
    return f**FINAL_EXP_POWER


def miller_loop_raw(q: Point, p: Point) -> FQ12:
    """Ate Miller loop with Frobenius end-correction, **no** final exp.

    Pairing products (:func:`multi_pairing` in the backend) multiply the
    raw values of each pair and share one final exponentiation — valid
    because ``x ↦ x^((p¹²-1)/r)`` is a homomorphism.
    """
    if q is None or p is None:
        return FQ12.one()
    r = q
    f = FQ12.one()
    for i in range(LOG_ATE_LOOP_COUNT, -1, -1):
        line, r = _step(r, r, p)
        f = f * f * line
        if ATE_LOOP_COUNT & (2**i):
            line, r = _step(r, q, p)
            f = f * line
    q1 = (q[0] ** _P, q[1] ** _P)
    nq2 = (q1[0] ** _P, -(q1[1] ** _P))
    line, r = _step(r, q1, p)
    f = f * line
    f = f * _linefunc(r, nq2, p)
    return f


def miller_loop(q: Point, p: Point) -> FQ12:
    """Ate pairing Miller loop with Frobenius end-correction."""
    return final_exponentiate(miller_loop_raw(q, p))


def pairing(q, p) -> FQ12:
    """``e(P, Q)`` with P ∈ G1 (over FQ), Q ∈ G2 (over FQ2)."""
    if q is not None and not is_on_curve(q, B2):
        raise CryptoError("G2 point not on the twisted curve")
    if p is not None and not is_on_curve(p, B1):
        raise CryptoError("G1 point not on the curve")
    return miller_loop(twist(q), cast_to_fq12(p))
