"""Cryptographic substrate: fields, polynomials, pairing, backends."""

from repro.crypto.backend import PairingBackend, SupersingularBackend, get_backend
from repro.crypto.field import PrimeField
from repro.crypto.hashing import DIGEST_NBYTES, digest, digest_to_int, hash_str
from repro.crypto.polynomial import PolynomialRing
from repro.crypto.simulated import SimulatedBackend

__all__ = [
    "DIGEST_NBYTES",
    "PairingBackend",
    "PolynomialRing",
    "PrimeField",
    "SimulatedBackend",
    "SupersingularBackend",
    "digest",
    "digest_to_int",
    "get_backend",
    "hash_str",
]
