"""Symmetric Tate pairing on the supersingular curve of :mod:`curve`.

``e(P, Q) = f_{r,P}(φ(Q))^{(p²-1)/r}`` where ``φ(x, y) = (-x, i·y)`` is
the distortion map.  Because the embedding degree is 2 and ``φ(Q)`` has
its x-coordinate in the base field F_p, *denominator elimination*
applies: vertical-line factors land in F_p and are annihilated by the
final exponentiation ``(p²-1)/r = (p-1)·cofactor``, so the Miller loop
only accumulates line numerators.  The final exponentiation uses the
Frobenius shortcut ``f^(p-1) = conj(f)/f``.

The pairing is bilinear, non-degenerate (``e(G, G) ≠ 1``) and symmetric —
exactly the ``e: G × G → H`` primitive the vChain paper builds on.
"""

from __future__ import annotations

from repro.crypto.accel import dispatch
from repro.crypto.curve import (
    FIELD_PRIME,
    SUBGROUP_ORDER,
    COFACTOR,
    FP2_ONE,
    Fp2Element,
    Point,
    fp2_conjugate,
    fp2_inv,
    fp2_mul,
    fp2_pow,
    fp2_square,
)
from repro.errors import CryptoError

_P = FIELD_PRIME
_R_BITS = bin(SUBGROUP_ORDER)[2:]


def _step(a: Point, b: Point, sx: int, sy_imag: int) -> tuple[Fp2Element, Point]:
    """``(line through a,b evaluated at S, a + b)`` sharing one slope.

    ``a`` and ``b`` are affine points over F_p (never infinity here);
    ``S = (sx, i·sy_imag)`` is the distorted point whose x-coordinate
    lies in F_p and whose y-coordinate is purely imaginary.  Computing
    the chord/tangent slope once for both the line value and the point
    update halves the modular inversions of the Miller loop — the
    dominant cost — while producing exactly the same values.
    """
    xa, ya = a
    xb, yb = b
    if xa == xb and (ya + yb) % _P == 0:
        # vertical line: value sx - xa ∈ F_p; killed by final exponentiation,
        # but returning it keeps the function total for the addition step.
        return ((sx - xa) % _P, 0), None
    if a == b:
        lam = (3 * xa * xa + 1) * dispatch.modinv(2 * ya, _P) % _P
    else:
        lam = (yb - ya) * dispatch.modinv(xb - xa, _P) % _P
    # l(S) = yS - ya - λ(xS - xa);  yS = i·sy_imag so the real part is
    # -(ya + λ(sx - xa)) and the imaginary part is sy_imag.
    real = (-(ya + lam * (sx - xa))) % _P
    x3 = (lam * lam - xa - xb) % _P
    y3 = (lam * (xa - x3) - ya) % _P
    return (real, sy_imag % _P), (x3, y3)


def miller_loop_raw(p_point: Point, q_point: Point) -> Fp2Element:
    """``f_{r,P}(φ(Q))`` — the raw Miller value, before final exponentiation.

    Pairing products (:func:`multi_pairing`) multiply raw Miller values
    and share one final exponentiation, which is valid because
    ``x ↦ x^((p²-1)/r)`` is a homomorphism.
    """
    if p_point is None or q_point is None:
        return FP2_ONE
    xq, yq = q_point
    # φ(Q) = (-xq, i·yq)
    sx, sy_imag = (-xq) % _P, yq
    f = FP2_ONE
    t = p_point
    for bit in _R_BITS[1:]:
        line, t = _step(t, t, sx, sy_imag)
        f = fp2_mul(fp2_square(f), line)
        if bit == "1":
            line, t = _step(t, p_point, sx, sy_imag)
            f = fp2_mul(f, line)
    if t is not None:
        raise CryptoError("Miller loop did not close: point not of order r")
    return f


def _miller(p_point: Point, q_point: Point) -> Fp2Element:
    """Raw Miller value via the active provider, for internal consumers.

    A provider's hook may return the value scaled by an F_p factor (the
    native inversion-free loop does), which the final exponentiation
    annihilates — so this helper is only valid on paths that feed the
    result through :func:`final_exponentiation`.  Callers who need the
    exact raw value use :func:`miller_loop_raw` directly.
    """
    hook = dispatch.active().ss512_miller_raw
    if hook is not None:
        return hook(p_point, q_point)
    return miller_loop_raw(p_point, q_point)


def final_exponentiation(f: Fp2Element) -> Fp2Element:
    """Raise to ``(p²-1)/r``; uses ``f^(p-1) = conj(f) · f^{-1}``."""
    eased = fp2_mul(fp2_conjugate(f), fp2_inv(f))
    return fp2_pow(eased, COFACTOR)


def tate_pairing(p_point: Point, q_point: Point) -> Fp2Element:
    """The symmetric pairing ``e(P, Q)`` for subgroup points P, Q.

    Either argument being infinity yields the identity of the target
    group.  The distortion map is applied to ``Q`` internally.
    """
    if p_point is None or q_point is None:
        return FP2_ONE
    return final_exponentiation(_miller(p_point, q_point))


def multi_pairing(pairs: list[tuple[Point, Point]]) -> Fp2Element:
    """``Π e(P_i, Q_i)`` with one shared final exponentiation.

    The pairing-product form of every accumulator verification equation:
    ``k`` pairings cost ``k`` Miller loops but only **one** final
    exponentiation, instead of one each.
    """
    f = FP2_ONE
    for p_point, q_point in pairs:
        if p_point is None or q_point is None:
            continue
        f = fp2_mul(f, _miller(p_point, q_point))
    return final_exponentiation(f)
