"""Prime-field arithmetic.

The pairing curve lives over a 511-bit prime field F_p and the accumulator
exponents live in the scalar field Z_r, where ``r`` is the order of the
pairing-friendly subgroup.  Both are instances of :class:`PrimeField`.

Elements are plain integers in ``[0, modulus)``; the field object carries
the modulus and provides the operations.  This representation keeps hot
loops (the Miller loop, polynomial expansion) free of per-element object
allocation, which matters a great deal in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.accel import dispatch
from repro.errors import CryptoError


@dataclass(frozen=True)
class PrimeField:
    """Arithmetic in Z_p for a fixed prime ``p``."""

    modulus: int

    def __post_init__(self) -> None:
        if self.modulus < 2:
            raise CryptoError("field modulus must be >= 2")

    # -- element construction -------------------------------------------
    def element(self, value: int) -> int:
        """Reduce ``value`` into the canonical range ``[0, p)``."""
        return value % self.modulus

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    # -- ring operations --------------------------------------------------
    def add(self, a: int, b: int) -> int:
        return (a + b) % self.modulus

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.modulus

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.modulus

    def neg(self, a: int) -> int:
        return (-a) % self.modulus

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        if a % self.modulus == 0:
            raise CryptoError("zero has no multiplicative inverse")
        return dispatch.modinv(a, self.modulus)

    def div(self, a: int, b: int) -> int:
        return (a * self.inv(b)) % self.modulus

    def pow(self, a: int, e: int) -> int:
        return dispatch.modexp(a, e, self.modulus)

    # -- square roots (p ≡ 3 mod 4 fast path) ----------------------------
    def sqrt(self, a: int) -> int | None:
        """Return a square root of ``a`` or ``None`` if non-residue.

        Only the ``p ≡ 3 (mod 4)`` case is needed by the supersingular
        curve; :class:`PrimeField` supports exactly that case and raises
        otherwise so a silent wrong answer is impossible.
        """
        a %= self.modulus
        if a == 0:
            return 0
        if self.modulus % 4 != 3:
            raise CryptoError("sqrt implemented only for p ≡ 3 (mod 4)")
        root = dispatch.modexp(a, (self.modulus + 1) // 4, self.modulus)
        if root * root % self.modulus != a:
            return None
        return root

    def is_residue(self, a: int) -> bool:
        """True when ``a`` is a quadratic residue (0 counts as residue)."""
        a %= self.modulus
        if a == 0:
            return True
        return dispatch.modexp(a, (self.modulus - 1) // 2, self.modulus) == 1

    # -- misc -------------------------------------------------------------
    def rand(self, rng) -> int:
        """A uniform element sampled from ``rng`` (a ``random.Random``)."""
        return rng.randrange(self.modulus)

    def __contains__(self, value: int) -> bool:
        return 0 <= value < self.modulus
