"""Exponent-arithmetic pairing simulation for large-scale benchmarks.

The paper's experiments run millions of pairing operations through the
MCL C++ library; pure-Python curve arithmetic cannot sustain those sweep
sizes.  This backend keeps the *algebra* of a symmetric bilinear group
bit-for-bit identical while replacing elliptic-curve points with their
discrete logarithms:

* a G element is its exponent ``a`` (meaning ``g^a``), an int mod ``r``;
* the group operation is exponent addition, exponentiation is
  multiplication;
* the pairing is ``e(g^a, g^b) = gt^(a·b)`` — literally multiply the
  exponents mod ``r``.

Every identity the accumulators rely on (bilinearity, Sum/ProofSum
linearity, Bézout verification) holds *exactly*, so correctness results
and relative performance shapes transfer.  What is lost is hardness:
discrete logs are trivially readable, so this backend is **benchmark and
test scaffolding only** and `get_backend("ss512")` must be used for any
security-relevant run.  VO sizes are still reported at real group widths
(inherited from :class:`PairingBackend`), so bandwidth numbers remain
faithful.

Elements carry a small tag so G and GT values cannot be confused — a
class of bug the real backend would catch by type, and which the security
tests exercise.
"""

from __future__ import annotations

from repro.crypto.backend import PairingBackend, _G_NBYTES, _GT_NBYTES
from repro.crypto.curve import SUBGROUP_ORDER, Fr
from repro.errors import CryptoError

_G_TAG = 0
_GT_TAG = 1

SimElement = tuple[int, int]  # (tag, exponent mod r)


class SimulatedBackend(PairingBackend):
    """Discrete-log simulation of the ss512 group (fast, insecure)."""

    name = "simulated"

    def __init__(self) -> None:
        self.order = SUBGROUP_ORDER
        self.scalar_field = Fr

    @property
    def accel_impl(self) -> str:
        # exponent arithmetic only — no group operations to accelerate
        return "simulated"

    # -- G ---------------------------------------------------------------
    def generator(self) -> SimElement:
        return (_G_TAG, 1)

    def identity(self) -> SimElement:
        return (_G_TAG, 0)

    def op(self, a: SimElement, b: SimElement) -> SimElement:
        self._check(a, _G_TAG)
        self._check(b, _G_TAG)
        return (_G_TAG, (a[1] + b[1]) % self.order)

    def exp(self, base: SimElement, scalar: int) -> SimElement:
        self._check(base, _G_TAG)
        return (_G_TAG, base[1] * scalar % self.order)

    def inv(self, a: SimElement) -> SimElement:
        self._check(a, _G_TAG)
        return (_G_TAG, (-a[1]) % self.order)

    def multi_exp(self, bases: list[SimElement], scalars: list[int]) -> SimElement:
        if len(bases) != len(scalars):
            raise ValueError("multi_exp: bases and scalars differ in length")
        total = 0
        for base, scalar in zip(bases, scalars):
            self._check(base, _G_TAG)
            total += base[1] * scalar
        return (_G_TAG, total % self.order)

    def multi_pairing(
        self, pairs: list[tuple[SimElement, SimElement]]
    ) -> SimElement:
        total = 0
        for a, b in pairs:
            self._check(a, _G_TAG)
            self._check(b, _G_TAG)
            total += a[1] * b[1]
        return (_GT_TAG, total % self.order)

    def eq(self, a: SimElement, b: SimElement) -> bool:
        return a == b

    def encode(self, a: SimElement) -> bytes:
        self._check(a, _G_TAG)
        return a[1].to_bytes(_G_NBYTES, "big")

    def decode(self, data: bytes) -> SimElement:
        if len(data) != _G_NBYTES:
            raise CryptoError("G element encoding has wrong length")
        value = int.from_bytes(data, "big")
        if value >= self.order:
            raise CryptoError("G element encoding out of range")
        return (_G_TAG, value)

    # -- GT ---------------------------------------------------------------
    def pair(self, a: SimElement, b: SimElement) -> SimElement:
        self._check(a, _G_TAG)
        self._check(b, _G_TAG)
        return (_GT_TAG, a[1] * b[1] % self.order)

    def gt_identity(self) -> SimElement:
        return (_GT_TAG, 0)

    def gt_op(self, a: SimElement, b: SimElement) -> SimElement:
        self._check(a, _GT_TAG)
        self._check(b, _GT_TAG)
        return (_GT_TAG, (a[1] + b[1]) % self.order)

    def gt_exp(self, base: SimElement, scalar: int) -> SimElement:
        self._check(base, _GT_TAG)
        return (_GT_TAG, base[1] * scalar % self.order)

    def gt_inv(self, a: SimElement) -> SimElement:
        self._check(a, _GT_TAG)
        return (_GT_TAG, (-a[1]) % self.order)

    def gt_eq(self, a: SimElement, b: SimElement) -> bool:
        return a == b

    def gt_encode(self, a: SimElement) -> bytes:
        self._check(a, _GT_TAG)
        return a[1].to_bytes(_GT_NBYTES, "big")

    # -- internals ------------------------------------------------------------
    @staticmethod
    def _check(element: SimElement, tag: int) -> None:
        if not isinstance(element, tuple) or len(element) != 2 or element[0] != tag:
            raise CryptoError("group/GT element confusion in simulated backend")
