"""Dense univariate polynomial arithmetic over Z_r.

The q-SDH accumulator (Construction 1) works in the exponent with the
characteristic polynomial ``P(X) = Π (x_i + s)`` of a multiset and needs

* expansion of ``Π (X + x_i)`` into coefficients, so that ``g^{P(s)}`` can
  be computed from the published powers ``g^{s^i}`` *without* knowing
  ``s`` (polynomial interpolation in the exponent);
* the extended Euclidean algorithm to find Bézout cosets ``Q1, Q2`` with
  ``P1·Q1 + P2·Q2 = 1`` whenever the multisets are disjoint (their
  characteristic polynomials then share no roots).

Polynomials are coefficient lists, lowest degree first: ``[c0, c1, ...]``.
The zero polynomial is ``[]``; every non-zero polynomial keeps a non-zero
leading coefficient (normalised representation).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.crypto.field import PrimeField
from repro.crypto.accel import dispatch
from repro.errors import CryptoError

Poly = list[int]

#: Above this coefficient-product size, multiplication switches to
#: Kronecker substitution (see :meth:`PolynomialRing.mul`).
_KRONECKER_THRESHOLD = 2048


class PolynomialRing:
    """The ring Z_r[X] for a prime-field coefficient domain."""

    def __init__(self, field: PrimeField) -> None:
        self.field = field
        # Kronecker limb: wide enough that a convolution coefficient
        # (≤ n·(p-1)²) never overflows one limb for any realistic n.
        self._limb_nbytes = (2 * field.modulus.bit_length() + 63) // 8 + 1

    # -- construction ------------------------------------------------------
    def normalize(self, coeffs: Sequence[int]) -> Poly:
        """Reduce coefficients mod r and strip leading zeros."""
        out = [c % self.field.modulus for c in coeffs]
        while out and out[-1] == 0:
            out.pop()
        return out

    @property
    def zero(self) -> Poly:
        return []

    @property
    def one(self) -> Poly:
        return [1]

    def constant(self, c: int) -> Poly:
        return self.normalize([c])

    #: linear factors expanded incrementally per product-tree leaf; above
    #: this the tree (and eventually Kronecker) takes over.
    _LEAF_FACTORS = 16

    def from_roots_shifted(self, values: Iterable[int]) -> Poly:
        """Expand ``Π (X + v_i)`` — the accumulator polynomial.

        Note the *plus*: the accumulator uses ``(x_i + s)``, so the roots
        are ``-x_i``.  Multiset semantics are natural: repeated values
        simply contribute repeated factors.

        Built as a **balanced product tree**: small runs of linear
        factors are expanded incrementally into leaf polynomials, then
        leaves are merged pairwise with :meth:`mul`, which switches to
        Kronecker substitution once products grow — so the characteristic
        polynomial of an ``n``-element multiset costs ``O(n log n)``
        big-integer work instead of the quadratic incremental expansion.
        Coefficient order of operations differs, but the result is the
        exact same polynomial (the ring is commutative and exact).
        """
        p = self.field.modulus
        vals = [v % p for v in values]
        if not vals:
            return [1]
        leaves: list[Poly] = []
        for start in range(0, len(vals), self._LEAF_FACTORS):
            leaf: Poly = [1]
            for v in vals[start : start + self._LEAF_FACTORS]:
                # multiply leaf by (X + v) in-place
                leaf.append(0)
                for i in range(len(leaf) - 1, 0, -1):
                    leaf[i] = (leaf[i - 1] + leaf[i] * v) % p
                leaf[0] = leaf[0] * v % p
            leaves.append(leaf)
        # balanced pairwise merge until one polynomial remains
        while len(leaves) > 1:
            merged = [
                self.mul(leaves[i], leaves[i + 1])
                for i in range(0, len(leaves) - 1, 2)
            ]
            if len(leaves) % 2:
                merged.append(leaves[-1])
            leaves = merged
        return leaves[0]

    # -- queries -------------------------------------------------------------
    def degree(self, a: Poly) -> int:
        """Degree; the zero polynomial has degree -1 by convention."""
        return len(a) - 1

    def is_zero(self, a: Poly) -> bool:
        return not a

    def evaluate(self, a: Poly, x: int) -> int:
        """Horner evaluation of ``a`` at ``x``."""
        p = self.field.modulus
        acc = 0
        for c in reversed(a):
            acc = (acc * x + c) % p
        return acc

    # -- ring operations -------------------------------------------------------
    def add(self, a: Poly, b: Poly) -> Poly:
        p = self.field.modulus
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for i, c in enumerate(b):
            out[i] = (out[i] + c) % p
        return self.normalize(out)

    def sub(self, a: Poly, b: Poly) -> Poly:
        p = self.field.modulus
        n = max(len(a), len(b))
        out = [0] * n
        for i in range(n):
            ca = a[i] if i < len(a) else 0
            cb = b[i] if i < len(b) else 0
            out[i] = (ca - cb) % p
        return self.normalize(out)

    def mul(self, a: Poly, b: Poly) -> Poly:
        if not a or not b:
            return []
        if len(a) * len(b) > _KRONECKER_THRESHOLD:
            return self._kronecker_mul(a, b)
        p = self.field.modulus
        out = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                out[i + j] = (out[i + j] + ca * cb) % p
        return self.normalize(out)

    def _kronecker_mul(self, a: Poly, b: Poly) -> Poly:
        """Polynomial product via Kronecker substitution.

        Coefficients are packed into fixed-width limbs of one big
        integer; CPython's subquadratic big-int multiplication then does
        the convolution, and limbs are unpacked and reduced mod p.  The
        limb width guarantees convolution sums never overflow a limb
        (coefficients are non-negative, so there are no borrows).
        """
        width = self._limb_nbytes
        a_int = int.from_bytes(
            b"".join(c.to_bytes(width, "little") for c in a), "little"
        )
        b_int = int.from_bytes(
            b"".join(c.to_bytes(width, "little") for c in b), "little"
        )
        product = dispatch.imul(a_int, b_int).to_bytes((len(a) + len(b)) * width, "little")
        p = self.field.modulus
        out = [
            int.from_bytes(product[i * width : (i + 1) * width], "little") % p
            for i in range(len(a) + len(b) - 1)
        ]
        return self.normalize(out)

    def scale(self, a: Poly, k: int) -> Poly:
        p = self.field.modulus
        k %= p
        return self.normalize([c * k % p for c in a])

    def divmod(self, a: Poly, b: Poly) -> tuple[Poly, Poly]:
        """Quotient and remainder of ``a / b``; ``b`` must be non-zero."""
        if not b:
            raise CryptoError("polynomial division by zero")
        p = self.field.modulus
        rem = list(a)
        quot = [0] * max(0, len(a) - len(b) + 1)
        inv_lead = dispatch.modinv(b[-1], p)
        for shift in range(len(rem) - len(b), -1, -1):
            factor = rem[shift + len(b) - 1] * inv_lead % p
            if factor:
                quot[shift] = factor
                for i, c in enumerate(b):
                    rem[shift + i] = (rem[shift + i] - factor * c) % p
        return self.normalize(quot), self.normalize(rem)

    # -- gcd machinery ------------------------------------------------------------
    def xgcd(self, a: Poly, b: Poly) -> tuple[Poly, Poly, Poly]:
        """Extended Euclid: returns ``(g, u, v)`` with ``u·a + v·b = g``.

        ``g`` is normalised to be monic (or zero).  Disjoint multisets
        yield ``g = [1]``, giving exactly the Bézout pair the q-SDH
        disjointness proof needs.
        """
        r0, r1 = list(a), list(b)
        u0, u1 = self.one, self.zero
        v0, v1 = self.zero, self.one
        while r1:
            q, rem = self.divmod(r0, r1)
            r0, r1 = r1, rem
            u0, u1 = u1, self.sub(u0, self.mul(q, u1))
            v0, v1 = v1, self.sub(v0, self.mul(q, v1))
        if r0:
            # make gcd monic so callers can test g == [1] directly
            inv_lead = dispatch.modinv(r0[-1], self.field.modulus)
            r0 = self.scale(r0, inv_lead)
            u0 = self.scale(u0, inv_lead)
            v0 = self.scale(v0, inv_lead)
        return r0, u0, v0

    def bezout_disjoint(self, a: Poly, b: Poly) -> tuple[Poly, Poly]:
        """Return ``(Q1, Q2)`` with ``a·Q1 + b·Q2 = 1``.

        Raises :class:`CryptoError` when ``gcd(a, b) != 1`` — i.e. when the
        underlying multisets intersect and no disjointness proof exists.
        """
        g, u, v = self.xgcd(a, b)
        if g != self.one:
            raise CryptoError("polynomials are not coprime; multisets intersect")
        return u, v
