"""Construction 2: q-DHE multiset accumulator (paper Sec. 5.2.2).

The commitment is the pair ``acc(X) = (dA, dB)`` with

    dA = g^{A(s)},  A(s) = Σ_{x∈X} s^x
    dB = g^{B(s)},  B(s) = Σ_{x∈X} s^{q-x}

for encoded elements ``x ∈ [1, q-1]``.  If ``X1 ∩ X2 = ∅`` the product
``A(X1)·B(X2)`` contains no ``s^q`` term (an ``s^q`` term arises exactly
when ``x_i = x_j``), so ``π = g^{A(X1)B(X2)}`` is computable from the
published powers, which deliberately omit ``g^{s^q}``.  Verification
checks ``e(dA(X1), dB(X2)) == e(π, g)``.

The big win over acc1 is *linearity*: commitments and proofs of
multiset sums aggregate by plain group multiplication, which the paper
exposes as ``Sum`` and ``ProofSum`` and exploits for online batch
verification (Sec. 6.3) and lazy subscription proofs (Sec. 7.2).
"""

from __future__ import annotations

from collections import Counter

from repro.accumulators.base import AccumulatorValue, DisjointProof, MultisetAccumulator
from repro.accumulators.keys import Acc2PublicKey
from repro.errors import AggregationError, CryptoError, NotDisjointError


class Acc2(MultisetAccumulator):
    """q-DHE multiset accumulator with Sum/ProofSum aggregation."""

    name = "acc2"

    def __init__(self, public_key: Acc2PublicKey) -> None:
        self.public_key = public_key
        self.backend = public_key.backend

    # -- internals ---------------------------------------------------------
    def _check_domain(self, encoded: Counter) -> None:
        q = self.public_key.domain
        for element in encoded:
            if not 1 <= element <= q - 1:
                raise CryptoError(
                    f"encoded element {element} outside acc2 domain [1, {q - 1}]"
                )

    def _commit_exponents(self, exponents: Counter):
        """``g^{Σ count·s^index}`` over the published powers.

        One MSM over the referenced powers; the counts are small (object
        multiplicities), so Pippenger collapses the whole histogram into
        a single bucket pass.
        """
        backend = self.backend
        bases = []
        scalars = []
        for index, count in exponents.items():
            count %= backend.order
            if count == 0:
                continue
            bases.append(self.public_key.power(index))
            scalars.append(count)
        if not bases:
            return backend.identity()
        return backend.multi_exp(bases, scalars)

    # -- accumulator API --------------------------------------------------------
    def accumulate(self, encoded: Counter) -> AccumulatorValue:
        self._check_domain(encoded)
        q = self.public_key.domain
        part_a = self._commit_exponents(encoded)
        part_b = self._commit_exponents(
            Counter({q - element: count for element, count in encoded.items()})
        )
        return AccumulatorValue(parts=(part_a, part_b))

    def prove_disjoint(self, encoded_a: Counter, encoded_b: Counter) -> DisjointProof:
        self._check_domain(encoded_a)
        self._check_domain(encoded_b)
        common = set(encoded_a) & set(encoded_b)
        if common:
            raise NotDisjointError(
                f"multisets share encoded elements {sorted(common)!r}"
            )
        q = self.public_key.domain
        # A(X1)·B(X2) expands to Σ c_i·c_j · s^{x_i + q - x_j}; collect the
        # exponent histogram, then commit.  x_i ≠ x_j guarantees no s^q.
        cross: Counter = Counter()
        for elem_a, count_a in encoded_a.items():
            for elem_b, count_b in encoded_b.items():
                cross[elem_a + q - elem_b] += count_a * count_b
        return DisjointProof(parts=(self._commit_exponents(cross),))

    def verify_disjoint(
        self,
        value_a: AccumulatorValue,
        value_b: AccumulatorValue,
        proof: DisjointProof,
    ) -> bool:
        if len(value_a.parts) != 2 or len(value_b.parts) != 2 or len(proof.parts) != 1:
            return False
        backend = self.backend
        # e(dA(X1), dB(X2)) == e(π, g), folded into one pairing product
        # e(dA(X1), dB(X2)) · e(π^{-1}, g) == 1 so both pairings share a
        # single final exponentiation.
        left = backend.multi_pairing(
            [
                (value_a.parts[0], value_b.parts[1]),
                (backend.inv(proof.parts[0]), backend.generator()),
            ]
        )
        return backend.gt_eq(left, backend.gt_identity())

    # -- aggregation (the acc2 differentiator) --------------------------------
    @property
    def supports_aggregation(self) -> bool:
        return True

    def sum_values(self, values: list[AccumulatorValue]) -> AccumulatorValue:
        """``Sum`` — commitment to the multiset sum ``Σ X_i``."""
        if not values:
            raise AggregationError("Sum() of an empty value list")
        backend = self.backend
        part_a = backend.identity()
        part_b = backend.identity()
        for value in values:
            if len(value.parts) != 2:
                raise AggregationError("Sum() received a non-acc2 value")
            part_a = backend.op(part_a, value.parts[0])
            part_b = backend.op(part_b, value.parts[1])
        return AccumulatorValue(parts=(part_a, part_b))

    def sum_proofs(self, proofs: list[DisjointProof]) -> DisjointProof:
        """``ProofSum`` — aggregate proofs sharing the same right multiset.

        The algebra: Σ A(X_i)·B(Y) = A(ΣX_i)·B(Y), so multiplying the π's
        yields the disjointness proof for the summed left side.  The
        same-``Y`` precondition is the *caller's* obligation (the paper
        states it as a requirement of ProofSum); violating it produces a
        proof that simply fails verification.
        """
        if not proofs:
            raise AggregationError("ProofSum() of an empty proof list")
        backend = self.backend
        total = backend.identity()
        for proof in proofs:
            if len(proof.parts) != 1:
                raise AggregationError("ProofSum() received a non-acc2 proof")
            total = backend.op(total, proof.parts[0])
        return DisjointProof(parts=(total,))
