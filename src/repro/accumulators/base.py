"""Abstract multiset-accumulator interface (paper Section 4).

Both constructions implement:

* ``accumulate(X)``   — the constant-size commitment ``acc(X)``;
* ``prove_disjoint``  — a proof π that two committed multisets share no
  element;
* ``verify_disjoint`` — the pairing-equation check run by the light node.

The interface works on *encoded* multisets (``Counter[int]``); callers
encode raw attribute strings with
:class:`repro.accumulators.encoding.ElementEncoder` first, so that a
single encoding pass per block is shared by every accumulator call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass
from typing import Any

from repro.crypto.backend import PairingBackend


@dataclass(frozen=True)
class AccumulatorValue:
    """A commitment ``acc(X)``; ``parts`` is construction-specific."""

    parts: tuple[Any, ...]

    def nbytes(self, backend: PairingBackend) -> int:
        """Transmitted size: one group element per part."""
        return backend.element_nbytes * len(self.parts)


@dataclass(frozen=True)
class DisjointProof:
    """A proof π for ``X1 ∩ X2 = ∅``; ``parts`` is construction-specific."""

    parts: tuple[Any, ...]

    def nbytes(self, backend: PairingBackend) -> int:
        return backend.element_nbytes * len(self.parts)


class MultisetAccumulator(ABC):
    """Common contract for Construction 1 (q-SDH) and 2 (q-DHE)."""

    #: short identifier used in benchmark labels: "acc1" / "acc2"
    name: str
    backend: PairingBackend

    @abstractmethod
    def accumulate(self, encoded: Counter) -> AccumulatorValue:
        """``Setup(X, pk)`` — commitment to the encoded multiset."""

    @abstractmethod
    def prove_disjoint(self, encoded_a: Counter, encoded_b: Counter) -> DisjointProof:
        """``ProveDisjoint(X1, X2, pk)``; raises ``NotDisjointError``
        when the multisets intersect (no valid proof exists)."""

    @abstractmethod
    def verify_disjoint(
        self,
        value_a: AccumulatorValue,
        value_b: AccumulatorValue,
        proof: DisjointProof,
    ) -> bool:
        """``VerifyDisjoint`` — True iff the proof authenticates
        ``X1 ∩ X2 = ∅`` for the committed multisets."""

    @property
    def supports_aggregation(self) -> bool:
        """Whether ``sum_values``/``sum_proofs`` are available (acc2)."""
        return False

    # Aggregation primitives exist only on acc2; define here so callers
    # can feature-test via ``supports_aggregation`` and still get a clear
    # error if they ignore it.
    def sum_values(self, values: list[AccumulatorValue]) -> AccumulatorValue:
        raise NotImplementedError(f"{self.name} does not support Sum()")

    def sum_proofs(self, proofs: list[DisjointProof]) -> DisjointProof:
        raise NotImplementedError(f"{self.name} does not support ProofSum()")
