"""Encoding attribute values into accumulator domains.

Accumulators operate on integers, not strings: acc1 needs elements of
Z_r (the scalar field), acc2 needs elements of ``[1, q-1]`` (exponent
slots).  The paper's remedy for acc2's huge implied key is a trusted
oracle serving key powers on demand (Section 5.2.2); we adopt exactly
that (see :mod:`repro.accumulators.keys`), which lets ``q`` be large
(default ``2^32``) so hash-encoding collisions are negligible at our
workload scales.

Multisets are represented as ``collections.Counter`` over the *raw*
attribute strings; :func:`encode_multiset` maps them into counters over
the integer domain.  All parties (miner, SP, user) use the same encoder
deterministically — it is public parameterisation, not a secret.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.crypto.hashing import digest_to_int, hash_str
from repro.errors import CryptoError

Multiset = Counter  # Counter[str] — raw attribute multisets
EncodedMultiset = Counter  # Counter[int] — accumulator-domain multisets


class ElementEncoder:
    """Deterministic map from attribute strings to an integer domain.

    ``domain_size`` is the size of the target range; elements land in
    ``[1, domain_size]`` (never 0, which would be a degenerate
    accumulator root for acc1 and an invalid exponent slot for acc2).
    """

    def __init__(self, domain_size: int) -> None:
        if domain_size < 2:
            raise CryptoError("encoder domain must contain at least 2 values")
        self.domain_size = domain_size
        self._cache: dict[str, int] = {}

    def encode(self, item: str) -> int:
        """Hash ``item`` into ``[1, domain_size]`` (cached)."""
        code = self._cache.get(item)
        if code is None:
            code = digest_to_int(hash_str(item), self.domain_size) + 1
            self._cache[item] = code
        return code

    def encode_multiset(self, items: Multiset | Iterable[str]) -> EncodedMultiset:
        """Encode a raw multiset, preserving multiplicities.

        Distinct strings that collide under the hash merge into one
        encoded element with summed multiplicity — semantically the
        encoded domain *is* the accumulator's view of the world, exactly
        as in the paper where attributes are hashed before accumulation.
        """
        encoded: EncodedMultiset = Counter()
        if isinstance(items, Counter):
            for item, count in items.items():
                encoded[self.encode(item)] += count
        else:
            for item in items:
                encoded[self.encode(item)] += 1
        return encoded


def multiset_union(a: Multiset, b: Multiset) -> Multiset:
    """Set-style union ``max(count_a, count_b)`` (intra-index node rule)."""
    return a | b


def multiset_sum(a: Multiset, b: Multiset) -> Multiset:
    """Additive union (inter-index skip rule; what acc2 ``Sum`` mirrors)."""
    return a + b


def multisets_disjoint(a: Multiset, b: Multiset) -> bool:
    """True when no element occurs in both multisets."""
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    return not any(element in large for element in small)
