"""Construction 1: bilinear accumulator under q-SDH (paper Sec. 5.2.1).

The commitment to a multiset ``X`` is ``acc(X) = g^{P(s)}`` with the
characteristic polynomial ``P(X) = Π_{x∈X} (x + s)``.  It is computed
*without* the trapdoor by expanding the polynomial's coefficients and
multi-exponentiating over the published powers ``g^{s^i}``.

Disjointness proofs use the extended Euclidean algorithm: if
``X1 ∩ X2 = ∅`` the characteristic polynomials are coprime, so there are
``Q1, Q2`` with ``P1·Q1 + P2·Q2 = 1``, and the proof is
``π = (g^{Q1(s)}, g^{Q2(s)})``.  Verification checks

    e(acc(X1), F1*) · e(acc(X2), F2*) == e(g, g).

Strengths: compact key (linear in the largest multiset).  Limitation:
no aggregation of values or proofs — that's what acc2 adds.
"""

from __future__ import annotations

from collections import Counter

from repro.accumulators.base import AccumulatorValue, DisjointProof, MultisetAccumulator
from repro.accumulators.keys import Acc1PublicKey
from repro.crypto.polynomial import Poly, PolynomialRing
from repro.errors import KeyCapacityError, NotDisjointError


class Acc1(MultisetAccumulator):
    """q-SDH multiset accumulator (Papamanthou et al. construction)."""

    name = "acc1"

    def __init__(self, public_key: Acc1PublicKey) -> None:
        self.public_key = public_key
        self.backend = public_key.backend
        self._ring = PolynomialRing(self.backend.scalar_field)
        # e(g, g) is fixed; cache it for the verification equation.
        generator = self.backend.generator()
        self._pair_gg = self.backend.pair(generator, generator)

    # -- internals ---------------------------------------------------------
    def _char_poly(self, encoded: Counter) -> Poly:
        """``Π (x_i + s)`` as a polynomial in ``s`` (multiplicities kept)."""
        values: list[int] = []
        for element, count in encoded.items():
            values.extend([element] * count)
        return self._ring.from_roots_shifted(values)

    def _commit_poly(self, poly: Poly):
        """``g^{poly(s)}`` via fixed-base MSM over the key-power tables.

        The key powers are the same for every commit, so the public key
        caches per-power window tables and each commit is a single
        bucket pass with no doublings (see :mod:`repro.crypto.msm`).
        """
        degree = self._ring.degree(poly)
        if degree > self.public_key.capacity:
            raise KeyCapacityError(
                f"multiset size {degree} exceeds acc1 key capacity "
                f"{self.public_key.capacity}"
            )
        return self.public_key.commit(list(poly))

    # -- accumulator API ----------------------------------------------------
    def accumulate(self, encoded: Counter) -> AccumulatorValue:
        return AccumulatorValue(parts=(self._commit_poly(self._char_poly(encoded)),))

    def prove_disjoint(self, encoded_a: Counter, encoded_b: Counter) -> DisjointProof:
        common = set(encoded_a) & set(encoded_b)
        if common:
            raise NotDisjointError(
                f"multisets share encoded elements {sorted(common)!r}"
            )
        poly_a = self._char_poly(encoded_a)
        poly_b = self._char_poly(encoded_b)
        bezout_a, bezout_b = self._ring.bezout_disjoint(poly_a, poly_b)
        return DisjointProof(
            parts=(self._commit_poly(bezout_a), self._commit_poly(bezout_b))
        )

    def verify_disjoint(
        self,
        value_a: AccumulatorValue,
        value_b: AccumulatorValue,
        proof: DisjointProof,
    ) -> bool:
        if len(value_a.parts) != 1 or len(value_b.parts) != 1 or len(proof.parts) != 2:
            return False
        backend = self.backend
        # pairing product e(acc1, F1*)·e(acc2, F2*): one shared final exp
        left = backend.multi_pairing(
            [
                (value_a.parts[0], proof.parts[0]),
                (value_b.parts[0], proof.parts[1]),
            ]
        )
        return backend.gt_eq(left, self._pair_gg)
