"""Multiset accumulators (paper Sections 4 and 5.2)."""

from repro.accumulators.acc1 import Acc1
from repro.accumulators.acc2 import Acc2
from repro.accumulators.base import (
    AccumulatorValue,
    DisjointProof,
    MultisetAccumulator,
)
from repro.accumulators.encoding import (
    ElementEncoder,
    Multiset,
    multiset_sum,
    multiset_union,
    multisets_disjoint,
)
from repro.accumulators.keys import (
    Acc1PublicKey,
    Acc2PublicKey,
    KeyOracle,
    SecretKey,
    keygen_acc1,
    keygen_acc2,
)

__all__ = [
    "Acc1",
    "Acc1PublicKey",
    "Acc2",
    "Acc2PublicKey",
    "AccumulatorValue",
    "DisjointProof",
    "ElementEncoder",
    "KeyOracle",
    "Multiset",
    "MultisetAccumulator",
    "SecretKey",
    "keygen_acc1",
    "keygen_acc2",
    "multiset_sum",
    "multiset_union",
    "multisets_disjoint",
]


def make_accumulator(name, backend, capacity=1024, rng=None):
    """Convenience factory: build ``acc1`` or ``acc2`` with fresh keys.

    Returns ``(secret_key, accumulator)``.  ``capacity`` bounds acc1
    multiset size; acc2 ignores it (its oracle-backed domain is 2^32).
    """
    if name == "acc1":
        secret, public = keygen_acc1(backend, capacity=capacity, rng=rng)
        return secret, Acc1(public)
    if name == "acc2":
        secret, public = keygen_acc2(backend, rng=rng)
        return secret, Acc2(public)
    raise ValueError(f"unknown accumulator: {name!r}")
