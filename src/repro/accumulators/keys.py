"""Key material for the multiset accumulators.

``KeyGen(1^λ)`` samples a secret ``s ∈ Z_r``; the public key is the list
of group powers ``g^{s^i}``.  For acc1 the powers run over ``0..q``; for
acc2 over ``1..2q-2`` *excluding* ``q`` — publishing ``g^{s^q}`` would
break the q-DHE assumption the disjointness proof rests on.

The paper notes (Section 5.2.2) that hashing attributes to wide integers
makes acc2's key astronomically large, and proposes a **trusted oracle**
(a third party or SGX enclave) that holds ``s`` and answers public-key
power requests on demand.  :class:`KeyOracle` implements exactly that
remedy: it caches ``g^{s^i}`` per requested index and *refuses* to serve
the forbidden acc2 index, so code built on the oracle sees precisely the
interface an SGX-backed deployment would expose.  ``materialize`` turns
an oracle view into a plain list for deployments with a small, fixed
``q`` (the acc1 setting).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.crypto.accel import dispatch
from repro.crypto.backend import GroupElement, PairingBackend
from repro.errors import CryptoError, KeyCapacityError

#: Default acc2 exponent-domain size: large enough that hash-encoded
#: attributes collide with negligible probability at benchmark scales.
DEFAULT_ACC2_DOMAIN = 2**32


@dataclass
class SecretKey:
    """The trapdoor ``s``.  Held only by KeyGen / the trusted oracle."""

    s: int


class KeyOracle:
    """Serves ``g^{s^i}`` on demand, never revealing ``s``.

    ``forbidden`` lists indices that must never be served (acc2 uses
    ``{q}``).  The oracle is shared by miner, SP and user: it represents
    public parameters, and in tests it doubles as the boundary that the
    unforgeability experiments are run against (the adversary may query
    powers but not the trapdoor).
    """

    def __init__(
        self,
        backend: PairingBackend,
        secret: SecretKey,
        forbidden: frozenset[int] = frozenset(),
    ) -> None:
        self._backend = backend
        self._secret = secret
        self._forbidden = forbidden
        self._cache: dict[int, GroupElement] = {0: backend.generator()}
        # fixed-base window tables per power index (backend-opaque); built
        # lazily, then shared by every commit that touches the same power
        self._tables: dict[int, Any] = {}

    def __getstate__(self) -> dict:
        """Pickle everything except the fixed-base window tables.

        Spawn-mode :class:`~repro.parallel.CryptoPool` workers receive
        the oracle by pickling.  The power cache travels (it is small
        and saves each worker one ``exp`` per index), but window tables
        are bulky precomputation that every worker rebuilds lazily from
        :meth:`power_table` — exactly what a process restart does.
        """
        state = self.__dict__.copy()
        state["_tables"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def backend(self) -> PairingBackend:
        return self._backend

    def power(self, index: int) -> GroupElement:
        """Return ``g^{s^index}`` (cached)."""
        if index < 0:
            raise CryptoError("negative key-power index")
        if index in self._forbidden:
            raise KeyCapacityError(
                f"power index {index} is withheld by the trusted oracle "
                "(q-DHE forbidden slot)"
            )
        element = self._cache.get(index)
        if element is None:
            exponent = dispatch.modexp(self._secret.s, index, self._backend.order)
            element = self._backend.exp(self._backend.generator(), exponent)
            self._cache[index] = element
        return element

    def power_table(self, index: int) -> Any:
        """Fixed-base MSM table for ``g^{s^index}`` (cached).

        Table construction costs about one scalar multiplication, repaid
        after a handful of commits: mining accumulates every tree node
        and inter-block multiset of a block over the same key powers.
        """
        table = self._tables.get(index)
        if table is None:
            table = self._backend.fixed_base_table(self.power(index))
            self._tables[index] = table
        return table

    def commit_prefix(self, coefficients: Sequence[int]) -> GroupElement:
        """``Π power(i)^{coefficients[i]}`` via cached fixed-base tables.

        The acc1 commit primitive: polynomial coefficients over the
        prefix powers ``g^{s^0} .. g^{s^{deg}}``.
        """
        tables = [self.power_table(i) for i in range(len(coefficients))]
        return self._backend.multi_exp_tables(tables, list(coefficients))

    def materialize(self, max_index: int) -> list[GroupElement]:
        """Plain power list ``[g^{s^0}, ..., g^{s^max_index}]``.

        Mirrors publishing a fixed-size public key up front; only valid
        when no forbidden index falls inside the range.
        """
        bad = [i for i in self._forbidden if i <= max_index]
        if bad:
            raise KeyCapacityError(f"cannot materialize withheld indices {bad}")
        return [self.power(i) for i in range(max_index + 1)]


@dataclass
class Acc1PublicKey:
    """q-SDH public key view: powers ``g^{s^0} .. g^{s^q}``.

    ``capacity`` bounds the largest multiset the accumulator can commit
    to (the polynomial degree must not exceed the highest published
    power).
    """

    oracle: KeyOracle
    capacity: int

    def power(self, index: int) -> GroupElement:
        if index > self.capacity:
            raise KeyCapacityError(
                f"acc1 power {index} exceeds public-key capacity {self.capacity}"
            )
        return self.oracle.power(index)

    def commit(self, coefficients: Sequence[int]) -> GroupElement:
        """``g^{P(s)}`` for coefficient list ``P`` (degree ≤ capacity)."""
        if len(coefficients) - 1 > self.capacity:
            raise KeyCapacityError(
                f"acc1 commit degree {len(coefficients) - 1} exceeds "
                f"public-key capacity {self.capacity}"
            )
        return self.oracle.commit_prefix(coefficients)

    @property
    def backend(self) -> PairingBackend:
        return self.oracle.backend


@dataclass
class Acc2PublicKey:
    """q-DHE public key view: powers ``g^{s^i}``, ``i ∈ [1, 2q-2] \\ {q}``.

    ``domain`` is ``q``; encoded elements must lie in ``[1, q-1]``.
    """

    oracle: KeyOracle
    domain: int

    def power(self, index: int) -> GroupElement:
        if index == self.domain:
            raise KeyCapacityError("acc2 forbidden power g^{s^q} requested")
        if not 0 <= index <= 2 * self.domain - 2:
            raise KeyCapacityError(
                f"acc2 power {index} outside [0, 2q-2] for q={self.domain}"
            )
        return self.oracle.power(index)

    @property
    def backend(self) -> PairingBackend:
        return self.oracle.backend


def keygen_acc1(
    backend: PairingBackend, capacity: int, rng: random.Random | None = None
) -> tuple[SecretKey, Acc1PublicKey]:
    """Trusted setup for Construction 1 (q-SDH)."""
    rng = rng or random.Random()
    secret = SecretKey(backend.random_scalar(rng))
    oracle = KeyOracle(backend, secret)
    return secret, Acc1PublicKey(oracle=oracle, capacity=capacity)


def keygen_acc2(
    backend: PairingBackend,
    domain: int = DEFAULT_ACC2_DOMAIN,
    rng: random.Random | None = None,
) -> tuple[SecretKey, Acc2PublicKey]:
    """Trusted setup for Construction 2 (q-DHE); withholds ``g^{s^q}``."""
    rng = rng or random.Random()
    secret = SecretKey(backend.random_scalar(rng))
    oracle = KeyOracle(backend, secret, forbidden=frozenset({domain}))
    return secret, Acc2PublicKey(oracle=oracle, domain=domain)
