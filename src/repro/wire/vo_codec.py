"""Wire encoding of the protocol's transmitted objects.

Encodes/decodes everything that crosses the SP↔user link: data
objects, block headers, accumulator values, disjointness proofs, VO
trees, full time-window VOs and subscription deliveries.  Decoding is
backend-aware: group elements go through ``backend.decode``, which on
the real backend validates curve and subgroup membership — a forged
point is rejected at the parsing boundary, before any verification
logic runs.

Round-trip property: ``decode(encode(x)) == x`` for every supported
type (exercised heavily in ``tests/test_wire.py``), and encoded sizes
track the ``nbytes`` accounting used by the benchmarks.
"""

from __future__ import annotations

from repro.accumulators.base import AccumulatorValue, DisjointProof
from repro.chain.block import BlockHeader
from repro.chain.object import DataObject
from repro.core.vo import (
    BatchGroup,
    TimeWindowVO,
    VOBlock,
    VOExpandNode,
    VOMatchLeaf,
    VOMismatchNode,
    VONode,
    VOSkip,
)
from repro.crypto.backend import PairingBackend
from repro.crypto.hashing import DIGEST_NBYTES
from repro.wire.codec import Reader, Writer, WireError

_NODE_MATCH = 1
_NODE_MISMATCH = 2
_NODE_EXPAND = 3

_ENTRY_BLOCK = 1
_ENTRY_SKIP = 2

#: group/absent markers for optional proof / group fields
_ABSENT = 0
_PRESENT = 1


# -- data objects --------------------------------------------------------------
def write_object(writer: Writer, obj: DataObject) -> None:
    writer.uvarint(obj.object_id)
    writer.uvarint(obj.timestamp)
    writer.uvarint(len(obj.vector))
    for value in obj.vector:
        writer.uvarint(value)
    writer.uvarint(len(obj.keywords))
    for keyword in sorted(obj.keywords):
        writer.text(keyword)


def read_object(reader: Reader) -> DataObject:
    object_id = reader.uvarint()
    timestamp = reader.uvarint()
    vector = tuple(reader.uvarint() for _ in range(reader.uvarint()))
    keywords = frozenset(reader.text() for _ in range(reader.uvarint()))
    return DataObject(
        object_id=object_id, timestamp=timestamp, vector=vector, keywords=keywords
    )


# -- headers ---------------------------------------------------------------------
def write_header(writer: Writer, header: BlockHeader) -> None:
    writer.uvarint(header.height)
    writer.raw(header.prev_hash)
    writer.uvarint(header.timestamp)
    writer.raw(header.merkle_root)
    writer.raw(header.skiplist_root)
    writer.uvarint(header.nonce)


def read_header(reader: Reader) -> BlockHeader:
    return BlockHeader(
        height=reader.uvarint(),
        prev_hash=reader.raw(DIGEST_NBYTES),
        timestamp=reader.uvarint(),
        merkle_root=reader.raw(DIGEST_NBYTES),
        skiplist_root=reader.raw(DIGEST_NBYTES),
        nonce=reader.uvarint(),
    )


# -- accumulator material -----------------------------------------------------------
def write_value(
    writer: Writer, backend: PairingBackend, value: AccumulatorValue
) -> None:
    writer.uvarint(len(value.parts))
    for part in value.parts:
        writer.raw(backend.encode(part))


def read_value(reader: Reader, backend: PairingBackend) -> AccumulatorValue:
    count = reader.uvarint()
    if count > 4:
        raise WireError("accumulator value has implausibly many parts")
    return AccumulatorValue(
        parts=tuple(
            backend.decode(reader.raw(backend.element_nbytes)) for _ in range(count)
        )
    )


def write_proof(writer: Writer, backend: PairingBackend, proof: DisjointProof) -> None:
    writer.uvarint(len(proof.parts))
    for part in proof.parts:
        writer.raw(backend.encode(part))


def read_proof(reader: Reader, backend: PairingBackend) -> DisjointProof:
    count = reader.uvarint()
    if count > 4:
        raise WireError("disjointness proof has implausibly many parts")
    return DisjointProof(
        parts=tuple(
            backend.decode(reader.raw(backend.element_nbytes)) for _ in range(count)
        )
    )


def _write_clause(writer: Writer, clause: frozenset[str]) -> None:
    writer.uvarint(len(clause))
    for element in sorted(clause):
        writer.text(element)


def _read_clause(reader: Reader) -> frozenset[str]:
    return frozenset(reader.text() for _ in range(reader.uvarint()))


def _write_optional_evidence(
    writer: Writer,
    backend: PairingBackend,
    proof: DisjointProof | None,
    group: int | None,
) -> None:
    if proof is not None:
        writer.byte(_PRESENT)
        write_proof(writer, backend, proof)
    else:
        writer.byte(_ABSENT)
    if group is not None:
        writer.byte(_PRESENT)
        writer.uvarint(group)
    else:
        writer.byte(_ABSENT)


def _read_optional_evidence(
    reader: Reader, backend: PairingBackend
) -> tuple[DisjointProof | None, int | None]:
    proof = read_proof(reader, backend) if reader.byte() == _PRESENT else None
    group = reader.uvarint() if reader.byte() == _PRESENT else None
    return proof, group


# -- VO trees -------------------------------------------------------------------------
def write_node(writer: Writer, backend: PairingBackend, node: VONode) -> None:
    if isinstance(node, VOMatchLeaf):
        writer.byte(_NODE_MATCH)
        write_object(writer, node.obj)
    elif isinstance(node, VOMismatchNode):
        writer.byte(_NODE_MISMATCH)
        writer.raw(node.child_component)
        write_value(writer, backend, node.att_digest)
        _write_clause(writer, node.clause)
        _write_optional_evidence(writer, backend, node.proof, node.group)
    elif isinstance(node, VOExpandNode):
        writer.byte(_NODE_EXPAND)
        if node.att_digest is not None:
            writer.byte(_PRESENT)
            write_value(writer, backend, node.att_digest)
        else:
            writer.byte(_ABSENT)
        writer.uvarint(len(node.children))
        for child in node.children:
            write_node(writer, backend, child)
    else:
        raise WireError(f"unknown VO node type {type(node).__name__}")


def read_node(reader: Reader, backend: PairingBackend, depth: int = 0) -> VONode:
    if depth > 64:
        raise WireError("VO tree nesting too deep")
    tag = reader.byte()
    if tag == _NODE_MATCH:
        return VOMatchLeaf(obj=read_object(reader))
    if tag == _NODE_MISMATCH:
        component = reader.raw(DIGEST_NBYTES)
        value = read_value(reader, backend)
        clause = _read_clause(reader)
        proof, group = _read_optional_evidence(reader, backend)
        return VOMismatchNode(
            child_component=component,
            att_digest=value,
            clause=clause,
            proof=proof,
            group=group,
        )
    if tag == _NODE_EXPAND:
        value = read_value(reader, backend) if reader.byte() == _PRESENT else None
        count = reader.uvarint()
        if count > 64:
            raise WireError("expand node has implausibly many children")
        children = tuple(read_node(reader, backend, depth + 1) for _ in range(count))
        return VOExpandNode(att_digest=value, children=children)
    raise WireError(f"unknown VO node tag {tag}")


# -- full VOs -------------------------------------------------------------------------
def encode_time_window_vo(backend: PairingBackend, vo: TimeWindowVO) -> bytes:
    writer = Writer()
    writer.uvarint(len(vo.entries))
    for entry in vo.entries:
        if isinstance(entry, VOBlock):
            writer.byte(_ENTRY_BLOCK)
            writer.uvarint(entry.height)
            write_node(writer, backend, entry.root)
        elif isinstance(entry, VOSkip):
            writer.byte(_ENTRY_SKIP)
            writer.uvarint(entry.height)
            writer.uvarint(entry.distance)
            write_value(writer, backend, entry.att_digest)
            _write_clause(writer, entry.clause)
            _write_optional_evidence(writer, backend, entry.proof, entry.group)
            writer.uvarint(len(entry.sibling_hashes))
            for distance, sibling in entry.sibling_hashes:
                writer.uvarint(distance)
                writer.raw(sibling)
        else:
            raise WireError(f"unknown VO entry type {type(entry).__name__}")
    writer.uvarint(len(vo.batch_groups))
    for group_id in sorted(vo.batch_groups):
        group = vo.batch_groups[group_id]
        writer.uvarint(group_id)
        _write_clause(writer, group.clause)
        write_proof(writer, backend, group.proof)
    return writer.getvalue()


def decode_time_window_vo(backend: PairingBackend, data: bytes) -> TimeWindowVO:
    reader = Reader(data)
    entries: list[VOBlock | VOSkip] = []
    n_entries = reader.uvarint()
    if n_entries > MAX_ENTRIES:
        raise WireError("VO has implausibly many entries")
    for _ in range(n_entries):
        tag = reader.byte()
        if tag == _ENTRY_BLOCK:
            height = reader.uvarint()
            entries.append(VOBlock(height=height, root=read_node(reader, backend)))
        elif tag == _ENTRY_SKIP:
            height = reader.uvarint()
            distance = reader.uvarint()
            value = read_value(reader, backend)
            clause = _read_clause(reader)
            proof, group = _read_optional_evidence(reader, backend)
            siblings = tuple(
                (reader.uvarint(), reader.raw(DIGEST_NBYTES))
                for _ in range(reader.uvarint())
            )
            entries.append(
                VOSkip(
                    height=height,
                    distance=distance,
                    att_digest=value,
                    clause=clause,
                    proof=proof,
                    group=group,
                    sibling_hashes=siblings,
                )
            )
        else:
            raise WireError(f"unknown VO entry tag {tag}")
    groups: dict[int, BatchGroup] = {}
    for _ in range(reader.uvarint()):
        group_id = reader.uvarint()
        clause = _read_clause(reader)
        proof = read_proof(reader, backend)
        groups[group_id] = BatchGroup(clause=clause, proof=proof)
    reader.expect_end()
    return TimeWindowVO(entries=entries, batch_groups=groups)


#: sanity bound on the number of VO entries a user will parse
MAX_ENTRIES = 1 << 20


def encode_response(
    backend: PairingBackend, results: list[DataObject], vo: TimeWindowVO
) -> bytes:
    """The full SP response ⟨R, VO⟩ as one message."""
    writer = Writer()
    writer.uvarint(len(results))
    for obj in results:
        write_object(writer, obj)
    writer.blob(encode_time_window_vo(backend, vo))
    return writer.getvalue()


def decode_response(
    backend: PairingBackend, data: bytes
) -> tuple[list[DataObject], TimeWindowVO]:
    reader = Reader(data)
    results = [read_object(reader) for _ in range(reader.uvarint())]
    vo = decode_time_window_vo(backend, reader.blob())
    reader.expect_end()
    return results, vo
