"""Wire encoding of the SP↔user *request* protocol.

:mod:`repro.wire.vo_codec` covers everything the SP sends back —
objects, headers, VOs.  This module covers the other direction plus the
typed response envelopes, so that the full client/server conversation
round-trips through bytes:

* queries (:class:`~repro.core.query.TimeWindowQuery` and
  :class:`~repro.core.query.SubscriptionQuery`),
* the request frames a transport carries (query / register /
  deregister / poll / flush / header sync),
* the response bodies each request expects (results+VO+stats,
  registration acks, delivery batches, header batches, errors).

Decoding is defensive throughout: every structural violation —
truncation, bad tags, inverted ranges, empty CNF clauses — surfaces as
:class:`~repro.wire.codec.WireError` *at the parse boundary*, before any
query or verification logic runs.  A malicious peer controls these
bytes.

Round-trip property: ``decode(encode(x)) == x`` for every message type
(exercised in ``tests/test_request_codec.py``).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.chain.block import BlockHeader
from repro.chain.object import DataObject
from repro.core.prover import QueryStats
from repro.core.query import (
    CNFCondition,
    RangeCondition,
    SubscriptionQuery,
    TimeWindowQuery,
)
from repro.core.vo import TimeWindowVO
from repro.crypto.backend import PairingBackend
from repro.errors import QueryError
from repro.subscribe.engine import Delivery
from repro.wire.codec import Reader, WireError, Writer
from repro.wire.vo_codec import (
    decode_time_window_vo,
    encode_time_window_vo,
    read_header,
    read_object,
    write_header,
    write_object,
)

_ABSENT = 0
_PRESENT = 1

#: query form tags
_Q_TIME_WINDOW = 1
_Q_SUBSCRIPTION = 2

#: request frame tags
REQ_QUERY = 1
REQ_REGISTER = 2
REQ_DEREGISTER = 3
REQ_POLL = 4
REQ_FLUSH = 5
REQ_HEADERS = 6
REQ_STATS = 7
REQ_ENVELOPE = 8

#: sanity bounds for attacker-controlled counts
MAX_DIMS = 64
MAX_CLAUSES = 4096
MAX_CLAUSE_SIZE = 4096
MAX_DELIVERIES = 1 << 16
MAX_HEADERS = 1 << 22
MAX_INFO_ENTRIES = 256
MAX_INFO_SECTIONS = 16


# -- request dataclasses ------------------------------------------------------
@dataclass(frozen=True)
class QueryRequest:
    """One historical time-window query; ``batch`` as in the prover."""

    query: TimeWindowQuery
    batch: bool | None = None


@dataclass(frozen=True)
class RegisterRequest:
    """Register a subscription; ``None`` means "from the next block"."""

    query: SubscriptionQuery
    since_height: int | None = None


@dataclass(frozen=True)
class DeregisterRequest:
    query_id: int


@dataclass(frozen=True)
class PollRequest:
    query_id: int


@dataclass(frozen=True)
class FlushRequest:
    query_id: int


@dataclass(frozen=True)
class HeadersRequest:
    from_height: int = 0


@dataclass(frozen=True)
class StatsRequest:
    """Ask the server for its :class:`ServerStats` snapshot."""


#: the request forms an envelope may wrap (everything but itself)
BareRequest = (
    QueryRequest
    | RegisterRequest
    | DeregisterRequest
    | PollRequest
    | FlushRequest
    | HeadersRequest
    | StatsRequest
)


@dataclass(frozen=True)
class EnvelopeRequest:
    """A request plus per-request metadata the *transport* consumes.

    ``deadline_ms`` is the client's remaining latency budget in
    milliseconds, measured from the moment the server receives the
    frame.  A server that cannot answer within the budget replies with
    a ``deadline`` error instead of a uselessly late response.  The
    envelope wraps the inner request bytes unchanged, so old clients
    (which never send envelopes) keep working against new servers.
    """

    request: BareRequest
    deadline_ms: int | None = None


Request = BareRequest | EnvelopeRequest


# -- query bodies -------------------------------------------------------------
def _write_range(writer: Writer, numeric: RangeCondition | None) -> None:
    if numeric is None:
        writer.byte(_ABSENT)
        return
    writer.byte(_PRESENT)
    writer.uvarint(len(numeric.low))
    for value in numeric.low:
        writer.uvarint(value)
    for value in numeric.high:
        writer.uvarint(value)


def _read_range(reader: Reader) -> RangeCondition | None:
    if reader.byte() == _ABSENT:
        return None
    dims = reader.uvarint()
    if dims > MAX_DIMS:
        raise WireError("range predicate has implausibly many dimensions")
    low = tuple(reader.uvarint() for _ in range(dims))
    high = tuple(reader.uvarint() for _ in range(dims))
    try:
        return RangeCondition(low=low, high=high)
    except QueryError as exc:
        raise WireError(f"malformed range predicate: {exc}") from exc


def _write_cnf(writer: Writer, boolean: CNFCondition) -> None:
    writer.uvarint(len(boolean.clauses))
    for clause in boolean.clauses:
        writer.uvarint(len(clause))
        for element in sorted(clause):
            writer.text(element)


def _read_cnf(reader: Reader) -> CNFCondition:
    n_clauses = reader.uvarint()
    if n_clauses > MAX_CLAUSES:
        raise WireError("CNF has implausibly many clauses")
    clauses = []
    for _ in range(n_clauses):
        size = reader.uvarint()
        if size > MAX_CLAUSE_SIZE:
            raise WireError("CNF clause is implausibly large")
        clauses.append(frozenset(reader.text() for _ in range(size)))
    try:
        return CNFCondition(tuple(clauses))
    except QueryError as exc:
        raise WireError(f"malformed CNF condition: {exc}") from exc


def write_query(writer: Writer, query: TimeWindowQuery | SubscriptionQuery) -> None:
    """Tagged encoding of either query form."""
    if isinstance(query, TimeWindowQuery):
        writer.byte(_Q_TIME_WINDOW)
        writer.uvarint(query.start)
        writer.uvarint(query.end)
    elif isinstance(query, SubscriptionQuery):
        writer.byte(_Q_SUBSCRIPTION)
    else:
        raise WireError(f"unknown query type {type(query).__name__}")
    _write_range(writer, query.numeric)
    _write_cnf(writer, query.boolean)


def read_query(reader: Reader) -> TimeWindowQuery | SubscriptionQuery:
    tag = reader.byte()
    if tag == _Q_TIME_WINDOW:
        start = reader.uvarint()
        end = reader.uvarint()
        numeric = _read_range(reader)
        boolean = _read_cnf(reader)
        try:
            return TimeWindowQuery(
                start=start, end=end, numeric=numeric, boolean=boolean
            )
        except QueryError as exc:
            raise WireError(f"malformed time-window query: {exc}") from exc
    if tag == _Q_SUBSCRIPTION:
        numeric = _read_range(reader)
        boolean = _read_cnf(reader)
        return SubscriptionQuery(numeric=numeric, boolean=boolean)
    raise WireError(f"unknown query tag {tag}")


def encode_time_window_query(query: TimeWindowQuery) -> bytes:
    writer = Writer()
    write_query(writer, query)
    return writer.getvalue()


def decode_time_window_query(data: bytes) -> TimeWindowQuery:
    reader = Reader(data)
    query = read_query(reader)
    reader.expect_end()
    if not isinstance(query, TimeWindowQuery):
        raise WireError("expected a time-window query")
    return query


def encode_subscription_query(query: SubscriptionQuery) -> bytes:
    writer = Writer()
    write_query(writer, query)
    return writer.getvalue()


def decode_subscription_query(data: bytes) -> SubscriptionQuery:
    reader = Reader(data)
    query = read_query(reader)
    reader.expect_end()
    if isinstance(query, TimeWindowQuery) or not isinstance(query, SubscriptionQuery):
        raise WireError("expected a subscription query")
    return query


# -- request frames -----------------------------------------------------------
def encode_request(request: Request) -> bytes:
    writer = Writer()
    if isinstance(request, QueryRequest):
        writer.byte(REQ_QUERY)
        if request.batch is None:
            writer.byte(0)
        else:
            writer.byte(2 if request.batch else 1)
        write_query(writer, request.query)
    elif isinstance(request, RegisterRequest):
        writer.byte(REQ_REGISTER)
        if request.since_height is None:
            writer.byte(_ABSENT)
        else:
            writer.byte(_PRESENT)
            writer.uvarint(request.since_height)
        write_query(writer, request.query)
    elif isinstance(request, DeregisterRequest):
        writer.byte(REQ_DEREGISTER)
        writer.uvarint(request.query_id)
    elif isinstance(request, PollRequest):
        writer.byte(REQ_POLL)
        writer.uvarint(request.query_id)
    elif isinstance(request, FlushRequest):
        writer.byte(REQ_FLUSH)
        writer.uvarint(request.query_id)
    elif isinstance(request, HeadersRequest):
        writer.byte(REQ_HEADERS)
        writer.uvarint(request.from_height)
    elif isinstance(request, StatsRequest):
        writer.byte(REQ_STATS)
    elif isinstance(request, EnvelopeRequest):
        if isinstance(request.request, EnvelopeRequest):
            raise WireError("nested request envelopes are not allowed")
        writer.byte(REQ_ENVELOPE)
        if request.deadline_ms is None:
            writer.byte(_ABSENT)
        else:
            writer.byte(_PRESENT)
            writer.uvarint(request.deadline_ms)
        writer.raw(encode_request(request.request))
    else:
        raise WireError(f"unknown request type {type(request).__name__}")
    return writer.getvalue()


def decode_request(data: bytes) -> Request:
    reader = Reader(data)
    tag = reader.byte()
    request: Request
    if tag == REQ_QUERY:
        marker = reader.byte()
        if marker > 2:
            raise WireError(f"unknown batch marker {marker}")
        batch = None if marker == 0 else marker == 2
        query = read_query(reader)
        if not isinstance(query, TimeWindowQuery):
            raise WireError("query request must carry a time-window query")
        request = QueryRequest(query=query, batch=batch)
    elif tag == REQ_REGISTER:
        since = reader.uvarint() if reader.byte() == _PRESENT else None
        query = read_query(reader)
        if isinstance(query, TimeWindowQuery) or not isinstance(
            query, SubscriptionQuery
        ):
            raise WireError("register request must carry a subscription query")
        request = RegisterRequest(query=query, since_height=since)
    elif tag == REQ_DEREGISTER:
        request = DeregisterRequest(query_id=reader.uvarint())
    elif tag == REQ_POLL:
        request = PollRequest(query_id=reader.uvarint())
    elif tag == REQ_FLUSH:
        request = FlushRequest(query_id=reader.uvarint())
    elif tag == REQ_HEADERS:
        request = HeadersRequest(from_height=reader.uvarint())
    elif tag == REQ_STATS:
        request = StatsRequest()
    elif tag == REQ_ENVELOPE:
        deadline_ms = reader.uvarint() if reader.byte() == _PRESENT else None
        inner = decode_request(reader.raw(reader.remaining))
        if isinstance(inner, EnvelopeRequest):
            raise WireError("nested request envelopes are not allowed")
        request = EnvelopeRequest(request=inner, deadline_ms=deadline_ms)
    else:
        raise WireError(f"unknown request tag {tag}")
    reader.expect_end()
    return request


def peek_deadline(payload: bytes) -> tuple[int | None, bytes]:
    """Split a request frame into ``(deadline_ms, inner payload)``.

    Cheap by construction — the envelope header is a tag byte, a
    presence byte and one varint, so a serving loop can read the
    deadline *before* committing any parsing or proving work to the
    request.  Non-envelope frames pass through as ``(None, payload)``.
    """
    if not payload or payload[0] != REQ_ENVELOPE:
        return None, payload
    reader = Reader(payload)
    reader.byte()
    deadline_ms = reader.uvarint() if reader.byte() == _PRESENT else None
    return deadline_ms, reader.raw(reader.remaining)


# -- response bodies ----------------------------------------------------------
def _write_stats(writer: Writer, stats: QueryStats) -> None:
    writer.raw(struct.pack(">d", stats.sp_seconds))
    writer.uvarint(stats.blocks_scanned)
    writer.uvarint(stats.blocks_skipped)
    writer.uvarint(stats.proofs_computed)
    writer.uvarint(stats.nodes_visited)
    writer.uvarint(stats.results)
    writer.uvarint(stats.cache_hits)
    writer.uvarint(stats.cache_misses)
    writer.uvarint(stats.proofs_reused)
    writer.uvarint(stats.parallel_tasks)
    writer.uvarint(stats.workers_used)


def _read_stats(reader: Reader) -> QueryStats:
    (sp_seconds,) = struct.unpack(">d", reader.raw(8))
    return QueryStats(
        sp_seconds=sp_seconds,
        blocks_scanned=reader.uvarint(),
        blocks_skipped=reader.uvarint(),
        proofs_computed=reader.uvarint(),
        nodes_visited=reader.uvarint(),
        results=reader.uvarint(),
        cache_hits=reader.uvarint(),
        cache_misses=reader.uvarint(),
        proofs_reused=reader.uvarint(),
        parallel_tasks=reader.uvarint(),
        workers_used=reader.uvarint(),
    )


def encode_query_response(
    backend: PairingBackend,
    results: list[DataObject],
    vo: TimeWindowVO,
    stats: QueryStats,
) -> bytes:
    """The full SP answer ⟨R, VO, stats⟩ as one message."""
    writer = Writer()
    writer.uvarint(len(results))
    for obj in results:
        write_object(writer, obj)
    writer.blob(encode_time_window_vo(backend, vo))
    _write_stats(writer, stats)
    return writer.getvalue()


def decode_query_response(
    backend: PairingBackend, data: bytes
) -> tuple[list[DataObject], TimeWindowVO, QueryStats]:
    reader = Reader(data)
    results = [read_object(reader) for _ in range(reader.uvarint())]
    vo = decode_time_window_vo(backend, reader.blob())
    stats = _read_stats(reader)
    reader.expect_end()
    return results, vo, stats


def write_delivery(writer: Writer, backend: PairingBackend, delivery: Delivery) -> None:
    writer.uvarint(delivery.query_id)
    writer.uvarint(delivery.from_height)
    writer.uvarint(delivery.up_to_height)
    writer.uvarint(len(delivery.results))
    for obj in delivery.results:
        write_object(writer, obj)
    writer.blob(encode_time_window_vo(backend, delivery.vo))


def read_delivery(reader: Reader, backend: PairingBackend) -> Delivery:
    return Delivery(
        query_id=reader.uvarint(),
        from_height=reader.uvarint(),
        up_to_height=reader.uvarint(),
        results=[read_object(reader) for _ in range(reader.uvarint())],
        vo=decode_time_window_vo(backend, reader.blob()),
    )


def encode_deliveries(backend: PairingBackend, deliveries: list[Delivery]) -> bytes:
    writer = Writer()
    writer.uvarint(len(deliveries))
    for delivery in deliveries:
        write_delivery(writer, backend, delivery)
    return writer.getvalue()


def decode_deliveries(backend: PairingBackend, data: bytes) -> list[Delivery]:
    reader = Reader(data)
    count = reader.uvarint()
    if count > MAX_DELIVERIES:
        raise WireError("implausibly many deliveries in one response")
    deliveries = [read_delivery(reader, backend) for _ in range(count)]
    reader.expect_end()
    return deliveries


def encode_flush_response(backend: PairingBackend, delivery: Delivery | None) -> bytes:
    writer = Writer()
    if delivery is None:
        writer.byte(_ABSENT)
    else:
        writer.byte(_PRESENT)
        write_delivery(writer, backend, delivery)
    return writer.getvalue()


def decode_flush_response(backend: PairingBackend, data: bytes) -> Delivery | None:
    reader = Reader(data)
    delivery = read_delivery(reader, backend) if reader.byte() == _PRESENT else None
    reader.expect_end()
    return delivery


def encode_register_response(query_id: int, since_height: int) -> bytes:
    return Writer().uvarint(query_id).uvarint(since_height).getvalue()


def decode_register_response(data: bytes) -> tuple[int, int]:
    reader = Reader(data)
    query_id = reader.uvarint()
    since_height = reader.uvarint()
    reader.expect_end()
    return query_id, since_height


def encode_headers_response(headers: list[BlockHeader]) -> bytes:
    writer = Writer()
    writer.uvarint(len(headers))
    for header in headers:
        write_header(writer, header)
    return writer.getvalue()


def decode_headers_response(data: bytes) -> list[BlockHeader]:
    reader = Reader(data)
    count = reader.uvarint()
    if count > MAX_HEADERS:
        raise WireError("implausibly many headers in one response")
    headers = [read_header(reader) for _ in range(count)]
    reader.expect_end()
    return headers


# -- server stats -------------------------------------------------------------
#: the value types a stats section may carry
Scalar = int | float | str

_SCALAR_INT = 0
_SCALAR_FLOAT = 1
_SCALAR_TEXT = 2


@dataclass(frozen=True)
class ServerStats:
    """Typed observability snapshot of one serving endpoint.

    The wire form of :meth:`~repro.api.service.ServiceEndpoint.stats`:
    ``endpoint`` carries the request counters, ``caches`` one section
    per serving cache, ``engine`` the subscription-engine counters,
    ``pool`` the crypto-pool snapshot (``None`` without a pool),
    ``server`` the transport-level counters — admission rejections,
    rate limiting, evictions — when a socket server is attached
    (``None`` for a bare in-process endpoint), ``storage`` the
    striped store's degradation/scrub counters (``None`` for stores
    without health tracking), and ``accel`` the name of the arithmetic
    provider serving the endpoint's crypto (``pure`` / ``gmpy2`` /
    ``native``).
    """

    endpoint: dict[str, Scalar]
    caches: dict[str, dict[str, Scalar]]
    engine: dict[str, Scalar]
    pool: dict[str, Scalar] | None
    server: dict[str, Scalar] | None
    storage: dict[str, Scalar] | None = None
    accel: str = "pure"


def _write_scalar(writer: Writer, value: Scalar) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise WireError(f"stats values must be int/float/str, got {value!r}")
    if isinstance(value, int):
        if value < 0:
            raise WireError("stats counters are non-negative")
        writer.byte(_SCALAR_INT)
        writer.uvarint(value)
    elif isinstance(value, float):
        writer.byte(_SCALAR_FLOAT)
        writer.raw(struct.pack(">d", value))
    else:
        writer.byte(_SCALAR_TEXT)
        writer.text(value)


def _read_scalar(reader: Reader) -> Scalar:
    tag = reader.byte()
    if tag == _SCALAR_INT:
        return reader.uvarint()
    if tag == _SCALAR_FLOAT:
        (value,) = struct.unpack(">d", reader.raw(8))
        return float(value)
    if tag == _SCALAR_TEXT:
        return reader.text()
    raise WireError(f"unknown stats scalar tag {tag}")


def _write_info(writer: Writer, info: dict[str, Scalar]) -> None:
    writer.uvarint(len(info))
    for key in sorted(info):  # canonical: one byte string per snapshot
        writer.text(key)
        _write_scalar(writer, info[key])


def _read_info(reader: Reader) -> dict[str, Scalar]:
    count = reader.uvarint()
    if count > MAX_INFO_ENTRIES:
        raise WireError("implausibly many entries in a stats section")
    return {reader.text(): _read_scalar(reader) for _ in range(count)}


def _write_optional_info(writer: Writer, info: dict[str, Scalar] | None) -> None:
    if info is None:
        writer.byte(_ABSENT)
    else:
        writer.byte(_PRESENT)
        _write_info(writer, info)


def _read_optional_info(reader: Reader) -> dict[str, Scalar] | None:
    return _read_info(reader) if reader.byte() == _PRESENT else None


def encode_stats_response(stats: ServerStats) -> bytes:
    writer = Writer()
    _write_info(writer, stats.endpoint)
    writer.uvarint(len(stats.caches))
    for name in sorted(stats.caches):
        writer.text(name)
        _write_info(writer, stats.caches[name])
    _write_info(writer, stats.engine)
    _write_optional_info(writer, stats.pool)
    _write_optional_info(writer, stats.server)
    _write_optional_info(writer, stats.storage)
    writer.text(stats.accel)
    return writer.getvalue()


def decode_stats_response(data: bytes) -> ServerStats:
    reader = Reader(data)
    endpoint = _read_info(reader)
    n_caches = reader.uvarint()
    if n_caches > MAX_INFO_SECTIONS:
        raise WireError("implausibly many cache sections in a stats response")
    caches = {reader.text(): _read_info(reader) for _ in range(n_caches)}
    engine = _read_info(reader)
    pool = _read_optional_info(reader)
    server = _read_optional_info(reader)
    storage = _read_optional_info(reader)
    accel = reader.text()
    reader.expect_end()
    return ServerStats(
        endpoint=endpoint,
        caches=caches,
        engine=engine,
        pool=pool,
        server=server,
        storage=storage,
        accel=accel,
    )


def encode_error(kind: str, message: str) -> bytes:
    return Writer().text(kind).text(message).getvalue()


def decode_error(data: bytes) -> tuple[str, str]:
    reader = Reader(data)
    kind = reader.text()
    message = reader.text()
    reader.expect_end()
    return kind, message
